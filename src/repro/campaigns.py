"""``python -m repro.campaigns`` — the distributed campaign runner CLI.

Runs the paper's headline experiments as sharded, optionally multi-process,
optionally checkpointed campaigns::

    # Fig. 7 sigma^2_N sweep, 4 shards over 2 worker processes
    python -m repro.campaigns sigma2n --batch 64 --n-periods 32768 \
        --shards 4 --workers 2 --seed 7 --json sigma2n.json

    # Entropy-vs-divider bit campaign, resumable
    python -m repro.campaigns bits --batch 16 --n-bits 20000 \
        --dividers 500,1000,2000 --shards 8 --workers 4 \
        --checkpoint-dir runs/bits --resume

    # Multi-host fabric: 4 spawned localhost workers (or --workers-remote
    # host:port,... for real remote fleets); merged output is bit-for-bit
    # identical to the single-host run
    python -m repro.campaigns sigma2n --batch 64 --n-periods 32768 \
        --shards 8 --spawn-workers 4 --seed 7 --verify

``--verify`` additionally runs the unsharded batched campaign on the same
spec and asserts the merged tables are bit-for-bit identical (exit code 1 on
any mismatch) — the shard-invariance contract, checkable from the shell.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import Dict, Optional

import numpy as np

from .engine.campaign import batched_bit_campaign, batched_sigma2_n_campaign
from .engine.distributed import (
    BitCampaignSpec,
    FabricCoordinator,
    MultiprocessExecutor,
    SerialExecutor,
    Sigma2NCampaignSpec,
    plan_shards_for_backend,
    run_campaign,
    spec_to_json,
)


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--batch", type=int, default=64, help="instances B")
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count (default: one per worker)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; 1 runs serially in-process",
    )
    parser.add_argument(
        "--spawn-workers",
        type=int,
        default=0,
        metavar="N",
        help="spawn N localhost fabric worker processes and run the "
        "campaign on them (multi-host fabric, merged bit-for-bit "
        "identically to a single-host run)",
    )
    parser.add_argument(
        "--workers-remote",
        type=str,
        default=None,
        metavar="HOST:PORT,...",
        help="comma-separated endpoints of running 'python -m repro.worker' "
        "processes (combinable with --spawn-workers)",
    )
    parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=15.0,
        help="seconds of worker silence before it is declared dead and its "
        "shard reassigned (fabric runs only)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        help="per-shard wall-clock bound; exceeding it retires the worker "
        "and reassigns the shard (fabric runs only)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="root seed (default: fresh entropy, recorded in --json output)",
    )
    parser.add_argument(
        "--backend",
        type=str,
        default=None,
        metavar="numpy|threaded[:N]|auto[:N]|philox[:N]",
        help="synthesis backend (default: $REPRO_BACKEND or numpy); auto "
        "picks per call from a measured cost model; all backends are "
        "bit-for-bit equivalent on the same streams, so execution speed is "
        "the only backend choice — but selecting philox also implies the "
        "philox RNG stream contract unless --rng-contract overrides it",
    )
    parser.add_argument(
        "--rng-contract",
        type=str,
        default=None,
        choices=("spawn", "philox"),
        help="RNG stream contract pinned into the spec (default: implied by "
        "the backend, else $REPRO_RNG_CONTRACT/$REPRO_BACKEND, else spawn); "
        "philox keys every draw by (root_key, row, block, offset) so shards "
        "derive only their own rows — NOTE: the contract changes the drawn "
        "numbers, so results are comparable only within one contract",
    )
    parser.add_argument(
        "--checkpoint-dir",
        type=str,
        default=None,
        help="persist completed shards here (manifest + per-shard .npz)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse completed shards found in --checkpoint-dir",
    )
    parser.add_argument(
        "--json", type=str, default=None, help="write results to this JSON file"
    )
    parser.add_argument(
        "--metrics-json",
        type=str,
        default=None,
        metavar="PATH",
        help="dump the merged metrics registries (process + fabric) as JSON "
        "to PATH when the campaign finishes",
    )
    parser.add_argument(
        "--stats-interval",
        type=float,
        default=None,
        metavar="SECS",
        help="print a one-line metrics summary to stderr every SECS seconds "
        "while the campaign runs",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the merged span tree (coordinator + workers) to stderr "
        "after a fabric run",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="also run the unsharded campaign and require bit-for-bit equality",
    )
    parser.add_argument(
        "--max-rows", type=int, default=16, help="table rows to print"
    )
    parser.add_argument(
        "--f0", type=float, default=None, help="f0 [Hz] (paper value by default)"
    )
    parser.add_argument(
        "--b-thermal",
        type=float,
        default=None,
        help="thermal coefficient b_th [Hz] (paper value by default)",
    )
    parser.add_argument(
        "--b-flicker",
        type=float,
        default=None,
        help="flicker coefficient b_fl [Hz^2] (paper-calibrated default)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaigns",
        description=__doc__.splitlines()[0],
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sigma2n = commands.add_parser(
        "sigma2n",
        help="sharded Fig. 7 sigma^2_N campaign (estimate + Eq. 11 fit)",
    )
    _add_common_arguments(sigma2n)
    sigma2n.add_argument(
        "--n-periods", type=int, default=32_768, help="record length per instance"
    )
    sigma2n.add_argument(
        "--chunk-periods",
        type=int,
        default=None,
        help="stream in chunks of this length (O(chunk) memory per worker)",
    )
    sigma2n.add_argument(
        "--disjoint",
        action="store_true",
        help="disjoint (non-overlapping) accumulation windows",
    )
    sigma2n.add_argument(
        "--no-fit", action="store_true", help="estimate curves only, skip the fit"
    )

    bits = commands.add_parser(
        "bits", help="sharded entropy-vs-divider bit campaign"
    )
    _add_common_arguments(bits)
    bits.add_argument(
        "--n-bits", type=int, default=4096, help="raw bits per instance"
    )
    bits.add_argument(
        "--dividers",
        type=str,
        default="500,1000,2000",
        help="comma-separated accumulation lengths D",
    )
    bits.add_argument(
        "--mismatch", type=float, default=1e-3, help="relative frequency mismatch"
    )
    bits.add_argument(
        "--procedure-a", action="store_true", help="run AIS31 Procedure A"
    )
    bits.add_argument(
        "--procedure-b", action="store_true", help="run AIS31 Procedure B"
    )
    return parser


def _build_spec(args: argparse.Namespace):
    # Omitted flags fall through to the spec dataclass defaults (the single
    # source of the paper-calibrated coefficients).
    noise = {}
    if args.f0 is not None:
        noise["f0_hz"] = args.f0
    if args.b_thermal is not None:
        noise["b_thermal_hz"] = args.b_thermal
    if args.b_flicker is not None:
        noise["b_flicker_hz2"] = args.b_flicker
    if args.command == "sigma2n":
        return Sigma2NCampaignSpec(
            batch_size=args.batch,
            n_periods=args.n_periods,
            seed=args.seed,
            overlapping=not args.disjoint,
            chunk_periods=args.chunk_periods,
            fit=not args.no_fit,
            backend=args.backend,
            rng_contract=args.rng_contract,
            **noise,
        )
    dividers = tuple(int(d) for d in args.dividers.split(",") if d.strip())
    return BitCampaignSpec(
        batch_size=args.batch,
        n_bits=args.n_bits,
        dividers=dividers,
        frequency_mismatch=args.mismatch,
        seed=args.seed,
        run_procedure_a=args.procedure_a,
        run_procedure_b=args.procedure_b,
        backend=args.backend,
        rng_contract=args.rng_contract,
        **noise,
    )


def _reference_result(spec):
    """The unsharded batched campaign on the same spec (for --verify)."""
    if isinstance(spec, Sigma2NCampaignSpec):
        return batched_sigma2_n_campaign(
            spec.ensemble(),
            spec.n_periods,
            n_sweep=spec.n_sweep,
            overlapping=spec.overlapping,
            min_realizations=spec.min_realizations,
            chunk_periods=spec.chunk_periods,
            fit=spec.fit,
            weighted=spec.weighted,
            exact=spec.exact,
        )
    return batched_bit_campaign(
        spec.configuration(),
        spec.dividers,
        spec.batch_size,
        spec.n_bits,
        seed=spec.seed,
        run_procedure_a=spec.run_procedure_a,
        include_t0=spec.include_t0,
        run_procedure_b=spec.run_procedure_b,
        min_entropy_block_size=spec.min_entropy_block_size,
        backend=spec.backend,
        rng_contract=spec.rng_contract,
    )


def _comparison_tables(spec, result) -> Dict[str, np.ndarray]:
    if isinstance(spec, Sigma2NCampaignSpec):
        tables = {
            "n_values": result.n_values,
            "sigma2_s2": result.sigma2_s2,
            "realization_counts": result.realization_counts,
            "f0_hz": result.f0_hz,
        }
        if spec.fit:
            tables.update(result.table())
        return tables
    return dict(result.table())


def _verify(spec, result) -> bool:
    reference = _reference_result(spec)
    sharded = _comparison_tables(spec, result)
    unsharded = _comparison_tables(spec, reference)
    ok = True
    for name, values in unsharded.items():
        if not np.array_equal(sharded[name], values):
            print(f"VERIFY FAIL: column {name!r} differs", file=sys.stderr)
            ok = False
    return ok


def _json_table(result) -> Dict[str, list]:
    table = result.table()
    return {name: np.asarray(column).tolist() for name, column in table.items()}


def _adopt_checkpoint_seed(args: argparse.Namespace) -> None:
    """Resume without --seed: continue the campaign the manifest records.

    A spec built with ``seed=None`` pins *fresh* entropy, which could never
    match a previous run's manifest — so an unseeded ``--resume`` adopts the
    recorded seed instead of refusing to resume.  The RNG stream contract is
    adopted the same way (an unpinned spec resolves the *local* environment
    default, which need not match the recorded campaign's contract).  Any
    other spec mismatch (changed batch, record length, ...) still fails in
    the checkpoint layer.
    """
    if not (args.resume and args.checkpoint_dir):
        return
    if args.seed is not None and args.rng_contract is not None:
        return
    from pathlib import Path

    manifest_path = Path(args.checkpoint_dir) / "manifest.json"
    if not manifest_path.exists():
        return
    recorded = json.loads(manifest_path.read_text()).get("spec", {})
    if recorded.get("kind") != args.command:
        return
    if args.seed is None and "seed" in recorded:
        args.seed = int(recorded["seed"])
    if args.rng_contract is None and recorded.get("rng_contract"):
        args.rng_contract = str(recorded["rng_contract"])


def _fabric_endpoints(args: argparse.Namespace) -> list:
    return [
        endpoint.strip()
        for endpoint in (args.workers_remote or "").split(",")
        if endpoint.strip()
    ]


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.resume and args.checkpoint_dir is None:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    remote = _fabric_endpoints(args)
    use_fabric = bool(remote) or args.spawn_workers > 0
    if use_fabric and args.workers != 1:
        print(
            "--workers (local processes) cannot be combined with the fabric "
            "flags --spawn-workers/--workers-remote; pick one execution "
            "substrate",
            file=sys.stderr,
        )
        return 2
    _adopt_checkpoint_seed(args)
    try:
        spec = _build_spec(args)
    except ValueError as error:
        # Bad flag combinations (e.g. --backend typos) are usage errors, not
        # tracebacks.
        print(str(error), file=sys.stderr)
        return 2

    def _progress(event) -> None:
        print(event.describe(), file=sys.stderr)

    if use_fabric:
        try:
            executor = FabricCoordinator(
                remote=remote,
                spawn=max(args.spawn_workers, 0),
                backend=args.backend,
                heartbeat_timeout=args.heartbeat_timeout,
                shard_timeout=args.shard_timeout,
                on_event=_progress,
            )
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        fleet_size = executor.max_workers
    else:
        executor = (
            SerialExecutor()
            if args.workers == 1
            else MultiprocessExecutor(max_workers=args.workers)
        )
        fleet_size = args.workers
    n_shards = args.shards if args.shards is not None else fleet_size

    from .obs import format_tree, global_registry, summary_line, write_metrics_json

    registries = [global_registry()]
    if use_fabric:
        registries.insert(0, executor.telemetry.registry)
    stats_stop: Optional[threading.Event] = None
    if args.stats_interval is not None and args.stats_interval > 0:
        stats_stop = threading.Event()
        interval = max(args.stats_interval, 0.1)

        def _stats_main() -> None:
            while not stats_stop.wait(interval):
                print(summary_line(*registries), file=sys.stderr)

        threading.Thread(
            target=_stats_main, name="campaign-stats", daemon=True
        ).start()

    start = time.perf_counter()
    try:
        result = run_campaign(
            spec,
            executor=executor,
            n_shards=n_shards,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
        )
    finally:
        if use_fabric:
            executor.close()
        if stats_stop is not None:
            stats_stop.set()
    elapsed = time.perf_counter() - start

    # Mirror run_campaign's backend-aware plan so the report shows the
    # shard count that actually ran (threaded/auto backends clamp it).
    effective_shards = plan_shards_for_backend(
        spec.batch_size,
        n_shards,
        backend=spec.backend,
        n_periods=getattr(spec, "n_periods", None),
    ).n_shards
    substrate = "fabric" if use_fabric else "local"
    print(
        f"{args.command} campaign: B={spec.batch_size}, "
        f"{effective_shards} shard(s), {fleet_size} {substrate} worker(s), "
        f"seed={spec.seed}, {elapsed:.3f} s"
    )
    fabric_summary: Optional[Dict] = None
    if use_fabric:
        fabric_summary = executor.telemetry.summary()
        print(
            f"fabric: {len(fabric_summary['shards'])} shard(s) served, "
            f"{fabric_summary['reassignments']} reassignment(s), "
            f"{len(fabric_summary['worker_failures'])} worker failure(s), "
            f"{fabric_summary['shard_seconds_total']:.3f} worker-seconds"
        )
        if args.trace:
            rendered = format_tree(executor.trace_tree())
            if rendered:
                print(f"trace:\n{rendered}", file=sys.stderr)
    if args.metrics_json:
        extra: Dict = {"command": args.command, "elapsed_seconds": elapsed}
        if use_fabric:
            extra["trace"] = executor.trace_tree()
        write_metrics_json(args.metrics_json, *registries, extra=extra)
        print(f"metrics written to {args.metrics_json}")
    if isinstance(spec, Sigma2NCampaignSpec) and not spec.fit:
        print(f"{len(result.curves)} curves estimated (fit skipped)")
    else:
        print(result.format_table(max_rows=args.max_rows))

    verified: Optional[bool] = None
    if args.verify:
        verified = _verify(spec, result)
        if verified:
            print(
                "verify: sharded output is bit-for-bit identical to the "
                "unsharded campaign"
            )
        else:
            print("verify: MISMATCH against the unsharded campaign")

    if args.json:
        payload = {
            "command": args.command,
            "spec": spec_to_json(spec),
            "n_shards": effective_shards,
            "workers": fleet_size,
            "substrate": substrate,
            "elapsed_seconds": elapsed,
            "verified": verified,
        }
        if fabric_summary is not None:
            payload["fabric"] = fabric_summary
        if not (isinstance(spec, Sigma2NCampaignSpec) and not spec.fit):
            payload["table"] = _json_table(result)
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"results written to {args.json}")

    return 0 if verified in (None, True) else 1


if __name__ == "__main__":
    sys.exit(main())
