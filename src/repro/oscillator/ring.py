"""Ring-oscillator model (Fig. 4 of the paper).

A :class:`RingOscillator` can be built two ways:

* **bottom-up** (:meth:`RingOscillator.from_technology` /
  :meth:`RingOscillator.from_inverter`): from a CMOS technology node or an
  explicit inverter cell, using the Hajimiri ISF conversion to *predict*
  ``b_th`` and ``b_fl`` — this is the multilevel approach of Fig. 3;
* **top-down** (:meth:`RingOscillator.from_phase_noise`): directly from a
  nominal frequency and the two phase-noise coefficients — this is how the
  paper's own experimental oscillator (103 MHz on a Cyclone III FPGA) is
  mirrored, since its fitted ``b_th``/``b_fl`` are reported in the paper.

Either way the oscillator exposes the :class:`repro.oscillator.period_model.Clock`
interface (periods and edge times) used by the measurement circuit and the
TRNG digitizer.

Synthesis runs through the batched engine: a :class:`RingOscillator` is a
``B = 1`` view over :class:`repro.engine.batch.BatchedJitterSynthesizer`, and
:meth:`RingOscillator.ensemble` builds the ``B``-instance
:class:`repro.engine.batch.BatchedOscillatorEnsemble` whose row ``i``
reproduces the scalar oscillator bit-for-bit for a shared seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..noise.technology import TechnologyNode, get_node
from ..noise.transistor import InverterCell
from ..phase.isf import (
    ImpulseSensitivityFunction,
    phase_psd_from_inverter,
    ring_oscillation_frequency,
)
from ..phase.psd import PhaseNoisePSD
from ..phase.synthesis import JitterDecomposition, PeriodJitterSynthesizer


class RingOscillator:
    """A free-running CMOS ring oscillator with thermal and flicker phase noise."""

    def __init__(
        self,
        f0_hz: float,
        psd: PhaseNoisePSD,
        n_stages: int = 3,
        rng: Optional[np.random.Generator] = None,
        flicker_method: str = "spectral",
        name: str = "RO",
    ) -> None:
        if n_stages < 3:
            raise ValueError("a ring oscillator needs at least 3 stages")
        self.n_stages = int(n_stages)
        self.name = name
        self._synthesizer = PeriodJitterSynthesizer(
            f0_hz, psd, rng=rng, flicker_method=flicker_method
        )

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_phase_noise(
        cls,
        f0_hz: float,
        b_thermal_hz: float,
        b_flicker_hz2: float,
        n_stages: int = 3,
        rng: Optional[np.random.Generator] = None,
        name: str = "RO",
    ) -> "RingOscillator":
        """Top-down construction from the Eq. 10 coefficients."""
        psd = PhaseNoisePSD(b_thermal_hz=b_thermal_hz, b_flicker_hz2=b_flicker_hz2)
        return cls(f0_hz, psd, n_stages=n_stages, rng=rng, name=name)

    @classmethod
    def from_inverter(
        cls,
        cell: InverterCell,
        n_stages: int,
        isf: Optional[ImpulseSensitivityFunction] = None,
        rng: Optional[np.random.Generator] = None,
        name: str = "RO",
    ) -> "RingOscillator":
        """Bottom-up construction from an inverter cell (multilevel approach)."""
        f0 = ring_oscillation_frequency(cell, n_stages)
        psd = phase_psd_from_inverter(cell, n_stages, isf=isf)
        return cls(f0, psd, n_stages=n_stages, rng=rng, name=name)

    @classmethod
    def from_technology(
        cls,
        node: "TechnologyNode | str",
        n_stages: int,
        isf: Optional[ImpulseSensitivityFunction] = None,
        rng: Optional[np.random.Generator] = None,
        name: str = "RO",
    ) -> "RingOscillator":
        """Bottom-up construction from a named technology node (e.g. ``"65nm"``)."""
        if isinstance(node, str):
            node = get_node(node)
        return cls.from_inverter(
            node.inverter(), n_stages, isf=isf, rng=rng, name=name
        )

    @classmethod
    def ensemble(
        cls,
        batch_size: int,
        f0_hz,
        psd,
        n_stages: int = 3,
        seed=None,
        rngs=None,
        flicker_method: str = "spectral",
        name: str = "ensemble",
    ):
        """A :class:`repro.engine.batch.BatchedOscillatorEnsemble` of this design.

        ``f0_hz`` and ``psd`` may be scalars (shared by all instances) or
        length-``batch_size`` sequences (heterogeneous ensembles).  Instance
        ``i`` of the ensemble is bit-for-bit the scalar oscillator
        ``RingOscillator(f0, psd, rng=spawn_generators(seed, batch_size)[i])``.
        """
        from ..engine.batch import BatchedOscillatorEnsemble

        return BatchedOscillatorEnsemble(
            f0_hz,
            psd,
            batch_size=batch_size,
            n_stages=n_stages,
            rngs=rngs,
            seed=seed,
            flicker_method=flicker_method,
            name=name,
        )

    # -- clock interface -----------------------------------------------------

    @property
    def f0_hz(self) -> float:
        """Nominal oscillation frequency [Hz]."""
        return self._synthesizer.f0_hz

    @property
    def nominal_period_s(self) -> float:
        """Nominal period ``T0 = 1/f0`` [s]."""
        return self._synthesizer.nominal_period_s

    @property
    def psd(self) -> PhaseNoisePSD:
        """Phase-noise PSD (``b_th``, ``b_fl``) of this oscillator."""
        return self._synthesizer.psd

    @property
    def thermal_jitter_std_s(self) -> float:
        """Ground-truth standard deviation of the thermal per-period jitter [s]."""
        return self._synthesizer.thermal_jitter_std_s

    def periods(self, n_periods: int) -> np.ndarray:
        """Next ``n_periods`` period durations ``T(t_i)`` [s]."""
        return self._synthesizer.periods(n_periods)

    def jitter(self, n_periods: int) -> np.ndarray:
        """Next ``n_periods`` jitter values ``J(t_i)`` (Eq. 3) [s]."""
        return self._synthesizer.jitter(n_periods)

    def decompose(self, n_periods: int) -> JitterDecomposition:
        """Synthesize periods keeping the thermal/flicker split (ground truth)."""
        return self._synthesizer.decompose(n_periods)

    def edge_times(self, n_periods: int, start_time_s: float = 0.0) -> np.ndarray:
        """Rising-edge times of the next ``n_periods`` periods [s]."""
        return self._synthesizer.edge_times(n_periods, start_time_s=start_time_s)

    def __repr__(self) -> str:
        return (
            f"RingOscillator(name={self.name!r}, f0={self.f0_hz:.4g} Hz, "
            f"b_th={self.psd.b_thermal_hz:.4g} Hz, "
            f"b_fl={self.psd.b_flicker_hz2:.4g} Hz^2, stages={self.n_stages})"
        )
