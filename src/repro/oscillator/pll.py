"""PLL-synthesized clock: the substrate of the Bernard et al. baseline model.

The paper's related-work section cites Bernard, Fischer and Valtchanov's
stochastic model of a PLL-based P-TRNG that uses *coherent sampling*: a clock
``clk_jit`` at frequency ``f1 = f0 * K_M / K_D`` (produced by a PLL from the
reference ``f0``) is sampled by ``f0``.  Because the ratio is rational the
relative phase of the two clocks sweeps ``K_M`` equidistant positions before
repeating, and randomness only enters through the jitter of the samples that
land close to an edge of ``clk_jit``.

This module provides the clock-synthesis substrate (a frequency-multiplied,
jitter-filtered clock); the corresponding entropy model lives in
``repro.trng.models.bernard_pll``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Optional

import numpy as np

from ..phase.psd import PhaseNoisePSD
from ..phase.synthesis import PeriodJitterSynthesizer


@dataclass(frozen=True)
class PLLConfiguration:
    """Multiplication/division ratio of the PLL and its output jitter.

    Attributes
    ----------
    multiplication_factor:
        ``K_M`` — the PLL output completes ``K_M`` periods while the
        reference completes ``K_D``.
    division_factor:
        ``K_D``.
    output_jitter_std_s:
        RMS (tracking) jitter of the synthesized clock edges, dominated by
        white noise inside the loop bandwidth [s].
    """

    multiplication_factor: int
    division_factor: int
    output_jitter_std_s: float

    def __post_init__(self) -> None:
        if self.multiplication_factor < 1 or self.division_factor < 1:
            raise ValueError("K_M and K_D must be >= 1")
        if gcd(self.multiplication_factor, self.division_factor) != 1:
            raise ValueError("K_M and K_D must be coprime for coherent sampling")
        if self.output_jitter_std_s < 0.0:
            raise ValueError("output jitter must be >= 0")


class PLLClock:
    """A clock at ``f_ref * K_M / K_D`` with white (thermal-like) edge jitter.

    The PLL loop suppresses the slow (flicker) wander of the VCO, so to first
    order the output jitter is white; this is why the classical PLL-TRNG model
    could plausibly assume independent jitter realizations — an assumption the
    paper shows does not carry over to free-running rings.
    """

    def __init__(
        self,
        reference_frequency_hz: float,
        configuration: PLLConfiguration,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if reference_frequency_hz <= 0.0:
            raise ValueError("reference frequency must be > 0")
        self.reference_frequency_hz = float(reference_frequency_hz)
        self.configuration = configuration
        output_frequency = (
            reference_frequency_hz
            * configuration.multiplication_factor
            / configuration.division_factor
        )
        psd = PhaseNoisePSD.from_jitter_parameters(
            output_frequency, configuration.output_jitter_std_s, 0.0
        )
        self._synthesizer = PeriodJitterSynthesizer(output_frequency, psd, rng=rng)

    @property
    def f0_hz(self) -> float:
        """Synthesized output frequency ``f_ref * K_M / K_D`` [Hz]."""
        return self._synthesizer.f0_hz

    @property
    def pattern_length(self) -> int:
        """Number of reference periods after which the sampling pattern repeats."""
        return self.configuration.division_factor

    @property
    def samples_per_pattern(self) -> int:
        """Number of distinct relative phase positions per pattern (``K_M``)."""
        return self.configuration.multiplication_factor

    @property
    def phase_step_s(self) -> float:
        """Relative phase increment between consecutive samples [s].

        With coherent sampling the relative phase positions form a regular
        grid of pitch ``T_out / K_D`` inside one output period.
        """
        return 1.0 / (self.f0_hz * self.configuration.division_factor)

    def periods(self, n_periods: int) -> np.ndarray:
        """Next ``n_periods`` jittery output periods [s]."""
        return self._synthesizer.periods(n_periods)

    def edge_times(self, n_periods: int, start_time_s: float = 0.0) -> np.ndarray:
        """Rising-edge times of the next ``n_periods`` output periods [s]."""
        return self._synthesizer.edge_times(n_periods, start_time_s=start_time_s)
