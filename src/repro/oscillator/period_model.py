"""Clock abstractions shared by the oscillator, measurement and TRNG layers.

All downstream code (the differential counter of Fig. 6, the eRO-TRNG
digitizer of Fig. 4, the AIS31 online tests) only needs two things from a
clock: its nominal frequency and a stream of rising-edge times.  The
:class:`Clock` protocol captures that, and the two concrete implementations
cover the ideal (jitter-free) and the noisy case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from ..phase.psd import PhaseNoisePSD
from ..phase.synthesis import PeriodJitterSynthesizer


@runtime_checkable
class Clock(Protocol):
    """Minimal interface of a clock signal used by samplers and counters."""

    @property
    def f0_hz(self) -> float:
        """Nominal frequency [Hz]."""

    def periods(self, n_periods: int) -> np.ndarray:
        """Next ``n_periods`` period durations [s]."""

    def edge_times(self, n_periods: int, start_time_s: float = 0.0) -> np.ndarray:
        """``n_periods + 1`` rising-edge times starting at ``start_time_s`` [s]."""


@dataclass(frozen=True)
class IdealClock:
    """A perfectly periodic clock (zero jitter)."""

    frequency_hz: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0.0:
            raise ValueError(f"frequency must be > 0, got {self.frequency_hz!r}")

    @property
    def f0_hz(self) -> float:
        """Nominal frequency [Hz]."""
        return self.frequency_hz

    def periods(self, n_periods: int) -> np.ndarray:
        """Constant period sequence ``1/f0`` [s]."""
        if n_periods < 0:
            raise ValueError("n_periods must be >= 0")
        return np.full(n_periods, 1.0 / self.frequency_hz)

    def edge_times(self, n_periods: int, start_time_s: float = 0.0) -> np.ndarray:
        """Equally spaced edges [s]."""
        if n_periods < 0:
            raise ValueError("n_periods must be >= 0")
        return start_time_s + np.arange(n_periods + 1) / self.frequency_hz


class JitteryClock:
    """A clock whose periods are synthesized from a phase-noise PSD.

    This is a thin stateful wrapper around
    :class:`repro.phase.synthesis.PeriodJitterSynthesizer`; successive calls
    draw fresh, statistically independent stretches of the period process.
    """

    def __init__(
        self,
        f0_hz: float,
        psd: PhaseNoisePSD,
        rng: Optional[np.random.Generator] = None,
        flicker_method: str = "spectral",
    ) -> None:
        self._synthesizer = PeriodJitterSynthesizer(
            f0_hz, psd, rng=rng, flicker_method=flicker_method
        )

    @property
    def f0_hz(self) -> float:
        """Nominal frequency [Hz]."""
        return self._synthesizer.f0_hz

    @property
    def psd(self) -> PhaseNoisePSD:
        """Phase-noise PSD used by the synthesizer."""
        return self._synthesizer.psd

    def periods(self, n_periods: int) -> np.ndarray:
        """Next ``n_periods`` jittery periods [s]."""
        return self._synthesizer.periods(n_periods)

    def edge_times(self, n_periods: int, start_time_s: float = 0.0) -> np.ndarray:
        """Rising-edge times of the next ``n_periods`` periods [s]."""
        return self._synthesizer.edge_times(n_periods, start_time_s=start_time_s)

    def jitter(self, n_periods: int) -> np.ndarray:
        """Next ``n_periods`` period-jitter values ``J = T - 1/f0`` [s]."""
        return self._synthesizer.jitter(n_periods)
