"""Oscillator and clock models: ring oscillators, PLL clocks, clock abstractions."""

from .period_model import Clock, IdealClock, JitteryClock
from .pll import PLLClock, PLLConfiguration
from .ring import RingOscillator

__all__ = [
    "Clock",
    "IdealClock",
    "JitteryClock",
    "PLLClock",
    "PLLConfiguration",
    "RingOscillator",
]
