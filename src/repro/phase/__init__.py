"""Phase-noise layer: ISF conversion, the Eq. 10 PSD model and period synthesis.

This package is the middle layer of the multilevel approach (Fig. 3 of the
paper): it turns transistor-level noise currents into the excess-phase PSD
``S_phi(f) = b_fl/f^3 + b_th/f^2`` and synthesizes jittery period sequences
with exactly that spectrum.
"""

from .isf import (
    ImpulseSensitivityFunction,
    phase_psd_from_current_noise,
    phase_psd_from_inverter,
    ring_oscillation_frequency,
)
from .psd import PhaseNoisePSD
from .synthesis import (
    JitterDecomposition,
    PeriodJitterSynthesizer,
    synthesize_periods,
    synthesize_relative_periods,
)

__all__ = [
    "ImpulseSensitivityFunction",
    "JitterDecomposition",
    "PeriodJitterSynthesizer",
    "PhaseNoisePSD",
    "phase_psd_from_current_noise",
    "phase_psd_from_inverter",
    "ring_oscillation_frequency",
    "synthesize_periods",
    "synthesize_relative_periods",
]
