"""Hajimiri impulse-sensitivity-function (ISF) conversion of current noise to phase noise.

Section III-C-1 of the paper relies on Hajimiri's linear time-variant model:
the impact of the drain-current noise ``i_ds`` on the excess phase ``phi`` is
captured by a periodic impulse sensitivity function ``Gamma``.  A sinusoidal
noise current at frequency ``nu`` with amplitude ``I_i`` produces an excess
phase sinusoid at ``f = nu mod f0`` with amplitude

    I_i * d_m / (2 * C_L * V_DD * f),      m = floor(nu / f0),

where ``d_m`` is the m-th Fourier coefficient of the ISF and
``q_max = C_L * V_DD`` is the maximum charge swing of the oscillation node.

Integrating that transfer over the noise PSDs of Section III-A yields the
two-coefficient phase PSD of Eq. 10:

* white (thermal) current noise folds from every harmonic, weighted by the sum
  of all ``d_m^2``, and gives the ``b_th / f^2`` term;
* flicker (1/f) current noise is up-converted only around DC, weighted by
  ``d_0^2`` (the ISF average, non-zero for any real, asymmetric waveform), and
  gives the ``b_fl / f^3`` term.

This module performs exactly that bookkeeping so that ``b_th`` and ``b_fl``
can be *predicted* from transistor-level quantities — the heart of the
multilevel approach (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..noise.transistor import InverterCell
from .psd import PhaseNoisePSD


@dataclass(frozen=True)
class ImpulseSensitivityFunction:
    """Fourier description of a (2*pi-periodic) impulse sensitivity function.

    Attributes
    ----------
    dc_coefficient:
        ``d_0``, the average of the ISF over one period.  It controls the
        up-conversion of flicker noise; a perfectly symmetric waveform would
        have ``d_0 = 0`` and no ``1/f^3`` phase noise at all.
    harmonic_coefficients:
        ``(d_1, d_2, ...)``, the amplitudes of the higher ISF harmonics.
        They control how white noise around each carrier harmonic folds down.
    """

    dc_coefficient: float
    harmonic_coefficients: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.harmonic_coefficients) == 0:
            raise ValueError("at least one harmonic coefficient is required")

    @property
    def sum_of_squares(self) -> float:
        """``d_0^2 + sum_m d_m^2`` — the white-noise folding weight."""
        harmonics = np.asarray(self.harmonic_coefficients, dtype=float)
        return float(self.dc_coefficient**2 + np.sum(harmonics**2))

    @property
    def rms(self) -> float:
        """RMS value of the ISF waveform, ``sqrt(sum of squares / 2)``-like."""
        return float(np.sqrt(self.sum_of_squares / 2.0))

    @classmethod
    def ring_oscillator_default(
        cls, n_harmonics: int = 8, asymmetry: float = 0.15
    ) -> "ImpulseSensitivityFunction":
        """Representative ISF of a CMOS ring-oscillator stage.

        Hajimiri's measurements show the ring-stage ISF resembles a narrow
        bipolar pulse around each transition; its harmonic content decays
        roughly as ``1/m``.  ``asymmetry`` sets the relative size of the DC
        coefficient (rise/fall mismatch) which governs flicker up-conversion.
        """
        if n_harmonics < 1:
            raise ValueError("n_harmonics must be >= 1")
        if asymmetry < 0.0:
            raise ValueError("asymmetry must be >= 0")
        harmonics = [0.9 / m for m in range(1, n_harmonics + 1)]
        return cls(dc_coefficient=asymmetry, harmonic_coefficients=harmonics)


def phase_psd_from_current_noise(
    thermal_current_psd_a2_per_hz: float,
    flicker_current_coefficient_a2: float,
    q_max_coulomb: float,
    isf: Optional[ImpulseSensitivityFunction] = None,
    n_stages: int = 1,
) -> PhaseNoisePSD:
    """Convert drain-current noise PSDs into the phase PSD coefficients of Eq. 10.

    Parameters
    ----------
    thermal_current_psd_a2_per_hz:
        Per-stage white drain-current PSD ``S_ids,th`` [A^2/Hz].
    flicker_current_coefficient_a2:
        Per-stage flicker coefficient (``S_ids,fl(f) * f``) [A^2].
    q_max_coulomb:
        Maximum charge swing ``q_max = C_L * V_DD`` of one oscillation node [C].
    isf:
        Impulse sensitivity function of one stage; defaults to the
        representative ring-oscillator ISF.
    n_stages:
        Number of (identical, independent) stages whose noise adds up.

    Returns
    -------
    PhaseNoisePSD
        ``b_th = n * (sum_m d_m^2) * S_th / (4 q_max^2)`` and
        ``b_fl = n * d_0^2 * K_fl / (4 q_max^2)``, consistent with the paper's
        amplitude relation ``I_i d_m / (2 q_max f)``.
    """
    if thermal_current_psd_a2_per_hz < 0.0:
        raise ValueError("thermal current PSD must be >= 0")
    if flicker_current_coefficient_a2 < 0.0:
        raise ValueError("flicker coefficient must be >= 0")
    if q_max_coulomb <= 0.0:
        raise ValueError("q_max must be > 0")
    if n_stages < 1:
        raise ValueError("n_stages must be >= 1")
    isf = ImpulseSensitivityFunction.ring_oscillator_default() if isf is None else isf

    denominator = 4.0 * q_max_coulomb**2
    b_thermal = (
        n_stages * isf.sum_of_squares * thermal_current_psd_a2_per_hz / denominator
    )
    b_flicker = (
        n_stages
        * isf.dc_coefficient**2
        * flicker_current_coefficient_a2
        / denominator
    )
    return PhaseNoisePSD(b_thermal_hz=b_thermal, b_flicker_hz2=b_flicker)


def phase_psd_from_inverter(
    cell: InverterCell,
    n_stages: int,
    isf: Optional[ImpulseSensitivityFunction] = None,
) -> PhaseNoisePSD:
    """Predict ``b_th`` and ``b_fl`` of an ``n_stages`` ring built from ``cell``.

    This is the complete bottom-up path of the multilevel approach: device
    geometry and bias -> current-noise PSDs -> ISF conversion -> phase PSD.
    """
    if n_stages < 3:
        raise ValueError("a ring oscillator needs at least 3 stages")
    q_max = cell.load_capacitance_f * cell.supply_voltage_v
    return phase_psd_from_current_noise(
        thermal_current_psd_a2_per_hz=cell.total_thermal_psd(),
        flicker_current_coefficient_a2=cell.total_flicker_coefficient(),
        q_max_coulomb=q_max,
        isf=isf,
        n_stages=n_stages,
    )


def ring_oscillation_frequency(cell: InverterCell, n_stages: int) -> float:
    """Nominal oscillation frequency ``f0 = 1 / (2 n t_d)`` of the ring [Hz]."""
    if n_stages < 3:
        raise ValueError("a ring oscillator needs at least 3 stages")
    if n_stages % 2 == 0:
        raise ValueError("a simple inverter ring needs an odd number of stages")
    return 1.0 / (2.0 * n_stages * cell.propagation_delay())
