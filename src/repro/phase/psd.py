"""Phase-noise power spectral density model ``S_phi(f) = b_fl/f^3 + b_th/f^2``.

Equation 10 of the paper: following Hajimiri's LTV analysis, the white
(thermal) drain-current noise of the ring-oscillator transistors produces a
``1/f^2`` excess-phase PSD and the flicker (1/f) noise a ``1/f^3`` PSD.  The
two positive constants ``b_th`` [Hz] and ``b_fl`` [Hz^2] fully parameterise
the oscillator's phase noise in this model and are the quantities the whole
paper revolves around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..scalars import scalar_like


@dataclass(frozen=True)
class PhaseNoisePSD:
    """The two-coefficient phase-noise PSD of Eq. 10.

    Attributes
    ----------
    b_thermal_hz:
        Coefficient of the ``1/f^2`` (thermal / white-FM) term [Hz].
    b_flicker_hz2:
        Coefficient of the ``1/f^3`` (flicker-FM) term [Hz^2].
    """

    b_thermal_hz: float
    b_flicker_hz2: float

    def __post_init__(self) -> None:
        if self.b_thermal_hz < 0.0:
            raise ValueError(f"b_th must be >= 0, got {self.b_thermal_hz!r}")
        if self.b_flicker_hz2 < 0.0:
            raise ValueError(f"b_fl must be >= 0, got {self.b_flicker_hz2!r}")

    def __call__(self, frequency_hz: np.ndarray | float) -> np.ndarray | float:
        """Evaluate ``S_phi(f)`` [rad^2/Hz] at offset frequency ``f`` > 0."""
        frequency = np.asarray(frequency_hz, dtype=float)
        if np.any(frequency <= 0.0):
            raise ValueError("S_phi(f) is only defined for f > 0")
        result = (
            self.b_flicker_hz2 / frequency**3 + self.b_thermal_hz / frequency**2
        )
        return scalar_like(result, frequency_hz)

    def thermal_part(self, frequency_hz: np.ndarray | float) -> np.ndarray | float:
        """The ``b_th/f^2`` component alone [rad^2/Hz]."""
        frequency = np.asarray(frequency_hz, dtype=float)
        if np.any(frequency <= 0.0):
            raise ValueError("S_phi(f) is only defined for f > 0")
        return scalar_like(self.b_thermal_hz / frequency**2, frequency_hz)

    def flicker_part(self, frequency_hz: np.ndarray | float) -> np.ndarray | float:
        """The ``b_fl/f^3`` component alone [rad^2/Hz]."""
        frequency = np.asarray(frequency_hz, dtype=float)
        if np.any(frequency <= 0.0):
            raise ValueError("S_phi(f) is only defined for f > 0")
        return scalar_like(self.b_flicker_hz2 / frequency**3, frequency_hz)

    def corner_frequency_hz(self) -> float:
        """Flicker corner of the phase noise: frequency where both terms are equal.

        ``b_fl/f^3 = b_th/f^2`` at ``f = b_fl / b_th``.  Below the corner the
        flicker term dominates.  Returns ``0.0`` when there is no flicker term
        and ``inf`` when there is no thermal term.
        """
        if self.b_flicker_hz2 == 0.0:
            return 0.0
        if self.b_thermal_hz == 0.0:
            return float("inf")
        return self.b_flicker_hz2 / self.b_thermal_hz

    def phase_noise_dbc_per_hz(
        self, offset_hz: np.ndarray | float
    ) -> np.ndarray | float:
        """Single-sideband phase noise L(f) = S_phi(f)/2 expressed in dBc/Hz."""
        spectrum = np.asarray(self(offset_hz), dtype=float) / 2.0
        return scalar_like(10.0 * np.log10(spectrum), offset_hz)

    # -- Per-period jitter parameters used by the time-domain synthesiser ---

    def thermal_period_jitter_variance(self, f0_hz: float) -> float:
        """Variance of the *independent* per-period jitter implied by ``b_th`` [s^2].

        Section IV-A of the paper: when only thermal noise acts, jitter
        realizations are independent and ``sigma^2 = b_th / f0^3``.
        """
        _validate_f0(f0_hz)
        return self.b_thermal_hz / f0_hz**3

    def flicker_fractional_frequency_coefficient(self, f0_hz: float) -> float:
        """One-sided fractional-frequency flicker coefficient ``h_{-1}`` [1].

        The flicker-FM part of the phase PSD corresponds to a fractional
        frequency PSD ``S_y(f) = h_{-1}/f``.  The value ``h_{-1} = 2 b_fl/f0^2``
        is the one that makes the synthesized accumulated variance match the
        paper's closed form ``sigma^2_N,fl = 8 ln2 b_fl N^2 / f0^4``
        (using the Allan-variance identity ``sigma_y^2(tau) = 2 ln2 h_{-1}``
        for flicker FM and ``Var(s_N) = 2 (N/f0)^2 sigma_y^2``).
        """
        _validate_f0(f0_hz)
        return 2.0 * self.b_flicker_hz2 / f0_hz**2

    # -- Construction helpers ----------------------------------------------

    @classmethod
    def from_jitter_parameters(
        cls,
        f0_hz: float,
        thermal_jitter_std_s: float,
        flicker_h_minus1: float = 0.0,
    ) -> "PhaseNoisePSD":
        """Inverse of the two accessors above: build the PSD from jitter values."""
        _validate_f0(f0_hz)
        if thermal_jitter_std_s < 0.0:
            raise ValueError("thermal jitter std must be >= 0")
        if flicker_h_minus1 < 0.0:
            raise ValueError("h_{-1} must be >= 0")
        b_th = thermal_jitter_std_s**2 * f0_hz**3
        b_fl = flicker_h_minus1 * f0_hz**2 / 2.0
        return cls(b_thermal_hz=b_th, b_flicker_hz2=b_fl)

    def split(self) -> Tuple["PhaseNoisePSD", "PhaseNoisePSD"]:
        """Return (thermal-only, flicker-only) PSD objects."""
        return (
            PhaseNoisePSD(self.b_thermal_hz, 0.0),
            PhaseNoisePSD(0.0, self.b_flicker_hz2),
        )


def _validate_f0(f0_hz: float) -> None:
    if f0_hz <= 0.0:
        raise ValueError(f"oscillator frequency f0 must be > 0, got {f0_hz!r}")
