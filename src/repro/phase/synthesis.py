"""Time-domain synthesis of jittery oscillator periods from a phase-noise PSD.

This is the "virtual oscillator" used throughout the reproduction: given the
two-coefficient phase PSD of Eq. 10 (``b_th``, ``b_fl``) and the nominal
frequency ``f0``, it produces sample paths of the period process
``T = (T(t_i))_i`` and therefore of the period jitter ``J = T - 1/f0``
(Eq. 3).

Synthesis model
---------------
* The thermal (``b_th/f^2``) component is white frequency modulation: each
  period receives an independent Gaussian perturbation of variance
  ``sigma_th^2 = b_th / f0^3`` (Section IV-A of the paper).
* The flicker (``b_fl/f^3``) component is flicker frequency modulation: the
  fractional frequency deviation ``y_i`` of period ``i`` is a 1/f noise
  sequence with one-sided PSD ``S_y(f) = h_{-1}/f`` where
  ``h_{-1} = 2 b_fl / f0^2``; the corresponding period perturbation is
  ``-y_i / f0``.

With those two choices the accumulated two-sample variance ``sigma^2_N`` of
the synthesized periods matches the paper's closed form (Eq. 11)

    sigma^2_N = (2 b_th / f0^3) N + (8 ln2 b_fl / f0^4) N^2,

which the test-suite verifies statistically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..engine.batch import BatchedJitterSynthesizer
from .psd import PhaseNoisePSD


@dataclass(frozen=True)
class JitterDecomposition:
    """A synthesized period sequence together with its ground-truth components.

    Attributes
    ----------
    periods_s:
        The total period sequence ``T(t_i)`` [s].
    thermal_jitter_s:
        The white, mutually independent jitter contribution [s].
    flicker_jitter_s:
        The autocorrelated 1/f jitter contribution [s].
    nominal_period_s:
        ``1/f0`` [s].
    """

    periods_s: np.ndarray
    thermal_jitter_s: np.ndarray
    flicker_jitter_s: np.ndarray
    nominal_period_s: float

    @property
    def jitter_s(self) -> np.ndarray:
        """Total period jitter ``J = T - 1/f0`` (Eq. 3) [s]."""
        return self.periods_s - self.nominal_period_s

    @property
    def n_periods(self) -> int:
        """Number of synthesized periods."""
        return int(self.periods_s.size)


class PeriodJitterSynthesizer:
    """Generates period sequences of an oscillator with a given phase-noise PSD.

    This class is a thin ``B = 1`` view over the batched engine
    (:class:`repro.engine.batch.BatchedJitterSynthesizer`): all synthesis runs
    through the same code path as the multi-instance ensembles, consuming
    ``rng`` exactly as the original scalar implementation did, so seeded
    records are unchanged and batched row-equivalence holds structurally.

    Parameters
    ----------
    f0_hz:
        Nominal oscillation frequency [Hz].
    psd:
        Phase-noise PSD (``b_th``, ``b_fl``) of the oscillator.
    rng:
        Optional random generator; a fresh default generator is used if omitted.
    flicker_method:
        1/f generator passed to :func:`repro.noise.flicker.generate_pink_noise`.
    """

    def __init__(
        self,
        f0_hz: float,
        psd: PhaseNoisePSD,
        rng: Optional[np.random.Generator] = None,
        flicker_method: str = "spectral",
    ) -> None:
        if f0_hz <= 0.0:
            raise ValueError(f"f0 must be > 0, got {f0_hz!r}")
        self._f0_hz = float(f0_hz)
        self._psd = psd
        self._rng = np.random.default_rng() if rng is None else rng
        self._flicker_method = flicker_method
        self._rebuild()

    def _rebuild(self) -> None:
        self._batch = BatchedJitterSynthesizer(
            self._f0_hz,
            self._psd,
            batch_size=1,
            rngs=[self._rng],
            flicker_method=self._flicker_method,
        )

    # The pre-engine implementation read f0_hz/psd/rng/flicker_method live on
    # every call, so reassigning them (e.g. re-seeding rng to reproduce a
    # record) must keep working: each setter re-syncs the B=1 engine view.

    @property
    def f0_hz(self) -> float:
        """Nominal oscillation frequency [Hz]."""
        return self._f0_hz

    @f0_hz.setter
    def f0_hz(self, value: float) -> None:
        if value <= 0.0:
            raise ValueError(f"f0 must be > 0, got {value!r}")
        self._f0_hz = float(value)
        self._rebuild()

    @property
    def psd(self) -> PhaseNoisePSD:
        """Phase-noise PSD (``b_th``, ``b_fl``) of the oscillator."""
        return self._psd

    @psd.setter
    def psd(self, value: PhaseNoisePSD) -> None:
        self._psd = value
        self._rebuild()

    @property
    def rng(self) -> np.random.Generator:
        """The random generator consumed by the synthesis."""
        return self._rng

    @rng.setter
    def rng(self, value: np.random.Generator) -> None:
        self._rng = value
        self._batch.rngs[0] = value

    @property
    def flicker_method(self) -> str:
        """1/f generator method (``"spectral"``, ``"ar"`` or ``"hosking"``)."""
        return self._flicker_method

    @flicker_method.setter
    def flicker_method(self, value: str) -> None:
        self._flicker_method = value
        self._batch.flicker_method = value

    @property
    def nominal_period_s(self) -> float:
        """Nominal period ``T0 = 1/f0`` [s]."""
        return 1.0 / self.f0_hz

    @property
    def thermal_jitter_std_s(self) -> float:
        """Standard deviation of the independent per-period jitter [s]."""
        return float(np.sqrt(self.psd.thermal_period_jitter_variance(self.f0_hz)))

    def decompose(self, n_periods: int) -> JitterDecomposition:
        """Synthesize ``n_periods`` periods, keeping the components separate."""
        return self._batch.decompose(n_periods).row(0)

    def periods(self, n_periods: int) -> np.ndarray:
        """Synthesize ``n_periods`` period values ``T(t_i)`` [s]."""
        return self.decompose(n_periods).periods_s

    def jitter(self, n_periods: int) -> np.ndarray:
        """Synthesize ``n_periods`` jitter values ``J(t_i) = T(t_i) - 1/f0`` [s]."""
        return self.decompose(n_periods).jitter_s

    def edge_times(self, n_periods: int, start_time_s: float = 0.0) -> np.ndarray:
        """Absolute times of the rising edges ``t_1 .. t_{n}`` [s].

        Returns ``n_periods + 1`` edge times starting at ``start_time_s`` so
        that consecutive differences reproduce the period sequence.
        """
        periods = self.periods(n_periods)
        edges = np.empty(n_periods + 1)
        edges[0] = start_time_s
        np.cumsum(periods, out=edges[1:])
        edges[1:] += start_time_s
        return edges

    def excess_phase(self, n_periods: int) -> np.ndarray:
        """Excess phase ``phi(t_i)`` at each rising edge [rad].

        From Eq. 7 of the paper, ``T(t_i) = 1/f0 + (phi(t_i) - phi(t_{i+1}))
        / (2 pi f0)``, so the excess phase is (minus) the accumulated jitter
        scaled by ``2 pi f0``; the first edge is taken as phase reference 0.
        """
        jitter = self.jitter(n_periods)
        phase = np.empty(n_periods + 1)
        phase[0] = 0.0
        np.cumsum(-jitter * 2.0 * np.pi * self.f0_hz, out=phase[1:])
        return phase

def synthesize_periods(
    f0_hz: float,
    psd: PhaseNoisePSD,
    n_periods: int,
    rng: Optional[np.random.Generator] = None,
    flicker_method: str = "spectral",
) -> np.ndarray:
    """Convenience wrapper: synthesize a period sequence in one call [s]."""
    synthesizer = PeriodJitterSynthesizer(
        f0_hz, psd, rng=rng, flicker_method=flicker_method
    )
    return synthesizer.periods(n_periods)


def synthesize_relative_periods(
    f0_hz: float,
    psd_osc1: PhaseNoisePSD,
    psd_osc2: PhaseNoisePSD,
    n_periods: int,
    rng: Optional[np.random.Generator] = None,
    flicker_method: str = "spectral",
) -> np.ndarray:
    """Periods of oscillator 1 *relative to* oscillator 2 (both at ``f0``) [s].

    The eRO-TRNG of Fig. 4 exploits the relative jitter of two nominally
    identical rings.  Because the two oscillators are physically independent,
    the relative jitter is the difference of two independent realizations and
    its phase PSD is the sum of the two individual PSDs.
    """
    combined = PhaseNoisePSD(
        b_thermal_hz=psd_osc1.b_thermal_hz + psd_osc2.b_thermal_hz,
        b_flicker_hz2=psd_osc1.b_flicker_hz2 + psd_osc2.b_flicker_hz2,
    )
    return synthesize_periods(
        f0_hz, combined, n_periods, rng=rng, flicker_method=flicker_method
    )
