"""repro — reproduction of Haddad et al., "On the assumption of mutual
independence of jitter realizations in P-TRNG stochastic models" (DATE 2014).

The package is organised bottom-up, mirroring the paper's multilevel approach:

* :mod:`repro.noise` — transistor-level thermal and flicker noise models;
* :mod:`repro.phase` — Hajimiri ISF conversion, the ``b_fl/f^3 + b_th/f^2``
  phase PSD and time-domain period synthesis;
* :mod:`repro.oscillator` — ring oscillators, PLL clocks, clock abstractions;
* :mod:`repro.engine` — the batched/streaming simulation engine (``(B, n)``
  synthesis, bit pipeline, streaming estimators, batched campaigns) and the
  distributed campaign runner (:mod:`repro.engine.distributed`, with the
  ``python -m repro.campaigns`` CLI);
* :mod:`repro.stats` — Allan variance, PSD estimation, autocorrelation tests;
* :mod:`repro.measurement` — the Fig. 6 differential counter and the virtual
  Evariste/Cyclone III platform (the paper's hardware substitute);
* :mod:`repro.core` — the paper's contribution: the ``sigma^2_N`` statistic,
  the Eq. 9/11 theory, the ``b_th``/``b_fl`` fit, the ``r_N`` ratio, the
  independence diagnostics and the thermal-jitter extraction pipeline;
* :mod:`repro.trng` — eRO-TRNG construction, digitizer, post-processing,
  entropy estimators and the classical/refined stochastic models;
* :mod:`repro.ais31` — AIS31 Procedure A/B tests, online tests and the
  paper's proposed embedded thermal-noise test;
* :mod:`repro.attacks` — frequency-injection and EM-injection attack models;
* :mod:`repro.paper` — the paper's reference values (103 MHz, b_th = 276 Hz,
  sigma_th = 15.89 ps, K = 5354, N < 281).

Quickstart
----------
>>> import numpy as np
>>> from repro.measurement import VirtualEvaristePlatform
>>> from repro.core import extract_thermal_noise_from_curve
>>> platform = VirtualEvaristePlatform(rng=np.random.default_rng(0))
>>> curve = platform.sigma2_n_campaign(n_periods=200_000)
>>> report = extract_thermal_noise_from_curve(curve)
>>> 10.0 < report.thermal_jitter_std_ps < 25.0
True
"""

from . import (
    ais31,
    attacks,
    core,
    measurement,
    noise,
    oscillator,
    paper,
    phase,
    stats,
    trng,
)
from . import engine, obs, serving
from .engine import BatchedOscillatorEnsemble
from .obs import MetricsRegistry, global_registry, render_prometheus
from .serving import (
    BitsRequest,
    ServiceConfig,
    Sigma2NRequest,
    TRNGService,
)
from .core import (
    MultilevelModel,
    ThermalNoiseReport,
    accumulated_variance_curve,
    assess_independence,
    extract_thermal_noise,
    extract_thermal_noise_from_curve,
    fit_sigma2_n_curve,
    sigma2_n_closed_form,
)
from .measurement import PAPER_CYCLONE_III, VirtualEvaristePlatform
from .oscillator import RingOscillator
from .paper import PAPER_REFERENCE
from .phase import PhaseNoisePSD

__version__ = "1.0.0"

__all__ = [
    "BatchedOscillatorEnsemble",
    "BitsRequest",
    "MetricsRegistry",
    "MultilevelModel",
    "PAPER_CYCLONE_III",
    "PAPER_REFERENCE",
    "PhaseNoisePSD",
    "RingOscillator",
    "ServiceConfig",
    "Sigma2NRequest",
    "TRNGService",
    "ThermalNoiseReport",
    "VirtualEvaristePlatform",
    "__version__",
    "accumulated_variance_curve",
    "ais31",
    "assess_independence",
    "attacks",
    "core",
    "engine",
    "extract_thermal_noise",
    "extract_thermal_noise_from_curve",
    "fit_sigma2_n_curve",
    "global_registry",
    "measurement",
    "noise",
    "obs",
    "oscillator",
    "paper",
    "phase",
    "render_prometheus",
    "serving",
    "sigma2_n_closed_form",
    "stats",
    "trng",
]
