"""Trace spans with IDs that propagate across the fabric wire protocol.

A *span* is one timed operation (``with span("synthesize", rows=64): ...``);
spans nest through a :mod:`contextvars` variable, so a span opened inside
another becomes its child without explicit plumbing.  Every finished span
becomes a :class:`SpanRecord` in a :class:`SpanCollector` — a bounded,
thread-safe ring of plain records that serialize to JSON, travel over the
fabric protocol, and reassemble into a tree with :func:`span_tree`.

Cross-host propagation is deliberately minimal: the coordinator side calls
:func:`context_to_wire` on its current span and stamps the result into the
``shard``/``batch`` payload (a ``{"trace_id", "parent_span_id"}`` object);
the worker side rebuilds the parent with :func:`wire_to_parent`, opens its
own spans under it, and ships the finished records back in the result
envelope (``SpanRecord.to_dict``).  Ingesting those into the coordinator's
collector yields one span tree covering every host that touched the
campaign — each record carries a ``host`` tag (``hostname:pid``) so the
placement is visible in the tree.

Span recording honours the :func:`repro.obs.metrics.configure_metrics` kill
switch: with metrics disabled, ``span(...)`` is a no-op context manager
(no IDs generated, nothing recorded, nothing propagated).
"""

from __future__ import annotations

import contextvars
import os
import secrets
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from . import metrics as _metrics

#: ``hostname:pid`` tag stamped on every record (computed once per process).
HOST = f"{socket.gethostname()}:{os.getpid()}"

#: Default bound of a collector: old records roll off, a runaway workload
#: cannot grow memory without bound.
DEFAULT_COLLECTOR_CAPACITY = 4096


def new_id() -> str:
    """A fresh 64-bit hex trace/span ID."""
    return secrets.token_hex(8)


@dataclass(frozen=True)
class SpanContext:
    """The identity of one span: which trace, which span, which parent."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None


@dataclass
class SpanRecord:
    """One finished span (plain data; JSON-safe via :meth:`to_dict`)."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start_s: float
    duration_s: float
    host: str = HOST
    attributes: Dict = field(default_factory=dict)
    status: str = "ok"

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "host": self.host,
            "attributes": dict(self.attributes),
            "status": self.status,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "SpanRecord":
        return cls(
            name=str(payload["name"]),
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            start_s=float(payload.get("start_s", 0.0)),
            duration_s=float(payload.get("duration_s", 0.0)),
            host=str(payload.get("host", "?")),
            attributes=dict(payload.get("attributes") or {}),
            status=str(payload.get("status", "ok")),
        )


class SpanCollector:
    """Bounded, thread-safe store of finished spans."""

    def __init__(self, capacity: int = DEFAULT_COLLECTOR_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self._lock = threading.Lock()
        self._records: Deque[SpanRecord] = deque(maxlen=int(capacity))

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    def ingest(self, payloads: List[Dict]) -> int:
        """Add remote records (``SpanRecord.to_dict`` payloads); returns count."""
        added = 0
        for payload in payloads or []:
            self.record(SpanRecord.from_dict(payload))
            added += 1
        return added

    def records(self, trace_id: Optional[str] = None) -> List[SpanRecord]:
        with self._lock:
            records = list(self._records)
        if trace_id is not None:
            records = [r for r in records if r.trace_id == trace_id]
        return records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def tree(self, trace_id: Optional[str] = None) -> List[Dict]:
        """Nested span tree (see :func:`span_tree`)."""
        return span_tree(self.records(trace_id=trace_id))


def span_tree(records: List[SpanRecord]) -> List[Dict]:
    """Assemble flat records into a forest of nested dicts.

    Children are attached under their ``parent_id`` and sorted by start
    time; records whose parent is absent from the set (the campaign roots,
    or orphans whose parent rolled off a bounded collector) become roots.
    """
    nodes = {
        record.span_id: {**record.to_dict(), "children": []}
        for record in records
    }
    roots: List[Dict] = []
    for record in sorted(records, key=lambda r: r.start_s):
        node = nodes[record.span_id]
        parent = nodes.get(record.parent_id) if record.parent_id else None
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    return roots


_global_collector = SpanCollector()


def global_collector() -> SpanCollector:
    """The process-wide default collector."""
    return _global_collector


_current_span: "contextvars.ContextVar[Optional[SpanContext]]" = (
    contextvars.ContextVar("repro_obs_current_span", default=None)
)


def current_span() -> Optional[SpanContext]:
    """The active span's context in this thread/task (``None`` outside)."""
    return _current_span.get()


def context_to_wire(context: Optional[SpanContext]) -> Optional[Dict]:
    """The propagation payload stamped into fabric messages.

    ``None`` in (no active span, or metrics disabled) is ``None`` out, so
    call sites can stamp unconditionally.
    """
    if context is None:
        return None
    return {"trace_id": context.trace_id, "parent_span_id": context.span_id}


def wire_to_parent(payload: Optional[Dict]) -> Optional[SpanContext]:
    """Rebuild the remote parent from a :func:`context_to_wire` payload."""
    if not payload or not payload.get("trace_id"):
        return None
    return SpanContext(
        trace_id=str(payload["trace_id"]),
        span_id=str(payload.get("parent_span_id") or new_id()),
        parent_id=None,
    )


class span:
    """Context manager timing one operation into a collector.

    Parameters
    ----------
    name:
        Span name (``"serve.execute"``, ``"worker.shard"``, ...).
    collector:
        Where the finished record goes; defaults to the global collector.
    parent:
        Explicit parent :class:`SpanContext` (e.g. rebuilt from the wire);
        defaults to the ambient span from the context variable.
    attributes:
        JSON-safe tags (``rows=64, shard=3``) recorded on the span.
    """

    def __init__(
        self,
        name: str,
        collector: Optional[SpanCollector] = None,
        parent: Optional[SpanContext] = None,
        **attributes,
    ) -> None:
        self.name = name
        self.collector = collector
        self.attributes = attributes
        self._parent = parent
        self.context: Optional[SpanContext] = None
        self._token: Optional[contextvars.Token] = None
        self._start_clock = 0.0
        self._start_wall = 0.0

    def __enter__(self) -> "span":
        if not _metrics.metrics_enabled():
            return self
        parent = self._parent if self._parent is not None else _current_span.get()
        self.context = SpanContext(
            trace_id=parent.trace_id if parent else new_id(),
            span_id=new_id(),
            parent_id=parent.span_id if parent else None,
        )
        self._token = _current_span.set(self.context)
        self._start_wall = time.time()
        self._start_clock = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.context is None:
            return
        duration = time.perf_counter() - self._start_clock
        if self._token is not None:
            try:
                _current_span.reset(self._token)
            except ValueError:
                # A span opened inside a generator may be closed from a
                # different context (generator finalization); the record
                # still matters even when the ambient variable cannot be
                # restored from here.
                pass
            self._token = None
        collector = self.collector if self.collector is not None else _global_collector
        collector.record(
            SpanRecord(
                name=self.name,
                trace_id=self.context.trace_id,
                span_id=self.context.span_id,
                parent_id=self.context.parent_id,
                start_s=self._start_wall,
                duration_s=duration,
                attributes=dict(self.attributes),
                status="error" if exc_type is not None else "ok",
            )
        )


def format_tree(tree: List[Dict], indent: str = "") -> str:
    """Human-readable rendering of a :func:`span_tree` forest."""
    lines: List[str] = []
    for node in tree:
        attributes = node.get("attributes") or {}
        tags = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(attributes.items()))
            if attributes
            else ""
        )
        lines.append(
            f"{indent}{node['name']} [{node['host']}] "
            f"{node['duration_s'] * 1e3:.2f} ms{tags}"
        )
        child_text = format_tree(node.get("children") or [], indent + "  ")
        if child_text:
            lines.append(child_text)
    return "\n".join(lines)
