"""Exporters: JSON snapshots and Prometheus text exposition format.

Two render targets over the same registries:

* :func:`json_snapshot` — the ``metrics`` protocol kind's payload and the
  ``--metrics-json`` artifact: merged
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dicts, JSON-safe.
* :func:`render_prometheus` — `text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_ (version
  0.0.4): ``# HELP``/``# TYPE`` headers, ``{label="value"}`` sample lines,
  cumulative ``_bucket{le="..."}``/``_sum``/``_count`` for histograms.

Metric names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``); the registry naming convention
(``snake_case`` with unit suffixes) already complies, the sanitizer is a
backstop for ad-hoc names.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Optional

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, iter_metrics

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def sanitize_name(name: str) -> str:
    """Coerce a metric name into the Prometheus grammar."""
    if _NAME_OK.match(name):
        return name
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not re.match(r"[a-zA-Z_:]", cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_number(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _label_clause(labelnames, key) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{sanitize_name(name)}="{_escape_label(value)}"'
        for name, value in zip(labelnames, key)
    )
    return "{" + pairs + "}"


def render_prometheus(*registries: Optional[MetricsRegistry]) -> str:
    """Text exposition of every metric in the given registries.

    ``None`` registries are skipped; duplicate names keep the first
    registry's metric (matching :func:`repro.obs.metrics.merged_snapshot`'s
    merge direction for scrapes that combine the global and a scope
    registry).
    """
    lines: List[str] = []
    for metric in iter_metrics(registries):
        name = sanitize_name(metric.name)
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            items = metric.items()
            if not items and not metric.labelnames:
                items = [((), 0)]
            for key, value in items:
                clause = _label_clause(metric.labelnames, key)
                lines.append(f"{name}{clause} {_format_number(value)}")
        elif isinstance(metric, Histogram):
            for edge, cumulative in metric.cumulative():
                lines.append(
                    f'{name}_bucket{{le="{_format_number(float(edge))}"}} '
                    f"{cumulative}"
                )
            lines.append(f"{name}_sum {_format_number(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
    return "\n".join(lines) + "\n"


def json_snapshot(*registries: Optional[MetricsRegistry]) -> Dict:
    """Merged JSON-safe snapshot of the given registries."""
    merged: Dict = {}
    for registry in registries:
        if registry is not None:
            for name, entry in registry.snapshot().items():
                merged.setdefault(name, entry)
    return merged


def write_metrics_json(
    path: str,
    *registries: Optional[MetricsRegistry],
    extra: Optional[Dict] = None,
) -> None:
    """Dump ``{"metrics": ..., **extra}`` to ``path`` (the CLI artifact)."""
    payload: Dict = {"metrics": json_snapshot(*registries)}
    if extra:
        payload.update(extra)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def summary_line(*registries: Optional[MetricsRegistry]) -> str:
    """One compact operational line (the ``--stats-interval`` heartbeat).

    Picks out the high-signal metrics when present — requests, queue depth,
    coalesce ratio, execution latency quantiles, fabric shard counts — and
    degrades gracefully to ``name=value`` pairs for whatever else exists.
    """
    parts: List[str] = []
    metrics = {metric.name: metric for metric in iter_metrics(registries)}

    def _value(name: str) -> Optional[float]:
        metric = metrics.get(name)
        if isinstance(metric, Counter):
            return metric.total()
        if isinstance(metric, Gauge):
            return metric.value()
        return None

    submitted = _value("serve_requests_total")
    if submitted is not None:
        parts.append(f"req={int(submitted)}")
        completed = _value("serve_completed_total") or 0
        failed = _value("serve_failed_total") or 0
        parts.append(f"done={int(completed)}")
        if failed:
            parts.append(f"failed={int(failed)}")
    depth = _value("serve_queue_depth")
    if depth is not None:
        parts.append(f"queue={int(depth)}")
    batches = metrics.get("serve_batch_size")
    if isinstance(batches, Histogram) and batches.count:
        batched = batches.sum
        coalesced = _value("serve_coalesced_requests_total") or 0.0
        ratio = coalesced / batched if batched else 0.0
        parts.append(f"batches={batches.count}")
        parts.append(f"coalesce={ratio:.0%}")
    execute = metrics.get("serve_execute_seconds")
    if isinstance(execute, Histogram) and execute.count:
        parts.append(
            f"exec_p50={execute.quantile(0.5) * 1e3:.1f}ms"
            f" p99={execute.quantile(0.99) * 1e3:.1f}ms"
        )
    shards = _value("fabric_shards_completed_total")
    if shards:
        parts.append(f"shards={int(shards)}")
    blocks = metrics.get("engine_kernel_block_seconds")
    if isinstance(blocks, Histogram) and blocks.count:
        parts.append(f"kernel_blocks={blocks.count}")
    hits = _value("plan_cache_hits_total")
    misses = _value("plan_cache_misses_total")
    if hits or misses:
        parts.append(f"plan_cache={int(hits or 0)}h/{int(misses or 0)}m")
    if not parts:
        parts.append("no metrics recorded")
    return "[obs] " + " ".join(parts)
