"""Unified observability: metrics registry, trace spans, export surfaces.

Zero-dependency (stdlib-only) instrumentation shared by every layer of the
stack:

* :mod:`repro.obs.metrics` — thread-safe named counters, gauges and
  fixed-log-bucket histograms in a :class:`MetricsRegistry`; cheap enough to
  leave on in the hot path, with a global ``configure_metrics(enabled=False)``
  kill switch (the uninstrumented baseline of
  ``benchmarks/bench_observability.py``).
* :mod:`repro.obs.trace` — ``with span("synthesize", rows=B):`` trace spans
  whose IDs propagate across the fabric wire protocol, so a multi-host
  campaign ends with one merged span tree covering the coordinator and
  every worker.
* :mod:`repro.obs.export` — JSON snapshots and Prometheus text exposition;
  the payloads behind the ``metrics`` protocol kind
  (``repro.serve`` / ``python -m repro.worker``) and the CLIs'
  ``--metrics-json`` artifacts.

Registry scoping convention: engine-level metrics (synthesis kernel timing,
plan-cache counters) live in the process-wide :func:`global_registry`;
serving counters live in one registry per
:class:`~repro.serving.service.TRNGService`; fabric shard accounting in one
registry per coordinator run.  A scrape merges the global registry with the
scope's (:func:`merged_snapshot` / :func:`render_prometheus` accept several
registries), so "exactly one source of truth" holds per scope without
cross-test or cross-service bleed.
"""

from .export import (
    json_snapshot,
    render_prometheus,
    summary_line,
    write_metrics_json,
)
from .metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure_metrics,
    global_registry,
    log_buckets,
    merged_snapshot,
    metrics_enabled,
)
from .trace import (
    HOST,
    SpanCollector,
    SpanContext,
    SpanRecord,
    context_to_wire,
    current_span,
    format_tree,
    global_collector,
    new_id,
    span,
    span_tree,
    wire_to_parent,
)

__all__ = [
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "HOST",
    "Histogram",
    "MetricsRegistry",
    "SpanCollector",
    "SpanContext",
    "SpanRecord",
    "configure_metrics",
    "context_to_wire",
    "current_span",
    "format_tree",
    "global_collector",
    "global_registry",
    "json_snapshot",
    "log_buckets",
    "merged_snapshot",
    "metrics_enabled",
    "new_id",
    "render_prometheus",
    "span",
    "span_tree",
    "summary_line",
    "wire_to_parent",
    "write_metrics_json",
]
