"""Thread-safe metrics: named counters, gauges and log-bucket histograms.

A :class:`MetricsRegistry` holds the named metrics of one scope — the
process-wide :func:`global_registry` for engine-level instrumentation
(synthesis kernel timing, plan-cache counters), one registry per
:class:`~repro.serving.service.TRNGService` for serving counters, one per
:class:`~repro.engine.distributed.fabric.telemetry.FabricTelemetry` for
fabric shard accounting.  Registration (``registry.counter(...)``) takes the
registry lock once and returns a handle; every *mutation* on the handle
takes only that metric's own lock, so the hot path never serializes on the
registry.

The instruments:

* :class:`Counter` — monotonically increasing, optional labels
  (``counter.inc(1, kind="bits")``);
* :class:`Gauge` — a point-in-time value (``set``/``inc``/``dec``);
* :class:`Histogram` — fixed log-spaced buckets (Prometheus ``le``
  semantics: a value lands in every bucket whose upper edge is **>=** the
  value, edges inclusive), plus running sum/count and a linear-interpolated
  :meth:`~Histogram.quantile` for one-line summaries.

``configure_metrics(enabled=False)`` is the **global kill switch**: every
mutator becomes a no-op (one module-global boolean test on the fast path),
which is the uninstrumented baseline ``benchmarks/bench_observability.py``
compares against.  Metrics never touch any RNG stream, so enabled and
disabled runs are bit-for-bit identical — the switch trades observability
for the last few percent of hot-path time, nothing else.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Global kill switch (module-level so the fast-path test is one LOAD_GLOBAL).
_enabled = True


def configure_metrics(enabled: bool = True) -> None:
    """Enable or disable every metric mutation process-wide.

    Disabling makes ``inc``/``set``/``observe`` no-ops on **all**
    registries; reads (``value``/``snapshot``) keep returning whatever was
    recorded while enabled.  Span recording honours the same switch.
    """
    global _enabled
    _enabled = bool(enabled)


def metrics_enabled() -> bool:
    """Whether metric mutations are currently recorded."""
    return _enabled


def log_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` log-spaced bucket edges: ``start * factor**i``.

    The implicit ``+Inf`` overflow bucket is always appended by
    :class:`Histogram`; don't include it here.
    """
    if start <= 0.0:
        raise ValueError(f"start must be > 0, got {start!r}")
    if factor <= 1.0:
        raise ValueError(f"factor must be > 1, got {factor!r}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    return tuple(start * factor**i for i in range(count))


#: Default latency buckets: 1 µs .. ~67 s in factor-4 steps (13 edges).
LATENCY_BUCKETS = log_buckets(1e-6, 4.0, 13)

#: Default size buckets (batch sizes, row counts): 1 .. 4096 in powers of 2.
SIZE_BUCKETS = log_buckets(1.0, 2.0, 13)

_LabelKey = Tuple[str, ...]


class Metric:
    """Base of all instruments: name, help text, label names, own lock."""

    kind = "metric"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, str]) -> _LabelKey:
        if tuple(labels) != self.labelnames:
            # Labels must arrive complete and in declaration order-independent
            # form; anything else is a programming error worth failing fast on.
            if set(labels) != set(self.labelnames):
                raise ValueError(
                    f"metric {self.name!r} takes labels "
                    f"{list(self.labelnames)}, got {sorted(labels)}"
                )
        return tuple(str(labels[name]) for name in self.labelnames)


class Counter(Metric):
    """A monotonically increasing count (per label combination)."""

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: str) -> None:
        if not _enabled:
            return
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount!r}")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def items(self) -> List[Tuple[_LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())

    def snapshot(self):
        if not self.labelnames:
            return self.value()
        return {_label_string(self, key): value for key, value in self.items()}

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


class Gauge(Metric):
    """A point-in-time value (queue depth, fleet size, high-water marks)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        if not _enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = value

    def set_max(self, value: float, **labels: str) -> None:
        """Raise the gauge to ``value`` if it is below it (high-water mark)."""
        if not _enabled:
            return
        key = self._key(labels)
        with self._lock:
            if value > self._values.get(key, float("-inf")):
                self._values[key] = value

    def inc(self, amount: float = 1, **labels: str) -> None:
        if not _enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0)

    def items(self) -> List[Tuple[_LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())

    def snapshot(self):
        if not self.labelnames:
            return self.value()
        return {_label_string(self, key): value for key, value in self.items()}

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


class Histogram(Metric):
    """Fixed-bucket latency/size histogram (log-spaced by default).

    Bucket edges are upper bounds with Prometheus ``le`` semantics: a value
    is counted in the first bucket whose edge is **>=** the value (edges
    inclusive — an observation exactly on an edge lands in that edge's
    bucket), with an implicit ``+Inf`` overflow bucket at the end.  ``0``
    therefore lands in the first finite bucket; ``inf`` only in ``+Inf``.

    Unlabeled (labels on histograms are deliberately unsupported: the hot
    paths that observe into one are single-purpose).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, help, ())
        edges = tuple(float(edge) for edge in (buckets or LATENCY_BUCKETS))
        if not edges:
            raise ValueError("a histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"bucket edges must strictly increase: {edges}")
        if math.isinf(edges[-1]):
            raise ValueError("+Inf bucket is implicit; don't pass it")
        self.edges = edges
        # counts has one extra slot: the +Inf overflow bucket.
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not _enabled:
            return
        index = bisect_left(self.edges, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, ``+Inf`` bucket last."""
        with self._lock:
            return list(self._counts)

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ``+Inf`` last (Prometheus form)."""
        counts = self.bucket_counts()
        pairs: List[Tuple[float, int]] = []
        running = 0
        for edge, count in zip(
            list(self.edges) + [float("inf")], counts
        ):
            running += count
            pairs.append((edge, running))
        return pairs

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (linear interpolation within buckets).

        Good enough for one-line operational summaries (p50/p99); the exact
        distribution is in the buckets themselves.  Returns ``0.0`` when
        nothing was observed; observations in the ``+Inf`` bucket clamp to
        the largest finite edge.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = q * total
        running = 0
        for index, count in enumerate(counts):
            if running + count >= rank and count > 0:
                upper = (
                    self.edges[index]
                    if index < len(self.edges)
                    else self.edges[-1]
                )
                lower = self.edges[index - 1] if index >= 1 else 0.0
                if index >= len(self.edges):
                    return upper
                fraction = (rank - running) / count
                return lower + fraction * (upper - lower)
            running += count
        return self.edges[-1]

    def snapshot(self) -> Dict:
        with self._lock:
            counts = list(self._counts)
            total, running_sum = self._count, self._sum
        cumulative = []
        running = 0
        for edge, count in zip(list(self.edges) + [float("inf")], counts):
            running += count
            cumulative.append([edge if math.isfinite(edge) else "+Inf", running])
        return {
            "count": total,
            "sum": running_sum,
            "buckets": cumulative,
            "mean": running_sum / total if total else 0.0,
        }

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.edges) + 1)
            self._sum = 0.0
            self._count = 0


def _label_string(metric: Metric, key: _LabelKey) -> str:
    return ",".join(
        f"{name}={value}" for name, value in zip(metric.labelnames, key)
    )


class MetricsRegistry:
    """A named collection of metrics; registration is get-or-create.

    Registering the same name twice returns the existing instrument (so
    modules can ``registry.counter(...)`` independently and share it), but a
    kind or label mismatch on an existing name raises — silently returning
    a differently-shaped metric would corrupt someone's counts.
    """

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._metrics: "Dict[str, Metric]" = {}

    def _register(self, metric_cls, name: str, help: str, **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, metric_cls):
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, not a {metric_cls.kind}"
                    )
                expected = tuple(kwargs.get("labelnames", ()) or ())
                if (
                    metric_cls is not Histogram
                    and existing.labelnames != expected
                ):
                    raise ValueError(
                        f"metric {name!r} is already registered with labels "
                        f"{list(existing.labelnames)}, not {list(expected)}"
                    )
                return existing
            metric = metric_cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help, labelnames=labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help, labelnames=labelnames)

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> List[Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict:
        """Plain-JSON view: ``{name: {"type", "help", "value"}}``."""
        return {
            metric.name: {
                "type": metric.kind,
                "help": metric.help,
                "value": metric.snapshot(),
            }
            for metric in self.metrics()
        }

    def reset(self) -> None:
        """Zero every metric (keeps registrations; test isolation)."""
        for metric in self.metrics():
            metric.reset()


_global_registry = MetricsRegistry("global")


def global_registry() -> MetricsRegistry:
    """The process-wide registry (engine-level metrics live here)."""
    return _global_registry


def merged_snapshot(*registries: Optional[MetricsRegistry]) -> Dict:
    """One snapshot dict over several registries (later ones win on clashes).

    The standard scrape shape is ``merged_snapshot(global_registry(),
    service_registry)`` — engine-level and scope-level metrics in one JSON
    object.  ``None`` entries are skipped so call sites can pass optional
    registries straight through.
    """
    merged: Dict = {}
    for registry in registries:
        if registry is not None:
            merged.update(registry.snapshot())
    return merged


def iter_metrics(
    registries: Iterable[Optional[MetricsRegistry]],
) -> List[Metric]:
    """All metrics of several registries, deduplicated by name (first wins)."""
    seen: Dict[str, Metric] = {}
    for registry in registries:
        if registry is None:
            continue
        for metric in registry.metrics():
            seen.setdefault(metric.name, metric)
    return [seen[name] for name in sorted(seen)]
