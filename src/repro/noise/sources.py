"""Composite noise sources (Eq. 1 of the paper).

The paper combines the two dominant bulk-CMOS noise mechanisms by adding
their PSDs:

    S_ids(f) = S_ids,th(f) + S_ids,fl(f)

which is valid because the underlying physical processes are independent.
:class:`CompositeNoiseSource` implements that addition for an arbitrary set of
sources and provides joint time-domain sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol

import numpy as np

from ..scalars import scalar_like
from .flicker import FlickerNoiseSource
from .thermal import ThermalNoiseSource


class NoiseSource(Protocol):
    """Protocol shared by all drain-current noise sources."""

    def psd(self, frequency_hz: np.ndarray | float) -> np.ndarray | float:
        """One-sided PSD at ``frequency_hz`` [A^2/Hz]."""

    def sample(
        self,
        n_samples: int,
        sampling_rate_hz: float,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Time-domain current samples [A]."""


@dataclass
class CompositeNoiseSource:
    """Sum of mutually independent noise sources (paper Eq. 1)."""

    sources: List[NoiseSource] = field(default_factory=list)

    @classmethod
    def thermal_plus_flicker(
        cls, thermal: ThermalNoiseSource, flicker: FlickerNoiseSource
    ) -> "CompositeNoiseSource":
        """The paper's two-component model ``S_ids = S_th + S_fl``."""
        return cls(sources=[thermal, flicker])

    def add(self, source: NoiseSource) -> None:
        """Add another independent source to the composite."""
        self.sources.append(source)

    def psd(self, frequency_hz: np.ndarray | float) -> np.ndarray | float:
        """Total one-sided PSD: the sum of the component PSDs [A^2/Hz]."""
        if not self.sources:
            return np.zeros_like(np.asarray(frequency_hz, dtype=float))
        total = np.zeros_like(np.asarray(frequency_hz, dtype=float))
        for source in self.sources:
            total = total + np.asarray(source.psd(frequency_hz), dtype=float)
        return scalar_like(total, frequency_hz)

    def sample(
        self,
        n_samples: int,
        sampling_rate_hz: float,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Time-domain samples of the total current noise [A].

        The components are sampled independently and summed, which is exact
        because the sources are statistically independent by assumption.
        """
        rng = np.random.default_rng() if rng is None else rng
        total = np.zeros(n_samples)
        for source in self.sources:
            total = total + source.sample(n_samples, sampling_rate_hz, rng=rng)
        return total


def psd_crossover_frequency(
    thermal: ThermalNoiseSource, flicker: FlickerNoiseSource
) -> float:
    """Frequency where the flicker PSD drops below the thermal PSD [Hz].

    This is the flicker corner of the composite source; above it the drain
    current noise is essentially white, below it the autocorrelated 1/f
    component dominates.
    """
    if thermal.psd_a2_per_hz <= 0.0:
        raise ValueError("thermal PSD must be > 0 to define a crossover")
    return flicker.coefficient_a2 / thermal.psd_a2_per_hz
