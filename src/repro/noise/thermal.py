"""Thermal (white) noise of a MOS transistor channel.

Section III-A of the paper gives the thermal-noise drain-current PSD of a
transistor in saturation as

    S_ids,th(f) = (8/3) * k * T * gm

(one-sided, independent of frequency), where ``k`` is the Boltzmann constant,
``T`` the absolute temperature and ``gm`` the transconductance.  This module
implements that PSD, the equivalent resistor form, and a time-domain sample
generator used by the transistor-level oscillator simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..constants import BOLTZMANN_K, DEFAULT_TEMPERATURE_K

#: Long-channel excess-noise factor gamma = 2/3 used in the classical
#: (8/3)kT gm expression (the 8/3 already contains the factor 4 of the
#: one-sided Nyquist formula: 4 k T gamma gm).
LONG_CHANNEL_GAMMA = 2.0 / 3.0


def thermal_current_psd(
    gm_siemens: float,
    temperature_k: float = DEFAULT_TEMPERATURE_K,
    gamma: float = LONG_CHANNEL_GAMMA,
) -> float:
    """One-sided PSD of the thermal drain-current noise [A^2/Hz].

    Parameters
    ----------
    gm_siemens:
        Transistor transconductance ``gm`` [S].
    temperature_k:
        Absolute temperature [K].
    gamma:
        Excess-noise factor.  ``2/3`` reproduces the paper's ``(8/3)kT gm``;
        short-channel devices use larger values (typically 1 to 2).

    Returns
    -------
    float
        ``4 * gamma * k * T * gm`` in A^2/Hz.
    """
    if gm_siemens < 0.0:
        raise ValueError(f"gm must be >= 0, got {gm_siemens!r}")
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be > 0 K, got {temperature_k!r}")
    if gamma <= 0.0:
        raise ValueError(f"gamma must be > 0, got {gamma!r}")
    return 4.0 * gamma * BOLTZMANN_K * temperature_k * gm_siemens


def resistor_thermal_voltage_psd(
    resistance_ohm: float, temperature_k: float = DEFAULT_TEMPERATURE_K
) -> float:
    """One-sided Johnson-Nyquist voltage PSD ``4kTR`` of a resistor [V^2/Hz]."""
    if resistance_ohm < 0.0:
        raise ValueError(f"resistance must be >= 0, got {resistance_ohm!r}")
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be > 0 K, got {temperature_k!r}")
    return 4.0 * BOLTZMANN_K * temperature_k * resistance_ohm


@dataclass(frozen=True)
class ThermalNoiseSource:
    """White drain-current noise source of a single transistor.

    The source is fully described by its (frequency-independent) one-sided PSD
    ``psd_a2_per_hz``.  :meth:`sample` draws band-limited time-domain samples:
    for a sampling rate ``fs`` the variance of each sample is
    ``psd * fs / 2`` (the one-sided PSD integrated up to the Nyquist
    frequency).
    """

    psd_a2_per_hz: float

    def __post_init__(self) -> None:
        if self.psd_a2_per_hz < 0.0:
            raise ValueError(
                f"PSD must be >= 0, got {self.psd_a2_per_hz!r}"
            )

    @classmethod
    def from_transconductance(
        cls,
        gm_siemens: float,
        temperature_k: float = DEFAULT_TEMPERATURE_K,
        gamma: float = LONG_CHANNEL_GAMMA,
    ) -> "ThermalNoiseSource":
        """Build the source from device parameters (paper Eq. for S_ids,th)."""
        return cls(thermal_current_psd(gm_siemens, temperature_k, gamma))

    def psd(self, frequency_hz: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the (flat) PSD at ``frequency_hz`` [A^2/Hz]."""
        return np.full_like(np.asarray(frequency_hz, dtype=float), self.psd_a2_per_hz)

    def sample_variance(self, sampling_rate_hz: float) -> float:
        """Variance of band-limited samples taken at ``sampling_rate_hz``."""
        if sampling_rate_hz <= 0.0:
            raise ValueError(
                f"sampling rate must be > 0, got {sampling_rate_hz!r}"
            )
        return self.psd_a2_per_hz * sampling_rate_hz / 2.0

    def sample(
        self,
        n_samples: int,
        sampling_rate_hz: float,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Draw ``n_samples`` band-limited white-noise current samples [A]."""
        if n_samples < 0:
            raise ValueError(f"n_samples must be >= 0, got {n_samples!r}")
        rng = np.random.default_rng() if rng is None else rng
        sigma = np.sqrt(self.sample_variance(sampling_rate_hz))
        return rng.normal(0.0, sigma, size=n_samples)
