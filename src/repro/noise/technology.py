"""Representative CMOS technology nodes for the scaling study.

The paper's conclusion argues that, because the flicker PSD scales as the
inverse square of the channel length, technology shrinking will make flicker
noise dominate further over thermal noise, shrinking the range of ``N`` over
which jitter realizations may be treated as independent.  The experiment
``CONCL-SCALING`` sweeps the nodes defined here.

The parameter values are *representative hand-calculation* numbers (supply,
threshold, k', typical inverter sizing and load), not foundry data — foundry
PDKs are proprietary.  What matters for the reproduction is the trend with
``L`` (see DESIGN.md, substitutions table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .transistor import InverterCell, MOSTransistor


@dataclass(frozen=True)
class TechnologyNode:
    """Parameter set of one CMOS node, sufficient to build an inverter cell."""

    name: str
    feature_size_m: float
    supply_voltage_v: float
    threshold_voltage_v: float
    kp_nmos_a_per_v2: float
    kp_pmos_a_per_v2: float
    flicker_alpha: float
    gamma: float
    inverter_width_multiplier_n: float
    inverter_width_multiplier_p: float
    load_capacitance_f: float

    def nmos(self) -> MOSTransistor:
        """NMOS device of a minimum-length inverter in this node."""
        return MOSTransistor(
            width_m=self.inverter_width_multiplier_n * self.feature_size_m,
            length_m=self.feature_size_m,
            kp_a_per_v2=self.kp_nmos_a_per_v2,
            vth_v=self.threshold_voltage_v,
            flicker_alpha=self.flicker_alpha,
            gamma=self.gamma,
            is_nmos=True,
        )

    def pmos(self) -> MOSTransistor:
        """PMOS device of a minimum-length inverter in this node."""
        return MOSTransistor(
            width_m=self.inverter_width_multiplier_p * self.feature_size_m,
            length_m=self.feature_size_m,
            kp_a_per_v2=self.kp_pmos_a_per_v2,
            vth_v=self.threshold_voltage_v,
            flicker_alpha=self.flicker_alpha,
            gamma=self.gamma,
            is_nmos=False,
        )

    def inverter(self) -> InverterCell:
        """Minimum-size inverter cell in this node."""
        return InverterCell(
            nmos=self.nmos(),
            pmos=self.pmos(),
            load_capacitance_f=self.load_capacitance_f,
            supply_voltage_v=self.supply_voltage_v,
        )


def _node(
    name: str,
    feature_nm: float,
    vdd: float,
    vth: float,
    kp_n_ua: float,
    kp_p_ua: float,
    alpha: float,
    gamma: float,
    load_ff: float,
) -> TechnologyNode:
    return TechnologyNode(
        name=name,
        feature_size_m=feature_nm * 1e-9,
        supply_voltage_v=vdd,
        threshold_voltage_v=vth,
        kp_nmos_a_per_v2=kp_n_ua * 1e-6,
        kp_pmos_a_per_v2=kp_p_ua * 1e-6,
        flicker_alpha=alpha,
        gamma=gamma,
        inverter_width_multiplier_n=4.0,
        inverter_width_multiplier_p=8.0,
        load_capacitance_f=load_ff * 1e-15,
    )


#: Representative node library, from mature to deeply scaled.  ``gamma``
#: increases (short-channel thermal excess noise) and ``alpha`` increases
#: slightly (thinner oxides, more trapping) while the load shrinks.  The
#: ``alpha`` values are calibrated so minimum-size inverters exhibit 1/f
#: corner frequencies in the MHz-to-hundreds-of-MHz range, as reported for
#: bulk CMOS ring-oscillator devices.
TECHNOLOGY_LIBRARY: Dict[str, TechnologyNode] = {
    node.name: node
    for node in [
        _node("180nm", 180.0, 1.8, 0.45, 170.0, 60.0, 1.0e-8, 0.70, 12.0),
        _node("130nm", 130.0, 1.5, 0.40, 220.0, 80.0, 1.2e-8, 0.75, 8.0),
        _node("90nm", 90.0, 1.2, 0.35, 280.0, 100.0, 1.5e-8, 0.85, 5.0),
        _node("65nm", 65.0, 1.2, 0.35, 350.0, 130.0, 1.8e-8, 1.00, 3.5),
        _node("40nm", 40.0, 1.1, 0.32, 420.0, 160.0, 2.2e-8, 1.15, 2.2),
        _node("28nm", 28.0, 1.0, 0.30, 500.0, 200.0, 2.8e-8, 1.30, 1.5),
    ]
}


def get_node(name: str) -> TechnologyNode:
    """Look up a technology node by name (e.g. ``"65nm"``).

    Raises
    ------
    KeyError
        If the node is not in :data:`TECHNOLOGY_LIBRARY`.
    """
    try:
        return TECHNOLOGY_LIBRARY[name]
    except KeyError:
        known = ", ".join(sorted(TECHNOLOGY_LIBRARY))
        raise KeyError(f"unknown technology node {name!r}; known nodes: {known}")


def list_nodes() -> List[str]:
    """Names of the available nodes, ordered from largest to smallest feature."""
    return sorted(
        TECHNOLOGY_LIBRARY,
        key=lambda name: TECHNOLOGY_LIBRARY[name].feature_size_m,
        reverse=True,
    )
