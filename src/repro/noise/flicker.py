"""Flicker (1/f) noise of a MOS transistor and 1/f time-series generators.

Section III-A of the paper gives the flicker-noise drain-current PSD as

    S_ids,fl(f) = alpha * k * T * I_D^2 / (W * L^2 * f)

where ``alpha`` is a technology constant, ``I_D`` the nominal drain current,
``W`` the transistor width (the paper calls it the section) and ``L`` the
channel length.  Flicker noise is *autocorrelated*; it is the physical origin
of the ``b_fl/f^3`` term of the phase-noise PSD and therefore of the mutual
dependence of jitter realizations demonstrated by the paper.

Besides the PSD, this module provides three independent generators of 1/f
noise sample paths (spectral synthesis, a cascade of first-order AR sections,
and Hosking's fractional-differencing recursion).  Having several generators
lets the test-suite cross-validate them against each other and against the
target PSD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..constants import BOLTZMANN_K, DEFAULT_TEMPERATURE_K
from ..scalars import scalar_like

#: The 1/f generator methods :func:`generate_pink_noise` implements.  Callers
#: that accept a ``flicker_method`` parameter validate against this tuple
#: eagerly instead of failing deep inside the first synthesis call.
FLICKER_METHODS = ("spectral", "ar", "hosking")


def flicker_current_psd(
    frequency_hz: np.ndarray | float,
    drain_current_a: float,
    width_m: float,
    length_m: float,
    alpha: float,
    temperature_k: float = DEFAULT_TEMPERATURE_K,
) -> np.ndarray | float:
    """One-sided flicker drain-current PSD [A^2/Hz] (paper Sec. III-A).

    ``S(f) = alpha * k * T * I_D^2 / (W * L^2 * f)``.

    Parameters
    ----------
    frequency_hz:
        Fourier frequency (scalar or array) [Hz]; must be > 0.
    drain_current_a:
        Nominal drain-source current ``I_D`` [A].
    width_m, length_m:
        Transistor width ``W`` and channel length ``L`` [m].
    alpha:
        Dimensionless technology constant tied to the silicon crystallography.
    temperature_k:
        Absolute temperature [K].
    """
    if drain_current_a < 0.0:
        raise ValueError(f"drain current must be >= 0, got {drain_current_a!r}")
    if width_m <= 0.0 or length_m <= 0.0:
        raise ValueError(
            f"W and L must be > 0, got W={width_m!r}, L={length_m!r}"
        )
    if alpha < 0.0:
        raise ValueError(f"alpha must be >= 0, got {alpha!r}")
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be > 0 K, got {temperature_k!r}")
    frequency = np.asarray(frequency_hz, dtype=float)
    if np.any(frequency <= 0.0):
        raise ValueError("flicker PSD is only defined for f > 0")
    coefficient = (
        alpha
        * BOLTZMANN_K
        * temperature_k
        * drain_current_a**2
        / (width_m * length_m**2)
    )
    return scalar_like(coefficient / frequency, frequency_hz)


def flicker_corner_frequency(
    flicker_coefficient_a2: float, thermal_psd_a2_per_hz: float
) -> float:
    """Frequency at which the flicker PSD equals the thermal PSD [Hz].

    ``flicker_coefficient_a2`` is the numerator of the 1/f law (i.e. the PSD
    multiplied by ``f``).  The corner is ``coefficient / thermal_psd``; it is
    the standard figure of merit for how "flicker-dominated" a device is.
    """
    if flicker_coefficient_a2 < 0.0:
        raise ValueError("flicker coefficient must be >= 0")
    if thermal_psd_a2_per_hz <= 0.0:
        raise ValueError("thermal PSD must be > 0")
    return flicker_coefficient_a2 / thermal_psd_a2_per_hz


@dataclass(frozen=True)
class FlickerNoiseSource:
    """1/f drain-current noise source characterised by ``S(f) = coefficient/f``.

    ``coefficient_a2`` has units A^2 (it is an A^2/Hz PSD multiplied by a
    frequency).
    """

    coefficient_a2: float

    def __post_init__(self) -> None:
        if self.coefficient_a2 < 0.0:
            raise ValueError(
                f"coefficient must be >= 0, got {self.coefficient_a2!r}"
            )

    @classmethod
    def from_device(
        cls,
        drain_current_a: float,
        width_m: float,
        length_m: float,
        alpha: float,
        temperature_k: float = DEFAULT_TEMPERATURE_K,
    ) -> "FlickerNoiseSource":
        """Build the source from device parameters (paper Sec. III-A)."""
        coefficient = flicker_current_psd(
            1.0, drain_current_a, width_m, length_m, alpha, temperature_k
        )
        return cls(float(coefficient))

    def psd(self, frequency_hz: np.ndarray | float) -> np.ndarray | float:
        """Evaluate ``S(f) = coefficient / f`` [A^2/Hz]."""
        frequency = np.asarray(frequency_hz, dtype=float)
        if np.any(frequency <= 0.0):
            raise ValueError("flicker PSD is only defined for f > 0")
        return scalar_like(self.coefficient_a2 / frequency, frequency_hz)

    def sample(
        self,
        n_samples: int,
        sampling_rate_hz: float,
        rng: Optional[np.random.Generator] = None,
        method: str = "spectral",
    ) -> np.ndarray:
        """Draw a 1/f-noise current sample path [A] with this source's PSD.

        ``sampling_rate_hz`` must be > 0 but does **not** scale the
        amplitude: a discrete sequence with unit-coefficient 1/f PSD in
        cycles/sample, re-interpreted at rate ``fs``, has one-sided PSD
        ``(1/(f/fs))/fs = 1/f`` in real frequency — the ``fs`` factors
        cancel because a 1/f spectrum is scale free.  Only
        ``sqrt(coefficient_a2)`` scales the amplitude.
        """
        if sampling_rate_hz <= 0.0:
            raise ValueError(
                f"sampling rate must be > 0 Hz, got {sampling_rate_hz!r}"
            )
        pink = generate_pink_noise(n_samples, rng=rng, method=method)
        return np.sqrt(self.coefficient_a2) * pink


def generate_pink_noise(
    n_samples: int,
    rng: Optional[np.random.Generator] = None,
    method: str = "spectral",
) -> np.ndarray:
    """Generate a 1/f ("pink") noise sequence with one-sided PSD ``1/f``.

    The returned sequence, interpreted as samples taken at 1 Hz, has a
    one-sided PSD approximately equal to ``1/f`` over the resolvable band
    ``[1/n_samples, 0.5]`` (in cycles/sample).  Because a 1/f spectrum is
    scale-free, the same sequence is valid at any sampling rate.

    Parameters
    ----------
    n_samples:
        Number of samples to produce.
    rng:
        Optional :class:`numpy.random.Generator` for reproducibility.
    method:
        ``"spectral"`` (FFT shaping), ``"ar"`` (cascade of first-order
        low-pass sections, Corsini-Saletti style) or ``"hosking"``
        (fractional differencing with d = 0.5).
    """
    if n_samples < 0:
        raise ValueError(f"n_samples must be >= 0, got {n_samples!r}")
    if n_samples == 0:
        return np.empty(0)
    rng = np.random.default_rng() if rng is None else rng
    if method == "spectral":
        return _pink_spectral(n_samples, rng)
    if method == "ar":
        return _pink_ar_cascade(n_samples, rng)
    if method == "hosking":
        return _pink_hosking(n_samples, rng)
    raise ValueError(
        f"unknown pink-noise method {method!r}: choose one of "
        f"{', '.join(FLICKER_METHODS)}"
    )


def generate_pink_noise_batch(
    n_samples: int,
    rngs: Sequence[np.random.Generator],
    method: str = "spectral",
) -> np.ndarray:
    """Generate one 1/f sequence per generator, as a ``(len(rngs), n)`` array.

    Row ``i`` consumes ``rngs[i]`` exactly like
    ``generate_pink_noise(n_samples, rng=rngs[i], method=method)`` would, so
    the batched output reproduces the scalar generator row by row
    (bit-for-bit: the white-noise draws are identical and the batched FFT
    shaping equals the 1-D transform applied to each row).  The ``"spectral"``
    method shapes all rows with a single batched FFT; the recursive methods
    fall back to a per-row loop.
    """
    if n_samples < 0:
        raise ValueError(f"n_samples must be >= 0, got {n_samples!r}")
    batch = len(rngs)
    if batch == 0:
        return np.empty((0, n_samples))
    if n_samples == 0:
        return np.empty((batch, 0))
    if method != "spectral":
        return np.stack(
            [generate_pink_noise(n_samples, rng=rng, method=method) for rng in rngs]
        )
    n_fft = _spectral_fft_length(n_samples)
    white = np.empty((batch, n_fft))
    for index, rng in enumerate(rngs):
        white[index] = rng.normal(0.0, 1.0, size=n_fft)
    return _pink_spectral_shape(white, n_samples)


def _spectral_fft_length(n_samples: int) -> int:
    """FFT buffer length of the spectral method (oversized 2x to decorrelate
    the circular wrap-around)."""
    return int(2 ** np.ceil(np.log2(max(n_samples * 2, 16))))


def spectral_scaling_table(n_fft: int) -> np.ndarray:
    """The ``1/sqrt(f)`` rFFT amplitude-shaping table of the spectral method.

    Depends only on ``n_fft`` (hence only on ``n_samples``), which makes it a
    natural member of a precomputed :class:`~repro.engine.backends.plan.\
SynthesisPlan`; :func:`_pink_spectral_shape` recomputes it inline when no
    table is supplied, so the cached and uncached paths share this single
    definition.
    """
    freqs = np.fft.rfftfreq(n_fft, d=1.0)
    scaling = np.ones_like(freqs)
    nonzero = freqs > 0
    scaling[nonzero] = 1.0 / np.sqrt(freqs[nonzero])
    scaling[0] = 0.0  # remove the DC component: 1/f noise has no defined mean.
    return scaling


def _pink_spectral_shape(
    white: np.ndarray, n_samples: int, scaling: Optional[np.ndarray] = None
) -> np.ndarray:
    """Shape white noise (last axis = time, length ``n_fft``) to a 1/f PSD.

    ``scaling``, when given, must be ``spectral_scaling_table(n_fft)`` for the
    matching FFT length (precomputed by the synthesis-plan cache); ``None``
    computes it inline.  Both paths multiply the identical table, so the
    results are bit-for-bit equal.
    """
    n_fft = white.shape[-1]
    spectrum = np.fft.rfft(white, axis=-1)
    if scaling is None:
        scaling = spectral_scaling_table(n_fft)
    elif scaling.shape != (n_fft // 2 + 1,):
        raise ValueError(
            f"scaling table has shape {scaling.shape}, expected "
            f"{(n_fft // 2 + 1,)} for n_fft={n_fft}"
        )
    shaped = np.fft.irfft(spectrum * scaling, n=n_fft, axis=-1)
    # White noise of unit variance has one-sided PSD 2/fs = 2 (fs = 1), so the
    # shaped sequence has PSD 2/f; divide the amplitude by sqrt(2) to obtain
    # a one-sided PSD of exactly 1/f.
    return shaped[..., :n_samples] / np.sqrt(2.0)


def _pink_spectral(n_samples: int, rng: np.random.Generator) -> np.ndarray:
    """FFT spectral-synthesis pink noise (exact 1/f shaping of white noise)."""
    n_fft = _spectral_fft_length(n_samples)
    white = rng.normal(0.0, 1.0, size=n_fft)
    return _pink_spectral_shape(white, n_samples)


@dataclass(frozen=True)
class ArCascadeTables:
    """RNG-independent setup of the AR-cascade 1/f generator for one ``n``.

    ``corners`` are the log-spaced Lorentzian corner frequencies,
    ``poles = exp(-2*pi*corner)`` the matching one-pole coefficients,
    ``weights = sqrt(corner)`` the per-section output weights, and
    ``target_variance = ln(f_high/f_low)`` the empirical normalisation
    target.  All four depend only on ``n_samples`` (and the section density),
    never on the random stream, so they can be computed once per group key
    and shared across every row and session synthesising that length.
    """

    corners: np.ndarray
    poles: np.ndarray
    weights: np.ndarray
    target_variance: float


def ar_cascade_tables(
    n_samples: int, sections_per_decade: float = 1.5
) -> ArCascadeTables:
    """Build the corner/pole/weight tables used by :func:`_pink_ar_cascade`."""
    f_high = 0.5
    f_low = max(1.0 / (4.0 * n_samples), 1e-12)
    n_decades = np.log10(f_high / f_low)
    n_sections = max(int(np.ceil(n_decades * sections_per_decade)), 3)
    corners = np.logspace(np.log10(f_low), np.log10(f_high), n_sections)
    return ArCascadeTables(
        corners=corners,
        poles=np.exp(-2.0 * np.pi * corners),
        weights=np.sqrt(corners),
        target_variance=float(np.log(f_high / f_low)),
    )


def _pink_ar_cascade(
    n_samples: int,
    rng: np.random.Generator,
    sections_per_decade: float = 1.5,
    tables: Optional[ArCascadeTables] = None,
) -> np.ndarray:
    """Pink noise as a sum of first-order AR (Lorentzian) processes.

    A 1/f spectrum over ``[f_low, f_high]`` can be approximated by summing
    Lorentzians whose corner frequencies are log-uniformly spaced; this is the
    classical Corsini-Saletti / Voss construction and also mirrors the
    physical McWhorter picture of flicker noise as a superposition of
    carrier-trapping processes with a wide distribution of time constants.

    ``tables``, when given, must be ``ar_cascade_tables(n_samples,
    sections_per_decade)`` (precomputed by the synthesis-plan cache); ``None``
    computes the identical tables inline, so both paths are bit-for-bit equal.
    """
    if tables is None:
        tables = ar_cascade_tables(n_samples, sections_per_decade)
    output = np.zeros(n_samples)
    for section_index in range(len(tables.corners)):
        pole = tables.poles[section_index]
        drive = rng.normal(0.0, 1.0, size=n_samples)
        section = np.empty(n_samples)
        state = drive[0] / np.sqrt(max(1.0 - pole**2, 1e-12))
        for index in range(n_samples):
            state = pole * state + drive[index]
            section[index] = state
        # Each Lorentzian contributes PSD ~ 1/(1 + (f/corner)^2); weight so the
        # log-spaced sum approximates 1/f.
        output += section * tables.weights[section_index]
    # Normalise empirically to a unit-coefficient 1/f PSD using the variance
    # relation var = integral of PSD = ln(f_high/f_low) for PSD 1/f.
    current_variance = np.var(output)
    if current_variance > 0.0:
        output *= np.sqrt(tables.target_variance / current_variance)
    return output


def _pink_hosking(n_samples: int, rng: np.random.Generator) -> np.ndarray:
    """Pink noise via Hosking's ARFIMA(0, d, 0) recursion with d = 0.5.

    Fractionally differenced white noise with d = 0.5 has a spectral density
    proportional to ``|2 sin(pi f)|^(-2d) ~ 1/f`` at low frequency.  The
    recursion is O(n^2) and is therefore reserved for modest lengths (the
    test-suite) rather than bulk generation.
    """
    d = 0.4999  # exactly 0.5 is the non-stationary boundary
    white = rng.normal(0.0, 1.0, size=n_samples)
    output = np.empty(n_samples)
    phi = np.empty(n_samples)
    variance = 1.0
    output[0] = white[0]
    for t in range(1, n_samples):
        phi[t - 1] = d / t
        # Durbin update phi_{t,j} = phi_{t-1,j} - phi_{t,t} * phi_{t-1,t-1-j}
        # on a copy of the previous-order coefficients: updating phi in place
        # while reading phi[t-2-j] consumed already-overwritten values for
        # j > (t-2)/2, corrupting the predictor for every order above 2.
        previous = phi[: t - 1].copy()
        phi[: t - 1] = previous - phi[t - 1] * previous[::-1]
        variance *= 1.0 - phi[t - 1] ** 2
        mean = np.dot(phi[:t], output[t - 1 :: -1][:t])
        output[t] = mean + np.sqrt(max(variance, 0.0)) * white[t]
    # Empirical scaling to a roughly unit-coefficient 1/f PSD.
    scale = np.sqrt(np.log(max(n_samples, 2)) / 2.0)
    std = np.std(output)
    if std > 0.0:
        output = output / std * scale
    return output
