"""Transistor-level noise models (the bottom layer of the multilevel approach).

This package implements Section III-A of the paper: the thermal and flicker
drain-current noise of MOS transistors, composite sources, a first-order MOS
device model and a small technology-node library used by the scaling study.
"""

from .flicker import (
    FlickerNoiseSource,
    flicker_corner_frequency,
    flicker_current_psd,
    generate_pink_noise,
)
from .sources import CompositeNoiseSource, NoiseSource, psd_crossover_frequency
from .technology import TECHNOLOGY_LIBRARY, TechnologyNode, get_node, list_nodes
from .thermal import (
    LONG_CHANNEL_GAMMA,
    ThermalNoiseSource,
    resistor_thermal_voltage_psd,
    thermal_current_psd,
)
from .transistor import InverterCell, MOSTransistor

__all__ = [
    "CompositeNoiseSource",
    "FlickerNoiseSource",
    "InverterCell",
    "LONG_CHANNEL_GAMMA",
    "MOSTransistor",
    "NoiseSource",
    "TECHNOLOGY_LIBRARY",
    "TechnologyNode",
    "ThermalNoiseSource",
    "flicker_corner_frequency",
    "flicker_current_psd",
    "generate_pink_noise",
    "get_node",
    "list_nodes",
    "psd_crossover_frequency",
    "resistor_thermal_voltage_psd",
    "thermal_current_psd",
]
