"""MOS transistor model: bias point, transconductance and noise sources.

The multilevel approach of the paper (Fig. 3) starts from "stronger and well
validated low level assumptions based on semiconductor physics".  This module
provides the minimal device model that supports it: a square-law MOSFET with
a bias point, from which the thermal and flicker drain-current noise PSDs of
Section III-A are derived.

The model is intentionally a first-order, hand-calculation style model: the
paper only uses the *form* of the two noise PSDs (white and 1/f), and every
downstream quantity (``b_th``, ``b_fl``, the jitter, the entropy) is a smooth
function of their magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import DEFAULT_TEMPERATURE_K
from .flicker import FlickerNoiseSource, flicker_current_psd
from .thermal import LONG_CHANNEL_GAMMA, ThermalNoiseSource, thermal_current_psd


@dataclass(frozen=True)
class MOSTransistor:
    """A MOS transistor with its geometry, process parameters and bias.

    Parameters
    ----------
    width_m, length_m:
        Drawn gate width ``W`` and length ``L`` [m].
    kp_a_per_v2:
        Process transconductance parameter ``k' = mu * Cox`` [A/V^2].
    vth_v:
        Threshold voltage [V].
    flicker_alpha:
        Dimensionless flicker constant ``alpha`` of the paper's
        ``S_ids,fl = alpha k T I_D^2 / (W L^2 f)`` expression.
    gamma:
        Thermal-noise excess factor (2/3 long channel, >1 short channel).
    temperature_k:
        Junction temperature [K].
    is_nmos:
        Polarity flag; only used for labelling (the noise model is symmetric).
    """

    width_m: float
    length_m: float
    kp_a_per_v2: float
    vth_v: float
    flicker_alpha: float
    gamma: float = LONG_CHANNEL_GAMMA
    temperature_k: float = DEFAULT_TEMPERATURE_K
    is_nmos: bool = True

    def __post_init__(self) -> None:
        if self.width_m <= 0.0 or self.length_m <= 0.0:
            raise ValueError("transistor W and L must be > 0")
        if self.kp_a_per_v2 <= 0.0:
            raise ValueError("process transconductance k' must be > 0")
        if self.flicker_alpha < 0.0:
            raise ValueError("flicker alpha must be >= 0")
        if self.temperature_k <= 0.0:
            raise ValueError("temperature must be > 0 K")

    @property
    def aspect_ratio(self) -> float:
        """W/L aspect ratio."""
        return self.width_m / self.length_m

    def overdrive_for_current(self, drain_current_a: float) -> float:
        """Gate overdrive ``Vgs - Vth`` needed to conduct ``I_D`` (saturation)."""
        if drain_current_a < 0.0:
            raise ValueError("drain current must be >= 0")
        return float(
            np.sqrt(2.0 * drain_current_a / (self.kp_a_per_v2 * self.aspect_ratio))
        )

    def saturation_current(self, overdrive_v: float) -> float:
        """Square-law saturation current for a given overdrive voltage [A]."""
        if overdrive_v < 0.0:
            raise ValueError("overdrive must be >= 0")
        return 0.5 * self.kp_a_per_v2 * self.aspect_ratio * overdrive_v**2

    def transconductance(self, drain_current_a: float) -> float:
        """Small-signal ``gm = sqrt(2 k' (W/L) I_D)`` at the given bias [S]."""
        if drain_current_a < 0.0:
            raise ValueError("drain current must be >= 0")
        return float(
            np.sqrt(2.0 * self.kp_a_per_v2 * self.aspect_ratio * drain_current_a)
        )

    def thermal_noise_psd(self, drain_current_a: float) -> float:
        """Thermal drain-current noise PSD at the given bias [A^2/Hz]."""
        gm = self.transconductance(drain_current_a)
        return thermal_current_psd(gm, self.temperature_k, self.gamma)

    def flicker_noise_psd(
        self, frequency_hz: np.ndarray | float, drain_current_a: float
    ) -> np.ndarray | float:
        """Flicker drain-current noise PSD at the given bias [A^2/Hz]."""
        return flicker_current_psd(
            frequency_hz,
            drain_current_a,
            self.width_m,
            self.length_m,
            self.flicker_alpha,
            self.temperature_k,
        )

    def thermal_source(self, drain_current_a: float) -> ThermalNoiseSource:
        """Thermal noise source object at the given bias."""
        return ThermalNoiseSource(self.thermal_noise_psd(drain_current_a))

    def flicker_source(self, drain_current_a: float) -> FlickerNoiseSource:
        """Flicker noise source object at the given bias."""
        return FlickerNoiseSource.from_device(
            drain_current_a,
            self.width_m,
            self.length_m,
            self.flicker_alpha,
            self.temperature_k,
        )

    def flicker_corner_hz(self, drain_current_a: float) -> float:
        """Frequency where flicker and thermal PSDs cross [Hz]."""
        thermal = self.thermal_noise_psd(drain_current_a)
        flicker_at_1hz = float(self.flicker_noise_psd(1.0, drain_current_a))
        if thermal <= 0.0:
            raise ValueError("thermal PSD is zero; corner frequency undefined")
        return flicker_at_1hz / thermal

    def scaled(self, shrink_factor: float) -> "MOSTransistor":
        """Return a geometrically shrunk copy of this transistor.

        Both ``W`` and ``L`` are divided by ``shrink_factor`` (> 1 shrinks).
        The paper's conclusion observes that the flicker PSD grows as the
        inverse square of the channel length, so shrinking increases the
        flicker/thermal ratio; this helper supports the technology-scaling
        study (benchmark ``CONCL-SCALING``).
        """
        if shrink_factor <= 0.0:
            raise ValueError("shrink factor must be > 0")
        return MOSTransistor(
            width_m=self.width_m / shrink_factor,
            length_m=self.length_m / shrink_factor,
            kp_a_per_v2=self.kp_a_per_v2,
            vth_v=self.vth_v,
            flicker_alpha=self.flicker_alpha,
            gamma=self.gamma,
            temperature_k=self.temperature_k,
            is_nmos=self.is_nmos,
        )


@dataclass(frozen=True)
class InverterCell:
    """A CMOS inverter: an NMOS/PMOS pair plus its load capacitance.

    This is the unit cell of the ring oscillator (Fig. 4).  The Hajimiri ISF
    conversion (``repro.phase.isf``) consumes its switching current, load
    capacitance and the per-transition noise PSDs.
    """

    nmos: MOSTransistor
    pmos: MOSTransistor
    load_capacitance_f: float
    supply_voltage_v: float

    def __post_init__(self) -> None:
        if self.load_capacitance_f <= 0.0:
            raise ValueError("load capacitance must be > 0")
        if self.supply_voltage_v <= 0.0:
            raise ValueError("supply voltage must be > 0")

    def switching_current(self) -> float:
        """Average charging current during a transition [A].

        Uses the NMOS square-law saturation current at an overdrive of
        ``VDD/2 - Vth`` as a first-order estimate of the average current that
        (dis)charges the load during a logic transition.
        """
        overdrive = max(self.supply_voltage_v / 2.0 - self.nmos.vth_v, 0.05)
        return self.nmos.saturation_current(overdrive)

    def propagation_delay(self) -> float:
        """First-order propagation delay ``C_L * VDD / (2 * I_sw)`` [s]."""
        current = self.switching_current()
        if current <= 0.0:
            raise ValueError("switching current must be > 0")
        return self.load_capacitance_f * self.supply_voltage_v / (2.0 * current)

    def total_thermal_psd(self) -> float:
        """Combined thermal drain-current PSD of both devices [A^2/Hz]."""
        current = self.switching_current()
        return self.nmos.thermal_noise_psd(current) + self.pmos.thermal_noise_psd(
            current
        )

    def total_flicker_coefficient(self) -> float:
        """Combined flicker coefficient (PSD x f) of both devices [A^2]."""
        current = self.switching_current()
        nmos_coeff = float(self.nmos.flicker_noise_psd(1.0, current))
        pmos_coeff = float(self.pmos.flicker_noise_psd(1.0, current))
        return nmos_coeff + pmos_coeff
