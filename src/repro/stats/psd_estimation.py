"""Power-spectral-density estimation (periodogram / Welch) and fitting helpers.

The Wiener-Khintchine argument of the paper's appendix works with one-sided
PSDs.  This module provides one-sided PSD estimators for sampled noise
records and a small log-log power-law fitter used to check that synthesized
flicker noise really has a ``1/f`` spectrum and that the synthesized phase
noise follows ``b_fl/f^3 + b_th/f^2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import signal


@dataclass(frozen=True)
class PSDEstimate:
    """A one-sided PSD estimate: frequencies [Hz] and PSD values [x^2/Hz]."""

    frequencies_hz: np.ndarray
    psd: np.ndarray

    def __post_init__(self) -> None:
        if self.frequencies_hz.shape != self.psd.shape:
            raise ValueError("frequencies and PSD arrays must have the same shape")

    def restrict(self, f_min_hz: float, f_max_hz: float) -> "PSDEstimate":
        """Restrict the estimate to the band ``[f_min, f_max]``."""
        if f_min_hz >= f_max_hz:
            raise ValueError("f_min must be < f_max")
        mask = (self.frequencies_hz >= f_min_hz) & (self.frequencies_hz <= f_max_hz)
        return PSDEstimate(self.frequencies_hz[mask], self.psd[mask])

    def band_power(self) -> float:
        """Integral of the PSD over the estimated band (trapezoidal rule)."""
        if self.frequencies_hz.size < 2:
            return 0.0
        return float(np.trapezoid(self.psd, self.frequencies_hz))


def periodogram_psd(
    samples: np.ndarray, sampling_rate_hz: float, detrend: str = "constant"
) -> PSDEstimate:
    """One-sided periodogram PSD estimate of a sampled record."""
    _validate_psd_inputs(samples, sampling_rate_hz)
    frequencies, psd = signal.periodogram(
        np.asarray(samples, dtype=float), fs=sampling_rate_hz, detrend=detrend
    )
    return _strip_dc(frequencies, psd)


def welch_psd(
    samples: np.ndarray,
    sampling_rate_hz: float,
    segment_length: Optional[int] = None,
    detrend: str = "constant",
) -> PSDEstimate:
    """One-sided Welch PSD estimate (averaged modified periodograms)."""
    _validate_psd_inputs(samples, sampling_rate_hz)
    samples = np.asarray(samples, dtype=float)
    if segment_length is None:
        segment_length = max(min(samples.size // 8, 4096), 16)
    frequencies, psd = signal.welch(
        samples, fs=sampling_rate_hz, nperseg=min(segment_length, samples.size),
        detrend=detrend,
    )
    return _strip_dc(frequencies, psd)


def fit_power_law(
    estimate: PSDEstimate,
) -> Tuple[float, float]:
    """Fit ``PSD(f) = amplitude * f**exponent`` in log-log space.

    Returns
    -------
    (amplitude, exponent)
        ``amplitude`` is the PSD extrapolated to 1 Hz; ``exponent`` is the
        spectral slope (about ``-1`` for flicker noise, ``0`` for white noise).
    """
    positive = (estimate.frequencies_hz > 0) & (estimate.psd > 0)
    if np.count_nonzero(positive) < 2:
        raise ValueError("need at least two positive PSD points to fit a power law")
    log_f = np.log(estimate.frequencies_hz[positive])
    log_psd = np.log(estimate.psd[positive])
    slope, intercept = np.polyfit(log_f, log_psd, 1)
    return float(np.exp(intercept)), float(slope)


def _strip_dc(frequencies: np.ndarray, psd: np.ndarray) -> PSDEstimate:
    mask = frequencies > 0
    return PSDEstimate(frequencies_hz=frequencies[mask], psd=psd[mask])


def _validate_psd_inputs(samples: np.ndarray, sampling_rate_hz: float) -> None:
    if sampling_rate_hz <= 0.0:
        raise ValueError("sampling rate must be > 0")
    if np.asarray(samples).size < 2:
        raise ValueError("need at least two samples to estimate a PSD")
