"""Frequency-stability and general statistics used throughout the library."""

from .allan import (
    AllanVariancePoint,
    allan_deviation,
    allan_variance,
    allan_variance_curve,
    allan_variance_flicker_fm,
    allan_variance_white_fm,
    fractional_frequency_from_periods,
    octave_spaced_factors,
    sigma2_n_from_allan_variance,
)
from .autocorrelation import (
    LjungBoxResult,
    autocorrelation,
    first_lag_correlation_test,
    lag_scatter,
    ljung_box_test,
)
from .noise_identification import (
    ALLAN_SLOPES,
    NoiseRegimeReport,
    identify_noise_from_allan,
    identify_noise_regions,
    local_log_slope,
)
from .bootstrap import (
    ConfidenceInterval,
    block_bootstrap_indices,
    bootstrap_confidence_interval,
)
from .psd_estimation import PSDEstimate, fit_power_law, periodogram_psd, welch_psd

__all__ = [
    "ALLAN_SLOPES",
    "AllanVariancePoint",
    "ConfidenceInterval",
    "LjungBoxResult",
    "NoiseRegimeReport",
    "PSDEstimate",
    "allan_deviation",
    "allan_variance",
    "allan_variance_curve",
    "allan_variance_flicker_fm",
    "allan_variance_white_fm",
    "autocorrelation",
    "block_bootstrap_indices",
    "bootstrap_confidence_interval",
    "first_lag_correlation_test",
    "fit_power_law",
    "fractional_frequency_from_periods",
    "identify_noise_from_allan",
    "identify_noise_regions",
    "lag_scatter",
    "local_log_slope",
    "ljung_box_test",
    "octave_spaced_factors",
    "periodogram_psd",
    "sigma2_n_from_allan_variance",
    "welch_psd",
]
