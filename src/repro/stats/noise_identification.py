"""Identification of the dominant noise type from variance-vs-accumulation slopes.

The whole argument of the paper rests on reading the *slope* of an
accumulated-variance curve: thermal (white FM) noise makes ``sigma^2_N`` grow
like ``N``, flicker FM like ``N^2`` (and, equivalently, the Allan variance
falls like ``1/tau`` or stays flat).  This module turns that reading into a
reusable diagnostic:

* :func:`local_log_slope` — numerical slope of a curve in log-log coordinates;
* :func:`identify_noise_regions` — split an accumulation sweep into
  white-FM-dominated, transition and flicker-FM-dominated regions;
* :func:`identify_noise_from_allan` — the classical AVAR-slope table
  (white PM/FM, flicker FM, random-walk FM);
* :class:`NoiseRegimeReport` — a summary used by the fitting ablation
  benchmark and by designers to choose the region over which Eq. 6
  (independence) may be trusted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

#: Canonical sigma^2_N log-log slopes of the two noise types of the paper.
WHITE_FM_SIGMA2N_SLOPE = 1.0
FLICKER_FM_SIGMA2N_SLOPE = 2.0

#: Canonical Allan-variance log-log slopes (sigma_y^2 vs tau).
ALLAN_SLOPES = {
    "white PM": -2.0,
    "flicker PM": -2.0,
    "white FM": -1.0,
    "flicker FM": 0.0,
    "random walk FM": 1.0,
}


def local_log_slope(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Centred finite-difference slope of ``log(y)`` versus ``log(x)``.

    Returns one slope per input point (end points use one-sided differences).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape")
    if x.size < 2:
        raise ValueError("need at least two points")
    if np.any(x <= 0.0) or np.any(y <= 0.0):
        raise ValueError("log-log slopes require strictly positive data")
    if np.any(np.diff(x) <= 0.0):
        raise ValueError("x must be strictly increasing")
    log_x = np.log(x)
    log_y = np.log(y)
    return np.gradient(log_y, log_x)


@dataclass(frozen=True)
class NoiseRegimeReport:
    """Classification of an accumulated-variance sweep into noise regimes."""

    n_values: np.ndarray
    slopes: np.ndarray
    white_fm_mask: np.ndarray
    flicker_fm_mask: np.ndarray
    transition_mask: np.ndarray
    crossover_estimate: Optional[float]

    @property
    def white_fm_range(self) -> Optional[Tuple[int, int]]:
        """(min N, max N) of the white-FM-dominated region, or None."""
        return _mask_range(self.n_values, self.white_fm_mask)

    @property
    def flicker_fm_range(self) -> Optional[Tuple[int, int]]:
        """(min N, max N) of the flicker-FM-dominated region, or None."""
        return _mask_range(self.n_values, self.flicker_fm_mask)

    @property
    def dominant_regime(self) -> str:
        """Name of the regime covering the larger part of the sweep."""
        white = int(np.count_nonzero(self.white_fm_mask))
        flicker = int(np.count_nonzero(self.flicker_fm_mask))
        if white == 0 and flicker == 0:
            return "transition"
        return "white FM" if white >= flicker else "flicker FM"

    def summary(self) -> str:
        """Human-readable description of the detected regimes."""
        lines = [f"dominant regime: {self.dominant_regime}"]
        if self.white_fm_range is not None:
            low, high = self.white_fm_range
            lines.append(f"white FM (independent jitter) region: N in [{low}, {high}]")
        if self.flicker_fm_range is not None:
            low, high = self.flicker_fm_range
            lines.append(f"flicker FM (dependent jitter) region: N in [{low}, {high}]")
        if self.crossover_estimate is not None:
            lines.append(f"slope-based crossover estimate: N ~ {self.crossover_estimate:.0f}")
        return "\n".join(lines)


def identify_noise_regions(
    n_values: Sequence[int] | np.ndarray,
    sigma2_values: Sequence[float] | np.ndarray,
    slope_tolerance: float = 0.3,
) -> NoiseRegimeReport:
    """Classify each point of a ``sigma^2_N`` sweep by its local log-log slope.

    Points with slope within ``slope_tolerance`` of 1 are labelled white-FM
    (thermal, independent-jitter) dominated; within the tolerance of 2,
    flicker-FM dominated; anything else is transition.  The crossover estimate
    is the ``N`` where the local slope crosses 1.5.
    """
    if not 0.0 < slope_tolerance < 0.5:
        raise ValueError("slope tolerance must be in (0, 0.5)")
    n = np.asarray(n_values, dtype=float)
    sigma2 = np.asarray(sigma2_values, dtype=float)
    slopes = local_log_slope(n, sigma2)
    white_mask = np.abs(slopes - WHITE_FM_SIGMA2N_SLOPE) <= slope_tolerance
    flicker_mask = np.abs(slopes - FLICKER_FM_SIGMA2N_SLOPE) <= slope_tolerance
    transition_mask = ~(white_mask | flicker_mask)

    crossover = None
    mid_slope = 1.5
    crossing = np.nonzero(
        (slopes[:-1] < mid_slope) & (slopes[1:] >= mid_slope)
    )[0]
    if crossing.size > 0:
        index = int(crossing[0])
        # Log-linear interpolation of the crossing abscissa.
        s0, s1 = slopes[index], slopes[index + 1]
        fraction = (mid_slope - s0) / (s1 - s0) if s1 != s0 else 0.5
        log_n = np.log(n[index]) + fraction * (np.log(n[index + 1]) - np.log(n[index]))
        crossover = float(np.exp(log_n))

    return NoiseRegimeReport(
        n_values=n.astype(int),
        slopes=slopes,
        white_fm_mask=white_mask,
        flicker_fm_mask=flicker_mask,
        transition_mask=transition_mask,
        crossover_estimate=crossover,
    )


def identify_noise_from_allan(
    tau_s: Sequence[float] | np.ndarray,
    allan_variance_values: Sequence[float] | np.ndarray,
) -> str:
    """Classify the dominant noise type from the slope of an Allan-variance curve.

    Fits a single log-log slope over the provided points and returns the name
    of the closest canonical noise type (see :data:`ALLAN_SLOPES`).  White PM
    and flicker PM share the -2 slope and are reported as ``"white PM"``.
    """
    tau = np.asarray(tau_s, dtype=float)
    avar = np.asarray(allan_variance_values, dtype=float)
    if tau.size != avar.size:
        raise ValueError("tau and Allan-variance arrays must have the same length")
    if tau.size < 2:
        raise ValueError("need at least two points")
    if np.any(tau <= 0.0) or np.any(avar <= 0.0):
        raise ValueError("tau and Allan variance must be strictly positive")
    slope = float(np.polyfit(np.log(tau), np.log(avar), 1)[0])
    best_name = "white FM"
    best_distance = np.inf
    for name, canonical in ALLAN_SLOPES.items():
        distance = abs(slope - canonical)
        if distance < best_distance:
            best_name = name
            best_distance = distance
    if best_name == "flicker PM":
        best_name = "white PM"
    return best_name


def _mask_range(
    n_values: np.ndarray, mask: np.ndarray
) -> Optional[Tuple[int, int]]:
    if not np.any(mask):
        return None
    selected = n_values[mask]
    return int(selected.min()), int(selected.max())
