"""Allan (two-sample) variance and related frequency-stability statistics.

Section III-B of the paper recalls Allan's observation that, in presence of
1/f-type noises, the classical variance of the jitter does not converge and
that a two-sample variance must be used instead.  The paper's own statistic
``s_N`` (Eq. 4) is exactly a non-normalised two-sample difference, and the
appendix links its variance to the Allan variance through

    sigma^2_N = (2 / f0^2) * sigma_y^2(N / f0)          (approximation Eq. 5).

This module implements the standard (non-overlapping and overlapping) Allan
variance estimators on fractional-frequency or period data, plus the
theoretical values for white-FM and flicker-FM noise used by the tests and
by the ``ALLAN-LINK`` benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


def fractional_frequency_from_periods(
    periods_s: np.ndarray, nominal_period_s: Optional[float] = None
) -> np.ndarray:
    """Convert a period sequence to fractional frequency deviations ``y_i``.

    ``y_i = (f_i - f0)/f0 = T0/T_i - 1``; for the small jitters relevant here
    this is numerically indistinguishable from ``-(T_i - T0)/T0``.
    """
    periods = np.asarray(periods_s, dtype=float)
    if periods.size == 0:
        return np.empty(0)
    if np.any(periods <= 0.0):
        raise ValueError("periods must be strictly positive")
    nominal = float(np.mean(periods)) if nominal_period_s is None else nominal_period_s
    if nominal <= 0.0:
        raise ValueError("nominal period must be > 0")
    return nominal / periods - 1.0


def allan_variance(
    fractional_frequency: np.ndarray,
    averaging_factor: int = 1,
    overlapping: bool = True,
) -> float:
    """Allan variance ``sigma_y^2(tau)`` at ``tau = m * tau0`` from ``y`` samples.

    Parameters
    ----------
    fractional_frequency:
        Equally spaced fractional-frequency samples ``y_i`` (one per period
        for oscillator data, so ``tau0 = 1/f0``).
    averaging_factor:
        ``m``, the number of samples averaged per cluster.
    overlapping:
        Use the overlapping estimator (lower estimator variance) when True.

    Returns
    -------
    float
        The estimated Allan variance (dimensionless, since ``y`` is).
    """
    y = np.asarray(fractional_frequency, dtype=float)
    m = int(averaging_factor)
    if m < 1:
        raise ValueError(f"averaging factor must be >= 1, got {averaging_factor!r}")
    if y.size < 2 * m + (0 if overlapping else 0):
        raise ValueError(
            f"need at least {2 * m} samples for averaging factor {m}, got {y.size}"
        )
    if overlapping:
        # Cluster means via cumulative sums, then all overlapping differences.
        cumulative = np.concatenate(([0.0], np.cumsum(y)))
        cluster_means = (cumulative[m:] - cumulative[:-m]) / m
        differences = cluster_means[m:] - cluster_means[:-m]
    else:
        n_clusters = y.size // m
        clusters = y[: n_clusters * m].reshape(n_clusters, m).mean(axis=1)
        differences = np.diff(clusters)
    if differences.size == 0:
        raise ValueError("not enough data to form a single two-sample difference")
    return float(0.5 * np.mean(differences**2))


def allan_deviation(
    fractional_frequency: np.ndarray,
    averaging_factor: int = 1,
    overlapping: bool = True,
) -> float:
    """Allan deviation ``sigma_y(tau)`` — the square root of the Allan variance."""
    return float(
        np.sqrt(allan_variance(fractional_frequency, averaging_factor, overlapping))
    )


@dataclass(frozen=True)
class AllanVariancePoint:
    """One point of an Allan-variance curve."""

    averaging_factor: int
    tau_s: float
    allan_variance: float


def allan_variance_curve(
    fractional_frequency: np.ndarray,
    tau0_s: float,
    averaging_factors: Optional[Sequence[int]] = None,
    overlapping: bool = True,
) -> List[AllanVariancePoint]:
    """Allan variance over a sweep of averaging factors.

    When ``averaging_factors`` is omitted an octave-spaced sweep covering the
    usable range (up to a quarter of the record length) is used.
    """
    y = np.asarray(fractional_frequency, dtype=float)
    if tau0_s <= 0.0:
        raise ValueError("tau0 must be > 0")
    if averaging_factors is None:
        max_m = max(y.size // 4, 1)
        averaging_factors = octave_spaced_factors(max_m)
    points = []
    for m in averaging_factors:
        if 2 * m > y.size:
            continue
        points.append(
            AllanVariancePoint(
                averaging_factor=int(m),
                tau_s=m * tau0_s,
                allan_variance=allan_variance(y, m, overlapping=overlapping),
            )
        )
    return points


def octave_spaced_factors(max_factor: int) -> List[int]:
    """Powers of two from 1 up to ``max_factor`` inclusive."""
    if max_factor < 1:
        raise ValueError("max_factor must be >= 1")
    factors = []
    m = 1
    while m <= max_factor:
        factors.append(m)
        m *= 2
    return factors


# -- theoretical values -------------------------------------------------------


def allan_variance_white_fm(h0: float, tau_s: float) -> float:
    """Theoretical Allan variance of white frequency noise ``S_y(f) = h0``.

    ``sigma_y^2(tau) = h0 / (2 tau)``.
    """
    if h0 < 0.0:
        raise ValueError("h0 must be >= 0")
    if tau_s <= 0.0:
        raise ValueError("tau must be > 0")
    return h0 / (2.0 * tau_s)


def allan_variance_flicker_fm(h_minus1: float) -> float:
    """Theoretical Allan variance of flicker frequency noise ``S_y(f) = h_{-1}/f``.

    ``sigma_y^2(tau) = 2 ln(2) h_{-1}`` — independent of ``tau``, which is the
    spectral signature exploited by the paper: the flicker contribution to the
    accumulated jitter variance grows as ``N^2`` instead of ``N``.
    """
    if h_minus1 < 0.0:
        raise ValueError("h_{-1} must be >= 0")
    return 2.0 * np.log(2.0) * h_minus1


def sigma2_n_from_allan_variance(allan_variance_value: float, f0_hz: float) -> float:
    """The paper's approximation (Sec. III-B): ``sigma^2_N = 2 sigma_y^2 / f0^2``.

    Note: the exact relation used elsewhere in the library is
    ``Var(s_N) = 2 (N/f0)^2 sigma_y^2(N/f0)``; Eq. 5's approximation absorbs
    the ``N^2`` factor into the definition of the jitter accumulation.  This
    helper implements the formula exactly as printed so the ``ALLAN-LINK``
    benchmark can discuss the difference.
    """
    if f0_hz <= 0.0:
        raise ValueError("f0 must be > 0")
    if allan_variance_value < 0.0:
        raise ValueError("Allan variance must be >= 0")
    return 2.0 * allan_variance_value / f0_hz**2
