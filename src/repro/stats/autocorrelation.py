"""Autocorrelation estimation and portmanteau (Ljung-Box) independence tests.

The paper's central claim is about *dependence between jitter realizations*.
Besides the accumulated-variance argument (Bienayme / ``sigma^2_N``), the most
direct statistical check is the sample autocorrelation function of the jitter
series and a portmanteau test of joint nullity of its first lags.  These tools
are used by ``repro.core.independence`` and by the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np
from scipy import stats


def autocorrelation(series: np.ndarray, max_lag: int) -> np.ndarray:
    """Biased sample autocorrelation ``rho(0..max_lag)`` of a 1-D series.

    The biased estimator (normalisation by ``n`` rather than ``n - lag``) is
    the standard choice for portmanteau tests; ``rho(0)`` is always 1.
    """
    x = np.asarray(series, dtype=float)
    if x.ndim != 1:
        raise ValueError("series must be one-dimensional")
    n = x.size
    if n < 2:
        raise ValueError("need at least two samples")
    if max_lag < 0:
        raise ValueError("max_lag must be >= 0")
    if max_lag >= n:
        raise ValueError(f"max_lag ({max_lag}) must be < series length ({n})")
    centred = x - x.mean()
    variance = np.dot(centred, centred) / n
    if variance == 0.0:
        raise ValueError("series has zero variance; autocorrelation undefined")
    result = np.empty(max_lag + 1)
    result[0] = 1.0
    for lag in range(1, max_lag + 1):
        result[lag] = np.dot(centred[:-lag], centred[lag:]) / n / variance
    return result


@dataclass(frozen=True)
class LjungBoxResult:
    """Outcome of a Ljung-Box portmanteau test."""

    statistic: float
    p_value: float
    lags: int

    def independent_at(self, significance: float = 0.01) -> bool:
        """True when the null hypothesis "no autocorrelation" is *not* rejected."""
        if not 0.0 < significance < 1.0:
            raise ValueError("significance must be in (0, 1)")
        return self.p_value >= significance


def ljung_box_test(series: np.ndarray, lags: int = 20) -> LjungBoxResult:
    """Ljung-Box test of the null hypothesis "the first ``lags`` autocorrelations are 0".

    A small p-value is evidence that the series is serially dependent — which
    is exactly what the paper predicts for ring-oscillator jitter once flicker
    noise is non-negligible.
    """
    x = np.asarray(series, dtype=float)
    n = x.size
    if lags < 1:
        raise ValueError("lags must be >= 1")
    if n <= lags + 1:
        raise ValueError("series too short for the requested number of lags")
    rho = autocorrelation(x, lags)[1:]
    denominators = n - np.arange(1, lags + 1)
    statistic = float(n * (n + 2) * np.sum(rho**2 / denominators))
    p_value = float(stats.chi2.sf(statistic, df=lags))
    return LjungBoxResult(statistic=statistic, p_value=p_value, lags=lags)


def lag_scatter(series: np.ndarray, lag: int = 1) -> np.ndarray:
    """Pairs ``(x_i, x_{i+lag})`` as an ``(n-lag, 2)`` array, for lag plots."""
    x = np.asarray(series, dtype=float)
    if lag < 1:
        raise ValueError("lag must be >= 1")
    if x.size <= lag:
        raise ValueError("series too short for the requested lag")
    return np.column_stack([x[:-lag], x[lag:]])


def first_lag_correlation_test(
    series: np.ndarray, significance: float = 0.01
) -> LjungBoxResult:
    """Test of the single lag-1 autocorrelation (normal approximation).

    Returns a :class:`LjungBoxResult` for interface uniformity; the statistic
    is ``sqrt(n) * rho(1)`` which is asymptotically standard normal under
    independence.
    """
    x = np.asarray(series, dtype=float)
    if x.size < 3:
        raise ValueError("need at least three samples")
    if not 0.0 < significance < 1.0:
        raise ValueError("significance must be in (0, 1)")
    rho1 = autocorrelation(x, 1)[1]
    statistic = float(np.sqrt(x.size) * rho1)
    p_value = float(2.0 * stats.norm.sf(abs(statistic)))
    return LjungBoxResult(statistic=statistic, p_value=p_value, lags=1)
