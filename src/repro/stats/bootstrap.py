"""Bootstrap confidence intervals for fitted quantities.

The paper reports point estimates (``b_th = 276.04 Hz``, ``sigma = 15.89 ps``)
without uncertainties.  For a faithful, usable reproduction the fitting
pipeline (``repro.core.fitting`` / ``repro.core.thermal_extraction``) reports
bootstrap confidence intervals so a user can tell whether an observed
difference between two oscillators, or a drift under attack, is significant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided percentile confidence interval around a point estimate."""

    point_estimate: float
    lower: float
    upper: float
    confidence_level: float

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence_level < 1.0:
            raise ValueError("confidence level must be in (0, 1)")
        if self.lower > self.upper:
            raise ValueError("lower bound must not exceed upper bound")

    @property
    def width(self) -> float:
        """Width of the interval."""
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval (inclusive)."""
        return self.lower <= value <= self.upper


def bootstrap_confidence_interval(
    samples: np.ndarray,
    statistic: Callable[[np.ndarray], float],
    n_resamples: int = 1000,
    confidence_level: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> ConfidenceInterval:
    """Percentile bootstrap CI of ``statistic`` evaluated on i.i.d. ``samples``."""
    data = np.asarray(samples, dtype=float)
    if data.size < 2:
        raise ValueError("need at least two samples to bootstrap")
    if n_resamples < 10:
        raise ValueError("n_resamples must be >= 10")
    if not 0.0 < confidence_level < 1.0:
        raise ValueError("confidence level must be in (0, 1)")
    rng = np.random.default_rng() if rng is None else rng
    point = float(statistic(data))
    estimates = np.empty(n_resamples)
    for index in range(n_resamples):
        resample = rng.choice(data, size=data.size, replace=True)
        estimates[index] = statistic(resample)
    alpha = (1.0 - confidence_level) / 2.0
    lower, upper = np.quantile(estimates, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        point_estimate=point,
        lower=float(min(lower, point)),
        upper=float(max(upper, point)),
        confidence_level=confidence_level,
    )


def block_bootstrap_indices(
    n_samples: int,
    block_length: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Index array for a moving-block bootstrap resample of a *dependent* series.

    Ordinary bootstrap assumes i.i.d. data; jitter series with flicker noise
    are serially dependent, so resampling must preserve short-range structure.
    The moving-block bootstrap concatenates randomly chosen contiguous blocks.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    if block_length < 1:
        raise ValueError("block length must be >= 1")
    block_length = min(block_length, n_samples)
    rng = np.random.default_rng() if rng is None else rng
    n_blocks = int(np.ceil(n_samples / block_length))
    starts = rng.integers(0, n_samples - block_length + 1, size=n_blocks)
    indices = np.concatenate(
        [np.arange(start, start + block_length) for start in starts]
    )
    return indices[:n_samples]
