"""Thermal-noise measurement pipeline (Section IV of the paper).

The multilevel model makes the thermal contribution to the jitter *measurable
with simple digital hardware*: fit the linear + quadratic law of Eq. 11 to the
accumulated variance curve, keep the linear part, and read off

    sigma_th = sqrt(b_th / f0^3).

The paper's own numbers: a fitted normalised slope of ``5.36e-6`` at
``f0 = 103 MHz`` gives ``b_th = 276.04 Hz`` and ``sigma_th ~= 15.89 ps``
(``sigma/T0 ~= 1.6 permille``), in agreement with much more expensive
measurement methods.

:func:`extract_thermal_noise` runs the whole pipeline on any jitter record or
pre-computed curve and returns a :class:`ThermalNoiseReport` with the paper's
quantities, the independence threshold of Section III-E and (optionally)
bootstrap confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..constants import permille, seconds_to_ps
from ..phase.psd import PhaseNoisePSD
from .fitting import Sigma2NFitResult, bootstrap_fit, fit_sigma2_n_curve
from .ratio import independence_threshold, ratio_constant, thermal_ratio
from .sigma_n import AccumulatedVarianceCurve, accumulated_variance_curve


@dataclass(frozen=True)
class ThermalNoiseReport:
    """Everything Section IV extracts from one accumulated-variance curve."""

    fit: Sigma2NFitResult
    min_thermal_ratio: float
    b_thermal_ci_hz: Optional[Tuple[float, float]] = None
    b_flicker_ci_hz2: Optional[Tuple[float, float]] = None

    @property
    def f0_hz(self) -> float:
        """Oscillator nominal frequency [Hz]."""
        return self.fit.f0_hz

    @property
    def b_thermal_hz(self) -> float:
        """Fitted thermal phase-noise coefficient ``b_th`` [Hz]."""
        return self.fit.b_thermal_hz

    @property
    def b_flicker_hz2(self) -> float:
        """Fitted flicker phase-noise coefficient ``b_fl`` [Hz^2]."""
        return self.fit.b_flicker_hz2

    @property
    def phase_noise_psd(self) -> PhaseNoisePSD:
        """The fitted phase-noise PSD."""
        return self.fit.phase_noise_psd

    @property
    def thermal_jitter_std_s(self) -> float:
        """Thermal-only period jitter ``sigma_th`` [s]."""
        return self.fit.thermal_jitter_std_s

    @property
    def thermal_jitter_std_ps(self) -> float:
        """``sigma_th`` in picoseconds (the unit used in the paper)."""
        return seconds_to_ps(self.thermal_jitter_std_s)

    @property
    def jitter_ratio_permille(self) -> float:
        """Relative jitter ``sigma_th / T0`` in per-mille (paper: about 1.6)."""
        return permille(self.fit.thermal_jitter_ratio)

    @property
    def ratio_constant(self) -> float:
        """``K`` of ``r_N = K/(K+N)`` (paper: 5354)."""
        return ratio_constant(self.phase_noise_psd, self.f0_hz)

    @property
    def independence_threshold_n(self) -> float:
        """Largest ``N`` with ``r_N`` above ``min_thermal_ratio`` (paper: 281)."""
        return independence_threshold(
            self.phase_noise_psd, self.f0_hz, self.min_thermal_ratio
        )

    def thermal_ratio_at(self, n: np.ndarray | float) -> np.ndarray | float:
        """``r_N`` evaluated at the requested accumulation length(s)."""
        return thermal_ratio(self.phase_noise_psd, self.f0_hz, n)

    def summary(self) -> str:
        """Human-readable multi-line summary mirroring Section IV-B."""
        lines = [
            f"f0                    = {self.f0_hz / 1e6:.2f} MHz",
            f"normalised slope      = {self.fit.normalized_linear_coefficient:.3e} (f0^2 sigma^2_N,th / N)",
            f"b_th                  = {self.b_thermal_hz:.2f} Hz",
            f"b_fl                  = {self.b_flicker_hz2:.4g} Hz^2",
            f"sigma_th              = {self.thermal_jitter_std_ps:.2f} ps",
            f"sigma_th / T0         = {self.jitter_ratio_permille:.2f} permille",
            f"K (r_N = K/(K+N))     = {self.ratio_constant:.0f}",
            (
                f"N threshold (r_N > {self.min_thermal_ratio:.0%}) "
                f"= {self.independence_threshold_n:.0f}"
            ),
            f"fit R^2               = {self.fit.r_squared:.4f}",
        ]
        if self.b_thermal_ci_hz is not None:
            lines.append(
                "b_th 95% CI           = "
                f"[{self.b_thermal_ci_hz[0]:.2f}, {self.b_thermal_ci_hz[1]:.2f}] Hz"
            )
        return "\n".join(lines)


def extract_thermal_noise_from_curve(
    curve: AccumulatedVarianceCurve,
    min_thermal_ratio: float = 0.95,
    with_confidence_intervals: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> ThermalNoiseReport:
    """Run the Section IV pipeline on an already-estimated ``sigma^2_N`` curve."""
    fit = fit_sigma2_n_curve(curve)
    b_thermal_ci = None
    b_flicker_ci = None
    if with_confidence_intervals:
        b_thermal_ci, b_flicker_ci = bootstrap_fit(curve, rng=rng)
    return ThermalNoiseReport(
        fit=fit,
        min_thermal_ratio=min_thermal_ratio,
        b_thermal_ci_hz=b_thermal_ci,
        b_flicker_ci_hz2=b_flicker_ci,
    )


def extract_thermal_noise(
    jitter_s: np.ndarray,
    f0_hz: float,
    n_sweep: Optional[Sequence[int]] = None,
    min_thermal_ratio: float = 0.95,
    with_confidence_intervals: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> ThermalNoiseReport:
    """Run the full Section IV pipeline on a raw jitter (or period) record.

    Parameters
    ----------
    jitter_s:
        Period-jitter or period series of the oscillator under test [s].
    f0_hz:
        Nominal oscillator frequency [Hz].
    n_sweep:
        Accumulation lengths to use; defaults to a log-spaced sweep.
    min_thermal_ratio:
        The ``r_N`` requirement used for the independence threshold.
    with_confidence_intervals:
        Also compute bootstrap confidence intervals for ``b_th``/``b_fl``.
    rng:
        Random generator for the bootstrap.
    """
    curve = accumulated_variance_curve(jitter_s, f0_hz, n_sweep=n_sweep)
    return extract_thermal_noise_from_curve(
        curve,
        min_thermal_ratio=min_thermal_ratio,
        with_confidence_intervals=with_confidence_intervals,
        rng=rng,
    )
