"""Theoretical values of ``sigma^2_N``: the Eq. 9 integral and the Eq. 11 closed form.

Equation 9 (derived in the paper's appendix from the Wiener-Khintchine
theorem, assuming ``phi`` is ergodic and wide-sense stationary):

    sigma^2_N = (8 / (pi^2 f0^2)) * integral_0^inf S_phi(f) sin^4(pi f N / f0) df

With the two-coefficient PSD of Eq. 10 the integral evaluates in closed form
(Eq. 11):

    sigma^2_N = (2 b_th / f0^3) N  +  (8 ln2 b_fl / f0^4) N^2.

Both are implemented here; the numerical integral serves as an independent
check of the closed form (benchmark ``EQ11-VS-EQ9``) and supports arbitrary
user-supplied phase PSDs beyond the two-coefficient model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Union

import numpy as np
from scipy import integrate

from ..phase.psd import PhaseNoisePSD
from ..scalars import scalar_like

ArrayLike = Union[float, Sequence[float], np.ndarray]


def sigma2_n_thermal(b_thermal_hz: float, f0_hz: float, n: ArrayLike) -> ArrayLike:
    """Thermal contribution ``sigma^2_N,th = 2 b_th N / f0^3`` (Eq. 11) [s^2]."""
    _validate(b_thermal_hz, f0_hz)
    n_array = _as_n_array(n)
    result = 2.0 * b_thermal_hz * n_array / f0_hz**3
    return _match_shape(result, n)


def sigma2_n_flicker(b_flicker_hz2: float, f0_hz: float, n: ArrayLike) -> ArrayLike:
    """Flicker contribution ``sigma^2_N,fl = 8 ln2 b_fl N^2 / f0^4`` (Eq. 11) [s^2]."""
    _validate(b_flicker_hz2, f0_hz)
    n_array = _as_n_array(n)
    result = 8.0 * np.log(2.0) * b_flicker_hz2 * n_array**2 / f0_hz**4
    return _match_shape(result, n)


def sigma2_n_closed_form(psd: PhaseNoisePSD, f0_hz: float, n: ArrayLike) -> ArrayLike:
    """Total ``sigma^2_N`` of Eq. 11 for a two-coefficient phase PSD [s^2]."""
    n_array = _as_n_array(n)
    result = np.asarray(
        sigma2_n_thermal(psd.b_thermal_hz, f0_hz, n_array)
    ) + np.asarray(sigma2_n_flicker(psd.b_flicker_hz2, f0_hz, n_array))
    return _match_shape(result, n)


def sigma2_n_integral(
    phase_psd: Union[PhaseNoisePSD, Callable[[np.ndarray], np.ndarray]],
    f0_hz: float,
    n: int,
    relative_tolerance: float = 1e-8,
) -> float:
    """Numerically evaluate the Wiener-Khintchine integral of Eq. 9 [s^2].

    The integrand ``S_phi(f) sin^4(pi f N / f0)`` behaves as ``f`` (flicker) or
    ``f^2`` (thermal) near 0 thanks to the ``sin^4`` factor and decays as
    ``1/f^2`` at infinity while oscillating.  The integral is split at
    ``f_split = k * f0 / N`` into a finite oscillatory part (adaptive
    quadrature per half-oscillation) and an analytic tail in which ``sin^4``
    is replaced by its mean value 3/8 (the replacement error decays as the
    tail itself and is far below ``relative_tolerance`` for the default
    split).

    Parameters
    ----------
    phase_psd:
        Either a :class:`PhaseNoisePSD` or any callable ``S_phi(f)`` accepting
        a positive frequency array [rad^2/Hz].
    f0_hz:
        Oscillator nominal frequency [Hz].
    n:
        Accumulation length ``N`` (>= 1).
    relative_tolerance:
        Requested relative accuracy of the quadrature pieces.
    """
    if f0_hz <= 0.0:
        raise ValueError("f0 must be > 0")
    if n < 1:
        raise ValueError("N must be >= 1")
    psd_callable: Callable[[np.ndarray], np.ndarray]
    if isinstance(phase_psd, PhaseNoisePSD):
        psd_callable = phase_psd
    else:
        psd_callable = phase_psd

    oscillation_period = f0_hz / n  # sin^4(pi f N / f0) has period f0/N in f
    n_oscillations = 200
    f_split = n_oscillations * oscillation_period

    def integrand(frequency: float) -> float:
        return float(
            np.asarray(psd_callable(np.asarray(frequency)))
            * np.sin(np.pi * frequency * n / f0_hz) ** 4
        )

    # Finite part: integrate oscillation by oscillation and sum (the integrand
    # is smooth inside each period of the sin^4 factor).
    finite_part = 0.0
    edges = np.linspace(0.0, f_split, n_oscillations + 1)
    for left, right in zip(edges[:-1], edges[1:]):
        value, _error = integrate.quad(
            integrand,
            left,
            right,
            epsabs=0.0,
            epsrel=relative_tolerance,
            limit=200,
        )
        finite_part += value

    # Tail: replace sin^4 by its average 3/8 and integrate the PSD analytically
    # when possible, numerically otherwise.
    if isinstance(phase_psd, PhaseNoisePSD):
        tail_psd_integral = (
            phase_psd.b_thermal_hz / f_split
            + phase_psd.b_flicker_hz2 / (2.0 * f_split**2)
        )
    else:
        # Truncate the tail of a user-supplied PSD at a frequency high enough
        # for any physically reasonable phase-noise spectrum (which must decay
        # at least as 1/f^2 for the oscillator power to be finite).
        tail_cutoff = f_split * 1e6
        tail_psd_integral, _error = integrate.quad(
            lambda f: float(np.asarray(psd_callable(np.asarray(f)))),
            f_split,
            tail_cutoff,
            epsabs=0.0,
            epsrel=relative_tolerance,
            limit=500,
        )
    tail_part = 0.375 * tail_psd_integral

    prefactor = 8.0 / (np.pi**2 * f0_hz**2)
    return float(prefactor * (finite_part + tail_part))


@dataclass(frozen=True)
class Sigma2NDecomposition:
    """Thermal/flicker decomposition of the theoretical ``sigma^2_N`` at one ``N``."""

    n_accumulations: int
    thermal_s2: float
    flicker_s2: float

    @property
    def total_s2(self) -> float:
        """Total ``sigma^2_N`` [s^2]."""
        return self.thermal_s2 + self.flicker_s2

    @property
    def thermal_fraction(self) -> float:
        """The ratio ``r_N`` = thermal / total (1.0 when there is no noise at all)."""
        total = self.total_s2
        if total == 0.0:
            return 1.0
        return self.thermal_s2 / total


def decompose_sigma2_n(
    psd: PhaseNoisePSD, f0_hz: float, n: int
) -> Sigma2NDecomposition:
    """Closed-form thermal/flicker decomposition of ``sigma^2_N`` at one ``N``."""
    if n < 1:
        raise ValueError("N must be >= 1")
    return Sigma2NDecomposition(
        n_accumulations=int(n),
        thermal_s2=float(sigma2_n_thermal(psd.b_thermal_hz, f0_hz, n)),
        flicker_s2=float(sigma2_n_flicker(psd.b_flicker_hz2, f0_hz, n)),
    )


def crossover_accumulation_length(psd: PhaseNoisePSD, f0_hz: float) -> float:
    """``N`` at which the flicker term of Eq. 11 overtakes the thermal term.

    Setting the two terms equal gives ``N_x = b_th f0 / (4 ln2 b_fl)`` — the
    same constant ``K`` that parameterises the ratio ``r_N = K/(K+N)``.
    Returns ``inf`` when there is no flicker noise.
    """
    if f0_hz <= 0.0:
        raise ValueError("f0 must be > 0")
    if psd.b_flicker_hz2 == 0.0:
        return float("inf")
    return psd.b_thermal_hz * f0_hz / (4.0 * np.log(2.0) * psd.b_flicker_hz2)


def _as_n_array(n: ArrayLike) -> np.ndarray:
    n_array = np.asarray(n, dtype=float)
    if np.any(n_array < 1):
        raise ValueError("all accumulation lengths N must be >= 1")
    return n_array


def _match_shape(result: np.ndarray, original: ArrayLike) -> ArrayLike:
    return scalar_like(result, original)


def _validate(coefficient: float, f0_hz: float) -> None:
    if coefficient < 0.0:
        raise ValueError("phase-noise coefficient must be >= 0")
    if f0_hz <= 0.0:
        raise ValueError("f0 must be > 0")
