"""The accumulated-difference statistic ``s_N`` and its variance ``sigma^2_N``.

Equation 4 of the paper defines, for a jitter process ``J = (J(t_i))_i``,

    s_N(t_i) = sum_{j=0}^{2N-1} a_j * J(t_{i+j}),   a_j = -1 for j < N else +1,

i.e. the duration of the *second* block of ``N`` periods minus the duration of
the *first* block.  Its variance ``sigma^2_N``:

* equals ``2 N sigma^2`` when the ``2N`` jitter realizations are mutually
  independent (Bienayme, Eq. 6) — *linear* in ``N``;
* equals ``(2 b_th/f0^3) N + (8 ln2 b_fl/f0^4) N^2`` for the thermal+flicker
  phase-noise model (Eq. 11) — the quadratic term signals dependence.

This module computes ``s_N`` realizations and estimates ``sigma^2_N`` from
jitter series, period series or counter captures, over sweeps of ``N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np


def accumulation_weights(n_accumulations: int) -> np.ndarray:
    """The weight vector ``(a_j)_{j=0..2N-1}`` of Eq. 4 (first ``N`` are -1)."""
    if n_accumulations < 1:
        raise ValueError(f"N must be >= 1, got {n_accumulations!r}")
    weights = np.ones(2 * n_accumulations)
    weights[:n_accumulations] = -1.0
    return weights


def s_n_realizations(
    jitter_s: np.ndarray, n_accumulations: int, overlapping: bool = True
) -> np.ndarray:
    """All realizations of ``s_N`` obtainable from a jitter record (Eq. 4) [s].

    Parameters
    ----------
    jitter_s:
        Period-jitter series ``J(t_i) = T(t_i) - 1/f0`` [s].  Passing raw
        periods also works: the constant ``1/f0`` offset cancels in ``s_N``
        because the weights sum to zero.
    n_accumulations:
        ``N``, the number of periods in each of the two blocks.
    overlapping:
        When True (default), every starting index ``i`` is used, which yields
        ``len(jitter) - 2N + 1`` (correlated but unbiased) realizations; when
        False only disjoint windows are used.
    """
    jitter = np.asarray(jitter_s, dtype=float)
    n = int(n_accumulations)
    if n < 1:
        raise ValueError(f"N must be >= 1, got {n_accumulations!r}")
    if jitter.ndim != 1:
        raise ValueError("jitter series must be one-dimensional")
    if jitter.size < 2 * n:
        raise ValueError(
            f"need at least 2N = {2 * n} jitter samples, got {jitter.size}"
        )
    cumulative = np.concatenate(([0.0], np.cumsum(jitter)))
    # block sums: sum_{k=i}^{i+N-1} J = cumulative[i+N] - cumulative[i]
    second_block = cumulative[2 * n :] - cumulative[n : -n]
    first_block = cumulative[n : -n] - cumulative[: -2 * n]
    values = second_block - first_block
    if overlapping:
        return values
    return values[:: 2 * n]


def sigma2_n_estimate(
    jitter_s: np.ndarray, n_accumulations: int, overlapping: bool = True
) -> float:
    """Estimate ``sigma^2_N = Var(s_N)`` from a jitter record [s^2].

    ``s_N`` is a double difference, so its true mean is exactly zero for any
    stationary jitter process *and* for any constant frequency offset between
    the record and the assumed ``f0`` (a linear trend cancels in a second
    difference).  The estimator therefore uses the mean of squares rather than
    the variance about the sample mean: for large ``N`` the overlapping
    realizations are strongly correlated and subtracting their (noisy) sample
    mean would bias the variance low.
    """
    values = s_n_realizations(jitter_s, n_accumulations, overlapping=overlapping)
    if values.size < 2:
        raise ValueError("need at least two s_N realizations to estimate a variance")
    return float(np.mean(values**2))


@dataclass(frozen=True)
class AccumulatedVariancePoint:
    """One point of the ``sigma^2_N`` vs ``N`` curve (one Fig. 7 abscissa)."""

    n_accumulations: int
    sigma2_n_s2: float
    n_realizations: int

    @property
    def normalized(self) -> float:
        """``sigma^2_N`` expressed in periods-squared requires ``f0``; see curve."""
        return self.sigma2_n_s2


@dataclass(frozen=True)
class AccumulatedVarianceCurve:
    """The full ``sigma^2_N`` vs ``N`` curve, i.e. the data behind Fig. 7."""

    points: List[AccumulatedVariancePoint]
    f0_hz: float

    def __post_init__(self) -> None:
        if self.f0_hz <= 0.0:
            raise ValueError("f0 must be > 0")
        if not self.points:
            raise ValueError("a curve needs at least one point")

    @property
    def n_values(self) -> np.ndarray:
        """Array of accumulation lengths ``N``."""
        return np.array([point.n_accumulations for point in self.points])

    @property
    def sigma2_values_s2(self) -> np.ndarray:
        """Array of ``sigma^2_N`` values [s^2]."""
        return np.array([point.sigma2_n_s2 for point in self.points])

    @property
    def normalized_sigma2_values(self) -> np.ndarray:
        """``f0^2 * sigma^2_N`` — the dimensionless ordinate plotted in Fig. 7."""
        return self.sigma2_values_s2 * self.f0_hz**2

    @property
    def realization_counts(self) -> np.ndarray:
        """Number of ``s_N`` realizations behind each point (for weighting)."""
        return np.array([point.n_realizations for point in self.points])


def default_n_sweep(max_n: int, points_per_decade: int = 8) -> List[int]:
    """Log-spaced sweep of accumulation lengths ``N`` from 1 to ``max_n``."""
    if max_n < 1:
        raise ValueError("max_n must be >= 1")
    if points_per_decade < 1:
        raise ValueError("points_per_decade must be >= 1")
    if max_n == 1:
        return [1]
    n_points = max(int(np.ceil(np.log10(max_n) * points_per_decade)), 2)
    values = np.unique(
        np.round(np.logspace(0.0, np.log10(max_n), n_points)).astype(int)
    )
    return [int(value) for value in values if value >= 1]


def accumulated_variance_curve(
    jitter_s: np.ndarray,
    f0_hz: float,
    n_sweep: Optional[Sequence[int]] = None,
    overlapping: bool = True,
    min_realizations: int = 8,
) -> AccumulatedVarianceCurve:
    """Estimate ``sigma^2_N`` over a sweep of ``N`` from one jitter record.

    Parameters
    ----------
    jitter_s:
        Period-jitter (or period) series [s].
    f0_hz:
        Nominal oscillator frequency, used for the Fig. 7 normalisation.
    n_sweep:
        Accumulation lengths to evaluate; defaults to a log-spaced sweep up to
        a quarter of the record length.
    overlapping:
        Use overlapping ``s_N`` windows (more realizations per point).
    min_realizations:
        Points that would be estimated from fewer realizations are skipped.
    """
    jitter = np.asarray(jitter_s, dtype=float)
    if f0_hz <= 0.0:
        raise ValueError("f0 must be > 0")
    if n_sweep is None:
        # Cap the sweep so each point keeps a healthy number of *effectively
        # independent* realizations (non-overlapping windows): record/(2N).
        n_sweep = default_n_sweep(max(jitter.size // (2 * min_realizations), 1))
    points = []
    for n in n_sweep:
        n = int(n)
        if 2 * n > jitter.size:
            continue
        values = s_n_realizations(jitter, n, overlapping=overlapping)
        effective_realizations = jitter.size // (2 * n) if overlapping else values.size
        if values.size < 2 or effective_realizations < min_realizations:
            continue
        points.append(
            AccumulatedVariancePoint(
                n_accumulations=n,
                sigma2_n_s2=float(np.mean(values**2)),
                n_realizations=int(values.size),
            )
        )
    if not points:
        raise ValueError("record too short to estimate any sigma^2_N point")
    return AccumulatedVarianceCurve(points=points, f0_hz=f0_hz)


def bienayme_prediction(per_period_variance_s2: float, n_accumulations: int) -> float:
    """``sigma^2_N`` predicted by Bienayme's formula under independence (Eq. 6).

    ``sigma^2_N = 2 N sigma^2`` where ``sigma^2`` is the common variance of the
    (assumed independent, stationary) jitter realizations.
    """
    if per_period_variance_s2 < 0.0:
        raise ValueError("variance must be >= 0")
    if n_accumulations < 1:
        raise ValueError("N must be >= 1")
    return 2.0 * n_accumulations * per_period_variance_s2
