"""The accumulated-difference statistic ``s_N`` and its variance ``sigma^2_N``.

Equation 4 of the paper defines, for a jitter process ``J = (J(t_i))_i``,

    s_N(t_i) = sum_{j=0}^{2N-1} a_j * J(t_{i+j}),   a_j = -1 for j < N else +1,

i.e. the duration of the *second* block of ``N`` periods minus the duration of
the *first* block.  Its variance ``sigma^2_N``:

* equals ``2 N sigma^2`` when the ``2N`` jitter realizations are mutually
  independent (Bienayme, Eq. 6) — *linear* in ``N``;
* equals ``(2 b_th/f0^3) N + (8 ln2 b_fl/f0^4) N^2`` for the thermal+flicker
  phase-noise model (Eq. 11) — the quadratic term signals dependence.

This module computes ``s_N`` realizations and estimates ``sigma^2_N`` from
jitter series, period series or counter captures, over sweeps of ``N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


def accumulation_weights(n_accumulations: int) -> np.ndarray:
    """The weight vector ``(a_j)_{j=0..2N-1}`` of Eq. 4 (first ``N`` are -1)."""
    if n_accumulations < 1:
        raise ValueError(f"N must be >= 1, got {n_accumulations!r}")
    weights = np.ones(2 * n_accumulations)
    weights[:n_accumulations] = -1.0
    return weights


def s_n_realizations(
    jitter_s: np.ndarray, n_accumulations: int, overlapping: bool = True
) -> np.ndarray:
    """All realizations of ``s_N`` obtainable from a jitter record (Eq. 4) [s].

    Parameters
    ----------
    jitter_s:
        Period-jitter series ``J(t_i) = T(t_i) - 1/f0`` [s].  Passing raw
        periods also works: the constant ``1/f0`` offset cancels in ``s_N``
        because the weights sum to zero.  A 2-D ``(B, n)`` array is treated as
        ``B`` independent records (one per batched instance); time is always
        the last axis.
    n_accumulations:
        ``N``, the number of periods in each of the two blocks.
    overlapping:
        When True (default), every starting index ``i`` is used, which yields
        ``record_length - 2N + 1`` (correlated but unbiased) realizations per
        record; when False only disjoint windows (starting at multiples of
        ``2N``) are used.
    """
    jitter = np.asarray(jitter_s, dtype=float)
    n = int(n_accumulations)
    if n < 1:
        raise ValueError(f"N must be >= 1, got {n_accumulations!r}")
    if jitter.ndim not in (1, 2):
        raise ValueError("jitter series must be one- or two-dimensional")
    if jitter.shape[-1] < 2 * n:
        raise ValueError(
            f"need at least 2N = {2 * n} jitter samples, got {jitter.shape[-1]}"
        )
    zero = np.zeros(jitter.shape[:-1] + (1,))
    cumulative = np.concatenate([zero, np.cumsum(jitter, axis=-1)], axis=-1)
    # block sums: sum_{k=i}^{i+N-1} J = cumulative[i+N] - cumulative[i]
    second_block = cumulative[..., 2 * n :] - cumulative[..., n : -n]
    first_block = cumulative[..., n : -n] - cumulative[..., : -2 * n]
    values = second_block - first_block
    if overlapping:
        return values
    return values[..., :: 2 * n]


def sigma2_n_estimate(
    jitter_s: np.ndarray, n_accumulations: int, overlapping: bool = True
) -> "float | np.ndarray":
    """Estimate ``sigma^2_N = Var(s_N)`` from a jitter record [s^2].

    ``s_N`` is a double difference, so its true mean is exactly zero for any
    stationary jitter process *and* for any constant frequency offset between
    the record and the assumed ``f0`` (a linear trend cancels in a second
    difference).  The estimator therefore uses the mean of squares rather than
    the variance about the sample mean: for large ``N`` the overlapping
    realizations are strongly correlated and subtracting their (noisy) sample
    mean would bias the variance low.

    A 2-D ``(B, n)`` input yields a ``(B,)`` array of per-instance estimates;
    a 1-D input yields a float, as before.
    """
    values = s_n_realizations(jitter_s, n_accumulations, overlapping=overlapping)
    if values.shape[-1] < 2:
        raise ValueError("need at least two s_N realizations to estimate a variance")
    result = np.mean(values**2, axis=-1)
    if values.ndim == 1:
        return float(result)
    return result


@dataclass(frozen=True)
class AccumulatedVariancePoint:
    """One point of the ``sigma^2_N`` vs ``N`` curve (one Fig. 7 abscissa)."""

    n_accumulations: int
    sigma2_n_s2: float
    n_realizations: int

    @property
    def normalized(self) -> float:
        """``sigma^2_N`` expressed in periods-squared requires ``f0``; see curve."""
        return self.sigma2_n_s2


@dataclass(frozen=True)
class AccumulatedVarianceCurve:
    """The full ``sigma^2_N`` vs ``N`` curve, i.e. the data behind Fig. 7."""

    points: List[AccumulatedVariancePoint]
    f0_hz: float

    def __post_init__(self) -> None:
        if self.f0_hz <= 0.0:
            raise ValueError("f0 must be > 0")
        if not self.points:
            raise ValueError("a curve needs at least one point")

    @property
    def n_values(self) -> np.ndarray:
        """Array of accumulation lengths ``N``."""
        return np.array([point.n_accumulations for point in self.points])

    @property
    def sigma2_values_s2(self) -> np.ndarray:
        """Array of ``sigma^2_N`` values [s^2]."""
        return np.array([point.sigma2_n_s2 for point in self.points])

    @property
    def normalized_sigma2_values(self) -> np.ndarray:
        """``f0^2 * sigma^2_N`` — the dimensionless ordinate plotted in Fig. 7."""
        return self.sigma2_values_s2 * self.f0_hz**2

    @property
    def realization_counts(self) -> np.ndarray:
        """Number of ``s_N`` realizations behind each point (for weighting)."""
        return np.array([point.n_realizations for point in self.points])


def default_n_sweep(max_n: int, points_per_decade: int = 8) -> List[int]:
    """Log-spaced sweep of accumulation lengths ``N`` from 1 to ``max_n``."""
    if max_n < 1:
        raise ValueError("max_n must be >= 1")
    if points_per_decade < 1:
        raise ValueError("points_per_decade must be >= 1")
    if max_n == 1:
        return [1]
    n_points = max(int(np.ceil(np.log10(max_n) * points_per_decade)), 2)
    values = np.unique(
        np.round(np.logspace(0.0, np.log10(max_n), n_points)).astype(int)
    )
    return [int(value) for value in values if value >= 1]


def accumulated_variance_curve(
    jitter_s: np.ndarray,
    f0_hz: float,
    n_sweep: Optional[Sequence[int]] = None,
    overlapping: bool = True,
    min_realizations: int = 8,
) -> AccumulatedVarianceCurve:
    """Estimate ``sigma^2_N`` over a sweep of ``N`` from one jitter record.

    Parameters
    ----------
    jitter_s:
        Period-jitter (or period) series [s].
    f0_hz:
        Nominal oscillator frequency, used for the Fig. 7 normalisation.
    n_sweep:
        Accumulation lengths to evaluate; defaults to a log-spaced sweep up to
        a quarter of the record length.
    overlapping:
        Use overlapping ``s_N`` windows (more realizations per point).
    min_realizations:
        Points that would be estimated from fewer realizations are skipped.
    """
    jitter = np.asarray(jitter_s, dtype=float)
    if f0_hz <= 0.0:
        raise ValueError("f0 must be > 0")
    if n_sweep is None:
        # Cap the sweep so each point keeps a healthy number of *effectively
        # independent* realizations (non-overlapping windows): record/(2N).
        n_sweep = default_n_sweep(max(jitter.size // (2 * min_realizations), 1))
    points = []
    for n in n_sweep:
        n = int(n)
        if 2 * n > jitter.size:
            continue
        values = s_n_realizations(jitter, n, overlapping=overlapping)
        effective_realizations = jitter.size // (2 * n) if overlapping else values.size
        if values.size < 2 or effective_realizations < min_realizations:
            continue
        points.append(
            AccumulatedVariancePoint(
                n_accumulations=n,
                sigma2_n_s2=float(np.mean(values**2)),
                n_realizations=int(values.size),
            )
        )
    if not points:
        raise ValueError("record too short to estimate any sigma^2_N point")
    return AccumulatedVarianceCurve(points=points, f0_hz=f0_hz)


def accumulated_variance_curves(
    jitter_s: np.ndarray,
    f0_hz,
    n_sweep: Optional[Sequence[int]] = None,
    overlapping: bool = True,
    min_realizations: int = 8,
) -> List[AccumulatedVarianceCurve]:
    """Batched :func:`accumulated_variance_curve`: one curve per record row.

    This is the vectorized estimator behind the batched simulation engine
    (:mod:`repro.engine`): the cumulative sums are computed once for the whole
    batch and every ``N`` of the sweep is evaluated on all rows at once, while
    the scalar function recomputes the cumulative sum for every ``N``.  Row
    ``i`` of the result is numerically identical (bit-for-bit) to
    ``accumulated_variance_curve(jitter_s[i], ...)``: the per-``N`` block
    differences and the mean-of-squares reduction are performed with the same
    operation order as the scalar path.

    Parameters
    ----------
    jitter_s:
        ``(B, n)`` array of per-instance jitter (or period) records [s].  A
        1-D record is treated as ``B = 1``.
    f0_hz:
        Nominal frequency, a scalar (shared) or a length-``B`` array [Hz].
    n_sweep, overlapping, min_realizations:
        As in :func:`accumulated_variance_curve`.  Because every row has the
        same record length, the realization-count skip rule selects the same
        sweep points for every row; all returned curves share their
        ``n_values``.
    """
    n_list, sigma2, counts, f0 = batched_sigma2_n_sweep(
        jitter_s,
        f0_hz,
        n_sweep=n_sweep,
        overlapping=overlapping,
        min_realizations=min_realizations,
    )
    return assemble_variance_curves(n_list, sigma2, counts, f0)


def batched_sigma2_n_sweep(
    jitter_s: np.ndarray,
    f0_hz,
    n_sweep: Optional[Sequence[int]] = None,
    overlapping: bool = True,
    min_realizations: int = 8,
    exact: bool = True,
):
    """Array-form batched sweep: the computational core of the curve builders.

    Returns ``(n_values, sigma2, counts, f0)`` where ``n_values`` is the list
    of retained accumulation lengths (length ``P``), ``sigma2`` the
    ``(B, P)`` per-instance estimates [s^2], ``counts`` the ``(P,)`` array of
    realization counts and ``f0`` the ``(B,)`` frequencies [Hz].  The batched
    engine keeps campaign results in this form (no per-point objects on the
    hot path); :func:`assemble_variance_curves` materializes curve objects.

    The cumulative sums are computed once and shared by the whole sweep (the
    scalar path recomputes them for every ``N``).  With ``exact=True`` the
    per-``N`` reduction uses the same operation order as the scalar
    estimators, making each row bit-for-bit identical to
    :func:`accumulated_variance_curve`; ``exact=False`` regroups the block
    differences and reduces with a fused dot product, which is faster and
    agrees with the exact path to a relative ``~ sqrt(n) * eps`` (far below
    1e-12 for any in-memory record).
    """
    jitter = np.asarray(jitter_s, dtype=float)
    if jitter.ndim == 1:
        jitter = jitter[None, :]
    if jitter.ndim != 2:
        raise ValueError("jitter records must form a (B, n) array")
    batch, size = jitter.shape
    f0 = np.asarray(f0_hz, dtype=float)
    if f0.ndim == 0:
        f0 = np.full(batch, float(f0))
    if f0.shape != (batch,):
        raise ValueError(f"f0_hz must be a scalar or shape ({batch},) array")
    if np.any(f0 <= 0.0):
        raise ValueError("f0 must be > 0")
    if n_sweep is None:
        n_sweep = default_n_sweep(max(size // (2 * min_realizations), 1))
    cumulative = np.concatenate(
        [np.zeros((batch, 1)), np.cumsum(jitter, axis=1)], axis=1
    )
    n_list: List[int] = []
    sigma2_list: List[np.ndarray] = []
    count_list: List[int] = []
    for n in n_sweep:
        n = int(n)
        if n < 1:
            raise ValueError(f"N must be >= 1, got {n!r}")
        if 2 * n > size:
            continue
        n_values = size - 2 * n + 1
        if not overlapping:
            n_values = -(-n_values // (2 * n))
        effective = size // (2 * n) if overlapping else n_values
        if n_values < 2 or effective < min_realizations:
            continue
        if exact:
            second_block = cumulative[:, 2 * n :] - cumulative[:, n:-n]
            first_block = cumulative[:, n:-n] - cumulative[:, : -2 * n]
            values = second_block - first_block
            if not overlapping:
                values = values[:, :: 2 * n]
            sigma2 = np.mean(values**2, axis=1)
        else:
            values = cumulative[:, 2 * n :] - cumulative[:, n:-n]
            values -= cumulative[:, n:-n]
            values += cumulative[:, : -2 * n]
            if not overlapping:
                values = np.ascontiguousarray(values[:, :: 2 * n])
            sigma2 = np.einsum("ij,ij->i", values, values) / values.shape[1]
        n_list.append(n)
        sigma2_list.append(sigma2)
        count_list.append(n_values)
    if not n_list:
        raise ValueError("record too short to estimate any sigma^2_N point")
    return n_list, np.stack(sigma2_list, axis=1), np.array(count_list), f0


def assemble_variance_curves(
    n_list: Sequence[int],
    sigma2: np.ndarray,
    counts: np.ndarray,
    f0: np.ndarray,
) -> List[AccumulatedVarianceCurve]:
    """Materialize per-row curve objects from array-form sweep results."""
    curves = []
    for row in range(sigma2.shape[0]):
        points = [
            AccumulatedVariancePoint(
                n_accumulations=int(n),
                sigma2_n_s2=float(sigma2[row, column]),
                n_realizations=int(counts[column]),
            )
            for column, n in enumerate(n_list)
        ]
        curves.append(AccumulatedVarianceCurve(points=points, f0_hz=float(f0[row])))
    return curves


def bienayme_prediction(per_period_variance_s2: float, n_accumulations: int) -> float:
    """``sigma^2_N`` predicted by Bienayme's formula under independence (Eq. 6).

    ``sigma^2_N = 2 N sigma^2`` where ``sigma^2`` is the common variance of the
    (assumed independent, stationary) jitter realizations.
    """
    if per_period_variance_s2 < 0.0:
        raise ValueError("variance must be >= 0")
    if n_accumulations < 1:
        raise ValueError("N must be >= 1")
    return 2.0 * n_accumulations * per_period_variance_s2
