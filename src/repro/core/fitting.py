"""Fitting the linear + quadratic model of Eq. 11 to measured ``sigma^2_N`` data.

Section IV-A of the paper: knowing ``f0``, a fit of

    f0^2 * sigma^2_N = (2 b_th / f0) * N + (8 ln2 b_fl / f0^2) * N^2

to the measured accumulated variances yields ``b_th`` and ``b_fl``, from which
the thermal-only period jitter ``sigma_th = sqrt(b_th / f0^3)`` follows.  This
module implements that (weighted, non-negative) least-squares fit, the
goodness-of-fit summary and bootstrap confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..phase.psd import PhaseNoisePSD
from .sigma_n import AccumulatedVarianceCurve
from .theory import sigma2_n_closed_form


@dataclass(frozen=True)
class Sigma2NFitResult:
    """Result of fitting Eq. 11 to a measured ``sigma^2_N`` curve.

    Attributes
    ----------
    f0_hz:
        Oscillator nominal frequency used in the parameterisation [Hz].
    b_thermal_hz:
        Fitted thermal phase-noise coefficient ``b_th`` [Hz].
    b_flicker_hz2:
        Fitted flicker phase-noise coefficient ``b_fl`` [Hz^2].
    linear_coefficient:
        Fitted slope ``A`` of ``sigma^2_N = A N + B N^2`` [s^2].
    quadratic_coefficient:
        Fitted curvature ``B`` [s^2].
    r_squared:
        Coefficient of determination of the (weighted) fit.
    n_points:
        Number of ``(N, sigma^2_N)`` points used.
    """

    f0_hz: float
    b_thermal_hz: float
    b_flicker_hz2: float
    linear_coefficient: float
    quadratic_coefficient: float
    r_squared: float
    n_points: int

    @property
    def phase_noise_psd(self) -> PhaseNoisePSD:
        """The fitted two-coefficient phase PSD."""
        return PhaseNoisePSD(
            b_thermal_hz=self.b_thermal_hz, b_flicker_hz2=self.b_flicker_hz2
        )

    @property
    def thermal_jitter_std_s(self) -> float:
        """Thermal-only per-period jitter ``sigma_th = sqrt(b_th/f0^3)`` [s]."""
        return float(np.sqrt(self.b_thermal_hz / self.f0_hz**3))

    @property
    def thermal_jitter_ratio(self) -> float:
        """Relative thermal jitter ``sigma_th / T0 = sigma_th * f0`` (dimensionless)."""
        return self.thermal_jitter_std_s * self.f0_hz

    @property
    def normalized_linear_coefficient(self) -> float:
        """Slope of the Fig. 7 ordinate ``f0^2 sigma^2_N`` vs ``N`` (paper: 5.36e-6)."""
        return self.linear_coefficient * self.f0_hz**2

    @property
    def normalized_quadratic_coefficient(self) -> float:
        """Curvature of ``f0^2 sigma^2_N`` vs ``N``."""
        return self.quadratic_coefficient * self.f0_hz**2

    def predict(self, n: np.ndarray) -> np.ndarray:
        """Predicted ``sigma^2_N`` [s^2] at accumulation lengths ``n``."""
        return np.asarray(
            sigma2_n_closed_form(self.phase_noise_psd, self.f0_hz, n)
        )


def coefficients_to_phase_noise(
    linear_coefficient: float, quadratic_coefficient: float, f0_hz: float
) -> Tuple[float, float]:
    """Convert the polynomial coefficients ``A``, ``B`` into ``b_th``, ``b_fl``.

    From Eq. 11: ``A = 2 b_th / f0^3`` and ``B = 8 ln2 b_fl / f0^4``.
    """
    if f0_hz <= 0.0:
        raise ValueError("f0 must be > 0")
    b_thermal = max(linear_coefficient, 0.0) * f0_hz**3 / 2.0
    b_flicker = max(quadratic_coefficient, 0.0) * f0_hz**4 / (8.0 * np.log(2.0))
    return float(b_thermal), float(b_flicker)


def fit_sigma2_n_curve(
    curve: AccumulatedVarianceCurve,
    weighted: bool = True,
) -> Sigma2NFitResult:
    """Fit ``sigma^2_N = A N + B N^2`` (A, B >= 0) to a measured curve.

    Weighting
    ---------
    The sampling variance of a variance estimate from ``m`` (roughly
    independent) realizations is ``~ 2 sigma^4 / m``, so points are weighted by
    ``m / sigma^4`` when ``weighted`` is True — this keeps the small-``N``
    (thermal-dominated) region from being swamped by the huge absolute values
    at large ``N``, exactly the regime the paper needs for ``b_th``.
    """
    n_values = curve.n_values.astype(float)
    sigma2 = curve.sigma2_values_s2
    if np.any(sigma2 < 0.0):
        raise ValueError("sigma^2_N values must be >= 0")
    if n_values.size < 2:
        raise ValueError("need at least two points to fit the two-parameter model")
    if weighted:
        realizations = np.maximum(curve.realization_counts.astype(float), 1.0)
        # Effective number of independent realizations of an overlapping s_N
        # estimate is about m / (2N).
        effective = np.maximum(realizations / (2.0 * n_values), 1.0)
        safe_sigma2 = np.where(sigma2 > 0.0, sigma2, np.min(sigma2[sigma2 > 0.0]))
        weights = effective / safe_sigma2**2
    else:
        weights = np.ones_like(sigma2)

    linear, quadratic = _weighted_nonnegative_polyfit(n_values, sigma2, weights)
    b_thermal, b_flicker = coefficients_to_phase_noise(linear, quadratic, curve.f0_hz)
    prediction = linear * n_values + quadratic * n_values**2
    r_squared = _weighted_r_squared(sigma2, prediction, weights)
    return Sigma2NFitResult(
        f0_hz=curve.f0_hz,
        b_thermal_hz=b_thermal,
        b_flicker_hz2=b_flicker,
        linear_coefficient=float(linear),
        quadratic_coefficient=float(quadratic),
        r_squared=r_squared,
        n_points=int(n_values.size),
    )


def fit_linear_only(curve: AccumulatedVarianceCurve) -> Sigma2NFitResult:
    """Fit the *independence-assuming* model ``sigma^2_N = A N`` (no N^2 term).

    This is what a classical stochastic model (Fig. 2) would implicitly do; the
    comparison of its residuals with the full fit is the basis of the
    Bienayme linearity test in ``repro.core.independence``.
    """
    n_values = curve.n_values.astype(float)
    sigma2 = curve.sigma2_values_s2
    weights = np.ones_like(sigma2)
    linear = float(np.sum(weights * n_values * sigma2) / np.sum(weights * n_values**2))
    linear = max(linear, 0.0)
    b_thermal, b_flicker = coefficients_to_phase_noise(linear, 0.0, curve.f0_hz)
    prediction = linear * n_values
    r_squared = _weighted_r_squared(sigma2, prediction, weights)
    return Sigma2NFitResult(
        f0_hz=curve.f0_hz,
        b_thermal_hz=b_thermal,
        b_flicker_hz2=b_flicker,
        linear_coefficient=linear,
        quadratic_coefficient=0.0,
        r_squared=r_squared,
        n_points=int(n_values.size),
    )


def bootstrap_fit(
    curve: AccumulatedVarianceCurve,
    n_resamples: int = 200,
    confidence_level: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[Tuple[float, float], Tuple[float, float]]:
    """Bootstrap confidence intervals for ``b_th`` and ``b_fl``.

    Points of the curve are resampled with replacement; each resample is
    refitted.  Returns ``((b_th_low, b_th_high), (b_fl_low, b_fl_high))``.
    """
    if n_resamples < 10:
        raise ValueError("n_resamples must be >= 10")
    if not 0.0 < confidence_level < 1.0:
        raise ValueError("confidence level must be in (0, 1)")
    rng = np.random.default_rng() if rng is None else rng
    points = curve.points
    b_thermal_samples = np.empty(n_resamples)
    b_flicker_samples = np.empty(n_resamples)
    for index in range(n_resamples):
        chosen = rng.integers(0, len(points), size=len(points))
        resampled = AccumulatedVarianceCurve(
            points=[points[i] for i in chosen], f0_hz=curve.f0_hz
        )
        try:
            fit = fit_sigma2_n_curve(resampled)
        except ValueError:
            fit = fit_sigma2_n_curve(curve)
        b_thermal_samples[index] = fit.b_thermal_hz
        b_flicker_samples[index] = fit.b_flicker_hz2
    alpha = (1.0 - confidence_level) / 2.0
    quantiles = [alpha, 1.0 - alpha]
    b_thermal_ci = tuple(float(q) for q in np.quantile(b_thermal_samples, quantiles))
    b_flicker_ci = tuple(float(q) for q in np.quantile(b_flicker_samples, quantiles))
    return b_thermal_ci, b_flicker_ci


def _weighted_nonnegative_polyfit(
    n_values: np.ndarray, sigma2: np.ndarray, weights: np.ndarray
) -> Tuple[float, float]:
    """Weighted least squares of ``sigma2 = A n + B n^2`` with ``A, B >= 0``.

    Solves the 2x2 normal equations; if a coefficient comes out negative the
    corresponding term is dropped and the remaining one refitted (the actively
    constrained solution of this tiny NNLS problem).
    """
    design = np.column_stack([n_values, n_values**2])
    weighted_design = design * weights[:, None]
    gram = design.T @ weighted_design
    moment = design.T @ (weights * sigma2)
    try:
        solution = np.linalg.solve(gram, moment)
    except np.linalg.LinAlgError:
        solution = np.array([-1.0, -1.0])
    linear, quadratic = float(solution[0]), float(solution[1])
    if linear >= 0.0 and quadratic >= 0.0:
        return linear, quadratic
    # Constrained refits with a single term.
    linear_only = max(
        float(np.sum(weights * n_values * sigma2) / np.sum(weights * n_values**2)), 0.0
    )
    quadratic_only = max(
        float(np.sum(weights * n_values**2 * sigma2) / np.sum(weights * n_values**4)),
        0.0,
    )
    residual_linear = np.sum(weights * (sigma2 - linear_only * n_values) ** 2)
    residual_quadratic = np.sum(
        weights * (sigma2 - quadratic_only * n_values**2) ** 2
    )
    if residual_linear <= residual_quadratic:
        return linear_only, 0.0
    return 0.0, quadratic_only


def _weighted_r_squared(
    observed: np.ndarray, predicted: np.ndarray, weights: np.ndarray
) -> float:
    mean = np.average(observed, weights=weights)
    total = np.sum(weights * (observed - mean) ** 2)
    residual = np.sum(weights * (observed - predicted) ** 2)
    if total == 0.0:
        return 1.0
    return float(1.0 - residual / total)
