"""Core contribution of the paper: the sigma^2_N analysis and the multilevel model."""

from .fitting import (
    Sigma2NFitResult,
    bootstrap_fit,
    coefficients_to_phase_noise,
    fit_linear_only,
    fit_sigma2_n_curve,
)
from .independence import (
    BienaymeTestResult,
    IndependenceReport,
    assess_independence,
    bienayme_linearity_test,
)
from .multilevel import JitterParameters, MultilevelModel
from .ratio import (
    IndependenceBudget,
    independence_budget,
    independence_threshold,
    ratio_constant,
    thermal_ratio,
)
from .sigma_n import (
    AccumulatedVarianceCurve,
    AccumulatedVariancePoint,
    accumulated_variance_curve,
    accumulated_variance_curves,
    accumulation_weights,
    bienayme_prediction,
    default_n_sweep,
    s_n_realizations,
    sigma2_n_estimate,
)
from .theory import (
    Sigma2NDecomposition,
    crossover_accumulation_length,
    decompose_sigma2_n,
    sigma2_n_closed_form,
    sigma2_n_flicker,
    sigma2_n_integral,
    sigma2_n_thermal,
)
from .thermal_extraction import (
    ThermalNoiseReport,
    extract_thermal_noise,
    extract_thermal_noise_from_curve,
)

__all__ = [
    "AccumulatedVarianceCurve",
    "AccumulatedVariancePoint",
    "BienaymeTestResult",
    "IndependenceBudget",
    "IndependenceReport",
    "JitterParameters",
    "MultilevelModel",
    "Sigma2NDecomposition",
    "Sigma2NFitResult",
    "ThermalNoiseReport",
    "accumulated_variance_curve",
    "accumulated_variance_curves",
    "accumulation_weights",
    "assess_independence",
    "bienayme_linearity_test",
    "bienayme_prediction",
    "bootstrap_fit",
    "coefficients_to_phase_noise",
    "crossover_accumulation_length",
    "decompose_sigma2_n",
    "default_n_sweep",
    "extract_thermal_noise",
    "extract_thermal_noise_from_curve",
    "fit_linear_only",
    "fit_sigma2_n_curve",
    "independence_budget",
    "independence_threshold",
    "ratio_constant",
    "s_n_realizations",
    "sigma2_n_closed_form",
    "sigma2_n_estimate",
    "sigma2_n_flicker",
    "sigma2_n_integral",
    "sigma2_n_thermal",
    "thermal_ratio",
]
