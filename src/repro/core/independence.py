"""Statistical diagnostics of the mutual-independence assumption.

The paper's argument is indirect but powerful: *if* the 2N jitter realizations
entering ``s_N`` were mutually independent, Bienayme's formula would make
``sigma^2_N`` exactly linear in ``N`` (Eq. 6); an ``N^2`` component therefore
falsifies independence (contraposition, Section III-B-2).

This module packages that argument as a testable procedure — the *Bienayme
linearity test* — plus direct serial-correlation diagnostics (lag-1 test and
Ljung-Box portmanteau test) on the jitter record itself.  The combination is
what a TRNG evaluator would run on captured data to decide whether the
classical independence-based entropy models may be applied, and up to which
accumulation length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..stats.autocorrelation import LjungBoxResult, ljung_box_test
from .fitting import Sigma2NFitResult, fit_linear_only, fit_sigma2_n_curve
from .ratio import independence_threshold
from .sigma_n import AccumulatedVarianceCurve, accumulated_variance_curve


@dataclass(frozen=True)
class BienaymeTestResult:
    """Outcome of the Bienayme linearity test on a ``sigma^2_N`` curve.

    Attributes
    ----------
    full_fit:
        The linear + quadratic fit (Eq. 11 model).
    linear_fit:
        The linear-only fit (independence model, Eq. 6).
    quadratic_fraction_at_max_n:
        Fraction of ``sigma^2_N`` explained by the ``N^2`` term at the largest
        measured ``N`` — the effect size of the dependence.
    improvement_ratio:
        Weighted residual sum of squares of the linear-only fit divided by the
        residual of the full fit; values well above 1 indicate the quadratic
        term is doing real work.
    independent:
        The verdict: True when the curve is consistent with mutually
        independent jitter realizations over the measured range of ``N``.
    """

    full_fit: Sigma2NFitResult
    linear_fit: Sigma2NFitResult
    quadratic_fraction_at_max_n: float
    improvement_ratio: float
    independent: bool
    max_n: int


def bienayme_linearity_test(
    curve: AccumulatedVarianceCurve,
    quadratic_fraction_threshold: float = 0.05,
) -> BienaymeTestResult:
    """Decide whether ``sigma^2_N`` is linear in ``N`` (independence) or not.

    The decision rule follows the paper's own usage of ``r_N``: if, at the
    largest measured accumulation length, more than
    ``quadratic_fraction_threshold`` of the accumulated variance is carried by
    the ``N^2`` term, the independence hypothesis is rejected.
    """
    if not 0.0 < quadratic_fraction_threshold < 1.0:
        raise ValueError("quadratic_fraction_threshold must be in (0, 1)")
    full_fit = fit_sigma2_n_curve(curve)
    linear_fit = fit_linear_only(curve)

    n_values = curve.n_values.astype(float)
    sigma2 = curve.sigma2_values_s2
    max_n = int(np.max(n_values))
    linear_term = full_fit.linear_coefficient * max_n
    quadratic_term = full_fit.quadratic_coefficient * max_n**2
    total = linear_term + quadratic_term
    quadratic_fraction = 0.0 if total == 0.0 else quadratic_term / total

    residual_full = float(np.sum((sigma2 - full_fit.predict(n_values)) ** 2))
    residual_linear = float(np.sum((sigma2 - linear_fit.predict(n_values)) ** 2))
    if residual_full <= 0.0:
        improvement = np.inf if residual_linear > 0.0 else 1.0
    else:
        improvement = residual_linear / residual_full

    independent = quadratic_fraction <= quadratic_fraction_threshold
    return BienaymeTestResult(
        full_fit=full_fit,
        linear_fit=linear_fit,
        quadratic_fraction_at_max_n=float(quadratic_fraction),
        improvement_ratio=float(improvement),
        independent=bool(independent),
        max_n=max_n,
    )


@dataclass(frozen=True)
class IndependenceReport:
    """Combined verdict of the indirect (Bienayme) and direct (ACF) diagnostics."""

    bienayme: BienaymeTestResult
    ljung_box: LjungBoxResult
    max_independent_accumulation: float
    f0_hz: float

    @property
    def jitter_realizations_independent(self) -> bool:
        """Overall verdict over the measured range of ``N``.

        Both the accumulated-variance curve must stay linear *and* the jitter
        series must show no significant serial correlation.
        """
        return self.bienayme.independent and self.ljung_box.independent_at()

    def summary(self) -> str:
        """Human-readable summary of the verdict."""
        verdict = (
            "consistent with mutual independence"
            if self.jitter_realizations_independent
            else "NOT mutually independent"
        )
        return "\n".join(
            [
                f"verdict: jitter realizations are {verdict} over N <= {self.bienayme.max_n}",
                (
                    "Bienayme test: quadratic fraction at max N = "
                    f"{self.bienayme.quadratic_fraction_at_max_n:.1%}"
                ),
                f"Ljung-Box p-value: {self.ljung_box.p_value:.3g}",
                (
                    "independence acceptable (r_N > 95%) up to N = "
                    f"{self.max_independent_accumulation:.0f}"
                ),
            ]
        )


def assess_independence(
    jitter_s: np.ndarray,
    f0_hz: float,
    n_sweep: Optional[Sequence[int]] = None,
    ljung_box_lags: int = 50,
    min_thermal_ratio: float = 0.95,
) -> IndependenceReport:
    """Run every independence diagnostic on a raw jitter record.

    Parameters
    ----------
    jitter_s:
        Period-jitter series [s].
    f0_hz:
        Oscillator nominal frequency [Hz].
    n_sweep:
        Accumulation lengths for the Bienayme test (default log sweep).
    ljung_box_lags:
        Number of lags of the portmanteau test on the raw jitter.
    min_thermal_ratio:
        ``r_N`` requirement used to report the usable accumulation range.
    """
    jitter = np.asarray(jitter_s, dtype=float)
    curve = accumulated_variance_curve(jitter, f0_hz, n_sweep=n_sweep)
    bienayme = bienayme_linearity_test(curve)
    lags = min(ljung_box_lags, max(jitter.size // 4, 1))
    ljung_box = ljung_box_test(jitter, lags=lags)
    threshold = independence_threshold(
        bienayme.full_fit.phase_noise_psd, f0_hz, min_thermal_ratio
    )
    return IndependenceReport(
        bienayme=bienayme,
        ljung_box=ljung_box,
        max_independent_accumulation=threshold,
        f0_hz=f0_hz,
    )
