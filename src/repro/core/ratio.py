"""The thermal-to-total ratio ``r_N`` and the independence threshold on ``N``.

Section III-E of the paper defines

    r_N = sigma^2_N,th / sigma^2_N = K / (K + N),
    K   = b_th f0 / (4 ln2 b_fl),

the fraction of the accumulated variance that is due to thermal noise alone.
In the paper's experiment ``K = 5354`` and the requirement ``r_N > 95 %``
translates into ``N < 281``: below that accumulation length, treating the 2N
consecutive jitter realizations as mutually independent is an acceptable
approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from ..phase.psd import PhaseNoisePSD
from ..scalars import scalar_like

ArrayLike = Union[float, Sequence[float], np.ndarray]


def ratio_constant(psd: PhaseNoisePSD, f0_hz: float) -> float:
    """The constant ``K = b_th f0 / (4 ln2 b_fl)`` of ``r_N = K/(K+N)``.

    Returns ``inf`` when the flicker coefficient is zero (pure thermal noise:
    jitter realizations are independent for every ``N``).
    """
    if f0_hz <= 0.0:
        raise ValueError("f0 must be > 0")
    if psd.b_flicker_hz2 == 0.0:
        return float("inf")
    return psd.b_thermal_hz * f0_hz / (4.0 * np.log(2.0) * psd.b_flicker_hz2)


def thermal_ratio(psd: PhaseNoisePSD, f0_hz: float, n: ArrayLike) -> ArrayLike:
    """``r_N`` — thermal fraction of ``sigma^2_N`` at accumulation length ``N``."""
    n_array = np.asarray(n, dtype=float)
    if np.any(n_array < 0):
        raise ValueError("N must be >= 0")
    constant = ratio_constant(psd, f0_hz)
    if np.isinf(constant):
        result = np.ones_like(n_array)
    else:
        result = constant / (constant + n_array)
    return scalar_like(result, n)


def independence_threshold(
    psd: PhaseNoisePSD, f0_hz: float, min_thermal_ratio: float = 0.95
) -> float:
    """Largest ``N`` for which ``r_N`` stays above ``min_thermal_ratio``.

    Solving ``K/(K+N) > r`` gives ``N < K (1-r)/r``.  The paper's example:
    ``K = 5354``, ``r = 0.95`` gives ``N < 281.8``, quoted as ``N < 281``.
    Returns ``inf`` when there is no flicker noise.
    """
    if not 0.0 < min_thermal_ratio < 1.0:
        raise ValueError("min_thermal_ratio must be in (0, 1)")
    constant = ratio_constant(psd, f0_hz)
    if np.isinf(constant):
        return float("inf")
    return constant * (1.0 - min_thermal_ratio) / min_thermal_ratio


@dataclass(frozen=True)
class IndependenceBudget:
    """Summary of how long jitter accumulation may run before dependence matters."""

    ratio_constant: float
    min_thermal_ratio: float
    max_accumulation_length: float
    f0_hz: float

    @property
    def max_accumulation_time_s(self) -> float:
        """The threshold expressed as an accumulation time ``N / f0`` [s]."""
        if np.isinf(self.max_accumulation_length):
            return float("inf")
        return self.max_accumulation_length / self.f0_hz


def independence_budget(
    psd: PhaseNoisePSD, f0_hz: float, min_thermal_ratio: float = 0.95
) -> IndependenceBudget:
    """Bundle ``K``, the requested ratio and the resulting threshold."""
    return IndependenceBudget(
        ratio_constant=ratio_constant(psd, f0_hz),
        min_thermal_ratio=min_thermal_ratio,
        max_accumulation_length=independence_threshold(psd, f0_hz, min_thermal_ratio),
        f0_hz=f0_hz,
    )
