"""The multilevel randomness-harvesting model (Fig. 3 of the paper).

The classical approach (Fig. 2) starts from *assumptions* about the raw random
analog signal (RRAS) — typically "the period jitter is Gaussian with variance
sigma^2 and independent realizations" — and combines them with a model of the
digitization to obtain the entropy per bit.

The multilevel approach replaces the assumptions by a chain of models:

    transistor-level noise (thermal + flicker, Section III-A)
        -> ISF conversion to excess phase (Section III-C-1, Hajimiri)
        -> phase-noise PSD  S_phi(f) = b_fl/f^3 + b_th/f^2  (Eq. 10)
        -> accumulated jitter variance  sigma^2_N  (Eq. 11)
        -> thermal/flicker decomposition, r_N, independence threshold
        -> jitter parameters handed to the digitization / entropy model.

:class:`MultilevelModel` wires that chain together, starting either from a
technology node (fully bottom-up) or from measured/assumed phase-noise
coefficients (the calibration path used to mirror the paper's experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..noise.technology import TechnologyNode, get_node
from ..noise.transistor import InverterCell
from ..phase.isf import (
    ImpulseSensitivityFunction,
    phase_psd_from_inverter,
    ring_oscillation_frequency,
)
from ..phase.psd import PhaseNoisePSD
from .ratio import independence_budget, ratio_constant, thermal_ratio
from .theory import decompose_sigma2_n, sigma2_n_closed_form


@dataclass(frozen=True)
class JitterParameters:
    """The jitter figures a digitization/entropy model needs for one sampling choice.

    Attributes
    ----------
    accumulation_length:
        Number of oscillator periods ``N`` accumulated between two samples.
    total_variance_s2:
        Total accumulated variance ``sigma^2_N`` [s^2] (thermal + flicker).
    thermal_variance_s2:
        The thermal-only part — the part whose realizations are mutually
        independent and therefore the part that may legitimately be counted
        as fresh entropy at every sample.
    thermal_ratio:
        ``r_N`` = thermal / total.
    """

    accumulation_length: int
    total_variance_s2: float
    thermal_variance_s2: float
    thermal_ratio: float


class MultilevelModel:
    """End-to-end Fig. 3 pipeline for a ring-oscillator entropy source."""

    def __init__(self, f0_hz: float, psd: PhaseNoisePSD) -> None:
        if f0_hz <= 0.0:
            raise ValueError("f0 must be > 0")
        self.f0_hz = float(f0_hz)
        self.psd = psd

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_technology(
        cls,
        node: Union[TechnologyNode, str],
        n_stages: int,
        isf: Optional[ImpulseSensitivityFunction] = None,
    ) -> "MultilevelModel":
        """Fully bottom-up construction from a CMOS technology node."""
        if isinstance(node, str):
            node = get_node(node)
        return cls.from_inverter(node.inverter(), n_stages, isf=isf)

    @classmethod
    def from_inverter(
        cls,
        cell: InverterCell,
        n_stages: int,
        isf: Optional[ImpulseSensitivityFunction] = None,
    ) -> "MultilevelModel":
        """Bottom-up construction from an explicit inverter cell."""
        f0 = ring_oscillation_frequency(cell, n_stages)
        psd = phase_psd_from_inverter(cell, n_stages, isf=isf)
        return cls(f0, psd)

    @classmethod
    def from_phase_noise(
        cls, f0_hz: float, b_thermal_hz: float, b_flicker_hz2: float
    ) -> "MultilevelModel":
        """Calibrated construction from (measured or assumed) Eq. 10 coefficients."""
        return cls(f0_hz, PhaseNoisePSD(b_thermal_hz, b_flicker_hz2))

    # -- derived quantities ---------------------------------------------------

    @property
    def thermal_jitter_std_s(self) -> float:
        """Per-period thermal jitter ``sigma_th = sqrt(b_th/f0^3)`` [s]."""
        return float(np.sqrt(self.psd.thermal_period_jitter_variance(self.f0_hz)))

    @property
    def ratio_constant(self) -> float:
        """``K`` of ``r_N = K/(K+N)``."""
        return ratio_constant(self.psd, self.f0_hz)

    def sigma2_n(self, n: Union[int, Sequence[int], np.ndarray]) -> np.ndarray | float:
        """Theoretical accumulated variance ``sigma^2_N`` (Eq. 11) [s^2]."""
        return sigma2_n_closed_form(self.psd, self.f0_hz, n)

    def thermal_ratio(self, n: Union[int, Sequence[int], np.ndarray]) -> np.ndarray | float:
        """``r_N`` at the requested accumulation length(s)."""
        return thermal_ratio(self.psd, self.f0_hz, n)

    def independence_threshold(self, min_thermal_ratio: float = 0.95) -> float:
        """Largest ``N`` at which ``r_N`` still exceeds ``min_thermal_ratio``."""
        return independence_budget(
            self.psd, self.f0_hz, min_thermal_ratio
        ).max_accumulation_length

    def jitter_parameters(self, accumulation_length: int) -> JitterParameters:
        """Jitter figures for a digitizer that samples every ``N`` periods."""
        if accumulation_length < 1:
            raise ValueError("accumulation length must be >= 1")
        decomposition = decompose_sigma2_n(
            self.psd, self.f0_hz, accumulation_length
        )
        return JitterParameters(
            accumulation_length=int(accumulation_length),
            total_variance_s2=decomposition.total_s2,
            thermal_variance_s2=decomposition.thermal_s2,
            thermal_ratio=decomposition.thermal_fraction,
        )

    def accumulation_for_target_thermal_jitter(
        self, target_std_s: float
    ) -> int:
        """Smallest ``N`` whose *thermal-only* accumulated std reaches the target.

        This answers the designer's question "how long must I accumulate for
        the (exploitable) thermal jitter to reach e.g. half a period?", using
        only the independent part of the jitter as the paper recommends.
        """
        if target_std_s <= 0.0:
            raise ValueError("target jitter must be > 0")
        thermal_variance = self.psd.thermal_period_jitter_variance(self.f0_hz)
        if thermal_variance == 0.0:
            raise ValueError("oscillator has no thermal noise; target unreachable")
        # sigma^2_N,th = 2 N sigma_th^2  =>  N = target^2 / (2 sigma_th^2)
        return int(np.ceil(target_std_s**2 / (2.0 * thermal_variance)))

    def __repr__(self) -> str:
        return (
            f"MultilevelModel(f0={self.f0_hz:.4g} Hz, "
            f"b_th={self.psd.b_thermal_hz:.4g} Hz, "
            f"b_fl={self.psd.b_flicker_hz2:.4g} Hz^2)"
        )
