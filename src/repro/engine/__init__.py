"""Batched simulation engine: vectorized multi-instance synthesis and campaigns.

This package scales the paper's experiments from one oscillator pair at a
time to whole ensembles:

* :mod:`repro.engine.batch` — ``(B, n_periods)`` vectorized thermal + flicker
  synthesis with one spawned RNG stream per instance
  (:class:`BatchedOscillatorEnsemble`); the scalar oscillator/synthesizer
  classes are thin ``B = 1`` views over it.
* :mod:`repro.engine.backends` — pluggable executors of the synthesis hot
  kernel (:class:`NumpyBackend` reference, :class:`ThreadedBackend`), all
  bit-for-bit equivalent; selected with ``backend=`` / ``--backend`` /
  ``REPRO_BACKEND``.
* :mod:`repro.engine.bits` — the batched TRNG bit pipeline: ensemble
  D-flip-flop sampling (:class:`BatchedDFlipFlopSampler`) and whole
  eRO-TRNG ensembles (:class:`BatchedEROTRNG`) producing ``(B, n_bits)``
  raw-bit records with streaming (chunk-invariant) semantics; the scalar
  digitizer and TRNG are thin ``B = 1`` views over it.
* :mod:`repro.engine.streaming` — chunked generation and online ``sigma^2_N``
  accumulation, so campaigns and bit generation run in O(chunk) memory for
  arbitrarily long records.
* :mod:`repro.engine.campaign` — batched Fig. 7 campaigns (estimate + fit
  every instance in one pass) and batched bit campaigns
  (:func:`batched_bit_campaign`: entropy-vs-divider tables with per-ensemble
  AIS31 evaluation).
* :mod:`repro.engine.distributed` — the sharded campaign runner: campaign
  specs with deterministic per-shard RNG re-derivation, serial/multi-process
  executors behind :func:`run_campaign`, result merging and shard-level
  checkpoint/resume.  ``python -m repro.campaigns`` is its CLI.

``streaming``, ``campaign`` and ``distributed`` are imported lazily:
``batch``/``bits`` sit below the measurement/core layers, while the others
sit above them, and the scalar synthesis layer imports ``batch`` during
package initialisation.
"""

from __future__ import annotations

from .backends import (
    NumpyBackend,
    SynthesisBackend,
    ThreadedBackend,
    resolve_backend,
)
from .batch import (
    BatchedJitterDecomposition,
    BatchedJitterSynthesizer,
    BatchedOscillatorEnsemble,
    spawn_generators,
)
from .bits import (
    BatchedDFlipFlopSampler,
    BatchedEROTRNG,
    BatchedSamplingResult,
    square_wave_level_batch,
)

__all__ = [
    "BatchedCampaignResult",
    "BatchedDFlipFlopSampler",
    "BatchedEROTRNG",
    "BatchedJitterDecomposition",
    "BatchedJitterSynthesizer",
    "BatchedOscillatorEnsemble",
    "BatchedSamplingResult",
    "BitCampaignResult",
    "BitCampaignSpec",
    "MultiprocessExecutor",
    "NumpyBackend",
    "SerialExecutor",
    "ShardPlan",
    "Sigma2NCampaignSpec",
    "StreamingSigma2NEstimator",
    "SynthesisBackend",
    "ThreadedBackend",
    "backends",
    "batched_bit_campaign",
    "batched_relative_jitter_campaign",
    "batched_sigma2_n_campaign",
    "bits",
    "campaign",
    "batch",
    "distributed",
    "resolve_backend",
    "fit_sigma2_n_curves",
    "generate_bits_exact",
    "plan_shards",
    "run_campaign",
    "spawn_generators",
    "square_wave_level_batch",
    "stream_bits",
    "streaming",
    "streaming_accumulated_variance_curves",
    "streaming_sigma2_n_estimator",
]

_LAZY_EXPORTS = {
    "BatchedCampaignResult": "campaign",
    "BitCampaignResult": "campaign",
    "batched_bit_campaign": "campaign",
    "batched_relative_jitter_campaign": "campaign",
    "batched_sigma2_n_campaign": "campaign",
    "fit_sigma2_n_curves": "campaign",
    "StreamingSigma2NEstimator": "streaming",
    "generate_bits_exact": "streaming",
    "stream_bits": "streaming",
    "streaming_accumulated_variance_curves": "streaming",
    "streaming_sigma2_n_estimator": "streaming",
    "BitCampaignSpec": "distributed",
    "MultiprocessExecutor": "distributed",
    "SerialExecutor": "distributed",
    "ShardPlan": "distributed",
    "Sigma2NCampaignSpec": "distributed",
    "plan_shards": "distributed",
    "run_campaign": "distributed",
    "campaign": None,
    "streaming": None,
    "distributed": None,
}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        from importlib import import_module

        module_name = _LAZY_EXPORTS[name] or name
        module = import_module(f".{module_name}", __name__)
        if _LAZY_EXPORTS[name] is None:
            return module
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
