"""Streaming (chunked) campaigns: O(chunk) memory for arbitrarily long records.

The one-shot estimators in :mod:`repro.core.sigma_n` hold the whole jitter
record in memory, which caps a sigma^2_N campaign at a few 10^7 periods.  This
module provides:

* :class:`StreamingSigma2NEstimator` — an online accumulator of the
  mean-of-squares sigma^2_N estimator over a sweep of ``N``, fed with
  consecutive chunks of a (batched) jitter record.  It keeps only a
  ``2 N_max - 1``-sample tail between chunks, so memory is
  ``O(batch * (chunk + N_max))`` regardless of the total record length, while
  *every* overlapping (or disjoint) window of the underlying record is still
  counted exactly once — including the windows that span chunk boundaries.
* :func:`streaming_accumulated_variance_curves` — a chunked drop-in for
  :func:`repro.core.sigma_n.accumulated_variance_curves` that synthesizes the
  record chunk by chunk from an ensemble/synthesizer/oscillator.
* :func:`stream_bits` / :func:`generate_bits_exact` — chunked TRNG bit
  generation for scalar and batched TRNGs.  Since the batched bit pipeline
  (:mod:`repro.engine.bits`) the generators themselves stream in fixed
  synthesis blocks, so raw chunked generation is *bit-for-bit independent*
  of the chunk size and peak memory is bounded by the synthesis block, not
  by ``O(n_bits * divider)``.

Statistical caveat for *generated* streams: the phase-noise synthesizer draws
statistically independent stretches on every call, so a chunked synthesis
truncates flicker correlations at the chunk length.  Choose
``chunk_periods >> max(n_sweep)`` (the estimator enforces a 4x margin by
default) so the sigma^2_N points are unaffected; a chunked campaign then
matches the one-shot campaign within the estimator's statistical scatter.
When the estimator is fed chunks of an *existing* record, the window set is
identical to the one-shot estimator and results agree to floating-point
accuracy.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..core.sigma_n import (
    AccumulatedVarianceCurve,
    AccumulatedVariancePoint,
    default_n_sweep,
)


class StreamingSigma2NEstimator:
    """Online mean-of-squares estimator of ``sigma^2_N`` over a sweep of ``N``.

    Feed consecutive chunks of one (or ``B`` parallel) jitter records with
    :meth:`update`; read the accumulated curves with :meth:`curves`.  Windows
    spanning chunk boundaries are recovered from a retained tail of
    ``2 N_max - 1`` samples, so the set of counted ``s_N`` windows is exactly
    the set the one-shot estimator uses on the concatenated record.

    Parameters
    ----------
    n_sweep:
        Accumulation lengths ``N`` to track.
    batch_size:
        Number of parallel records ``B`` (rows of the chunks).
    overlapping:
        When True every window start is used; when False only starts at
        multiples of ``2N`` (the one-shot disjoint-window semantics).
    """

    def __init__(
        self,
        n_sweep: Sequence[int],
        batch_size: int = 1,
        overlapping: bool = True,
    ) -> None:
        sweep = sorted({int(n) for n in n_sweep})
        if not sweep:
            raise ValueError("n_sweep must contain at least one N")
        if sweep[0] < 1:
            raise ValueError(f"N must be >= 1, got {sweep[0]!r}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size!r}")
        self.n_sweep = sweep
        self.batch_size = int(batch_size)
        self.overlapping = bool(overlapping)
        self._max_n = sweep[-1]
        self._tail = np.empty((self.batch_size, 0))
        self._tail_start = 0  # global index of the first tail sample
        self._n_samples = 0  # total samples seen per record
        self._sum_sq = {n: np.zeros(self.batch_size) for n in sweep}
        self._counts = {n: 0 for n in sweep}
        self._next_start = {n: 0 for n in sweep}  # next uncounted window start

    @property
    def n_samples_seen(self) -> int:
        """Total samples consumed per record so far."""
        return self._n_samples

    def update(self, chunk: np.ndarray) -> None:
        """Consume the next chunk (``(B, m)`` array, or ``(m,)`` when B = 1)."""
        data = np.asarray(chunk, dtype=float)
        if data.ndim == 1:
            data = data[None, :]
        if data.ndim != 2 or data.shape[0] != self.batch_size:
            raise ValueError(
                f"chunk must have shape ({self.batch_size}, m), got {data.shape}"
            )
        if data.shape[1] == 0:
            return
        buffer = np.concatenate([self._tail, data], axis=1)
        buffer_start = self._tail_start
        length = buffer.shape[1]
        cumulative = np.concatenate(
            [np.zeros((self.batch_size, 1)), np.cumsum(buffer, axis=1)], axis=1
        )
        for n in self.n_sweep:
            window = 2 * n
            last_start = buffer_start + length - window  # global, inclusive
            start = self._next_start[n]
            if not self.overlapping:
                # Disjoint windows begin at global multiples of 2N.
                start = -(-start // window) * window
            if last_start < start:
                continue
            lo = start - buffer_start
            stride = window if not self.overlapping else 1
            c0 = cumulative[:, lo : length - window + 1 : stride]
            c1 = cumulative[:, lo + n : length - n + 1 : stride]
            c2 = cumulative[:, lo + window : length + 1 : stride]
            values = (c2 - c1) - (c1 - c0)
            self._sum_sq[n] += np.einsum("ij,ij->i", values, values)
            self._counts[n] += values.shape[1]
            self._next_start[n] = (
                start + stride * values.shape[1]
                if not self.overlapping
                else last_start + 1
            )
        self._n_samples += data.shape[1]
        keep = min(length, 2 * self._max_n - 1)
        self._tail = buffer[:, length - keep :].copy()
        self._tail_start = buffer_start + length - keep

    def export_state(self) -> Dict[str, np.ndarray]:
        """Snapshot of the accumulator as plain arrays (picklable, ``.npz``-able).

        The state is complete: :meth:`from_state` reconstructs an estimator
        that continues accumulating (the boundary tail is included), and
        :meth:`merge_rows` combines states of disjoint row-shards.  Array
        layout: ``sum_sq`` is ``(P, B)`` with one row per sweep ``N`` (in
        ``n_sweep`` order); ``counts``/``next_start`` are ``(P,)``.
        """
        sweep = self.n_sweep
        return {
            "n_sweep": np.array(sweep, dtype=np.int64),
            "overlapping": np.array(self.overlapping),
            "n_samples": np.array(self._n_samples, dtype=np.int64),
            "sum_sq": np.stack([self._sum_sq[n] for n in sweep]),
            "counts": np.array([self._counts[n] for n in sweep], dtype=np.int64),
            "next_start": np.array(
                [self._next_start[n] for n in sweep], dtype=np.int64
            ),
            "tail": self._tail.copy(),
            "tail_start": np.array(self._tail_start, dtype=np.int64),
        }

    @classmethod
    def from_state(cls, state) -> "StreamingSigma2NEstimator":
        """Reconstruct an estimator from an :meth:`export_state` snapshot."""
        sum_sq = np.asarray(state["sum_sq"], dtype=float)
        estimator = cls(
            [int(n) for n in np.asarray(state["n_sweep"])],
            batch_size=int(sum_sq.shape[1]),
            overlapping=bool(np.asarray(state["overlapping"])),
        )
        estimator._n_samples = int(np.asarray(state["n_samples"]))
        counts = np.asarray(state["counts"])
        next_start = np.asarray(state["next_start"])
        for index, n in enumerate(estimator.n_sweep):
            estimator._sum_sq[n] = sum_sq[index].copy()
            estimator._counts[n] = int(counts[index])
            estimator._next_start[n] = int(next_start[index])
        estimator._tail = np.asarray(state["tail"], dtype=float).copy()
        estimator._tail_start = int(np.asarray(state["tail_start"]))
        return estimator

    @classmethod
    def merge_rows(
        cls, estimators: Sequence["StreamingSigma2NEstimator"]
    ) -> "StreamingSigma2NEstimator":
        """Merge estimators that consumed disjoint *row-shards* of one record set.

        Every estimator must have seen the same scalar timeline (same sweep,
        overlap mode, sample count and window bookkeeping — which is exactly
        what row-range shards of one campaign produce); the merged estimator
        holds the concatenated rows, in argument order, and is
        indistinguishable from one estimator fed the stacked records.  Memory
        stays ``O(P x B_total + B_total x N_max)`` — no record is revisited.
        """
        estimators = list(estimators)
        if not estimators:
            raise ValueError("need at least one estimator to merge")
        first = estimators[0]
        for other in estimators[1:]:
            if other.n_sweep != first.n_sweep:
                raise ValueError("estimators disagree on the N sweep")
            if other.overlapping != first.overlapping:
                raise ValueError("estimators disagree on the overlap mode")
            if other._n_samples != first._n_samples:
                raise ValueError(
                    "estimators consumed different record lengths: "
                    f"{first._n_samples} vs {other._n_samples} samples"
                )
            if other._counts != first._counts:
                raise ValueError("estimators disagree on window counts")
            if other._next_start != first._next_start:
                raise ValueError("estimators disagree on window bookkeeping")
            if other._tail_start != first._tail_start:
                raise ValueError("estimators disagree on the retained tail")
        merged = cls(
            first.n_sweep,
            batch_size=sum(e.batch_size for e in estimators),
            overlapping=first.overlapping,
        )
        merged._n_samples = first._n_samples
        for n in first.n_sweep:
            merged._sum_sq[n] = np.concatenate([e._sum_sq[n] for e in estimators])
            merged._counts[n] = first._counts[n]
            merged._next_start[n] = first._next_start[n]
        merged._tail = np.concatenate([e._tail for e in estimators], axis=0)
        merged._tail_start = first._tail_start
        return merged

    def curves(
        self, f0_hz, min_realizations: int = 8
    ) -> List[AccumulatedVarianceCurve]:
        """Curves accumulated so far (one per record row).

        Sweep points with fewer than two realizations, or fewer than
        ``min_realizations`` effectively independent windows, are skipped —
        the same rule as the one-shot estimators.
        """
        f0 = np.asarray(f0_hz, dtype=float)
        if f0.ndim == 0:
            f0 = np.full(self.batch_size, float(f0))
        if f0.shape != (self.batch_size,):
            raise ValueError(
                f"f0_hz must be a scalar or shape ({self.batch_size},) array"
            )
        usable = []
        for n in self.n_sweep:
            count = self._counts[n]
            effective = (
                self._n_samples // (2 * n) if self.overlapping else count
            )
            if count < 2 or effective < min_realizations:
                continue
            usable.append((n, self._sum_sq[n] / count, count))
        if not usable:
            raise ValueError("record too short to estimate any sigma^2_N point")
        curves = []
        for row in range(self.batch_size):
            points = [
                AccumulatedVariancePoint(
                    n_accumulations=n,
                    sigma2_n_s2=float(sigma2[row]),
                    n_realizations=count,
                )
                for n, sigma2, count in usable
            ]
            curves.append(
                AccumulatedVarianceCurve(points=points, f0_hz=float(f0[row]))
            )
        return curves


def _source_batch_size(source) -> int:
    """Batch size of a jitter source (1 for scalar oscillators/synthesizers)."""
    return int(getattr(source, "batch_size", 1))


def streaming_sigma2_n_estimator(
    source,
    n_periods: int,
    chunk_periods: int,
    n_sweep: Optional[Sequence[int]] = None,
    overlapping: bool = True,
    min_realizations: int = 8,
) -> StreamingSigma2NEstimator:
    """Feed a chunked synthesized record into a fresh streaming estimator.

    This is the accumulation step of a chunked campaign, factored out so that
    sharded runs (:mod:`repro.engine.distributed`) can ship the estimator
    *state* between processes and merge shards with
    :meth:`StreamingSigma2NEstimator.merge_rows` instead of materializing
    curves per shard.  The sweep-defaulting and chunk-length validation rules
    depend only on ``n_periods``/``chunk_periods`` (never on the batch size),
    so every row-shard of one campaign resolves the same sweep.
    """
    if n_periods < 1:
        raise ValueError("n_periods must be >= 1")
    if chunk_periods < 1:
        raise ValueError("chunk_periods must be >= 1")
    chunk_periods = int(min(chunk_periods, n_periods))
    if n_sweep is None:
        max_n = max(
            min(n_periods // (2 * min_realizations), chunk_periods // 4), 1
        )
        n_sweep = default_n_sweep(max_n)
    max_requested = max(int(n) for n in n_sweep)
    if 4 * max_requested > chunk_periods and chunk_periods < n_periods:
        raise ValueError(
            f"chunk_periods = {chunk_periods} is too short for N up to "
            f"{max_requested}: chunked flicker synthesis needs "
            f"chunk_periods >= 4 * max(n_sweep)"
        )
    estimator = StreamingSigma2NEstimator(
        n_sweep,
        batch_size=_source_batch_size(source),
        overlapping=overlapping,
    )
    remaining = int(n_periods)
    while remaining > 0:
        step = min(chunk_periods, remaining)
        estimator.update(source.jitter(step))
        remaining -= step
    return estimator


def streaming_accumulated_variance_curves(
    source,
    n_periods: int,
    chunk_periods: int,
    n_sweep: Optional[Sequence[int]] = None,
    overlapping: bool = True,
    min_realizations: int = 8,
    f0_hz=None,
) -> List[AccumulatedVarianceCurve]:
    """Chunked sigma^2_N campaign over a synthesized record of any length.

    Parameters
    ----------
    source:
        Anything with a ``jitter(n)`` method and an ``f0_hz`` attribute: a
        :class:`repro.engine.batch.BatchedOscillatorEnsemble`, a batched or
        scalar synthesizer, or a :class:`repro.oscillator.ring.RingOscillator`.
        Periods are drawn ``chunk_periods`` at a time, so peak memory is
        ``O(batch * chunk_periods)`` regardless of ``n_periods``.
    n_periods:
        Total record length per instance.
    chunk_periods:
        Chunk length.  Must be at least ``4 * max(n_sweep)`` so the chunked
        flicker synthesis (independent stretches per chunk) cannot distort the
        largest accumulation windows.
    n_sweep, overlapping, min_realizations:
        As in :func:`repro.core.sigma_n.accumulated_variance_curves`; the
        default sweep is derived from the *total* ``n_periods``, capped at a
        quarter of ``chunk_periods``.
    f0_hz:
        Override for sources that do not expose ``f0_hz``.
    """
    if f0_hz is None:
        f0_hz = source.f0_hz
    estimator = streaming_sigma2_n_estimator(
        source,
        n_periods,
        chunk_periods,
        n_sweep=n_sweep,
        overlapping=overlapping,
        min_realizations=min_realizations,
    )
    return estimator.curves(f0_hz, min_realizations=min_realizations)


def _generate_rows(trng, request: int) -> List[np.ndarray]:
    """Normalize one ``generate`` call to a list of per-row 1-D bit arrays."""
    output = trng.generate(request)
    if isinstance(output, np.ndarray):
        return list(output) if output.ndim == 2 else [output]
    return [np.asarray(row) for row in output]


def stream_bits(
    trng,
    n_bits: int,
    chunk_bits: int = 4096,
    max_empty_chunks: int = 32,
) -> Iterator[np.ndarray]:
    """Yield post-processed TRNG bits in chunks until ``n_bits`` are produced.

    Each step generates ``chunk_bits`` *raw* bits and applies the TRNG's
    post-processor, so peak memory is bounded by the per-chunk synthesis
    blocks instead of the full run.  A scalar
    :class:`repro.trng.ero_trng.EROTRNG` yields 1-D arrays concatenating to
    exactly ``n_bits`` elements; a :class:`repro.engine.bits.BatchedEROTRNG`
    (anything exposing ``batch_size``) yields ``(B, k)`` blocks concatenating
    to ``(B, n_bits)``.  With a decimating post-processor the per-row output
    lengths differ, so rows are buffered and each yielded block advances all
    rows in lockstep.

    Chunk invariance: both TRNG classes generate bits with *streaming*
    semantics (consecutive ``generate`` calls continue the clock timelines on
    a fixed synthesis-block grid), so without a post-processor the yielded
    stream is bit-for-bit independent of ``chunk_bits`` — including chunk
    sizes that split a divider period across synthesis blocks.  A decimating
    post-processor is applied per raw chunk (as before), so *its* output
    depends on the chunking of its input.

    Raises ``RuntimeError`` when ``max_empty_chunks`` consecutive chunks make
    no progress (a pathological decimating post-processor).
    """
    if n_bits < 1:
        raise ValueError("n_bits must be >= 1")
    if chunk_bits < 1:
        raise ValueError("chunk_bits must be >= 1")
    batched = getattr(trng, "batch_size", None) is not None
    produced = 0
    empty_streak = 0
    decimating = getattr(trng, "postprocessor", None) is not None
    buffers: Optional[List[np.ndarray]] = None
    while produced < n_bits:
        # Without a post-processor the output length is the raw length, so the
        # final chunk can be trimmed to what is still needed.
        request = chunk_bits if decimating else min(chunk_bits, n_bits - produced)
        rows = _generate_rows(trng, request)
        if buffers is None:
            buffers = rows
        else:
            buffers = [
                np.concatenate([held, new]) for held, new in zip(buffers, rows)
            ]
        available = min(row.size for row in buffers)
        take = min(available, n_bits - produced)
        if take == 0:
            empty_streak += 1
            if empty_streak >= max_empty_chunks:
                raise RuntimeError(
                    f"post-processor produced no bits in {empty_streak} "
                    f"consecutive chunks of {chunk_bits} raw bits"
                )
            continue
        empty_streak = 0
        chunk = (
            np.stack([row[:take] for row in buffers])
            if batched
            else buffers[0][:take]
        )
        buffers = [row[take:] for row in buffers]
        produced += take
        yield chunk


def generate_bits_exact(
    trng, n_bits: int, chunk_bits: Optional[int] = None
) -> np.ndarray:
    """Exactly ``n_bits`` post-processed bits from a TRNG, generated chunkwise.

    This is the helper behind :meth:`repro.trng.ero_trng.EROTRNG.generate_exact`
    and :meth:`repro.engine.bits.BatchedEROTRNG.generate_exact`; unlike
    ``generate``, the output length does not depend on the post-processor's
    decimation ratio.  Scalar TRNGs get a 1-D array, batched TRNGs a
    ``(B, n_bits)`` array.
    """
    if n_bits < 1:
        raise ValueError("n_bits must be >= 1")
    if chunk_bits is None:
        chunk_bits = max(min(n_bits, 8192), 64)
    chunks = list(stream_bits(trng, n_bits, chunk_bits=chunk_bits))
    return np.concatenate(chunks, axis=-1)
