"""Counter-based RNG contract: draws as pure functions of indices.

The engine's original reproducibility contract ("spawn") ties every stream
to a per-row ``SeedSequence``-spawned ``numpy.random.Generator``: correct,
but stateful — shards must re-derive and slice the full spawn tree, and a
GPU-class backend cannot reproduce a draw without holding the exact
``Generator`` object at the exact stream position.

This module adds the **"philox" contract**: a row's stream is a
:class:`PhiloxRowStream`, and every draw is keyed by

    ``(root_key, *path, block)``  →  ``numpy.random.Philox`` key,

where ``path`` starts at ``(row,)`` (sub-streams extend it: the two rings
of a TRNG instance are ``(row, 0)`` and ``(row, 1)``) and ``block`` is the
per-stream draw-call counter.  The ``offset`` within a block is the Philox
counter itself, starting at zero every call.  A draw is therefore a pure
function of ``(root_key, row, block, offset)``: recomputing any sub-range
of rows — or any single block — in isolation reproduces the full run
bit-for-bit, with nothing to spawn, pickle, or slice.  Shard messages
shrink to ``(root_key, row_range)`` and a future vectorized-Philox /
CuPy/JAX backend can evaluate the same keys on device.

Key-derivation collision freedom: a stream at tree depth ``d`` (``len(path)
== d``) derives its draws with spawn keys of length ``d + 1``; sibling
streams differ in their last ``path`` element and parent/child keys differ
in length, so no two distinct ``(stream, block)`` pairs share a key.

Contract selection
------------------
``resolve_rng_contract`` decides which contract an entry point uses:

1. an explicit ``rng_contract=`` argument wins;
2. a ``"philox[:N]"`` backend *spec string* implies ``"philox"`` (campaign
   specs pin the contract their backend selection means);
3. the ``REPRO_RNG_CONTRACT`` environment variable;
4. a ``REPRO_BACKEND=philox[:N]`` environment default implies ``"philox"``;
5. otherwise the legacy ``"spawn"`` contract.

Every derivation funnels through :func:`derive_row_streams` (which
:func:`repro.engine.batch.spawn_generators` wraps), so one environment
switch moves the whole stack — engines, campaigns, shards, serving — onto
the same contract coherently, and every bitwise-invariance property
(scalar view == batched row, sharded == unsharded, coalesced == solo)
holds *within* each contract.  Mixing contracts is refused where it would
silently corrupt results (see :mod:`repro.engine.distributed.merge`).
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

#: Environment variable selecting the process-default RNG contract.
RNG_CONTRACT_ENV_VAR = "REPRO_RNG_CONTRACT"

#: The stream contracts this engine speaks.  ``"spawn"`` is the legacy
#: spawn-tree contract (per-row ``SeedSequence``-spawned SFC64 streams);
#: ``"philox"`` is the counter-based index-keyed contract.
RNG_CONTRACTS = ("spawn", "philox")

#: Contract assumed when nothing selects one (the seed repo's behavior).
DEFAULT_RNG_CONTRACT = "spawn"

KeyPath = Tuple[int, ...]


def validate_rng_contract(contract: str) -> str:
    """Validate a contract name, returning its canonical string form."""
    name = str(contract).strip()
    if name not in RNG_CONTRACTS:
        raise ValueError(
            f"unknown rng_contract {contract!r}: choose one of "
            f"{', '.join(RNG_CONTRACTS)}"
        )
    return name


def _philox_backend_spec(spec: Optional[str]) -> bool:
    """Whether a backend spec string selects the philox tier."""
    if not spec:
        return False
    return str(spec).strip().partition(":")[0] == "philox"


def default_rng_contract() -> str:
    """The process-default contract (environment-driven).

    ``REPRO_RNG_CONTRACT`` wins; a ``REPRO_BACKEND=philox[:N]`` default
    implies ``"philox"`` (so the CI philox tier flips streams and executor
    together); otherwise :data:`DEFAULT_RNG_CONTRACT`.
    """
    contract = os.environ.get(RNG_CONTRACT_ENV_VAR)
    if contract:
        return validate_rng_contract(contract)
    if _philox_backend_spec(os.environ.get("REPRO_BACKEND")):
        return "philox"
    return DEFAULT_RNG_CONTRACT


def resolve_rng_contract(
    contract: Optional[str] = None, backend_spec: Optional[str] = None
) -> str:
    """Resolve the contract an entry point should derive streams under.

    ``contract`` (when given) is explicit and wins; else a philox backend
    spec string implies ``"philox"``; else the environment default.  The
    result is always a pinned, serializable contract name — specs and
    serving requests store it so a computation replays identically on
    hosts with different environments.
    """
    if contract is not None:
        return validate_rng_contract(contract)
    if _philox_backend_spec(backend_spec):
        return "philox"
    return default_rng_contract()


def root_key_of(seed) -> Tuple[object, KeyPath]:
    """Split a stateless seed into ``(root_key, path_prefix)``.

    ``None`` pins fresh entropy (the seed-closure rule of specs and
    requests); an int is its own key; a ``SeedSequence`` contributes its
    entropy as the key and its ``spawn_key`` as the path prefix, so a
    spawned ``SeedSequence`` derives a *different* (but deterministic)
    key family than its parent.  ``Generator`` seeds are stateful and
    have no index key — callers must fall back to the spawn contract.
    """
    if seed is None:
        return int(np.random.SeedSequence().entropy), ()
    if isinstance(seed, (int, np.integer)):
        return int(seed), ()
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if entropy is None:  # not reachable with numpy >= 1.17, but explicit
            entropy = 0
        prefix = tuple(int(word) for word in seed.spawn_key)
        return entropy, prefix
    raise TypeError(
        f"the philox rng contract needs a stateless seed (int, SeedSequence "
        f"or None), got {type(seed).__name__}"
    )


class PhiloxRowStream:
    """One row's counter-based stream: state is ``(root_key, path, block)``.

    Duck-types the slice of the ``numpy.random.Generator`` API the engine
    consumes (``standard_normal``, ``normal``, ``random``, ``integers``,
    ``uniform``, ``choice``, ``spawn``).  Each draw call derives a fresh
    ``Philox`` generator from ``SeedSequence(entropy=root_key,
    spawn_key=(*path, block))``, draws, and increments ``block`` — so any
    draw can be recomputed in isolation from its indices alone, and the
    whole stream pickles as three plain values (what shrinks fabric shard
    messages to ``(root_key, row_range)``).

    Construction is lazy (no hashing until the first draw), so deriving a
    ``batch_size``-wide row range costs O(rows) object allocations only.
    """

    def __init__(
        self,
        root_key,
        path: Sequence[int] = (),
        block: int = 0,
        spawned: int = 0,
    ) -> None:
        self.root_key = root_key
        self.path: KeyPath = tuple(int(word) for word in path)
        self.block = int(block)
        self.spawned = int(spawned)

    # -- key derivation ------------------------------------------------------

    def block_generator(self, block: Optional[int] = None) -> np.random.Generator:
        """The ``Philox`` generator of one block (``None``: the next one).

        Exposed so property tests (and future device backends) can
        recompute any ``(row, block)`` draw without replaying the stream.
        """
        block = self.block if block is None else int(block)
        key = np.random.SeedSequence(
            entropy=self.root_key, spawn_key=self.path + (block,)
        )
        return np.random.Generator(np.random.Philox(key))

    def _draw(self, method: str, *args, **kwargs):
        generator = self.block_generator()
        self.block += 1
        return getattr(generator, method)(*args, **kwargs)

    # -- the Generator API slice the engine consumes -------------------------

    def standard_normal(self, size=None):
        """One block of standard-normal draws (offset = position in block)."""
        return self._draw("standard_normal", size)

    def normal(self, loc=0.0, scale=1.0, size=None):
        return self._draw("normal", loc, scale, size)

    def random(self, size=None):
        return self._draw("random", size)

    def integers(self, low, high=None, size=None, **kwargs):
        return self._draw("integers", low, high, size, **kwargs)

    def uniform(self, low=0.0, high=1.0, size=None):
        return self._draw("uniform", low, high, size)

    def choice(self, a, size=None, **kwargs):
        return self._draw("choice", a, size, **kwargs)

    def spawn(self, n_children: int) -> List["PhiloxRowStream"]:
        """``n_children`` independent sub-streams (path extended by index).

        Mirrors ``Generator.spawn`` (repeated spawns keep counting), but
        the children are index-keyed: child ``c`` of row ``r`` draws under
        ``(root_key, r, c, block)`` whatever the parent did before.
        """
        if n_children < 0:
            raise ValueError(f"n_children must be >= 0, got {n_children!r}")
        first = self.spawned
        self.spawned += int(n_children)
        return [
            PhiloxRowStream(self.root_key, self.path + (first + child,))
            for child in range(int(n_children))
        ]

    def __repr__(self) -> str:
        return (
            f"PhiloxRowStream(root_key={self.root_key!r}, path={self.path!r}, "
            f"block={self.block})"
        )


def philox_row_streams(
    seed, start: int, stop: int, path_prefix: KeyPath = ()
) -> List[PhiloxRowStream]:
    """Index-keyed streams of rows ``start..stop-1`` — no tree, no slicing.

    This is the philox contract's whole derivation: row ``r``'s stream is
    a function of ``(root_key, r)`` alone, so a shard derives exactly its
    own rows in O(rows) — the spawn contract must spawn the full
    ``batch_size``-wide tree first and slice it.
    """
    root_key, prefix = root_key_of(seed)
    prefix = prefix + tuple(path_prefix)
    return [
        PhiloxRowStream(root_key, prefix + (row,)) for row in range(start, stop)
    ]


StreamLike = Union[np.random.Generator, PhiloxRowStream]


def derive_row_streams(
    seed,
    batch_size: int,
    start: int = 0,
    stop: Optional[int] = None,
    rng_contract: Optional[str] = None,
) -> List[StreamLike]:
    """Per-row engine streams ``start..stop-1`` under a contract.

    The single derivation point both contracts share: ``"spawn"`` spawns
    the full ``batch_size``-wide tree and slices it (the legacy contract);
    ``"philox"`` derives only the requested range from indices.  In both
    cases row ``i`` of the result is *the* stream of global row
    ``start + i``, so sharded and unsharded runs agree bit-for-bit within
    a contract.

    ``rng_contract=None`` resolves the environment default.  A stateful
    ``Generator`` seed cannot be index-keyed: under an environment-implied
    philox default it falls back to the spawn contract (the seed's owner
    controls the stream), while an *explicit* ``rng_contract="philox"``
    raises — an explicit ask that cannot be honoured must not silently
    degrade.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size!r}")
    stop = int(batch_size) if stop is None else int(stop)
    start = int(start)
    if not 0 <= start < stop <= int(batch_size):
        raise ValueError(
            f"rows must satisfy 0 <= start < stop <= {batch_size}, "
            f"got [{start}, {stop})"
        )
    explicit = rng_contract is not None
    contract = resolve_rng_contract(rng_contract)
    if contract == "philox":
        if isinstance(seed, np.random.Generator):
            if explicit:
                raise ValueError(
                    "rng_contract='philox' requires a stateless seed (int, "
                    "SeedSequence or None): a Generator has no index key"
                )
            contract = "spawn"  # environment default degrades gracefully
        else:
            return philox_row_streams(seed, start, stop)
    # -- spawn contract: the legacy SeedSequence tree ------------------------
    if isinstance(seed, np.random.Generator):
        return list(seed.spawn(batch_size))[start:stop]
    if not isinstance(seed, np.random.SeedSequence):
        seed = np.random.SeedSequence(seed)
    parent = np.random.Generator(np.random.SFC64(seed))
    return list(parent.spawn(batch_size))[start:stop]


__all__ = [
    "DEFAULT_RNG_CONTRACT",
    "PhiloxRowStream",
    "RNG_CONTRACTS",
    "RNG_CONTRACT_ENV_VAR",
    "StreamLike",
    "default_rng_contract",
    "derive_row_streams",
    "philox_row_streams",
    "resolve_rng_contract",
    "root_key_of",
    "validate_rng_contract",
]
