"""Batched multi-instance jitter synthesis: ``(B, n_periods)`` records.

This module is the computational core of the batched simulation engine.  A
:class:`BatchedJitterSynthesizer` generates the period/jitter records of ``B``
oscillators *simultaneously* as ``(B, n_periods)`` arrays, and a
:class:`BatchedOscillatorEnsemble` wraps it with the oscillator-level API
(mirroring :class:`repro.oscillator.ring.RingOscillator`).

Reproducibility contract
------------------------
Each instance owns one independent RNG stream, obtained with
``numpy.random.Generator.spawn``.  Row ``i`` of every batched output is
**bit-for-bit identical** to what a scalar
:class:`repro.phase.synthesis.PeriodJitterSynthesizer` (or
:class:`~repro.oscillator.ring.RingOscillator`) produces when constructed with
the same child generator, because:

* the thermal draw ``sigma * standard_normal(n)`` consumes the stream exactly
  like the scalar ``rng.normal(0, sigma, n)``;
* the flicker white-noise buffer is drawn per row *after* the row's thermal
  draw (matching the scalar call order) and shaped with a batched FFT whose
  row-wise results equal the 1-D transform;
* rows whose thermal (or flicker) coefficient is zero skip the corresponding
  draw, exactly like the scalar synthesizer.

The scalar classes are thin ``B = 1`` views over this module, so the contract
is enforced structurally, and verified bit-for-bit by ``tests/engine``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..noise.flicker import FLICKER_METHODS
from ..phase.psd import PhaseNoisePSD
from .backends import BackendLike, resolve_backend
from .rng import derive_row_streams

SeedLike = Union[int, np.random.SeedSequence, np.random.Generator, None]


def spawn_generators(
    seed: SeedLike, batch_size: int, rng_contract: Optional[str] = None
) -> List[np.random.Generator]:
    """``batch_size`` independent per-row streams from one seed (or generator).

    This is the engine's seeding protocol: scalar instance ``i`` built from
    ``spawn_generators(seed, B)[i]`` reproduces batched row ``i`` bit-for-bit.
    What the streams *are* is decided by the RNG contract
    (:mod:`repro.engine.rng`): under the default ``"spawn"`` contract, seeds
    (ints / ``SeedSequence`` / ``None``) spawn children of an ``SFC64`` bit
    generator — the fastest generator numpy ships — and a ``Generator`` seed
    spawns children of its own bit generator.  Under the ``"philox"``
    contract the rows are index-keyed
    :class:`~repro.engine.rng.PhiloxRowStream` objects whose draws are pure
    functions of ``(root_key, row, block, offset)``.  ``rng_contract=None``
    resolves the process default (``REPRO_RNG_CONTRACT``, or a
    ``REPRO_BACKEND=philox[:N]`` default), so one environment switch moves
    every derivation in the stack onto the same contract coherently.
    """
    return derive_row_streams(seed, batch_size, rng_contract=rng_contract)


def _as_batched_array(value, batch_size: int, name: str) -> np.ndarray:
    """Broadcast a scalar or length-``B`` sequence to a float ``(B,)`` array."""
    array = np.asarray(value, dtype=float)
    if array.ndim == 0:
        return np.full(batch_size, float(array))
    if array.ndim != 1 or array.size != batch_size:
        raise ValueError(
            f"{name} must be a scalar or a length-{batch_size} sequence, "
            f"got shape {array.shape}"
        )
    return array


def _as_psd_list(psds, batch_size: int) -> List[PhaseNoisePSD]:
    if isinstance(psds, PhaseNoisePSD):
        return [psds] * batch_size
    psd_list = list(psds)
    if len(psd_list) != batch_size:
        raise ValueError(
            f"need one PSD or {batch_size} PSDs, got {len(psd_list)}"
        )
    for psd in psd_list:
        if not isinstance(psd, PhaseNoisePSD):
            raise TypeError(f"expected PhaseNoisePSD, got {type(psd)!r}")
    return psd_list


@dataclass(frozen=True)
class BatchedJitterDecomposition:
    """Synthesized period records of a batch, with the ground-truth split.

    All record attributes are ``(B, n_periods)`` arrays; row ``i`` is the
    record of instance ``i``.
    """

    periods_s: np.ndarray
    thermal_jitter_s: np.ndarray
    flicker_jitter_s: np.ndarray
    nominal_period_s: np.ndarray

    @property
    def jitter_s(self) -> np.ndarray:
        """Total period jitter ``J = T - 1/f0`` per instance, ``(B, n)`` [s]."""
        return self.periods_s - self.nominal_period_s[:, None]

    @property
    def batch_size(self) -> int:
        """Number of instances ``B``."""
        return int(self.periods_s.shape[0])

    @property
    def n_periods(self) -> int:
        """Number of synthesized periods per instance."""
        return int(self.periods_s.shape[1])

    def row(self, index: int):
        """The scalar :class:`repro.phase.synthesis.JitterDecomposition` of row ``index``."""
        from ..phase.synthesis import JitterDecomposition

        return JitterDecomposition(
            periods_s=self.periods_s[index],
            thermal_jitter_s=self.thermal_jitter_s[index],
            flicker_jitter_s=self.flicker_jitter_s[index],
            nominal_period_s=float(self.nominal_period_s[index]),
        )


class BatchedJitterSynthesizer:
    """Synthesizes ``(B, n)`` period records for ``B`` phase-noise models at once.

    Parameters
    ----------
    f0_hz:
        Nominal frequency, a scalar (shared) or a length-``B`` array [Hz].
    psds:
        One shared :class:`~repro.phase.psd.PhaseNoisePSD` or a length-``B``
        sequence of per-instance PSDs.
    batch_size:
        ``B``; may be omitted when it is implied by ``f0_hz``/``psds``/``rngs``.
    rngs:
        Per-instance generators (length ``B``).  Takes precedence over ``seed``.
    seed:
        Seed (or parent generator) from which per-instance streams are spawned
        via :func:`spawn_generators`.
    rng_contract:
        Stream contract the seed path derives under (``"spawn"`` |
        ``"philox"`` | ``None`` for the ``REPRO_RNG_CONTRACT``/
        ``REPRO_BACKEND`` process default; see :mod:`repro.engine.rng`).
        Ignored when ``rngs`` is given — explicit streams already embody
        their contract.
    flicker_method:
        1/f generator passed to :func:`repro.noise.flicker.generate_pink_noise`;
        ``"spectral"`` uses the batched FFT fast path.
    backend:
        Who executes the draw-and-shape kernel: a
        :class:`~repro.engine.backends.SynthesisBackend` instance, a spec
        string (``"numpy"`` | ``"threaded[:N]"``) or ``None`` (the
        ``REPRO_BACKEND`` environment default, falling back to the NumPy
        reference).  Backend choice never changes output — every backend is
        bit-for-bit identical to the reference.
    """

    def __init__(
        self,
        f0_hz,
        psds,
        batch_size: Optional[int] = None,
        rngs: Optional[Sequence[np.random.Generator]] = None,
        seed: SeedLike = None,
        flicker_method: str = "spectral",
        backend: BackendLike = None,
        rng_contract: Optional[str] = None,
    ) -> None:
        if flicker_method not in FLICKER_METHODS:
            raise ValueError(
                f"unknown flicker_method {flicker_method!r}: choose one of "
                f"{', '.join(FLICKER_METHODS)}"
            )
        if not isinstance(psds, PhaseNoisePSD):
            psds = list(psds)  # materialize once: iterators must survive inference
        inferred = batch_size
        if inferred is None:
            if rngs is not None:
                inferred = len(rngs)
            elif not isinstance(psds, PhaseNoisePSD):
                inferred = len(psds)
            elif np.ndim(f0_hz) == 1:
                inferred = len(f0_hz)
            else:
                inferred = 1
        if inferred < 1:
            raise ValueError(f"batch_size must be >= 1, got {inferred!r}")
        self._batch_size = int(inferred)
        self.f0_hz = _as_batched_array(f0_hz, self._batch_size, "f0_hz")
        if np.any(self.f0_hz <= 0.0):
            raise ValueError("f0 must be > 0 for every instance")
        self.psds = _as_psd_list(psds, self._batch_size)
        if rngs is not None:
            self.rngs = list(rngs)
            if len(self.rngs) != self._batch_size:
                raise ValueError(
                    f"need {self._batch_size} generators, got {len(self.rngs)}"
                )
        else:
            self.rngs = spawn_generators(
                seed, self._batch_size, rng_contract=rng_contract
            )
        self.flicker_method = flicker_method
        self._backend = resolve_backend(backend)
        # Per-instance synthesis coefficients (ground truth, not fitted).
        self._thermal_std_s = np.array(
            [
                np.sqrt(psd.thermal_period_jitter_variance(f0))
                for psd, f0 in zip(self.psds, self.f0_hz)
            ]
        )
        self._h_minus1 = np.array(
            [
                psd.flicker_fractional_frequency_coefficient(f0)
                for psd, f0 in zip(self.psds, self.f0_hz)
            ]
        )

    # -- parameters ----------------------------------------------------------

    @property
    def batch_size(self) -> int:
        """Number of instances ``B``."""
        return self._batch_size

    @property
    def nominal_period_s(self) -> np.ndarray:
        """Nominal periods ``T0 = 1/f0`` per instance, ``(B,)`` [s]."""
        return 1.0 / self.f0_hz

    @property
    def thermal_jitter_std_s(self) -> np.ndarray:
        """Ground-truth thermal per-period jitter std per instance, ``(B,)`` [s]."""
        return self._thermal_std_s.copy()

    @property
    def backend(self):
        """The :class:`~repro.engine.backends.SynthesisBackend` in use."""
        return self._backend

    def use_backend(self, backend: BackendLike) -> None:
        """Re-bind the synthesis backend (a pure execution-strategy change).

        Safe at any point in the stream: backends are bit-for-bit equivalent,
        so switching mid-record cannot change a single output value.
        """
        self._backend = resolve_backend(backend)

    # -- synthesis -----------------------------------------------------------

    def _components(self, n_periods: int):
        """Draw the thermal and flicker components, ``(B, n)`` each.

        The draw-and-shape step (per-row fused ``standard_normal`` draws,
        thermal scaling, pink spectral shaping) is delegated to the backend;
        per-row stream order matches the scalar synthesizer exactly (a row's
        thermal variates precede its flicker white noise, zero-coefficient
        rows skip their draw entirely), whatever backend executes it.
        """
        if n_periods < 0:
            raise ValueError(f"n_periods must be >= 0, got {n_periods!r}")
        n = int(n_periods)
        batch = self._batch_size
        if n == 0:
            return np.zeros((batch, 0)), np.zeros((batch, 0))
        h_minus1 = self._h_minus1
        thermal, pink = self._backend.synthesize(
            n, self.rngs, self._thermal_std_s, h_minus1, self.flicker_method
        )
        flicker = np.zeros((batch, n))
        flicker_rows = np.flatnonzero(h_minus1 > 0.0)
        if flicker_rows.size:
            fractional_frequency = np.sqrt(h_minus1[flicker_rows])[:, None] * pink
            fractional_frequency *= -self.nominal_period_s[flicker_rows, None]
            flicker[flicker_rows] = fractional_frequency
        return thermal, flicker

    def decompose(self, n_periods: int) -> BatchedJitterDecomposition:
        """Synthesize ``n_periods`` periods per instance, components separate."""
        thermal, flicker = self._components(n_periods)
        periods = self.nominal_period_s[:, None] + thermal
        periods += flicker
        return BatchedJitterDecomposition(
            periods_s=periods,
            thermal_jitter_s=thermal,
            flicker_jitter_s=flicker,
            nominal_period_s=self.nominal_period_s,
        )

    def periods(self, n_periods: int) -> np.ndarray:
        """Next ``n_periods`` period durations per instance, ``(B, n)`` [s]."""
        thermal, flicker = self._components(n_periods)
        periods = thermal
        periods += self.nominal_period_s[:, None]
        periods += flicker
        return periods

    def jitter(self, n_periods: int) -> np.ndarray:
        """Next ``n_periods`` jitter values per instance, ``(B, n)`` [s].

        Identical (bit-for-bit) to ``decompose(n).jitter_s``: the components
        are accumulated in the same order, reusing the thermal buffer.
        """
        thermal, flicker = self._components(n_periods)
        jitter = thermal
        jitter += self.nominal_period_s[:, None]
        jitter += flicker
        jitter -= self.nominal_period_s[:, None]
        return jitter

    def edge_times(self, n_periods: int, start_time_s: float = 0.0) -> np.ndarray:
        """Rising-edge times per instance, ``(B, n_periods + 1)`` [s]."""
        periods = self.periods(n_periods)
        edges = np.empty((self._batch_size, n_periods + 1))
        edges[:, 0] = start_time_s
        np.cumsum(periods, axis=1, out=edges[:, 1:])
        edges[:, 1:] += start_time_s
        return edges

    def excess_phase(self, n_periods: int) -> np.ndarray:
        """Excess phase at each rising edge per instance, ``(B, n + 1)`` [rad]."""
        jitter = self.jitter(n_periods)
        phase = np.empty((self._batch_size, n_periods + 1))
        phase[:, 0] = 0.0
        np.cumsum(
            -jitter * (2.0 * np.pi) * self.f0_hz[:, None], axis=1, out=phase[:, 1:]
        )
        return phase


class BatchedOscillatorEnsemble:
    """``B`` ring oscillators simulated as one vectorized ensemble.

    The ensemble is the batched counterpart of
    :class:`repro.oscillator.ring.RingOscillator`: it synthesizes the period,
    jitter and edge-time records of every instance at once as ``(B, ...)``
    arrays.  Heterogeneous ensembles (per-instance ``f0`` and PSD — e.g. a
    technology-corner sweep) are supported by passing arrays/sequences.
    """

    def __init__(
        self,
        f0_hz,
        psds,
        batch_size: Optional[int] = None,
        n_stages: int = 3,
        rngs: Optional[Sequence[np.random.Generator]] = None,
        seed: SeedLike = None,
        flicker_method: str = "spectral",
        backend: BackendLike = None,
        rng_contract: Optional[str] = None,
        name: str = "ensemble",
    ) -> None:
        if n_stages < 3:
            raise ValueError("a ring oscillator needs at least 3 stages")
        self.n_stages = int(n_stages)
        self.name = name
        self._synthesizer = BatchedJitterSynthesizer(
            f0_hz,
            psds,
            batch_size=batch_size,
            rngs=rngs,
            seed=seed,
            flicker_method=flicker_method,
            backend=backend,
            rng_contract=rng_contract,
        )

    @classmethod
    def from_phase_noise(
        cls,
        f0_hz,
        b_thermal_hz,
        b_flicker_hz2,
        batch_size: Optional[int] = None,
        n_stages: int = 3,
        rngs: Optional[Sequence[np.random.Generator]] = None,
        seed: SeedLike = None,
        flicker_method: str = "spectral",
        backend: BackendLike = None,
        rng_contract: Optional[str] = None,
        name: str = "ensemble",
    ) -> "BatchedOscillatorEnsemble":
        """Ensemble from Eq. 10 coefficients (scalars or per-instance arrays)."""
        sizes = [
            np.size(value)
            for value in (f0_hz, b_thermal_hz, b_flicker_hz2)
            if np.ndim(value) == 1
        ]
        if batch_size is None:
            if sizes:
                batch_size = sizes[0]
            elif rngs is not None:
                batch_size = len(rngs)
            else:
                batch_size = 1
        b_thermal = _as_batched_array(b_thermal_hz, batch_size, "b_thermal_hz")
        b_flicker = _as_batched_array(b_flicker_hz2, batch_size, "b_flicker_hz2")
        psds = [
            PhaseNoisePSD(b_thermal_hz=bt, b_flicker_hz2=bf)
            for bt, bf in zip(b_thermal, b_flicker)
        ]
        return cls(
            f0_hz,
            psds,
            batch_size=batch_size,
            n_stages=n_stages,
            rngs=rngs,
            seed=seed,
            flicker_method=flicker_method,
            backend=backend,
            rng_contract=rng_contract,
            name=name,
        )

    # -- parameters ----------------------------------------------------------

    @property
    def batch_size(self) -> int:
        """Number of oscillator instances ``B``."""
        return self._synthesizer.batch_size

    @property
    def f0_hz(self) -> np.ndarray:
        """Nominal frequencies per instance, ``(B,)`` [Hz]."""
        return self._synthesizer.f0_hz

    @property
    def psds(self) -> List[PhaseNoisePSD]:
        """Per-instance phase-noise PSDs."""
        return list(self._synthesizer.psds)

    @property
    def nominal_period_s(self) -> np.ndarray:
        """Nominal periods per instance, ``(B,)`` [s]."""
        return self._synthesizer.nominal_period_s

    @property
    def thermal_jitter_std_s(self) -> np.ndarray:
        """Ground-truth thermal jitter std per instance, ``(B,)`` [s]."""
        return self._synthesizer.thermal_jitter_std_s

    @property
    def rngs(self) -> List[np.random.Generator]:
        """Per-instance RNG streams (consuming them advances the ensemble)."""
        return self._synthesizer.rngs

    @property
    def backend(self):
        """The :class:`~repro.engine.backends.SynthesisBackend` in use."""
        return self._synthesizer.backend

    def use_backend(self, backend: BackendLike) -> None:
        """Re-bind the synthesis backend (never changes output — see
        :meth:`BatchedJitterSynthesizer.use_backend`)."""
        self._synthesizer.use_backend(backend)

    # -- synthesis -----------------------------------------------------------

    def decompose(self, n_periods: int) -> BatchedJitterDecomposition:
        """Synthesize with the thermal/flicker ground-truth split, ``(B, n)``."""
        return self._synthesizer.decompose(n_periods)

    def periods(self, n_periods: int) -> np.ndarray:
        """Next ``n_periods`` period durations per instance, ``(B, n)`` [s]."""
        return self._synthesizer.periods(n_periods)

    def jitter(self, n_periods: int) -> np.ndarray:
        """Next ``n_periods`` jitter values per instance, ``(B, n)`` [s]."""
        return self._synthesizer.jitter(n_periods)

    def edge_times(self, n_periods: int, start_time_s: float = 0.0) -> np.ndarray:
        """Rising-edge times per instance, ``(B, n_periods + 1)`` [s]."""
        return self._synthesizer.edge_times(n_periods, start_time_s=start_time_s)

    def row(self, index: int):
        """A scalar :class:`~repro.oscillator.ring.RingOscillator` view of row ``index``.

        The returned oscillator *shares* the row's RNG stream: generating
        periods from it advances the same stream the ensemble row uses, which
        is exactly what makes interleaved scalar/batched use reproducible.
        """
        from ..oscillator.ring import RingOscillator

        if not 0 <= index < self.batch_size:
            raise IndexError(f"row {index} out of range for batch {self.batch_size}")
        return RingOscillator(
            f0_hz=float(self.f0_hz[index]),
            psd=self._synthesizer.psds[index],
            n_stages=self.n_stages,
            rng=self._synthesizer.rngs[index],
            flicker_method=self._synthesizer.flicker_method,
            name=f"{self.name}[{index}]",
        )

    def __len__(self) -> int:
        return self.batch_size

    def __repr__(self) -> str:
        f0 = self.f0_hz
        return (
            f"BatchedOscillatorEnsemble(name={self.name!r}, B={self.batch_size}, "
            f"f0=[{f0.min():.4g}..{f0.max():.4g}] Hz, stages={self.n_stages})"
        )
