"""Batched campaigns: every instance of an ensemble estimated in one pass.

A *campaign* is the paper's central experiment: synthesize a jitter record,
estimate the accumulated variance ``sigma^2_N`` over a sweep of ``N`` and fit
the Eq. 11 model to recover ``b_th``/``b_fl``.  This module runs that
experiment for a whole :class:`repro.engine.batch.BatchedOscillatorEnsemble`
at once — B technology corners, dividers or noise mixes per call — and fits
every instance's curve with one vectorized weighted least-squares pass.

Campaign results are held in array form (``(B, P)`` sigma^2 estimates, one
fitted-coefficient array per column of the results table); the scalar
:class:`~repro.core.sigma_n.AccumulatedVarianceCurve` /
:class:`~repro.core.fitting.Sigma2NFitResult` objects are materialized lazily,
so the hot path never builds per-point Python objects.

The scalar workflow (``RingOscillator`` + ``accumulated_variance_curve`` +
``fit_sigma2_n_curve`` per instance) remains the reference; for a shared seed,
row ``i`` of a campaign consumes the same RNG stream and reproduces it
bit-for-bit with ``exact=True``, or within a relative ``~ sqrt(n) * eps``
(far below 1e-12) with the default fused reduction (see ``tests/engine``).

Bit-level campaigns (:func:`batched_bit_campaign`) run the pipeline one step
further: per-ensemble raw-bit generation at a grid of divider values, with
vectorized bias/entropy estimates and batched AIS31 evaluation — the paper's
entropy-vs-accumulation design-guidance table, produced in one vectorized
pass per divider instead of a ``dividers x instances`` Python loop.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.fitting import Sigma2NFitResult, fit_sigma2_n_curve
from ..core.sigma_n import (
    AccumulatedVarianceCurve,
    assemble_variance_curves,
    batched_sigma2_n_sweep,
)
from .backends import BackendLike, resolve_backend
from .batch import BatchedOscillatorEnsemble, SeedLike
from .bits import BatchedEROTRNG
from .streaming import streaming_accumulated_variance_curves

_TABLE_COLUMNS = (
    "instance",
    "f0_hz",
    "b_thermal_hz",
    "b_flicker_hz2",
    "thermal_jitter_std_s",
    "thermal_jitter_ratio",
    "r_squared",
    "n_points",
)


def _fit_sweep_arrays(
    n_values: np.ndarray,
    sigma2: np.ndarray,
    counts: np.ndarray,
    f0: np.ndarray,
    weighted: bool = True,
) -> Dict[str, np.ndarray]:
    """Vectorized Eq. 11 fit of ``B`` curves sharing one ``N`` sweep.

    Mirrors :func:`repro.core.fitting.fit_sigma2_n_curve` (weights, active-set
    non-negative refits, weighted r^2) with the 2x2 normal equations solved in
    closed form for every row at once.  Results match the scalar fit of each
    row's curve to machine precision (closed form vs LU solve).
    """
    n = np.asarray(n_values, dtype=float)[None, :]  # (1, P)
    sigma2 = np.asarray(sigma2, dtype=float)  # (B, P)
    if np.any(sigma2 < 0.0):
        raise ValueError("sigma^2_N values must be >= 0")
    if n.shape[1] < 2:
        raise ValueError("need at least two points to fit the two-parameter model")
    if weighted:
        realizations = np.maximum(np.asarray(counts, dtype=float), 1.0)[None, :]
        effective = np.maximum(realizations / (2.0 * n), 1.0)
        positive = sigma2 > 0.0
        if not np.all(np.any(positive, axis=1)):
            raise ValueError(
                "cannot weight a curve whose sigma^2_N values are all zero"
            )
        row_min = np.min(np.where(positive, sigma2, np.inf), axis=1, keepdims=True)
        safe_sigma2 = np.where(positive, sigma2, row_min)
        weights = effective / safe_sigma2**2
    else:
        weights = np.ones_like(sigma2)

    # Weighted normal equations of sigma2 = A n + B n^2, in closed form.
    n2 = n * n
    wn = weights * n
    wn2 = weights * n2
    s11 = np.sum(wn * n, axis=1)
    s12 = np.sum(wn2 * n, axis=1)
    s22 = np.sum(wn2 * n2, axis=1)
    t1 = np.sum(wn * sigma2, axis=1)
    t2 = np.sum(wn2 * sigma2, axis=1)
    det = s11 * s22 - s12**2
    with np.errstate(divide="ignore", invalid="ignore"):
        linear = (s22 * t1 - s12 * t2) / det
        quadratic = (s11 * t2 - s12 * t1) / det
        # Single-term constrained refits (active-set NNLS, as in the scalar fit).
        linear_only = np.maximum(t1 / s11, 0.0)
        quadratic_only = np.maximum(t2 / s22, 0.0)
    unconstrained = (
        np.isfinite(linear)
        & np.isfinite(quadratic)
        & (linear >= 0.0)
        & (quadratic >= 0.0)
    )
    residual_linear = np.sum(
        weights * (sigma2 - linear_only[:, None] * n) ** 2, axis=1
    )
    residual_quadratic = np.sum(
        weights * (sigma2 - quadratic_only[:, None] * n**2) ** 2, axis=1
    )
    prefer_linear = residual_linear <= residual_quadratic
    linear = np.where(
        unconstrained, linear, np.where(prefer_linear, linear_only, 0.0)
    )
    quadratic = np.where(
        unconstrained, quadratic, np.where(prefer_linear, 0.0, quadratic_only)
    )

    prediction = linear[:, None] * n + quadratic[:, None] * n**2
    mean = np.sum(weights * sigma2, axis=1) / np.sum(weights, axis=1)
    total = np.sum(weights * (sigma2 - mean[:, None]) ** 2, axis=1)
    residual = np.sum(weights * (sigma2 - prediction) ** 2, axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        r_squared = np.where(total == 0.0, 1.0, 1.0 - residual / total)

    b_thermal = np.maximum(linear, 0.0) * f0**3 / 2.0
    b_flicker = np.maximum(quadratic, 0.0) * f0**4 / (8.0 * np.log(2.0))
    thermal_std = np.sqrt(b_thermal / f0**3)
    return {
        "b_thermal_hz": b_thermal,
        "b_flicker_hz2": b_flicker,
        "linear_coefficient": linear,
        "quadratic_coefficient": quadratic,
        "r_squared": r_squared,
        "thermal_jitter_std_s": thermal_std,
        "thermal_jitter_ratio": thermal_std * f0,
    }


def fit_sigma2_n_curves(
    curves: Sequence[AccumulatedVarianceCurve], weighted: bool = True
) -> List[Sigma2NFitResult]:
    """Fit Eq. 11 to many curves in one vectorized pass.

    Curves sharing their ``N`` sweep (as all batched campaign outputs do) are
    fitted together; heterogeneous sweeps fall back to per-curve
    :func:`repro.core.fitting.fit_sigma2_n_curve` calls.  Either way, each
    result matches the scalar fit of the same curve to machine precision.
    """
    curves = list(curves)
    if not curves:
        return []
    n_values = curves[0].n_values
    counts = curves[0].realization_counts
    # The vectorized path broadcasts one weight row, so both the N sweep and
    # the realization counts (record lengths) must match across curves.
    shared_sweep = all(
        np.array_equal(curve.n_values, n_values)
        and np.array_equal(curve.realization_counts, counts)
        for curve in curves[1:]
    )
    if not shared_sweep or n_values.size < 2:
        return [fit_sigma2_n_curve(curve, weighted=weighted) for curve in curves]
    sigma2 = np.stack([curve.sigma2_values_s2 for curve in curves])
    f0 = np.array([curve.f0_hz for curve in curves])
    try:
        fitted = _fit_sweep_arrays(
            n_values, sigma2, counts, f0, weighted=weighted
        )
    except ValueError:
        # Degenerate inputs (e.g. an all-zero row): mirror the scalar errors.
        return [fit_sigma2_n_curve(curve, weighted=weighted) for curve in curves]
    return _assemble_fit_results(n_values.size, f0, fitted)


def _assemble_fit_results(
    n_points: int, f0: np.ndarray, fitted: Dict[str, np.ndarray]
) -> List[Sigma2NFitResult]:
    return [
        Sigma2NFitResult(
            f0_hz=float(f0[row]),
            b_thermal_hz=float(fitted["b_thermal_hz"][row]),
            b_flicker_hz2=float(fitted["b_flicker_hz2"][row]),
            linear_coefficient=float(fitted["linear_coefficient"][row]),
            quadratic_coefficient=float(fitted["quadratic_coefficient"][row]),
            r_squared=float(fitted["r_squared"][row]),
            n_points=int(n_points),
        )
        for row in range(f0.size)
    ]


class BatchedCampaignResult:
    """Per-instance curves and fits of one batched sigma^2_N campaign.

    The estimates live in arrays (``n_values`` ``(P,)``, ``sigma2_s2``
    ``(B, P)``, ``realization_counts`` ``(P,)``, per-column fit arrays);
    :attr:`curves` and :attr:`fits` materialize the scalar result objects on
    first access.
    """

    def __init__(
        self,
        n_values: np.ndarray,
        sigma2_s2: np.ndarray,
        realization_counts: np.ndarray,
        f0_hz: np.ndarray,
        fitted: Optional[Dict[str, np.ndarray]],
    ) -> None:
        self.n_values = np.asarray(n_values)
        self.sigma2_s2 = np.asarray(sigma2_s2)
        self.realization_counts = np.asarray(realization_counts)
        self.f0_hz = np.asarray(f0_hz)
        self._fitted = fitted
        self._curves: Optional[List[AccumulatedVarianceCurve]] = None
        self._fits: Optional[List[Sigma2NFitResult]] = None

    @property
    def batch_size(self) -> int:
        """Number of instances in the campaign."""
        return int(self.sigma2_s2.shape[0])

    def __len__(self) -> int:
        return self.batch_size

    @property
    def curves(self) -> List[AccumulatedVarianceCurve]:
        """Per-instance curve objects (materialized lazily)."""
        if self._curves is None:
            self._curves = assemble_variance_curves(
                [int(n) for n in self.n_values],
                self.sigma2_s2,
                self.realization_counts,
                self.f0_hz,
            )
        return self._curves

    @property
    def fits(self) -> List[Sigma2NFitResult]:
        """Per-instance fit objects (materialized lazily; needs ``fit=True``)."""
        if self._fits is None:
            if self._fitted is None:
                raise ValueError(
                    "campaign was run with fit=False; no fits available"
                )
            self._fits = _assemble_fit_results(
                int(self.n_values.size), self.f0_hz, self._fitted
            )
        return self._fits

    def table(self) -> Dict[str, np.ndarray]:
        """Results table: one column array per fitted quantity."""
        if self._fitted is None:
            raise ValueError("campaign was run with fit=False; no table available")
        table = {
            "instance": np.arange(self.batch_size),
            "f0_hz": self.f0_hz,
            "n_points": np.full(self.batch_size, int(self.n_values.size)),
        }
        for column in (
            "b_thermal_hz",
            "b_flicker_hz2",
            "thermal_jitter_std_s",
            "thermal_jitter_ratio",
            "r_squared",
        ):
            table[column] = self._fitted[column]
        return table

    def format_table(self, max_rows: int = 16) -> str:
        """Human-readable results table (for logs and benchmarks).

        Truncation is always explicit: when more than ``max_rows`` rows exist,
        the table ends with a ``... (+N more rows)`` footer accounting for
        every hidden row.
        """
        table = self.table()
        lines = [" | ".join(f"{name:>20}" for name in _TABLE_COLUMNS)]
        n_rows = self.batch_size
        shown = min(n_rows, max(int(max_rows), 0))
        for row in range(shown):
            cells = []
            for name in _TABLE_COLUMNS:
                value = table[name][row]
                if name in ("instance", "n_points"):
                    cells.append(f"{int(value):>20d}")
                else:
                    cells.append(f"{value:>20.6g}")
            lines.append(" | ".join(cells))
        if shown < n_rows:
            lines.append(f"... (+{n_rows - shown} more rows)")
        return "\n".join(lines)


def _campaign_from_records(
    records: np.ndarray,
    f0_hz,
    n_sweep,
    overlapping: bool,
    min_realizations: int,
    fit: bool,
    weighted: bool,
    exact: bool,
) -> BatchedCampaignResult:
    n_list, sigma2, counts, f0 = batched_sigma2_n_sweep(
        records,
        f0_hz,
        n_sweep=n_sweep,
        overlapping=overlapping,
        min_realizations=min_realizations,
        exact=exact,
    )
    n_values = np.array(n_list)
    fitted = (
        _fit_sweep_arrays(n_values, sigma2, counts, f0, weighted=weighted)
        if fit
        else None
    )
    return BatchedCampaignResult(n_values, sigma2, counts, f0, fitted)


def _campaign_from_curves(
    curves: List[AccumulatedVarianceCurve], fit: bool, weighted: bool
) -> BatchedCampaignResult:
    n_values = curves[0].n_values
    sigma2 = np.stack([curve.sigma2_values_s2 for curve in curves])
    counts = curves[0].realization_counts
    f0 = np.array([curve.f0_hz for curve in curves])
    fitted = (
        _fit_sweep_arrays(n_values, sigma2, counts, f0, weighted=weighted)
        if fit
        else None
    )
    result = BatchedCampaignResult(n_values, sigma2, counts, f0, fitted)
    result._curves = curves
    return result


def batched_sigma2_n_campaign(
    ensemble: BatchedOscillatorEnsemble,
    n_periods: int,
    n_sweep: Optional[Sequence[int]] = None,
    overlapping: bool = True,
    min_realizations: int = 8,
    chunk_periods: Optional[int] = None,
    fit: bool = True,
    weighted: bool = True,
    exact: bool = False,
    backend: Optional[BackendLike] = None,
) -> BatchedCampaignResult:
    """Run the Fig. 7 experiment for every instance of an ensemble at once.

    Synthesizes ``(B, n_periods)`` jitter records, estimates every instance's
    ``sigma^2_N`` curve with the shared-cumulative-sum vectorized estimator
    and (optionally) fits Eq. 11 to all curves in one pass.

    Parameters
    ----------
    ensemble:
        The oscillators to simulate.
    n_periods:
        Record length per instance.
    chunk_periods:
        When given, the record is synthesized and consumed in chunks of this
        length (O(chunk) memory — see :mod:`repro.engine.streaming`), which is
        how arbitrarily long campaigns are run.
    n_sweep, overlapping, min_realizations, weighted:
        As in the scalar workflow.
    fit:
        Fit Eq. 11 per instance (vectorized); disable to get curves only.
    exact:
        ``True`` reproduces the scalar estimator bit-for-bit; the default
        (``False``) uses the fused reduction, which agrees with the scalar
        path to a relative ``~ sqrt(n_periods) * eps`` (orders of magnitude
        below the 1e-12 equivalence budget).
    backend:
        When given, re-bind the ensemble's synthesis backend for this
        campaign only — the ensemble's previous backend is restored on
        return (see :mod:`repro.engine.backends`).  Backend choice never
        changes the campaign output.
    """
    restore = None
    if backend is not None:
        restore = ensemble.backend
        ensemble.use_backend(backend)
    try:
        if chunk_periods is not None:
            if exact:
                raise ValueError(
                    "exact=True is incompatible with chunk_periods: the "
                    "streaming estimator uses the fused reduction and chunked "
                    "synthesis"
                )
            curves = streaming_accumulated_variance_curves(
                ensemble,
                n_periods,
                chunk_periods,
                n_sweep=n_sweep,
                overlapping=overlapping,
                min_realizations=min_realizations,
            )
            return _campaign_from_curves(curves, fit, weighted)
        records = ensemble.jitter(n_periods)
        return _campaign_from_records(
            records,
            ensemble.f0_hz,
            n_sweep,
            overlapping,
            min_realizations,
            fit,
            weighted,
            exact,
        )
    finally:
        if restore is not None:
            ensemble.use_backend(restore)


class _RelativeJitterSource:
    """Streaming adapter producing the relative period record of two ensembles."""

    def __init__(
        self,
        ensemble_1: BatchedOscillatorEnsemble,
        ensemble_2: BatchedOscillatorEnsemble,
    ) -> None:
        self.ensemble_1 = ensemble_1
        self.ensemble_2 = ensemble_2

    @property
    def batch_size(self) -> int:
        return self.ensemble_1.batch_size

    @property
    def f0_hz(self) -> np.ndarray:
        return self.ensemble_1.f0_hz

    def jitter(self, n_periods: int) -> np.ndarray:
        periods_1 = self.ensemble_1.periods(n_periods)
        periods_2 = self.ensemble_2.periods(n_periods)
        return periods_1 - periods_2 + self.ensemble_1.nominal_period_s[:, None]


def batched_relative_jitter_campaign(
    ensemble_1: BatchedOscillatorEnsemble,
    ensemble_2: BatchedOscillatorEnsemble,
    n_periods: int,
    n_sweep: Optional[Sequence[int]] = None,
    overlapping: bool = True,
    min_realizations: int = 8,
    chunk_periods: Optional[int] = None,
    fit: bool = True,
    weighted: bool = True,
    exact: bool = False,
    backend: Optional[BackendLike] = None,
) -> BatchedCampaignResult:
    """Batched differential (eRO-TRNG pair) campaign: B oscillator pairs.

    Pair ``i`` is ``(ensemble_1[i], ensemble_2[i])``; its relative period
    record ``T1 - T2 + 1/f0`` is bit-for-bit the one the scalar
    :func:`repro.measurement.capture.relative_jitter_campaign` sees when the
    ensembles share the scalar oscillators' RNG streams, and the estimated
    curves match that function bit-for-bit with ``exact=True`` (within
    ``~ sqrt(n) * eps`` under the default fused reduction).
    """
    if ensemble_1.batch_size != ensemble_2.batch_size:
        raise ValueError(
            f"ensembles disagree on batch size: "
            f"{ensemble_1.batch_size} vs {ensemble_2.batch_size}"
        )
    restore = None
    if backend is not None:
        # Resolve once so both ensembles share one backend instance; the
        # previous backends are restored on return (campaign-scoped rebind).
        restore = (ensemble_1.backend, ensemble_2.backend)
        backend = resolve_backend(backend)
        ensemble_1.use_backend(backend)
        ensemble_2.use_backend(backend)
    source = _RelativeJitterSource(ensemble_1, ensemble_2)
    try:
        if chunk_periods is not None:
            if exact:
                raise ValueError(
                    "exact=True is incompatible with chunk_periods: the "
                    "streaming estimator uses the fused reduction and chunked "
                    "synthesis"
                )
            curves = streaming_accumulated_variance_curves(
                source,
                n_periods,
                chunk_periods,
                n_sweep=n_sweep,
                overlapping=overlapping,
                min_realizations=min_realizations,
            )
            return _campaign_from_curves(curves, fit, weighted)
        return _campaign_from_records(
            source.jitter(n_periods),
            source.f0_hz,
            n_sweep,
            overlapping,
            min_realizations,
            fit,
            weighted,
            exact,
        )
    finally:
        if restore is not None:
            ensemble_1.use_backend(restore[0])
            ensemble_2.use_backend(restore[1])


_BIT_TABLE_COLUMNS = (
    "divider",
    "instance",
    "bias",
    "shannon_entropy",
    "min_entropy",
    "markov_entropy",
    "procedure_a_passed",
    "procedure_b_passed",
)


class BitCampaignResult:
    """Per-divider, per-instance results of one batched bit campaign.

    All estimate attributes are ``(D, B)`` arrays (divider x instance):
    ``bias`` (``P(1) - 1/2`` of the raw bits), ``shannon_entropy`` /
    ``min_entropy`` / ``markov_entropy`` (per-bit estimates from
    :mod:`repro.trng.entropy`), and — when the campaign ran them —
    ``procedure_a_passed`` / ``procedure_b_passed`` boolean verdict arrays
    (``None`` otherwise).  This is the paper's entropy-vs-accumulation
    design-guidance table in array form.
    """

    def __init__(
        self,
        dividers: np.ndarray,
        bias: np.ndarray,
        shannon_entropy: np.ndarray,
        min_entropy: np.ndarray,
        markov_entropy: np.ndarray,
        procedure_a_passed: Optional[np.ndarray],
        procedure_b_passed: Optional[np.ndarray],
        n_bits: int,
    ) -> None:
        self.dividers = np.asarray(dividers)
        self.bias = np.asarray(bias)
        self.shannon_entropy = np.asarray(shannon_entropy)
        self.min_entropy = np.asarray(min_entropy)
        self.markov_entropy = np.asarray(markov_entropy)
        self.procedure_a_passed = procedure_a_passed
        self.procedure_b_passed = procedure_b_passed
        self.n_bits = int(n_bits)

    @property
    def n_dividers(self) -> int:
        """Number of divider grid points ``D``."""
        return int(self.bias.shape[0])

    @property
    def batch_size(self) -> int:
        """Number of TRNG instances ``B`` per divider."""
        return int(self.bias.shape[1])

    def entropy_vs_divider(self) -> Dict[str, np.ndarray]:
        """Ensemble means per divider: the paper's design-guidance curve."""
        summary = {
            "divider": self.dividers,
            "bias": np.mean(self.bias, axis=1),
            "shannon_entropy": np.mean(self.shannon_entropy, axis=1),
            "min_entropy": np.mean(self.min_entropy, axis=1),
            "markov_entropy": np.mean(self.markov_entropy, axis=1),
        }
        if self.procedure_a_passed is not None:
            summary["procedure_a_pass_rate"] = np.mean(
                self.procedure_a_passed, axis=1
            )
        if self.procedure_b_passed is not None:
            summary["procedure_b_pass_rate"] = np.mean(
                self.procedure_b_passed, axis=1
            )
        return summary

    def table(self) -> Dict[str, np.ndarray]:
        """Flat results table: one column array per quantity, row-major."""
        n_dividers, batch = self.bias.shape
        table = {
            "divider": np.repeat(self.dividers, batch),
            "instance": np.tile(np.arange(batch), n_dividers),
            "bias": self.bias.ravel(),
            "shannon_entropy": self.shannon_entropy.ravel(),
            "min_entropy": self.min_entropy.ravel(),
            "markov_entropy": self.markov_entropy.ravel(),
        }
        if self.procedure_a_passed is not None:
            table["procedure_a_passed"] = self.procedure_a_passed.ravel()
        if self.procedure_b_passed is not None:
            table["procedure_b_passed"] = self.procedure_b_passed.ravel()
        return table

    def format_table(self, max_rows: int = 24) -> str:
        """Human-readable results table (for logs and benchmarks).

        Truncation is always explicit: when more than ``max_rows`` rows exist,
        the table ends with a ``... (+N more rows)`` footer accounting for
        every hidden row.
        """
        table = self.table()
        columns = [name for name in _BIT_TABLE_COLUMNS if name in table]
        lines = [" | ".join(f"{name:>18}" for name in columns)]
        n_rows = self.n_dividers * self.batch_size
        shown = min(n_rows, max(int(max_rows), 0))
        for row in range(shown):
            cells = []
            for name in columns:
                value = table[name][row]
                if name in ("divider", "instance"):
                    cells.append(f"{int(value):>18d}")
                elif name.startswith("procedure"):
                    cells.append(f"{'pass' if value else 'FAIL':>18}")
                else:
                    cells.append(f"{value:>18.6g}")
            lines.append(" | ".join(cells))
        if shown < n_rows:
            lines.append(f"... (+{n_rows - shown} more rows)")
        return "\n".join(lines)


def batched_bit_campaign(
    configuration,
    dividers: Sequence[int],
    batch_size: int,
    n_bits: int,
    seed: SeedLike = None,
    run_procedure_a: bool = False,
    include_t0: bool = False,
    run_procedure_b: bool = False,
    min_entropy_block_size: int = 8,
    instance_range: Optional[tuple] = None,
    backend: Optional[BackendLike] = None,
    rng_contract: Optional[str] = None,
) -> BitCampaignResult:
    """Entropy-vs-divider sweep over a whole eRO-TRNG ensemble at once.

    For every divider ``D`` in the grid, a fresh
    :class:`~repro.engine.bits.BatchedEROTRNG` ensemble (same
    ``configuration``, same ``seed`` — a *paired* design: every divider sees
    identically seeded noise) generates ``n_bits`` raw bits per instance in
    one batched pass, and the bias/entropy estimates and (optionally) the
    AIS31 Procedure A/B batteries are evaluated vectorized across the
    ensemble.  This replaces the ``dividers x instances`` Python loop of the
    scalar workflow with one vectorized pass per divider.

    Parameters
    ----------
    configuration:
        An :class:`repro.trng.ero_trng.EROTRNGConfiguration`; its ``divider``
        field is replaced by each grid value in turn.
    dividers:
        Accumulation lengths ``D`` to sweep (the paper's design axis).
    batch_size:
        TRNG instances per divider.
    n_bits:
        Raw bits per instance per divider.  Procedure A needs >= 20 000,
        Procedure B >= 100 000 bits.
    seed:
        Engine seed; per-instance streams are spawned from it (one per
        instance, one sub-stream per ring).
    run_procedure_a, include_t0, run_procedure_b:
        Evaluate the AIS31 batteries per instance (batched, no row loop).
    min_entropy_block_size:
        Block size of the min-entropy (``H_min``) estimate.
    instance_range:
        Optional ``(start, stop)`` row range: run only instances
        ``start..stop-1`` of the ``batch_size``-wide ensemble, re-deriving
        their RNG streams by slicing the full spawn tree of ``seed``.  The
        result rows are bit-for-bit rows ``start..stop-1`` of the full
        campaign — the hook :mod:`repro.engine.distributed` shards on.
        Requires a *stateless* seed (an int or ``SeedSequence``): only those
        re-derive the same spawn tree on every call, which is what makes
        shard rows belong to one coherent campaign.
    backend:
        Synthesis backend for the per-divider TRNG ensembles (instance, spec
        string or ``None`` for the ``REPRO_BACKEND``/NumPy default).
        Backend choice never changes the campaign output.
    rng_contract:
        Stream contract the per-instance streams derive under (``"spawn"``
        | ``"philox"`` | ``None`` for the process default; see
        :mod:`repro.engine.rng`).  Shard calls must pass the campaign's
        pinned contract so every shard derives the same streams.
    """
    from ..ais31.procedure_a import procedure_a, rows_passed
    from ..ais31.procedure_b import procedure_b
    from ..trng.entropy import (
        bit_bias,
        markov_entropy_rate,
        min_entropy_per_bit,
        shannon_entropy_per_bit,
    )
    from .batch import spawn_generators

    # Resolve once (including the backend=None REPRO_BACKEND default) so
    # every divider's ensemble pair shares one backend — one thread pool,
    # not 2 x dividers of them.
    backend = resolve_backend(backend)
    divider_grid = np.asarray([int(d) for d in dividers])
    if divider_grid.size == 0:
        raise ValueError("need at least one divider")
    if np.any(divider_grid < 1):
        raise ValueError("dividers must be >= 1")
    if n_bits < 1:
        raise ValueError("n_bits must be >= 1")
    if instance_range is None:
        start, stop = 0, int(batch_size)
    else:
        if not isinstance(seed, (int, np.integer, np.random.SeedSequence)):
            raise ValueError(
                "instance_range requires a stateless seed (int or "
                "SeedSequence): None or a Generator cannot re-derive the "
                "same spawn tree across shard calls"
            )
        start, stop = (int(edge) for edge in instance_range)
        if not 0 <= start < stop <= int(batch_size):
            raise ValueError(
                f"instance_range must satisfy 0 <= start < stop <= "
                f"{batch_size}, got {instance_range!r}"
            )
    rows = stop - start
    shape = (divider_grid.size, rows)
    bias = np.empty(shape)
    shannon = np.empty(shape)
    min_entropy = np.empty(shape)
    markov = np.empty(shape)
    passed_a = np.empty(shape, dtype=bool) if run_procedure_a else None
    passed_b = np.empty(shape, dtype=bool) if run_procedure_b else None
    for index, divider in enumerate(divider_grid):
        # Every divider re-derives the same per-instance parent streams from
        # the root seed (a paired design); a row range takes its slice of the
        # full spawn tree, so shard rows match the unsharded run bit-for-bit.
        parents = spawn_generators(seed, int(batch_size), rng_contract=rng_contract)[
            start:stop
        ]
        trng = BatchedEROTRNG(
            replace(configuration, divider=int(divider)),
            batch_size=rows,
            rngs=parents,
            backend=backend,
        )
        bits = trng.generate_raw(n_bits).bits
        bias[index] = bit_bias(bits)
        shannon[index] = shannon_entropy_per_bit(bits)
        min_entropy[index] = min_entropy_per_bit(
            bits, block_size=min_entropy_block_size
        )
        markov[index] = markov_entropy_rate(bits)
        if run_procedure_a:
            passed_a[index] = rows_passed(procedure_a(bits, include_t0=include_t0))
        if run_procedure_b:
            passed_b[index] = rows_passed(procedure_b(bits))
    return BitCampaignResult(
        dividers=divider_grid,
        bias=bias,
        shannon_entropy=shannon,
        min_entropy=min_entropy,
        markov_entropy=markov,
        procedure_a_passed=passed_a,
        procedure_b_passed=passed_b,
        n_bits=n_bits,
    )
