"""Batched TRNG bit pipeline: ensemble D-flip-flop sampling, ``(B, n)`` bits.

This module is the bit-level counterpart of :mod:`repro.engine.batch`: where
the batch engine synthesizes ``(B, n_periods)`` jitter records, this one turns
them into ``(B, n_bits)`` raw-bit records.  A :class:`BatchedDFlipFlopSampler`
samples ``B`` jittery oscillators on the divided edges of ``B`` sampling
clocks at once, and a :class:`BatchedEROTRNG` wires two
:class:`~repro.engine.batch.BatchedOscillatorEnsemble` halves into a whole
ensemble of elementary RO-TRNGs (Fig. 4 of the paper) that generate bits per
ensemble instead of per instance.

Streaming contract
------------------
The sampler is *stateful*: consecutive ``sample`` calls continue both clock
timelines, so the concatenation of chunked calls is **bit-for-bit identical**
to one monolithic call.  This is what makes
:func:`repro.engine.streaming.stream_bits` chunk-invariant.  Internally both
clocks are advanced in fixed-size synthesis blocks
(``synthesis_block_periods``), with partial blocks buffered:

* the block grid never moves with the requested chunk size, so the
  floating-point edge times (block-wise cumulative sums) are identical for
  any chunking;
* the sampled-oscillator edge buffer is drawn on demand and trimmed after
  each step, so peak memory is ``O(batch * block)`` regardless of the
  requested number of bits — the one-shot scalar sampler used to materialize
  the full ``O(n_bits * divider)`` edge record.

Reproducibility contract
------------------------
One spawned RNG stream per instance (the engine's seeding discipline): a
:class:`BatchedEROTRNG` spawns one child stream per instance and each
instance spawns one sub-stream per oscillator, so batched row ``i`` is
bit-for-bit the scalar :class:`repro.trng.ero_trng.EROTRNG` built from the
same child generator.  The scalar TRNG and the scalar
:class:`repro.trng.digitizer.DFlipFlopSampler` are thin ``B = 1`` views over
this kernel; ``tests/engine/test_bit_equivalence.py`` verifies the contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from .backends import BackendLike, resolve_backend
from .batch import BatchedOscillatorEnsemble, SeedLike, spawn_generators


def _row_searchsorted_right(rows: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Row-wise ``searchsorted(rows[b], values[b], side="right")`` for all rows.

    Both inputs are ``(B, ...)`` arrays whose rows are sorted ascending.  The
    batched path runs one vectorized binary search over all ``B * m`` queries
    at once (``ceil(log2(n))`` compare-and-gather sweeps); every comparison is
    between original float values — no offset or rescaling trick that could
    round — so the integer indices are exactly the ones the scalar
    ``np.searchsorted`` produces per row.
    """
    batch, n = rows.shape
    if batch == 1:
        return np.searchsorted(rows[0], values[0], side="right")[None, :]
    row_index = np.arange(batch)[:, None]
    low = np.zeros(values.shape, dtype=np.int64)
    high = np.full(values.shape, n, dtype=np.int64)
    for _ in range(max(n.bit_length(), 1)):
        gap = high - low
        middle = low + (gap >> 1)
        pivot = rows[row_index, np.minimum(middle, n - 1)]
        go_right = (pivot <= values) & (gap > 0)
        low = np.where(go_right, middle + 1, low)
        high = np.where(go_right, high, middle)
    return low


def square_wave_level_batch(
    sample_times_s: np.ndarray,
    rising_edge_times_s: np.ndarray,
    duty_cycle: float = 0.5,
) -> np.ndarray:
    """Logic levels of ``B`` square waves at ``B`` rows of sample times.

    The batched counterpart of :func:`repro.trng.digitizer.square_wave_level`:
    ``sample_times_s`` and ``rising_edge_times_s`` are ``(B, m)`` / ``(B, n)``
    arrays and the result is a ``(B, m)`` array of 0/1 levels; row ``b`` is
    bit-for-bit what the scalar function returns for
    ``(sample_times_s[b], rising_edge_times_s[b])``.

    Parameters are validated before any computation: the duty cycle must lie
    in ``(0, 1)``, every edge row must be strictly increasing (a precise
    error, not a span failure, is raised for unsorted edges), and every
    sample must fall inside its row's edge span.
    """
    if not 0.0 < duty_cycle < 1.0:
        raise ValueError("duty cycle must be in (0, 1)")
    samples = np.asarray(sample_times_s, dtype=float)
    edges = np.asarray(rising_edge_times_s, dtype=float)
    if samples.ndim != 2 or edges.ndim != 2:
        raise ValueError("sample times and edges must be (B, m) and (B, n) arrays")
    if samples.shape[0] != edges.shape[0]:
        raise ValueError(
            f"batch mismatch: {samples.shape[0]} sample rows vs "
            f"{edges.shape[0]} edge rows"
        )
    if edges.shape[1] < 2:
        raise ValueError("need at least two rising edges")
    if np.any(np.diff(edges, axis=1) <= 0.0):
        raise ValueError(
            "rising-edge times must be strictly increasing within each row "
            "(unsorted or duplicate edges)"
        )
    if np.any(samples < edges[:, :1]) or np.any(samples >= edges[:, -1:]):
        raise ValueError("sample times must fall within the span of the edges")
    # Each query is an independent binary search, so sample rows may come in
    # any order.
    return _levels(samples, edges, duty_cycle)


def _levels(
    samples: np.ndarray, edges: np.ndarray, duty_cycle: float
) -> np.ndarray:
    """Unchecked level kernel: sorted sample rows, sorted covering edge rows."""
    indices = _row_searchsorted_right(edges, samples) - 1
    row_index = np.arange(edges.shape[0])[:, None]
    period_start = edges[row_index, indices]
    period_length = edges[row_index, indices + 1] - period_start
    phase_fraction = (samples - period_start) / period_length
    return (phase_fraction < duty_cycle).astype(np.int8)


class _ClockRows:
    """``B = 1`` row view of a scalar :class:`repro.oscillator.period_model.Clock`."""

    batch_size = 1

    def __init__(self, clock) -> None:
        self._clock = clock

    @property
    def f0_hz(self) -> np.ndarray:
        return np.array([float(self._clock.f0_hz)])

    def periods(self, n_periods: int) -> np.ndarray:
        return np.asarray(self._clock.periods(n_periods), dtype=float)[None, :]


def _as_rows(source):
    """Pass batched sources through; wrap scalar clocks as one-row sources."""
    if hasattr(source, "batch_size"):
        return source
    return _ClockRows(source)


@dataclass(frozen=True)
class BatchedSamplingResult:
    """Bits of one batched sampling run, with the timing behind them.

    ``bits`` and ``sample_times_s`` are ``(B, n_bits)`` arrays; the frequency
    attributes are ``(B,)`` arrays (``sampling_frequency_hz`` is the divided,
    i.e. effective, sampling frequency).
    """

    bits: np.ndarray
    sample_times_s: np.ndarray
    sampled_frequency_hz: np.ndarray
    sampling_frequency_hz: np.ndarray

    @property
    def batch_size(self) -> int:
        """Number of instances ``B``."""
        return int(self.bits.shape[0])

    @property
    def n_bits(self) -> int:
        """Number of sampled bits per instance."""
        return int(self.bits.shape[1])

    @property
    def accumulation_ratio(self) -> np.ndarray:
        """Sampled-oscillator periods between two samples, per instance ``(B,)``."""
        return self.sampled_frequency_hz / self.sampling_frequency_hz

    def row(self, index: int):
        """The scalar :class:`repro.trng.digitizer.SamplingResult` of row ``index``."""
        from ..trng.digitizer import SamplingResult

        return SamplingResult(
            bits=self.bits[index],
            sample_times_s=self.sample_times_s[index],
            sampled_frequency_hz=float(self.sampled_frequency_hz[index]),
            sampling_frequency_hz=float(self.sampling_frequency_hz[index]),
        )


class BatchedDFlipFlopSampler:
    """D flip-flop sampling of ``B`` jittery oscillators by ``B`` divided clocks.

    Parameters
    ----------
    sampled_source:
        The fast oscillators on the D inputs: a
        :class:`~repro.engine.batch.BatchedOscillatorEnsemble` (or anything
        with ``batch_size`` / ``f0_hz`` / ``periods``), or a scalar
        :class:`~repro.oscillator.period_model.Clock` (treated as ``B = 1``).
    sampling_source:
        The clocks on the flip-flop clock inputs (same batch size).
    divider:
        Integer divider ``D``: one sample every ``D`` sampling-clock periods.
    duty_cycle:
        Duty cycle of the sampled waveforms.
    synthesis_block_periods:
        Internal synthesis block length (periods).  Both clocks advance on a
        fixed grid of this many periods, which is what makes chunked
        ``sample`` calls bit-for-bit identical to monolithic ones; it also
        bounds peak memory at ``O(batch * block)``.  The default
        ``max(8192, 2 * divider)`` guarantees at least two samples per block.
    backend:
        Optional synthesis backend re-bound onto both sources (sources that
        expose ``use_backend``, i.e. the batched ensembles/synthesizers).
        Backend choice never changes the sampled bits.
    """

    def __init__(
        self,
        sampled_source,
        sampling_source,
        divider: int = 1,
        duty_cycle: float = 0.5,
        synthesis_block_periods: Optional[int] = None,
        backend: BackendLike = None,
    ) -> None:
        if divider < 1:
            raise ValueError("divider must be >= 1")
        if not 0.0 < duty_cycle < 1.0:
            raise ValueError("duty cycle must be in (0, 1)")
        self.sampled_source = _as_rows(sampled_source)
        self.sampling_source = _as_rows(sampling_source)
        if backend is not None:
            # Resolve once so both sources share one backend instance (one
            # thread pool), even when a spec string is passed.
            backend = resolve_backend(backend)
            for source in (self.sampled_source, self.sampling_source):
                if hasattr(source, "use_backend"):
                    source.use_backend(backend)
        batch = int(self.sampled_source.batch_size)
        if int(self.sampling_source.batch_size) != batch:
            raise ValueError(
                f"batch mismatch: {batch} sampled oscillators vs "
                f"{self.sampling_source.batch_size} sampling clocks"
            )
        self.divider = int(divider)
        self.duty_cycle = float(duty_cycle)
        if synthesis_block_periods is None:
            synthesis_block_periods = max(8192, 2 * self.divider)
        if synthesis_block_periods < 1:
            raise ValueError("synthesis_block_periods must be >= 1")
        self._block = int(synthesis_block_periods)
        self._batch_size = batch
        # Sampling-clock state: last edge time, global period count, and the
        # divider-th edges drawn but not yet consumed as sample times.
        self._sampling_last_edge_s = np.zeros(batch)
        self._sampling_period_count = 0
        self._pending_sample_times = np.empty((batch, 0))
        # Sampled-oscillator state: a rolling edge buffer whose first edge is
        # at or before every not-yet-sampled time (it starts at t = 0).
        self._oscillator_edges = np.zeros((batch, 1))
        self._oscillator_last_edge_s = np.zeros(batch)

    @property
    def batch_size(self) -> int:
        """Number of sampler instances ``B``."""
        return self._batch_size

    @property
    def effective_sampling_frequency_hz(self) -> np.ndarray:
        """Sampling frequency after division, per instance ``(B,)`` [Hz]."""
        return np.asarray(self.sampling_source.f0_hz, dtype=float) / self.divider

    # -- streaming internals -------------------------------------------------

    def _next_sample_times(self, n_samples: int) -> np.ndarray:
        """The next ``n_samples`` sample times per row, advancing the clocks."""
        pending = [self._pending_sample_times]
        available = self._pending_sample_times.shape[1]
        while available < n_samples:
            periods = self.sampling_source.periods(self._block)
            edges = self._sampling_last_edge_s[:, None] + np.cumsum(periods, axis=1)
            self._sampling_last_edge_s = edges[:, -1].copy()
            first_global_index = self._sampling_period_count + 1
            self._sampling_period_count += self._block
            offset = (-first_global_index) % self.divider
            chosen = edges[:, offset :: self.divider]
            pending.append(chosen)
            available += chosen.shape[1]
        buffer = np.concatenate(pending, axis=1)
        self._pending_sample_times = buffer[:, n_samples:]
        return buffer[:, :n_samples]

    def _extend_coverage(self, last_sample_s: np.ndarray) -> None:
        """Draw oscillator blocks until every row's record covers its samples."""
        chunks = [self._oscillator_edges]
        last = self._oscillator_last_edge_s
        while np.any(last <= last_sample_s):
            periods = self.sampled_source.periods(self._block)
            edges = last[:, None] + np.cumsum(periods, axis=1)
            chunks.append(edges)
            last = edges[:, -1].copy()
        self._oscillator_last_edge_s = last
        if len(chunks) > 1:
            self._oscillator_edges = np.concatenate(chunks, axis=1)

    def _trim_consumed(self, last_sample_s: np.ndarray) -> None:
        """Drop edges no future sample can need (keep each row's bracket edge)."""
        brackets = _row_searchsorted_right(
            self._oscillator_edges, last_sample_s[:, None]
        )
        keep_from = int(np.min(brackets)) - 1
        if keep_from > 0:
            self._oscillator_edges = self._oscillator_edges[:, keep_from:]

    # -- sampling ------------------------------------------------------------

    def sample(self, n_bits: int) -> BatchedSamplingResult:
        """Produce the next ``n_bits`` raw bits per instance, ``(B, n_bits)``.

        Consecutive calls continue the clock timelines: ``sample(a)`` followed
        by ``sample(b)`` yields exactly the bits of ``sample(a + b)``.
        """
        if n_bits < 1:
            raise ValueError("n_bits must be >= 1")
        batch = self._batch_size
        bits = np.empty((batch, n_bits), dtype=np.int8)
        times = np.empty((batch, n_bits))
        step_bits = max(self._block // self.divider, 1)
        produced = 0
        while produced < n_bits:
            step = min(n_bits - produced, step_bits)
            step_times = self._next_sample_times(step)
            self._extend_coverage(step_times[:, -1])
            bits[:, produced : produced + step] = _levels(
                step_times, self._oscillator_edges, self.duty_cycle
            )
            times[:, produced : produced + step] = step_times
            self._trim_consumed(step_times[:, -1])
            produced += step
        return BatchedSamplingResult(
            bits=bits,
            sample_times_s=times,
            sampled_frequency_hz=np.asarray(self.sampled_source.f0_hz, dtype=float),
            sampling_frequency_hz=self.effective_sampling_frequency_hz,
        )


class BatchedEROTRNG:
    """An ensemble of ``B`` elementary RO-TRNGs generating bits in one pass.

    Each instance owns one spawned RNG stream (the engine's seeding
    discipline) and splits it into one sub-stream per ring oscillator, so the
    two rings of an instance are independent and batched row ``i`` is
    bit-for-bit the scalar :class:`repro.trng.ero_trng.EROTRNG` built from
    the same per-instance generator.

    Parameters
    ----------
    configuration:
        The shared :class:`repro.trng.ero_trng.EROTRNGConfiguration` (design
        parameters: ``f0``, per-oscillator PSD, divider, mismatch).
    batch_size:
        Number of TRNG instances ``B``.
    rngs:
        Per-instance parent generators (length ``B``); takes precedence over
        ``seed``.
    seed:
        Seed (or parent generator) from which the per-instance streams are
        spawned via :func:`repro.engine.batch.spawn_generators`.
    postprocessor:
        Optional per-row post-processing callable (applied row by row, since
        decimating post-processors produce ragged row lengths).
    synthesis_block_periods:
        Internal synthesis block length of the sampler (see
        :class:`BatchedDFlipFlopSampler`).  The default suits long
        campaign-style records; short-request workloads (the serving layer)
        pass a smaller block so a few output bits do not cost thousands of
        synthesized periods.  Bits are a deterministic function of
        (streams, configuration, block size): chunked calls never depend on
        chunking, but changing the block changes the edge-time grid.
    backend:
        Synthesis backend for both ring-oscillator ensembles (instance, spec
        string or ``None`` for the ``REPRO_BACKEND``/NumPy default).  Backend
        choice never changes the generated bits.
    rng_contract:
        Stream contract the ``seed`` path derives under (``"spawn"`` |
        ``"philox"`` | ``None`` for the process default; see
        :mod:`repro.engine.rng`).  Ignored when ``rngs`` is given.
    """

    def __init__(
        self,
        configuration,
        batch_size: Optional[int] = None,
        rngs: Optional[Sequence[np.random.Generator]] = None,
        seed: SeedLike = None,
        postprocessor=None,
        flicker_method: str = "spectral",
        synthesis_block_periods: Optional[int] = None,
        backend: BackendLike = None,
        rng_contract: Optional[str] = None,
    ) -> None:
        self.configuration = configuration
        if batch_size is None:
            batch_size = len(rngs) if rngs is not None else 1
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size!r}")
        if rngs is not None:
            parents = list(rngs)
            if len(parents) != batch_size:
                raise ValueError(
                    f"need {batch_size} generators, got {len(parents)}"
                )
        else:
            parents = spawn_generators(seed, batch_size, rng_contract=rng_contract)
        # Resolve the backend once (honouring the REPRO_BACKEND default) so
        # both ring ensembles share one instance — one thread pool, not two.
        backend = resolve_backend(backend)
        streams = [parent.spawn(2) for parent in parents]
        mismatch = configuration.frequency_mismatch
        psd = configuration.oscillator_psd
        self.postprocessor = postprocessor
        self.sampled_ensemble = BatchedOscillatorEnsemble(
            configuration.f0_hz * (1.0 + mismatch / 2.0),
            psd,
            batch_size=batch_size,
            rngs=[pair[0] for pair in streams],
            flicker_method=flicker_method,
            backend=backend,
            name="sampled",
        )
        self.sampling_ensemble = BatchedOscillatorEnsemble(
            configuration.f0_hz * (1.0 - mismatch / 2.0),
            psd,
            batch_size=batch_size,
            rngs=[pair[1] for pair in streams],
            flicker_method=flicker_method,
            backend=backend,
            name="sampling",
        )
        self._sampler = BatchedDFlipFlopSampler(
            self.sampled_ensemble,
            self.sampling_ensemble,
            divider=configuration.divider,
            synthesis_block_periods=synthesis_block_periods,
        )

    @property
    def batch_size(self) -> int:
        """Number of TRNG instances ``B``."""
        return self._sampler.batch_size

    @property
    def divider(self) -> int:
        """Accumulation length ``D`` (sampling-oscillator periods per bit)."""
        return int(self.configuration.divider)

    @property
    def backend(self):
        """The synthesis backend both ring ensembles run on."""
        return self.sampled_ensemble.backend

    def use_backend(self, backend: BackendLike) -> None:
        """Re-bind the synthesis backend of both ring ensembles.

        A pure execution-strategy change: the generated bit stream is
        bit-for-bit unaffected.  Spec strings resolve once, so both
        ensembles share the resulting instance.
        """
        backend = resolve_backend(backend)
        self.sampled_ensemble.use_backend(backend)
        self.sampling_ensemble.use_backend(backend)

    @property
    def output_bit_rate_hz(self) -> np.ndarray:
        """Raw bit rate before post-processing, per instance ``(B,)`` [bit/s]."""
        return self._sampler.effective_sampling_frequency_hz

    def generate_raw(self, n_bits: int) -> BatchedSamplingResult:
        """Next ``n_bits`` raw bits per instance, with their sampling times.

        Streaming semantics: consecutive calls continue the bit stream (the
        concatenation over calls is independent of how it was chunked).
        """
        return self._sampler.sample(n_bits)

    def generate(self, n_bits: int) -> Union[np.ndarray, List[np.ndarray]]:
        """Next ``n_bits`` raw bits per instance, post-processed if configured.

        Without a post-processor this returns the raw ``(B, n_bits)`` array;
        with one it returns a list of ``B`` per-row arrays, because a
        decimating post-processor produces a different length per row.  Use
        :meth:`generate_exact` for a rectangular post-processed block.
        """
        raw = self.generate_raw(n_bits).bits
        if self.postprocessor is None:
            return raw
        return [self.postprocessor(row) for row in raw]

    def generate_exact(
        self, n_bits: int, chunk_bits: Optional[int] = None
    ) -> np.ndarray:
        """Exactly ``n_bits`` post-processed bits per instance, ``(B, n_bits)``."""
        from .streaming import generate_bits_exact

        return generate_bits_exact(self, n_bits, chunk_bits=chunk_bits)

    def __len__(self) -> int:
        return self.batch_size

    def __repr__(self) -> str:
        return (
            f"BatchedEROTRNG(B={self.batch_size}, "
            f"f0={self.configuration.f0_hz:.4g} Hz, D={self.divider})"
        )
