"""The one synthesis row-loop every backend executes.

There is exactly one copy of the draw-and-shape kernel in the tree: both
:class:`~repro.engine.backends.numpy_backend.NumpyBackend` (one block
covering all rows) and
:class:`~repro.engine.backends.threaded.ThreadedBackend` (one block per
worker) call :func:`run_block` — so the bitwise cross-backend contract can
only drift if the *partitioning* changes, never the per-row draws.

Per-row stream order (the scalar synthesizer's, exactly): a row's thermal
variates are drawn before its flicker white noise — fused into one
``standard_normal`` call when both coefficients are positive, which consumes
the stream identically — and zero-coefficient rows skip their draw entirely.
Each row touches only its own generator, so any block partition of the rows
produces identical output; the spectral shaping is a row-wise FFT, so
shaping per block equals shaping all rows at once.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ...noise.flicker import (
    _pink_ar_cascade,
    _pink_spectral_shape,
    _spectral_fft_length,
    generate_pink_noise,
)
from ...obs import metrics as _obs
from .plan import SynthesisPlan

#: Kernel block timing (process-wide).  The histogram observe costs well
#: under a microsecond per *block* (not per row), and the kill switch
#: (``configure_metrics(enabled=False)``) skips even the clock reads — so
#: the instrumentation never touches an RNG stream and enabled/disabled
#: runs are bit-for-bit identical.
_BLOCK_SECONDS = _obs.global_registry().histogram(
    "engine_kernel_block_seconds",
    "Wall-clock seconds per synthesis kernel block (draw + shape)",
)
_BLOCK_ROWS = _obs.global_registry().counter(
    "engine_kernel_rows_total",
    "Rows synthesized by the kernel (across all blocks)",
)


def flicker_offsets(h_minus1: np.ndarray) -> np.ndarray:
    """Compact ``pink``-row offset of each row: ``offsets[i]`` is the number
    of flicker rows (``h_minus1 > 0``) before row ``i``; ``offsets[-1]`` is
    the total flicker-row count."""
    return np.concatenate(([0], np.cumsum(np.asarray(h_minus1) > 0.0)))


def run_block(
    n: int,
    rngs: Sequence[np.random.Generator],
    thermal_std_s: np.ndarray,
    h_minus1: np.ndarray,
    flicker_method: str,
    thermal: np.ndarray,
    pink: np.ndarray,
    position: int,
    start: int,
    stop: int,
    plan: Optional[SynthesisPlan] = None,
) -> None:
    """Draw and shape rows ``start..stop-1`` into the shared output arrays.

    ``thermal`` is written at rows ``start..stop-1``; the block's shaped
    pink rows land at ``pink[position:...]`` (``position`` = the block's
    first compact flicker index, from :func:`flicker_offsets`).  Blocks
    write disjoint slices, so concurrent calls need no synchronization.

    ``plan``, when given, must be the
    :class:`~repro.engine.backends.plan.SynthesisPlan` of this block's group
    key ``(n, flicker_method, any flicker rows)``; its precomputed tables
    replace the inline FFT-scaling / AR-cascade setup with values that are
    bit-for-bit identical (both come from the same builders in
    :mod:`repro.noise.flicker`).  ``None`` computes everything inline — the
    uncached reference path the equivalence tests compare against.
    """
    if not _obs.metrics_enabled():
        _run_block_rows(
            n, rngs, thermal_std_s, h_minus1, flicker_method,
            thermal, pink, position, start, stop, plan,
        )
        return
    began = time.perf_counter()
    _run_block_rows(
        n, rngs, thermal_std_s, h_minus1, flicker_method,
        thermal, pink, position, start, stop, plan,
    )
    _BLOCK_SECONDS.observe(time.perf_counter() - began)
    _BLOCK_ROWS.inc(stop - start)


def _run_block_rows(
    n: int,
    rngs: Sequence[np.random.Generator],
    thermal_std_s: np.ndarray,
    h_minus1: np.ndarray,
    flicker_method: str,
    thermal: np.ndarray,
    pink: np.ndarray,
    position: int,
    start: int,
    stop: int,
    plan: Optional[SynthesisPlan],
) -> None:
    sigma = thermal_std_s
    scaling = plan.spectral_scaling if plan is not None else None
    ar_tables = plan.ar_tables if plan is not None else None
    if flicker_method == "spectral":
        if plan is not None and plan.n_fft is not None:
            n_fft = plan.n_fft
        else:
            n_fft = _spectral_fft_length(n)
        n_flicker = sum(1 for i in range(start, stop) if h_minus1[i] > 0.0)
        white = np.empty((n_flicker, n_fft))
        drawn = 0
        for index in range(start, stop):
            rng = rngs[index]
            if sigma[index] > 0.0 and h_minus1[index] > 0.0:
                draw = rng.standard_normal(n + n_fft)
                np.multiply(draw[:n], sigma[index], out=thermal[index])
                white[drawn] = draw[n:]
                drawn += 1
            elif sigma[index] > 0.0:
                np.multiply(rng.standard_normal(n), sigma[index], out=thermal[index])
            elif h_minus1[index] > 0.0:
                white[drawn] = rng.standard_normal(n_fft)
                drawn += 1
        if n_flicker:
            pink[position : position + n_flicker] = _pink_spectral_shape(
                white, n, scaling=scaling
            )
    else:
        for index in range(start, stop):
            if sigma[index] > 0.0:
                thermal[index] = sigma[index] * rngs[index].standard_normal(n)
            if h_minus1[index] > 0.0:
                if flicker_method == "ar" and ar_tables is not None:
                    pink[position] = _pink_ar_cascade(
                        n, rngs[index], tables=ar_tables
                    )
                else:
                    pink[position] = generate_pink_noise(
                        n, rng=rngs[index], method=flicker_method
                    )
                position += 1
