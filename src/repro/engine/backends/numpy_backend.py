"""The reference backend: the engine's original single-threaded kernel.

A pure refactor of the draw-and-shape step that used to live inline in
:meth:`repro.engine.batch.BatchedJitterSynthesizer._components`; every other
backend is defined (and tested) as bit-for-bit equal to it.  The row loop
itself lives in :mod:`repro.engine.backends.kernel` and is shared with the
threaded backend — this class runs it as one block covering every row.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .base import SynthesisBackend
from .kernel import flicker_offsets, run_block
from .plan import synthesis_plan


class NumpyBackend(SynthesisBackend):
    """Single-threaded reference implementation of the synthesis kernel.

    Per-row stream order matches the scalar synthesizer exactly (see
    :mod:`repro.engine.backends.kernel`); the spectral path shapes all
    flicker rows with one batched FFT.
    """

    name = "numpy"

    def synthesize(
        self,
        n_periods: int,
        rngs: Sequence[np.random.Generator],
        thermal_std_s: np.ndarray,
        h_minus1: np.ndarray,
        flicker_method: str,
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = int(n_periods)
        batch = len(rngs)
        thermal = np.zeros((batch, n))
        offsets = flicker_offsets(h_minus1)
        n_flicker = int(offsets[-1])
        pink = np.empty((n_flicker, n))
        plan = synthesis_plan(n, flicker_method, n_flicker > 0)
        run_block(
            n,
            rngs,
            thermal_std_s,
            h_minus1,
            flicker_method,
            thermal,
            pink,
            0,
            0,
            batch,
            plan=plan,
        )
        return thermal, pink
