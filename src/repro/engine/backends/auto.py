"""Automatic backend selection: a measured cost model picks the executor.

Neither fixed choice is right everywhere.  The threaded backend pays a
thread-pool dispatch round-trip per synthesis call (measured at ~30-100 us
on this codebase's reference hardware) that dwarfs the kernel time of small
serving-sized blocks, while the NumPy reference leaves multicore hosts idle
on campaign-sized batches.  :class:`AutoBackend` routes each call by the
one quantity the kernel cost is proportional to — the total row-sample
count ``B x n_periods`` (the kernel runs at ~100 ns/sample independent of
the B/n split) — and the available core count:

* fewer than 2 usable workers, or a single-row batch: the thread pool can
  never win, use the reference;
* ``B x n_periods`` below the threshold: dispatch overhead is a material
  fraction of the kernel time, use the reference;
* otherwise: the threaded backend.

The default threshold of ``2**16`` row-samples corresponds to ~6.5 ms of
kernel work, keeping the measured dispatch round-trip below ~2% of it;
``REPRO_AUTO_THRESHOLD`` overrides it process-wide and
:func:`measure_auto_threshold` re-derives it empirically for unusual hosts.

Selection never changes output — both candidate backends are bit-for-bit
identical by the backend contract — so ``auto`` is safe anywhere a backend
spec is accepted (CLIs, campaign specs, serving).
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from .base import SynthesisBackend
from .numpy_backend import NumpyBackend
from .threaded import ThreadedBackend

#: Environment variable overriding the ``B x n_periods`` crossover threshold.
AUTO_THRESHOLD_ENV_VAR = "REPRO_AUTO_THRESHOLD"

#: Default crossover in row-samples (``B x n_periods``).  Measured basis: the
#: synthesis kernel runs at roughly 100 ns/sample (spectral method, n in the
#: serving-to-campaign range), so 2**16 samples is ~6.5 ms of work, against
#: which the ~30-100 us thread-pool dispatch round-trip is noise; below it,
#: thin serving blocks lose more to dispatch than they gain from overlap.
DEFAULT_AUTO_THRESHOLD = 2**16


def _resolve_threshold(threshold: Optional[int]) -> int:
    if threshold is None:
        raw = os.environ.get(AUTO_THRESHOLD_ENV_VAR)
        if raw:
            try:
                threshold = int(raw)
            except ValueError:
                raise ValueError(
                    f"{AUTO_THRESHOLD_ENV_VAR}={raw!r} is not an integer"
                ) from None
        else:
            threshold = DEFAULT_AUTO_THRESHOLD
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold!r}")
    return int(threshold)


class AutoBackend(SynthesisBackend):
    """Cost-model dispatch between the reference and threaded backends.

    Parameters
    ----------
    max_workers:
        Worker budget for the threaded side (and the core-count input of
        the cost model).  Defaults to the host CPU count; ``auto:N`` spec
        strings set it explicitly.
    threshold:
        ``B x n_periods`` crossover above which the threaded backend is
        selected.  Defaults to ``REPRO_AUTO_THRESHOLD`` when set, else
        :data:`DEFAULT_AUTO_THRESHOLD`.
    """

    name = "auto"

    def __init__(
        self, max_workers: Optional[int] = None, threshold: Optional[int] = None
    ) -> None:
        self._explicit_workers = max_workers is not None
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers!r}")
        self.max_workers = int(max_workers)
        self.threshold = _resolve_threshold(threshold)
        self._numpy = NumpyBackend()
        # Lazy: a 1-core host (or an all-small workload) never builds the
        # thread pool at all.
        self._threaded: Optional[ThreadedBackend] = None

    @property
    def spec(self) -> str:
        return f"auto:{self.max_workers}" if self._explicit_workers else "auto"

    def select(self, batch: int, n_periods: int) -> SynthesisBackend:
        """The backend the cost model picks for a ``(batch, n_periods)`` call."""
        if self.max_workers < 2 or batch < 2:
            return self._numpy
        if batch * n_periods < self.threshold:
            return self._numpy
        if self._threaded is None:
            self._threaded = ThreadedBackend(max_workers=self.max_workers)
        return self._threaded

    def synthesize(
        self,
        n_periods: int,
        rngs: Sequence[np.random.Generator],
        thermal_std_s: np.ndarray,
        h_minus1: np.ndarray,
        flicker_method: str,
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.select(len(rngs), int(n_periods)).synthesize(
            n_periods, rngs, thermal_std_s, h_minus1, flicker_method
        )

    def min_shard_rows(self, n_periods: Optional[int] = None) -> int:
        """Threaded-sized shards only when the cost model could pick threads.

        A shard of ``max_workers`` rows at ``n_periods`` samples is the
        thinnest shard on which the threaded side both engages (crosses the
        threshold) and saturates its pool; below that workload the auto
        backend degenerates to the reference, for which any shard size is
        fine.
        """
        if self.max_workers < 2:
            return 1
        if n_periods is None:
            return 1
        if self.max_workers * int(n_periods) >= self.threshold:
            return self.max_workers
        return 1


def measure_auto_threshold(
    max_workers: Optional[int] = None,
    n_periods: int = 1024,
    max_batch: int = 512,
    repeats: int = 3,
    flicker_method: str = "spectral",
    time_function: Callable[[], float] = time.perf_counter,
) -> Optional[int]:
    """Empirically locate the ``B x n_periods`` crossover on this host.

    Times the reference and threaded backends on identical workloads over a
    geometric batch sweep and returns the smallest ``B x n_periods`` at
    which the threaded backend wins, or ``None`` if it never does (e.g. on
    a single-core host).  Intended for calibration tooling (the synthesis
    benchmarks report it) — pin the result via ``REPRO_AUTO_THRESHOLD`` on
    hosts where the shipped default is wrong.
    """
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    if max_workers < 2:
        return None
    reference = NumpyBackend()
    threaded = ThreadedBackend(max_workers=max_workers)

    def best_time(backend: SynthesisBackend, batch: int) -> float:
        sigma = np.full(batch, 1e-12)
        h_minus1 = np.full(batch, 1e-22)
        best = float("inf")
        for repeat in range(repeats):
            rngs = np.random.SeedSequence(repeat).spawn(batch)
            generators = [np.random.Generator(np.random.SFC64(s)) for s in rngs]
            start = time_function()
            backend.synthesize(n_periods, generators, sigma, h_minus1, flicker_method)
            best = min(best, time_function() - start)
        return best

    batch = 2
    while batch <= max_batch:
        if best_time(threaded, batch) < best_time(reference, batch):
            return batch * n_periods
        batch *= 2
    return None
