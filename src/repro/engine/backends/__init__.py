"""Pluggable synthesis backends for the batched engine's hot kernel.

The draw-and-shape step of
:meth:`repro.engine.batch.BatchedJitterSynthesizer._components` — per-row
fused ``standard_normal`` draws, thermal scaling, pink spectral shaping — is
the single kernel every campaign bottlenecks on.  This package abstracts it
behind :class:`SynthesisBackend` so accelerated implementations drop in
underneath every workload at once:

* :class:`NumpyBackend` — the single-threaded reference (a pure refactor of
  the original inline kernel); the definition of correct output.
* :class:`ThreadedBackend` — contiguous row blocks on a
  ``ThreadPoolExecutor``; bit-for-bit identical to the reference at any
  worker count because each row consumes only its own spawned RNG stream.
* :class:`AutoBackend` — a measured cost model (``B x n_periods``
  row-sample threshold, core count) picks one of the above per call; see
  :mod:`repro.engine.backends.auto`.
* :class:`PhiloxBackend` — the counter-based tier: same shared kernel and
  thread pool, but its native stream contract is ``"philox"`` (index-keyed
  :class:`~repro.engine.rng.PhiloxRowStream` rows); see
  :mod:`repro.engine.backends.philox` and :mod:`repro.engine.rng`.

All backends share the RNG-independent per-group setup (FFT scaling table,
AR corner/pole tables) through the :mod:`repro.engine.backends.plan` cache;
cached plans are bit-for-bit identical to the inline computation by
construction.

Selection is by *backend spec*, a short string that serializes through
campaign-spec JSON and CLI flags alike: ``"numpy"``, ``"threaded"`` (host
CPU count), ``"threaded:N"``, ``"auto"``/``"auto:N"`` or
``"philox"``/``"philox:N"``.
:func:`resolve_backend` turns a spec (or ``None``, honouring the
``REPRO_BACKEND`` environment default) into a backend instance; passing an
instance returns it unchanged.

The equivalence contract (every backend == :class:`NumpyBackend`, bitwise)
is enforced by ``tests/engine/test_backend_equivalence.py`` and, end to end,
by ``tests/property/test_backend_streams.py``.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from .auto import AUTO_THRESHOLD_ENV_VAR, AutoBackend, measure_auto_threshold
from .base import SynthesisBackend
from .numpy_backend import NumpyBackend
from .philox import PhiloxBackend
from .plan import (
    SynthesisPlan,
    configure_plan_cache,
    plan_cache_stats,
    reset_plan_cache,
    synthesis_plan,
)
from .threaded import ThreadedBackend

#: Environment variable consulted when no backend is requested explicitly.
#: ``REPRO_BACKEND=threaded`` (or ``threaded:N``) switches the default for a
#: whole process tree — how CI runs the tier-1 suite on the threaded backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Spec names accepted by :func:`resolve_backend` (``threaded``, ``auto``
#: and ``philox`` also take a ``:N`` worker-count suffix).
BACKEND_NAMES = ("numpy", "threaded", "auto", "philox")

BackendLike = Union[SynthesisBackend, str, None]


def parse_backend_spec(spec: str) -> SynthesisBackend:
    """Build a backend from a spec string (``numpy`` | ``threaded[:N]`` |
    ``auto[:N]`` | ``philox[:N]``)."""
    name, _, argument = str(spec).strip().partition(":")
    if name == "numpy":
        if argument:
            raise ValueError(
                f"backend spec {spec!r} invalid: 'numpy' takes no argument"
            )
        return NumpyBackend()
    if name in ("threaded", "auto", "philox"):
        workers: Optional[int] = None
        if argument:
            try:
                workers = int(argument)
            except ValueError:
                raise ValueError(
                    f"backend spec {spec!r} invalid: worker count must be an "
                    f"integer, got {argument!r}"
                ) from None
        if name == "threaded":
            return ThreadedBackend(max_workers=workers)
        if name == "philox":
            return PhiloxBackend(max_workers=workers)
        return AutoBackend(max_workers=workers)
    raise ValueError(
        f"unknown synthesis backend {spec!r}: choose one of "
        f"{', '.join(BACKEND_NAMES)} (threaded, auto and philox accept a "
        f"':N' worker suffix)"
    )


def resolve_backend(backend: BackendLike = None) -> SynthesisBackend:
    """Resolve a backend argument to an instance.

    ``None`` consults the ``REPRO_BACKEND`` environment variable and falls
    back to the :class:`NumpyBackend` reference; a string is parsed as a
    backend spec; an instance passes through unchanged.  Every engine entry
    point funnels its ``backend=`` parameter through here, which is what
    makes the environment default reach campaigns, shards and the serving
    layer without per-call-site wiring.
    """
    if isinstance(backend, SynthesisBackend):
        return backend
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or "numpy"
    if not isinstance(backend, str):
        raise TypeError(
            f"backend must be a SynthesisBackend, a spec string or None, "
            f"got {type(backend).__name__}"
        )
    return parse_backend_spec(backend)


def validate_backend_spec(spec: Optional[str]) -> Optional[str]:
    """Validate a to-be-serialized spec string (``None`` passes through).

    Campaign specs and serving requests store the *string*, not the
    instance, so shards and remote workers re-create the backend host-side;
    this validates eagerly at spec construction instead of failing inside a
    worker process.
    """
    if spec is None:
        return None
    parse_backend_spec(spec)
    return str(spec)


__all__ = [
    "AUTO_THRESHOLD_ENV_VAR",
    "AutoBackend",
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "BackendLike",
    "NumpyBackend",
    "PhiloxBackend",
    "SynthesisBackend",
    "SynthesisPlan",
    "ThreadedBackend",
    "configure_plan_cache",
    "measure_auto_threshold",
    "parse_backend_spec",
    "plan_cache_stats",
    "reset_plan_cache",
    "resolve_backend",
    "synthesis_plan",
    "validate_backend_spec",
]
