"""Philox-tier synthesis backend: the counter-based RNG contract's executor.

:class:`PhiloxBackend` runs the exact shared row loop of
:mod:`repro.engine.backends.kernel` (inheriting the contiguous-row-block
thread pool of :class:`~repro.engine.backends.threaded.ThreadedBackend`),
so with spawn-contract streams it is bit-for-bit identical to every other
backend — selecting it via ``--backend philox[:N]`` / ``REPRO_BACKEND``
is always safe.

What the tier *adds* is its native stream contract: ``rng_contract =
"philox"`` tells contract resolution (see :func:`repro.engine.rng.
resolve_rng_contract`) that a campaign spec or environment selecting this
backend wants index-keyed :class:`~repro.engine.rng.PhiloxRowStream` rows,
whose every draw is a pure function of ``(root_key, row, block, offset)``.
Under that contract nothing about this backend is stateful between rows
or calls — the execution plan of a future vectorized-Philox or CuPy/JAX
backend is "evaluate the same keys on device", with host/device outputs
reproducible by construction.

Execution backends are deliberately *stream-agnostic*: the kernel draws
from whatever per-row streams the synthesizer owns, so a philox backend
given spawn streams (or vice versa) computes correctly under that
contract.  The contract, not the backend, decides the draws.
"""

from __future__ import annotations

from typing import Optional

from .threaded import ThreadedBackend


class PhiloxBackend(ThreadedBackend):
    """Counter-based-tier backend: shared kernel, index-keyed native streams.

    Parameters
    ----------
    max_workers:
        Thread count for contiguous row blocks (defaults to the host CPU
        count), exactly as in :class:`~repro.engine.backends.threaded.
        ThreadedBackend`; ``philox:1`` is the sequential reference loop.
    """

    name = "philox"
    rng_contract = "philox"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__(max_workers=max_workers)

    @property
    def spec(self) -> str:
        return f"philox:{self.max_workers}"
