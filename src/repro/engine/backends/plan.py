"""Precomputed synthesis plans: the RNG-independent setup of one group key.

Profiling the serving layer showed that for small-``n`` requests (streaming
sessions, coalesced serving rows) a large share of each synthesis call is
spent rebuilding values that depend only on the group-key fields ``(n,
flicker_method, has_flicker)`` and never on the random streams: the FFT
buffer length of the spectral method, its rFFT ``1/sqrt(f)`` shaping table,
and the corner/pole/weight tables of the AR cascade.  A
:class:`SynthesisPlan` captures exactly that setup; the process-wide cache
below shares one plan across every coalesced row, streaming session and
backend synthesising the same group key.

Correctness contract: a plan stores the *same values* the generators compute
inline (the table builders in :mod:`repro.noise.flicker` are the single
source of truth for both paths), so cached synthesis is bit-for-bit
identical to the uncached reference — enforced by
``tests/engine/test_synthesis_plan.py``.  Cached arrays are frozen
(``writeable=False``) so no caller can corrupt a shared plan in place.

The cache is a small LRU guarded by a lock (plans are requested from serving
worker threads); hit/miss/eviction counters are surfaced through
:class:`repro.serving.service.ServiceStats`.  ``configure_plan_cache(0)``
disables caching entirely — every request builds a fresh plan — which is the
comparison mode the equivalence tests and the cache benchmark use.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ...noise.flicker import (
    FLICKER_METHODS,
    ArCascadeTables,
    _spectral_fft_length,
    ar_cascade_tables,
    spectral_scaling_table,
)
from ...obs import metrics as _obs

#: Default maximum number of cached plans.  Spectral tables are the large
#: ones (``n_fft/2 + 1`` floats, with ``n_fft`` ~ 2-4x ``n``); 64 plans of
#: even 1M samples each stay well under typical memory budgets while easily
#: covering the distinct group keys of a serving process.
DEFAULT_PLAN_CACHE_SIZE = 64


@dataclass(frozen=True)
class SynthesisPlan:
    """The RNG-independent synthesis setup of one ``(n, method, flicker)`` key.

    ``n_fft``/``spectral_scaling`` are populated for the spectral method,
    ``ar_tables`` for the AR cascade; Hosking's recursion interleaves its
    coefficient updates with the sample draws, so it has no reusable setup
    and its plan carries the key only.  Flicker-free groups skip the tables
    entirely.
    """

    n_periods: int
    flicker_method: str
    has_flicker: bool
    n_fft: Optional[int] = None
    spectral_scaling: Optional[np.ndarray] = None
    ar_tables: Optional[ArCascadeTables] = None


def _frozen(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


def build_plan(
    n_periods: int, flicker_method: str, has_flicker: bool
) -> SynthesisPlan:
    """Compute a plan from scratch (no cache involvement).

    Delegates to the table builders in :mod:`repro.noise.flicker` — the same
    functions the generators call inline when handed no tables — so the
    cached and uncached paths cannot drift apart.
    """
    if n_periods <= 0:
        raise ValueError(f"n_periods must be > 0, got {n_periods!r}")
    if flicker_method not in FLICKER_METHODS:
        raise ValueError(
            f"unknown flicker method {flicker_method!r}: choose one of "
            f"{', '.join(FLICKER_METHODS)}"
        )
    n_fft: Optional[int] = None
    spectral_scaling: Optional[np.ndarray] = None
    ar_tables: Optional[ArCascadeTables] = None
    if has_flicker:
        if flicker_method == "spectral":
            n_fft = _spectral_fft_length(n_periods)
            spectral_scaling = _frozen(spectral_scaling_table(n_fft))
        elif flicker_method == "ar":
            tables = ar_cascade_tables(n_periods)
            ar_tables = ArCascadeTables(
                corners=_frozen(tables.corners),
                poles=_frozen(tables.poles),
                weights=_frozen(tables.weights),
                target_variance=tables.target_variance,
            )
    return SynthesisPlan(
        n_periods=int(n_periods),
        flicker_method=str(flicker_method),
        has_flicker=bool(has_flicker),
        n_fft=n_fft,
        spectral_scaling=spectral_scaling,
        ar_tables=ar_tables,
    )


_PlanKey = Tuple[int, str, bool]

_lock = threading.Lock()
_cache: "OrderedDict[_PlanKey, SynthesisPlan]" = OrderedDict()
_maxsize = DEFAULT_PLAN_CACHE_SIZE

# The hit/miss/eviction counters live in the process-wide observability
# registry — plan_cache_stats(), ServiceStats.snapshot() and the Prometheus
# exposition all read the *same* counters, so there is exactly one source of
# truth.  Cache bookkeeping itself (entries, LRU order) is unaffected by the
# metrics kill switch; only the counters pause while metrics are disabled.
_HITS = _obs.global_registry().counter(
    "plan_cache_hits_total", "Synthesis-plan cache hits"
)
_MISSES = _obs.global_registry().counter(
    "plan_cache_misses_total", "Synthesis-plan cache misses"
)
_EVICTIONS = _obs.global_registry().counter(
    "plan_cache_evictions_total", "Synthesis-plan cache LRU evictions"
)


def synthesis_plan(
    n_periods: int, flicker_method: str, has_flicker: bool
) -> SynthesisPlan:
    """Return the (shared, possibly cached) plan for one group key.

    This is the entry point every backend uses; with the cache disabled
    (``configure_plan_cache(0)``) it still returns a correct plan, just a
    freshly built one on every call.
    """
    key: _PlanKey = (int(n_periods), str(flicker_method), bool(has_flicker))
    with _lock:
        plan = _cache.get(key)
        if plan is not None:
            _cache.move_to_end(key)
    if plan is not None:
        _HITS.inc()
        return plan
    _MISSES.inc()
    # Build outside the lock: plans are immutable and building twice under a
    # race is merely wasted work, never wrong output.
    plan = build_plan(*key)
    evicted = 0
    with _lock:
        if _maxsize > 0 and key not in _cache:
            _cache[key] = plan
            while len(_cache) > _maxsize:
                _cache.popitem(last=False)
                evicted += 1
    if evicted:
        _EVICTIONS.inc(evicted)
    return plan


def plan_cache_stats() -> Dict[str, int]:
    """A snapshot of the cache counters (surfaced in ``ServiceStats``).

    The hit/miss/eviction values are read from the shared observability
    registry (:func:`repro.obs.global_registry`) — the same counters the
    ``metrics`` protocol kind and the Prometheus exposition export.
    """
    with _lock:
        size = len(_cache)
        maxsize = _maxsize
    return {
        "hits": int(_HITS.value()),
        "misses": int(_MISSES.value()),
        "evictions": int(_EVICTIONS.value()),
        "size": size,
        "maxsize": maxsize,
    }


def reset_plan_cache() -> None:
    """Drop every cached plan and zero the counters (test isolation)."""
    with _lock:
        _cache.clear()
    _HITS.reset()
    _MISSES.reset()
    _EVICTIONS.reset()


def configure_plan_cache(maxsize: int) -> None:
    """Set the cache capacity; ``0`` disables caching (fresh plan per call)."""
    global _maxsize
    if maxsize < 0:
        raise ValueError(f"maxsize must be >= 0, got {maxsize!r}")
    evicted = 0
    with _lock:
        _maxsize = int(maxsize)
        while len(_cache) > _maxsize:
            _cache.popitem(last=False)
            evicted += 1
    if evicted:
        _EVICTIONS.inc(evicted)
