"""Multithreaded synthesis backend: contiguous row blocks on a thread pool.

The synthesis kernel is row-independent by construction (each row consumes
only its own spawned generator), so rows can execute concurrently without
changing a single bit of output.  :class:`ThreadedBackend` partitions the
batch into contiguous row blocks, one per worker, and runs the shared row
loop of :mod:`repro.engine.backends.kernel` — the same code the
:class:`~repro.engine.backends.numpy_backend.NumpyBackend` reference runs as
one whole-batch block — on a :class:`concurrent.futures.ThreadPoolExecutor`.

Why threads help despite the GIL: the two dominant costs both release it —
``numpy.random.Generator`` fill operations (``standard_normal``) run
``nogil`` under the generator's own lock, and the pocketfft transforms
behind the spectral pink-noise shaping release the GIL too.  Each block
shapes its own flicker rows, so the FFT work parallelizes along with the
draws; row-wise FFT results are identical however the rows are grouped
(the engine already relies on this: the scalar 1-D transform equals the
batched transform row by row).

Determinism: block boundaries only decide *which thread* runs a row, never
what the row computes — output is bit-for-bit identical to the reference at
any worker count, enforced by ``tests/engine/test_backend_equivalence.py``.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .base import SynthesisBackend
from .kernel import flicker_offsets, run_block
from .plan import synthesis_plan


def _row_blocks(batch: int, n_blocks: int) -> List[Tuple[int, int]]:
    """Split ``range(batch)`` into ``n_blocks`` balanced contiguous ranges."""
    n_blocks = max(1, min(n_blocks, batch))
    bounds = np.linspace(0, batch, n_blocks + 1, dtype=int)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(n_blocks)
        if bounds[i] < bounds[i + 1]
    ]


class ThreadedBackend(SynthesisBackend):
    """Runs the shared kernel on contiguous row blocks across threads.

    Parameters
    ----------
    max_workers:
        Thread count (and maximum number of row blocks).  Defaults to the
        host CPU count.  ``threaded:1`` is the reference loop behind the
        same interface — useful for isolating thread effects in tests.
    """

    name = "threaded"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers!r}")
        self.max_workers = int(max_workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    @property
    def spec(self) -> str:
        return f"threaded:{self.max_workers}"

    def min_shard_rows(self, n_periods: Optional[int] = None) -> int:
        # A shard thinner than the worker count leaves threads idle.
        return self.max_workers

    def _executor(self) -> ThreadPoolExecutor:
        # Lazy: a backend constructed only to be serialized (spec strings in
        # campaign specs) never starts threads.  Guarded by a lock — one
        # backend instance is shared by any number of synthesizers, possibly
        # first-used from concurrent serving worker threads.
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-synthesis",
                )
            return self._pool

    def synthesize(
        self,
        n_periods: int,
        rngs: Sequence[np.random.Generator],
        thermal_std_s: np.ndarray,
        h_minus1: np.ndarray,
        flicker_method: str,
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = int(n_periods)
        batch = len(rngs)
        thermal = np.zeros((batch, n))
        # Compact destination row of each flicker row: blocks write disjoint
        # slices of `pink`, offset by the flicker-row count before them.
        offsets = flicker_offsets(h_minus1)
        n_flicker = int(offsets[-1])
        pink = np.empty((n_flicker, n))
        blocks = _row_blocks(batch, self.max_workers)
        # One plan lookup for the whole batch: every worker block shares the
        # same immutable tables (they only read them).
        plan = synthesis_plan(n, flicker_method, n_flicker > 0)

        def block_task(start: int, stop: int) -> None:
            run_block(
                n,
                rngs,
                thermal_std_s,
                h_minus1,
                flicker_method,
                thermal,
                pink,
                int(offsets[start]),
                start,
                stop,
                plan=plan,
            )

        if len(blocks) == 1:
            # B = 1 views and threaded:1 skip the pool entirely.
            block_task(*blocks[0])
        else:
            pool = self._executor()
            futures = [pool.submit(block_task, start, stop) for start, stop in blocks]
            for future in futures:
                future.result()
        return thermal, pink
