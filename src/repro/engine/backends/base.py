"""The synthesis-backend interface: who executes the engine's hot kernel.

Every workload in this reproduction — ``sigma^2_N`` campaigns, the batched
bit pipeline, distributed shards, the serving layer — bottlenecks on one
kernel: the draw-and-shape step of
:meth:`repro.engine.batch.BatchedJitterSynthesizer._components` (per-row
fused ``standard_normal`` draws, thermal scaling, pink spectral shaping).  A
:class:`SynthesisBackend` owns exactly that step, so an accelerated backend
speeds up every campaign at once without touching any caller.

Backend contract
----------------
:meth:`SynthesisBackend.synthesize` receives the per-row generators and the
per-row synthesis coefficients and must return arrays **bit-for-bit
identical** to the reference :class:`~repro.engine.backends.numpy_backend.
NumpyBackend` for the same inputs.  Concretely, for every row ``i``:

* when both ``thermal_std_s[i]`` and ``h_minus1[i]`` are positive and the
  flicker method is spectral, the row draws one fused
  ``rngs[i].standard_normal(n + n_fft)`` (thermal variates first, flicker
  white noise second);
* when only one coefficient is positive, only that component's draw happens;
* zero-coefficient rows skip their draw entirely (their generator is not
  touched);
* each row consumes **only its own** generator, so rows may execute in any
  order or concurrently — this row independence is what makes threaded (and
  future GPU) backends bit-for-bit reproducible at any worker count.

The equivalence matrix in ``tests/engine/test_backend_equivalence.py``
enforces the contract for every shipped backend.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple

import numpy as np


class SynthesisBackend(ABC):
    """Executes the draw-and-shape step of the batched jitter synthesis.

    Subclasses must be stateless with respect to the synthesis itself (all
    randomness lives in the per-row generators), so one backend instance may
    be shared by any number of synthesizers.
    """

    #: Short machine name (``"numpy"``, ``"threaded"``); the parsable spec
    #: string is :attr:`spec`.
    name: str = "abstract"

    #: The RNG contract this backend is *natively keyed for* (see
    #: :mod:`repro.engine.rng`).  Execution is stream-agnostic — any backend
    #: runs correctly on any contract's streams — but contract resolution
    #: uses this to let a ``"philox[:N]"`` backend selection imply the
    #: index-keyed stream contract in campaign specs and environments.
    rng_contract: str = "spawn"

    @property
    def spec(self) -> str:
        """The backend-spec string that recreates this backend."""
        return self.name

    def min_shard_rows(self, n_periods: Optional[int] = None) -> int:
        """Rows a shard should keep to exploit this backend's parallelism.

        The distributed planner uses this to avoid slicing a batch into
        shards so thin that an intra-shard parallel backend runs starved
        (e.g. a ``threaded:8`` backend inside a 1-row shard parallelises
        nothing).  Sequential backends return 1 — any shard size is fine.
        ``n_periods`` lets cost-model backends answer per workload.
        """
        return 1

    @abstractmethod
    def synthesize(
        self,
        n_periods: int,
        rngs: Sequence[np.random.Generator],
        thermal_std_s: np.ndarray,
        h_minus1: np.ndarray,
        flicker_method: str,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw thermal jitter and shaped unit pink noise for every row.

        Parameters
        ----------
        n_periods:
            Number of samples per row (``> 0``; the ``n = 0`` short-circuit
            lives in the caller).
        rngs:
            One generator per row; row ``i`` must consume ``rngs[i]`` only.
        thermal_std_s:
            Per-row thermal jitter std ``(B,)`` [s]; rows with ``0.0`` skip
            the thermal draw.
        h_minus1:
            Per-row flicker fractional-frequency coefficients ``(B,)``; rows
            with ``0.0`` skip the flicker draw.
        flicker_method:
            1/f generator method (see
            :data:`repro.noise.flicker.FLICKER_METHODS`).

        Returns
        -------
        thermal:
            ``(B, n_periods)`` thermal jitter [s]; zero rows where
            ``thermal_std_s`` is zero.
        pink:
            ``(F, n_periods)`` unit-PSD pink noise, one row per flicker row
            (``h_minus1 > 0``) in ascending row order.  The caller applies
            the ``sqrt(h_-1)``/period scaling.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(spec={self.spec!r})"
