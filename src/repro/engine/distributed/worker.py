"""Shard execution: turn ``(spec, shard)`` into a mergeable partial payload.

:func:`run_shard` is the single function every executor dispatches — a
module-level callable, so it pickles by reference into worker processes.  A
*partial* is a flat dict of numpy arrays plus a ``kind`` tag, chosen so it
(a) pickles cheaply between processes, (b) saves losslessly to a per-shard
``.npz`` checkpoint, and (c) merges into the exact arrays the unsharded
campaign produces (see :mod:`repro.engine.distributed.merge`).

Memory discipline: a sigma^2_N shard holds ``O(rows x n_periods)`` (or
``O(rows x chunk_periods)`` in streaming mode, where the partial is the
streaming estimator's *state*, not a record); a bit shard holds
``O(rows x synthesis_block)`` thanks to the streaming sampler.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ...core.sigma_n import batched_sigma2_n_sweep
from ..streaming import streaming_sigma2_n_estimator
from .plan import Shard
from .spec import BitCampaignSpec, CampaignSpec, Sigma2NCampaignSpec

ShardTask = Tuple[CampaignSpec, Shard]
Partial = Dict[str, np.ndarray]


def run_shard(task: ShardTask) -> Partial:
    """Run one shard of a campaign and return its partial payload."""
    spec, shard = task
    if isinstance(spec, Sigma2NCampaignSpec):
        return _run_sigma2n_shard(spec, shard)
    if isinstance(spec, BitCampaignSpec):
        return _run_bit_shard(spec, shard)
    raise TypeError(f"unsupported campaign spec: {type(spec)!r}")


def _run_sigma2n_shard(spec: Sigma2NCampaignSpec, shard: Shard) -> Partial:
    ensemble = spec.ensemble(shard.start, shard.stop)
    if spec.chunk_periods is not None:
        estimator = streaming_sigma2_n_estimator(
            ensemble,
            spec.n_periods,
            spec.chunk_periods,
            n_sweep=spec.n_sweep,
            overlapping=spec.overlapping,
            min_realizations=spec.min_realizations,
        )
        payload: Partial = {"kind": np.array("sigma2n_stream")}
        payload.update(estimator.export_state())
        payload["f0"] = ensemble.f0_hz
        payload["rng_contract"] = np.array(spec.rng_contract)
        return payload
    records = ensemble.jitter(spec.n_periods)
    n_list, sigma2, counts, f0 = batched_sigma2_n_sweep(
        records,
        ensemble.f0_hz,
        n_sweep=spec.n_sweep,
        overlapping=spec.overlapping,
        min_realizations=spec.min_realizations,
        exact=spec.exact,
    )
    return {
        "kind": np.array("sigma2n_sweep"),
        "n_values": np.array(n_list, dtype=np.int64),
        "sigma2": sigma2,
        "counts": np.asarray(counts),
        "f0": f0,
        "rng_contract": np.array(spec.rng_contract),
    }


def _run_bit_shard(spec: BitCampaignSpec, shard: Shard) -> Partial:
    from ..campaign import batched_bit_campaign

    result = batched_bit_campaign(
        spec.configuration(),
        spec.dividers,
        spec.batch_size,
        spec.n_bits,
        seed=spec.seed,
        run_procedure_a=spec.run_procedure_a,
        include_t0=spec.include_t0,
        run_procedure_b=spec.run_procedure_b,
        min_entropy_block_size=spec.min_entropy_block_size,
        instance_range=(shard.start, shard.stop),
        backend=spec.backend,
        rng_contract=spec.rng_contract,
    )
    payload: Partial = {
        "kind": np.array("bits"),
        "rng_contract": np.array(spec.rng_contract),
        "dividers": result.dividers,
        "bias": result.bias,
        "shannon_entropy": result.shannon_entropy,
        "min_entropy": result.min_entropy,
        "markov_entropy": result.markov_entropy,
        "n_bits": np.array(result.n_bits, dtype=np.int64),
    }
    if result.procedure_a_passed is not None:
        payload["procedure_a_passed"] = result.procedure_a_passed
    if result.procedure_b_passed is not None:
        payload["procedure_b_passed"] = result.procedure_b_passed
    return payload
