"""Serializable campaign specifications: everything a worker needs to run.

A *spec* is the declarative form of one batched campaign: plain numbers and
tuples only, so it pickles across process boundaries and round-trips through
the JSON checkpoint manifest.  The crucial property is **seed closure**: the
spec pins the root seed at construction time (drawing fresh
``SeedSequence`` entropy when none is given), and every shard re-derives its
per-row RNG streams by slicing the root spawn tree
(:func:`repro.engine.batch.spawn_generators`).  Row ``i`` therefore consumes
the same stream whether the campaign runs unsharded, in 7 shards, or across
4 processes — which is what makes sharded output bit-for-bit identical to
the unsharded batched path.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ...paper import PAPER_B_THERMAL_HZ, PAPER_F0_HZ
from ..backends import validate_backend_spec
from ..batch import BatchedOscillatorEnsemble, spawn_generators
from ..rng import resolve_rng_contract

ParamLike = Union[float, Tuple[float, ...]]

#: Flicker coefficient of the README/benchmark reference design [Hz^2]
#: (the relative, i.e. oscillator-pair, value; halve it per oscillator).
DEFAULT_B_FLICKER_HZ2 = 5.42


def fresh_entropy() -> int:
    """Root entropy for specs/requests constructed without an explicit seed.

    Pinning fresh ``SeedSequence`` entropy at construction time is what makes
    one spec (or one serving request) describe one reproducible computation:
    the recorded seed replays it exactly, sharded or coalesced.
    """
    return int(np.random.SeedSequence().entropy)


def _as_param(value, batch_size: int, name: str) -> ParamLike:
    """Normalize a spec parameter to a float or a length-``B`` float tuple."""
    array = np.asarray(value, dtype=float)
    if array.ndim == 0:
        return float(array)
    if array.ndim == 1 and array.size == int(batch_size):
        return tuple(float(item) for item in array)
    raise ValueError(
        f"{name} must be a scalar or a length-{batch_size} sequence, "
        f"got shape {array.shape}"
    )


def _slice_param(value: ParamLike, start: int, stop: int):
    """Row range of a normalized parameter (scalars broadcast unchanged)."""
    if isinstance(value, tuple):
        return np.array(value[start:stop])
    return value


def _normalized_rows(spec, start: Optional[int], stop: Optional[int]):
    start = 0 if start is None else int(start)
    stop = spec.batch_size if stop is None else int(stop)
    if not 0 <= start < stop <= spec.batch_size:
        raise ValueError(
            f"rows must satisfy 0 <= start < stop <= {spec.batch_size}, "
            f"got [{start}, {stop})"
        )
    return start, stop


@dataclass(frozen=True)
class Sigma2NCampaignSpec:
    """Declarative form of one :func:`batched_sigma2_n_campaign` run.

    ``f0_hz`` / ``b_thermal_hz`` / ``b_flicker_hz2`` may be scalars (shared)
    or length-``batch_size`` sequences (a heterogeneous corner sweep).  A
    ``seed`` of ``None`` pins fresh root entropy at construction, so one spec
    instance always describes one reproducible campaign.

    ``backend`` is a synthesis-backend *spec string* (``"numpy"`` |
    ``"threaded[:N]"``; ``None`` defers to the worker's ``REPRO_BACKEND``/
    NumPy default), stored as a string so every shard re-creates the backend
    host-side.  Backends are bit-for-bit equivalent, so the field selects
    execution speed only — results, shard invariance and ``--verify`` are
    unaffected.

    ``rng_contract`` pins the *stream* contract (``"spawn"`` | ``"philox"``;
    see :mod:`repro.engine.rng`), resolved once at construction from the
    explicit value, the backend spec (``philox[:N]`` implies ``"philox"``)
    or the process environment.  Unlike the backend, the contract **does**
    change the drawn numbers, so shards re-derive streams under the pinned
    value regardless of their own environment, and merges refuse partials
    whose contracts disagree.
    """

    batch_size: int
    n_periods: int
    f0_hz: ParamLike = PAPER_F0_HZ
    b_thermal_hz: ParamLike = PAPER_B_THERMAL_HZ
    b_flicker_hz2: ParamLike = DEFAULT_B_FLICKER_HZ2
    seed: Optional[int] = None
    n_sweep: Optional[Tuple[int, ...]] = None
    overlapping: bool = True
    min_realizations: int = 8
    chunk_periods: Optional[int] = None
    fit: bool = True
    weighted: bool = True
    exact: bool = False
    flicker_method: str = "spectral"
    backend: Optional[str] = None
    rng_contract: Optional[str] = None
    kind: str = field(default="sigma2n", init=False)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size!r}")
        if self.n_periods < 1:
            raise ValueError(f"n_periods must be >= 1, got {self.n_periods!r}")
        if self.chunk_periods is not None:
            if self.chunk_periods < 1:
                raise ValueError("chunk_periods must be >= 1")
            if self.exact:
                raise ValueError(
                    "exact=True is incompatible with chunk_periods (the "
                    "streaming estimator uses the fused reduction)"
                )
        for name in ("f0_hz", "b_thermal_hz", "b_flicker_hz2"):
            object.__setattr__(
                self, name, _as_param(getattr(self, name), self.batch_size, name)
            )
        if self.seed is None:
            object.__setattr__(self, "seed", fresh_entropy())
        else:
            object.__setattr__(self, "seed", int(self.seed))
        if self.n_sweep is not None:
            sweep = tuple(int(n) for n in self.n_sweep)
            if not sweep or min(sweep) < 1:
                raise ValueError("n_sweep must contain integers >= 1")
            object.__setattr__(self, "n_sweep", sweep)
        object.__setattr__(self, "backend", validate_backend_spec(self.backend))
        object.__setattr__(
            self,
            "rng_contract",
            resolve_rng_contract(self.rng_contract, backend_spec=self.backend),
        )

    def row_generators(
        self, start: Optional[int] = None, stop: Optional[int] = None
    ) -> List[np.random.Generator]:
        """Per-row RNG streams ``start..stop-1``, sliced from the root tree."""
        start, stop = _normalized_rows(self, start, stop)
        return spawn_generators(
            self.seed, self.batch_size, rng_contract=self.rng_contract
        )[start:stop]

    def ensemble(
        self, start: Optional[int] = None, stop: Optional[int] = None
    ) -> BatchedOscillatorEnsemble:
        """The (sliced) oscillator ensemble this spec describes.

        Row ``i`` of ``ensemble(start, stop)`` owns the same spawned stream
        as row ``start + i`` of ``ensemble()`` — the shard-invariance root.
        """
        start, stop = _normalized_rows(self, start, stop)
        return BatchedOscillatorEnsemble.from_phase_noise(
            _slice_param(self.f0_hz, start, stop),
            _slice_param(self.b_thermal_hz, start, stop),
            _slice_param(self.b_flicker_hz2, start, stop),
            batch_size=stop - start,
            rngs=self.row_generators(start, stop),
            flicker_method=self.flicker_method,
            backend=self.backend,
            name=f"spec[{start}:{stop}]",
        )


@dataclass(frozen=True)
class BitCampaignSpec:
    """Declarative form of one :func:`batched_bit_campaign` run.

    ``backend`` is a synthesis-backend spec string (see
    :class:`Sigma2NCampaignSpec`): a pure execution-speed selection that
    shards re-create host-side; the generated bits are backend-independent.
    ``rng_contract`` pins the stream contract exactly as there — that one
    *does* change the bits, so it is part of the campaign's identity.
    """

    batch_size: int
    n_bits: int
    dividers: Tuple[int, ...]
    f0_hz: float = PAPER_F0_HZ
    # Per-oscillator coefficients: half of the paper's relative (pair) values.
    b_thermal_hz: float = PAPER_B_THERMAL_HZ / 2.0
    b_flicker_hz2: float = DEFAULT_B_FLICKER_HZ2 / 2.0
    frequency_mismatch: float = 1e-3
    seed: Optional[int] = None
    run_procedure_a: bool = False
    include_t0: bool = False
    run_procedure_b: bool = False
    min_entropy_block_size: int = 8
    backend: Optional[str] = None
    rng_contract: Optional[str] = None
    kind: str = field(default="bits", init=False)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size!r}")
        if self.n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {self.n_bits!r}")
        dividers = tuple(int(d) for d in self.dividers)
        if not dividers or min(dividers) < 1:
            raise ValueError("dividers must contain integers >= 1")
        object.__setattr__(self, "dividers", dividers)
        if self.seed is None:
            object.__setattr__(self, "seed", fresh_entropy())
        else:
            object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "backend", validate_backend_spec(self.backend))
        object.__setattr__(
            self,
            "rng_contract",
            resolve_rng_contract(self.rng_contract, backend_spec=self.backend),
        )
        self.configuration()  # validate f0/mismatch eagerly

    def configuration(self, divider: Optional[int] = None):
        """The eRO-TRNG configuration (``divider`` defaults to the first)."""
        from ...trng.ero_trng import EROTRNGConfiguration
        from ...phase.psd import PhaseNoisePSD

        return EROTRNGConfiguration(
            f0_hz=float(self.f0_hz),
            oscillator_psd=PhaseNoisePSD(
                b_thermal_hz=float(self.b_thermal_hz),
                b_flicker_hz2=float(self.b_flicker_hz2),
            ),
            divider=int(self.dividers[0] if divider is None else divider),
            frequency_mismatch=float(self.frequency_mismatch),
        )


CampaignSpec = Union[Sigma2NCampaignSpec, BitCampaignSpec]

_SPEC_KINDS = {"sigma2n": Sigma2NCampaignSpec, "bits": BitCampaignSpec}


def spec_to_json(spec: CampaignSpec) -> Dict:
    """Plain-JSON form of a spec (tuples become lists; round-trips exactly)."""
    payload = asdict(spec)
    return payload


def spec_from_json(payload: Dict) -> CampaignSpec:
    """Rebuild a spec from :func:`spec_to_json` output.

    Manifests written before the stream-contract field existed carry no
    ``rng_contract`` key; they were all spawn-tree campaigns, so the field
    defaults to ``"spawn"`` here (NOT to the process environment — an old
    checkpoint must keep meaning what it meant when written).
    """
    data = dict(payload)
    kind = data.pop("kind", None)
    if kind not in _SPEC_KINDS:
        raise ValueError(f"unknown campaign spec kind: {kind!r}")
    data.setdefault("rng_contract", "spawn")
    for name in ("f0_hz", "b_thermal_hz", "b_flicker_hz2"):
        if isinstance(data.get(name), list):
            data[name] = tuple(data[name])
    for name in ("n_sweep", "dividers"):
        if isinstance(data.get(name), list):
            data[name] = tuple(data[name])
    return _SPEC_KINDS[kind](**data)
