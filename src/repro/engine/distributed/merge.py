"""Reassemble campaign results from shard partials.

Shard rows are independent by construction (one spawned RNG stream per
instance, row-wise estimators and fits), so merging is row concatenation in
shard order — followed by the *same* vectorized fit the unsharded campaign
runs on its full arrays.  That ordering matters: fitting once over the merged
``(B, P)`` arrays reproduces ``batched_sigma2_n_campaign`` bit-for-bit,
whereas per-shard fits would merely match to machine identity row-wise.  For
streaming campaigns the partials are :class:`StreamingSigma2NEstimator`
states; they merge through
:meth:`~repro.engine.streaming.StreamingSigma2NEstimator.merge_rows`, so the
merge holds ``O(P x B)`` accumulator state and never a record.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..campaign import (
    BatchedCampaignResult,
    BitCampaignResult,
    _campaign_from_curves,
    _fit_sweep_arrays,
)
from ..streaming import StreamingSigma2NEstimator
from .spec import BitCampaignSpec, Sigma2NCampaignSpec
from .worker import Partial


def _kind(partial: Partial) -> str:
    return str(np.asarray(partial["kind"]))


def _partial_contract(partial: Partial) -> str:
    """The stream contract a partial was computed under.

    Partials written before the contract field existed carry no key; they
    were all spawn-tree shards, so missing means ``"spawn"``.
    """
    value = partial.get("rng_contract")
    return "spawn" if value is None else str(np.asarray(value))


def _check_rng_contracts(spec, partials: Sequence[Partial]) -> None:
    """Refuse to merge shards computed under different stream contracts.

    A contract mismatch means the rows are draws from *different* random
    sequences — concatenating them would silently fabricate a campaign
    nobody ran.  This is the checkpoint-resume hazard: partials from an old
    spawn-tree run must not merge into a philox-contract campaign (or vice
    versa).  Re-run the stale shards instead.
    """
    contracts = {_partial_contract(partial) for partial in partials}
    expected = getattr(spec, "rng_contract", "spawn") or "spawn"
    if contracts - {expected}:
        raise ValueError(
            f"cannot merge shard partials with mixed RNG stream contracts: "
            f"spec pins {expected!r} but partials carry "
            f"{sorted(contracts)} — shards computed under a different "
            f"contract belong to a different random sequence; re-run them "
            f"under the spec's contract instead of merging"
        )


def merge_sigma2n_partials(
    spec: Sigma2NCampaignSpec, partials: Sequence[Partial]
) -> BatchedCampaignResult:
    """Merge sigma^2_N shard partials (in shard order) into one result."""
    partials = list(partials)
    if not partials:
        raise ValueError("no shard partials to merge")
    kinds = {_kind(partial) for partial in partials}
    if len(kinds) != 1:
        raise ValueError(f"mixed shard partial kinds: {sorted(kinds)}")
    _check_rng_contracts(spec, partials)
    kind = kinds.pop()
    if kind == "sigma2n_stream":
        return _merge_stream_partials(spec, partials)
    if kind != "sigma2n_sweep":
        raise ValueError(f"not sigma^2_N shard partials: {kind!r}")
    first = partials[0]
    for partial in partials[1:]:
        if not np.array_equal(partial["n_values"], first["n_values"]):
            raise ValueError("shards disagree on the retained N sweep")
        if not np.array_equal(partial["counts"], first["counts"]):
            raise ValueError("shards disagree on realization counts")
    sigma2 = np.concatenate([partial["sigma2"] for partial in partials])
    f0 = np.concatenate([partial["f0"] for partial in partials])
    n_values = np.asarray(first["n_values"])
    counts = np.asarray(first["counts"])
    fitted = (
        _fit_sweep_arrays(n_values, sigma2, counts, f0, weighted=spec.weighted)
        if spec.fit
        else None
    )
    return BatchedCampaignResult(n_values, sigma2, counts, f0, fitted)


def _merge_stream_partials(
    spec: Sigma2NCampaignSpec, partials: List[Partial]
) -> BatchedCampaignResult:
    estimators = [
        StreamingSigma2NEstimator.from_state(partial) for partial in partials
    ]
    merged = StreamingSigma2NEstimator.merge_rows(estimators)
    f0 = np.concatenate([np.asarray(partial["f0"]) for partial in partials])
    curves = merged.curves(f0, min_realizations=spec.min_realizations)
    return _campaign_from_curves(curves, spec.fit, spec.weighted)


def merge_bit_partials(
    spec: BitCampaignSpec, partials: Sequence[Partial]
) -> BitCampaignResult:
    """Merge bit-campaign shard partials (in shard order) into one result."""
    partials = list(partials)
    if not partials:
        raise ValueError("no shard partials to merge")
    _check_rng_contracts(spec, partials)
    first = partials[0]
    for partial in partials:
        if _kind(partial) != "bits":
            raise ValueError(f"not bit-campaign partials: {_kind(partial)!r}")
        if not np.array_equal(partial["dividers"], first["dividers"]):
            raise ValueError("shards disagree on the divider grid")

    def rows(name: str) -> np.ndarray:
        return np.concatenate([partial[name] for partial in partials], axis=1)

    has_a = all("procedure_a_passed" in partial for partial in partials)
    has_b = all("procedure_b_passed" in partial for partial in partials)
    return BitCampaignResult(
        dividers=np.asarray(first["dividers"]),
        bias=rows("bias"),
        shannon_entropy=rows("shannon_entropy"),
        min_entropy=rows("min_entropy"),
        markov_entropy=rows("markov_entropy"),
        procedure_a_passed=rows("procedure_a_passed") if has_a else None,
        procedure_b_passed=rows("procedure_b_passed") if has_b else None,
        n_bits=int(np.asarray(first["n_bits"])),
    )
