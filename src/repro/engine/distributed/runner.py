"""`run_campaign`: plan, execute, checkpoint and merge a sharded campaign.

The one call behind both the ``repro.campaigns`` CLI and programmatic use::

    from repro.engine.distributed import (
        MultiprocessExecutor, Sigma2NCampaignSpec, run_campaign,
    )

    spec = Sigma2NCampaignSpec(batch_size=1024, n_periods=262_144, seed=7)
    result = run_campaign(
        spec, executor=MultiprocessExecutor(max_workers=4), n_shards=16,
    )

Invariant: the returned result is **bit-for-bit identical** to the unsharded
batched campaign on the same spec, for every shard count and executor — each
shard re-derives its rows' RNG streams from the root ``SeedSequence`` spawn
tree, and the merge re-runs the same vectorized fit on the reassembled
arrays (``tests/engine/test_distributed_invariance.py`` enforces this over
shard counts {1, 2, 3, 7} and both executors).
"""

from __future__ import annotations

from typing import Optional, Union

from ..campaign import BatchedCampaignResult, BitCampaignResult
from .checkpoint import CampaignCheckpoint
from .executor import SerialExecutor
from .merge import merge_bit_partials, merge_sigma2n_partials
from .plan import ShardPlan, plan_shards_for_backend
from .spec import BitCampaignSpec, CampaignSpec, Sigma2NCampaignSpec
from .worker import run_shard

CampaignResult = Union[BatchedCampaignResult, BitCampaignResult]


def run_campaign(
    spec: CampaignSpec,
    executor=None,
    n_shards: Optional[int] = None,
    plan: Optional[ShardPlan] = None,
    checkpoint_dir=None,
    resume: bool = False,
) -> CampaignResult:
    """Run a campaign spec shard-by-shard and merge the partials.

    Parameters
    ----------
    spec:
        A :class:`Sigma2NCampaignSpec` or :class:`BitCampaignSpec`.
    executor:
        A :class:`SerialExecutor` (default) or :class:`MultiprocessExecutor`
        — anything with ``run(function, tasks)`` yielding ``(position,
        result)`` pairs in completion order.
    n_shards:
        Shard count for the default balanced plan (default: one shard per
        executor worker, or 1 for serial execution).
    plan:
        Explicit :class:`ShardPlan`; overrides ``n_shards``.
    checkpoint_dir:
        When given, completed shards are persisted there as they land (JSON
        manifest + per-shard ``.npz``), making the run interruptible.
    resume:
        Reuse completed shards found in ``checkpoint_dir`` (validating that
        they belong to this spec and plan) instead of recomputing them.
    """
    if executor is None:
        executor = SerialExecutor()
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires a checkpoint directory")
    if plan is None:
        if n_shards is None:
            n_shards = getattr(executor, "max_workers", 1)
        # Backend-aware sizing: an intra-shard parallel backend (threaded,
        # auto) gets shards at least as fat as its worker pool.  Explicit
        # plans are honoured verbatim — checkpointed runs must resume on
        # the exact plan they were started with.
        plan = plan_shards_for_backend(
            spec.batch_size,
            n_shards,
            backend=spec.backend,
            n_periods=getattr(spec, "n_periods", None),
        )
    elif plan.batch_size != spec.batch_size:
        raise ValueError(
            f"plan covers {plan.batch_size} rows but the spec has "
            f"{spec.batch_size} instances"
        )

    partials = {}
    checkpoint = None
    try:
        if checkpoint_dir is not None:
            checkpoint = CampaignCheckpoint(checkpoint_dir)
            for index in checkpoint.initialize(spec, plan, resume=resume):
                partials[index] = checkpoint.load_partial(index)

        # Already-checkpointed shards never re-enter the task list: a fabric
        # reassignment or a coordinator restart reuses their partials
        # verbatim instead of recomputing (zero-recomputation contract).
        pending = [shard for shard in plan if shard.index not in partials]
        tasks = [(spec, shard) for shard in pending]
        for position, partial in executor.run(run_shard, tasks):
            shard = pending[position]
            partials[shard.index] = partial
            if checkpoint is not None:
                checkpoint.save_partial(shard.index, partial)
    finally:
        # Release the single-writer lease even on failure, so a follow-up
        # resume (same or another process) can take over immediately.
        if checkpoint is not None:
            checkpoint.release()

    ordered = [partials[shard.index] for shard in plan]
    if isinstance(spec, Sigma2NCampaignSpec):
        return merge_sigma2n_partials(spec, ordered)
    if isinstance(spec, BitCampaignSpec):
        return merge_bit_partials(spec, ordered)
    raise TypeError(f"unsupported campaign spec: {type(spec)!r}")
