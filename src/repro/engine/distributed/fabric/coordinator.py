"""The fabric coordinator: shard dispatch, heartbeats, retry and reassignment.

:class:`FabricCoordinator` is a drop-in campaign *executor* (the
``run(function, tasks)`` interface of
:mod:`repro.engine.distributed.executor`) whose workers are **processes on
the other end of a socket** — remote ``host:port`` endpoints and/or
locally spawned ``python -m repro.worker`` fleets.  Shard assignments travel
as ``shard`` messages of the serving wire protocol; partials come back as
base64 ``.npz`` payloads and merge through the existing bitwise-invariant
mergers, so an N-worker fabric campaign is **bit-for-bit identical** to the
single-host run.

Failure model (what CI's fault-injection smoke exercises):

* **death detection** — a closed/reset connection is immediate death; a
  silent worker is probed with ``ping`` heartbeats every
  ``heartbeat_interval`` seconds and declared dead after
  ``heartbeat_timeout`` seconds without *any* traffic (a busy worker still
  answers pings — shards run off the worker's event loop);
* **per-shard timeout** — ``shard_timeout`` bounds one assignment
  wall-clock; exceeding it retires the worker (it may be wedged) and
  reassigns the shard;
* **reassignment** — a dead worker's in-flight shard goes back to the front
  of the queue for the surviving workers; each shard gets at most
  ``max_attempts`` tries before the run fails with :class:`FabricError`;
* **zero recomputation** — completed shards are checkpointed by
  ``run_campaign`` as they land, so neither a worker death (other shards'
  partials are already merged/saved) nor a coordinator restart (manifest
  reuse via ``resume=True``) recomputes finished work.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from queue import Empty, Queue
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ....obs import SpanCollector, context_to_wire, span
from ....serving.protocol import decode_partial
from ..spec import spec_to_json
from ..worker import run_shard
from .connection import WorkerLink, WorkerUnavailable, connect_workers
from .telemetry import (
    ASSIGNED,
    COMPLETED,
    REASSIGNED,
    WORKER_DEAD,
    FabricTelemetry,
    ShardEvent,
)


class FabricError(RuntimeError):
    """The fabric cannot finish the run (workers exhausted or shard failed)."""


class WorkerFailure(RuntimeError):
    """One worker failed one assignment (internal; triggers reassignment)."""


class FabricCoordinator:
    """Campaign executor over a fleet of fabric worker processes.

    Parameters
    ----------
    remote:
        ``"host:port"`` endpoints of already-running workers
        (``python -m repro.worker --listen host:port``).
    spawn:
        Number of localhost workers to spawn and own (terminated on
        :meth:`close`).
    backend:
        Backend spec string passed to *spawned* workers (shard specs carry
        their own backend; this only affects forwarded serving batches).
    heartbeat_interval / heartbeat_timeout:
        Liveness probing cadence and the silence threshold for death.
    shard_timeout:
        Optional wall-clock bound per shard assignment; ``None`` relies on
        heartbeats alone.
    max_attempts:
        Tries per shard (across workers) before the run fails.
    on_event:
        Callback receiving every :class:`ShardEvent` (the live progress
        hook).  Exceptions from the callback are not swallowed — tests use
        them to abort runs deterministically.
    """

    def __init__(
        self,
        remote: Sequence[str] = (),
        spawn: int = 0,
        backend: Optional[str] = None,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 15.0,
        shard_timeout: Optional[float] = None,
        max_attempts: int = 3,
        connect_timeout: float = 10.0,
        on_event: Optional[Callable[[ShardEvent], None]] = None,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if heartbeat_timeout <= heartbeat_interval:
            raise ValueError(
                "heartbeat_timeout must exceed heartbeat_interval"
            )
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError("shard_timeout must be > 0 (or None)")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._remote = tuple(remote)
        self._spawn = int(spawn)
        self.backend = backend
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.shard_timeout = shard_timeout
        self.max_attempts = int(max_attempts)
        self.connect_timeout = float(connect_timeout)
        self.on_event = on_event
        self.telemetry = FabricTelemetry()
        #: Span store of this coordinator: its own campaign/shard spans plus
        #: every span the workers ship back — ``trace_tree()`` renders the
        #: merged cross-host view.
        self.spans = SpanCollector()
        self._root_context = None
        self.workers: List[WorkerLink] = []
        self._started = False
        # One shard per worker is the natural default plan granularity —
        # run_campaign reads this exactly like MultiprocessExecutor's.
        self.max_workers = len(self._remote) + self._spawn
        if self.max_workers < 1:
            raise ValueError(
                "a fabric needs at least one worker "
                "(remote endpoints or spawn > 0)"
            )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "FabricCoordinator":
        """Connect remote workers and spawn the local fleet (idempotent)."""
        if not self._started:
            self.workers = connect_workers(
                self._remote,
                self._spawn,
                backend=self.backend,
                connect_timeout=self.connect_timeout,
            )
            self._started = True
        return self

    def close(self) -> None:
        """Disconnect every worker; spawned processes are terminated."""
        for link in self.workers:
            try:
                if link.connected:
                    link.send({"id": "shutdown", "kind": "shutdown"})
            except WorkerUnavailable:
                pass
            link.close(kill=True)
        self.workers = []
        self._started = False

    def __enter__(self) -> "FabricCoordinator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"FabricCoordinator(remote={list(self._remote)!r}, "
            f"spawn={self._spawn}, workers={len(self.workers)})"
        )

    # -- executor interface --------------------------------------------------

    def run(
        self, function: Callable, tasks: Sequence
    ) -> Iterator[Tuple[int, Dict]]:
        """Yield ``(position, partial)`` in completion order, with retries.

        ``function`` must be :func:`repro.engine.distributed.worker.run_shard`
        — the fabric ships ``(spec, shard)`` assignments over the wire, it
        cannot execute arbitrary callables remotely.
        """
        if function is not run_shard:
            raise ValueError(
                "FabricCoordinator only executes campaign shards "
                "(run_shard); got a different task function"
            )
        tasks = list(tasks)
        if not tasks:
            return
        self.start()

        state = _RunState(tasks, self.max_attempts)
        # Root of the campaign's span tree; worker threads parent their
        # per-shard spans under it explicitly (threads start with a fresh
        # contextvars context, so the ambient parent would not be visible).
        root = span(
            "fabric.campaign",
            collector=self.spans,
            shards=len(tasks),
            workers=len(self.workers),
        )
        root.__enter__()
        self._root_context = root.context
        threads = [
            threading.Thread(
                target=self._worker_main,
                args=(link, state),
                name=f"fabric-{link.name}",
                daemon=True,
            )
            for link in self.workers
        ]
        for thread in threads:
            thread.start()
        try:
            remaining = len(tasks)
            while remaining:
                try:
                    item = state.results.get(timeout=1.0)
                except Empty:
                    if not any(t.is_alive() for t in threads):
                        raise FabricError(
                            "all fabric worker threads exited with "
                            f"{remaining} shard(s) unfinished"
                        ) from None
                    continue
                if isinstance(item, Exception):
                    raise item
                yield item
                remaining -= 1
        finally:
            state.abort()
            for thread in threads:
                thread.join(timeout=5.0)
            root.__exit__(None, None, None)
            self._root_context = None

    def trace_tree(self) -> List[Dict]:
        """Merged span forest of the run: coordinator + every worker's spans.

        Worker records arrive in the shard reply envelopes (``spans`` field)
        and land in the same collector as the coordinator's own
        ``fabric.campaign``/``fabric.shard`` spans, so the tree covers every
        host that touched the campaign (each node carries a ``host`` tag).
        """
        return self.spans.tree()

    # -- worker thread -------------------------------------------------------

    def _emit(self, event: ShardEvent) -> None:
        self.telemetry.record(event)
        if self.on_event is not None:
            self.on_event(event)

    def _worker_main(self, link: WorkerLink, state: "_RunState") -> None:
        while True:
            claim = state.next_task()
            if claim is None:
                return
            position, (spec, shard), attempt = claim
            self._emit(
                ShardEvent(
                    ASSIGNED, shard.index, link.name, attempt,
                    completed=state.completed_count(), total=state.total,
                )
            )
            attempt_span = span(
                "fabric.shard",
                collector=self.spans,
                parent=self._root_context,
                shard=shard.index,
                worker=link.name,
                attempt=attempt,
            )
            try:
                with attempt_span:
                    partial, seconds = self._execute_shard(
                        link,
                        spec,
                        shard,
                        trace=context_to_wire(attempt_span.context),
                    )
            except (WorkerFailure, WorkerUnavailable) as error:
                link.close(kill=True)
                self._emit(
                    ShardEvent(
                        WORKER_DEAD, shard.index, link.name, attempt,
                        error=str(error),
                        completed=state.completed_count(), total=state.total,
                    )
                )
                requeued = state.task_failed(
                    position, (spec, shard), attempt, link.name, error
                )
                if requeued:
                    self._emit(
                        ShardEvent(
                            REASSIGNED, shard.index, link.name, attempt,
                            error=str(error),
                            completed=state.completed_count(),
                            total=state.total,
                        )
                    )
                return
            state.task_completed(position, partial)
            self._emit(
                ShardEvent(
                    COMPLETED, shard.index, link.name, attempt,
                    seconds=seconds,
                    completed=state.completed_count(), total=state.total,
                )
            )

    def _execute_shard(self, link: WorkerLink, spec, shard, trace=None):
        """Run one assignment on one worker, probing liveness throughout."""
        wire_id = f"shard-{shard.index}"
        started = time.monotonic()
        last_traffic = started
        heartbeats = 0
        ping_sent: Dict[str, float] = {}
        message = {
            "id": wire_id,
            "kind": "shard",
            "spec": spec_to_json(spec),
            "index": shard.index,
            "start": shard.start,
            "stop": shard.stop,
        }
        if trace is not None:
            message["trace"] = trace
        link.send(message)
        while True:
            now = time.monotonic()
            if self.shard_timeout is not None:
                if now - started > self.shard_timeout:
                    raise WorkerFailure(
                        f"shard {shard.index} exceeded the "
                        f"{self.shard_timeout:.1f}s shard timeout on "
                        f"{link.name}"
                    )
            if now - last_traffic > self.heartbeat_timeout:
                raise WorkerFailure(
                    f"worker {link.name} silent for more than "
                    f"{self.heartbeat_timeout:.1f}s (heartbeat timeout)"
                )
            reply = link.receive(timeout=self.heartbeat_interval)
            if reply is None:
                ping_id = f"hb-{heartbeats}"
                ping_sent[ping_id] = time.monotonic()
                link.send({"id": ping_id, "kind": "ping"})
                heartbeats += 1
                continue
            last_traffic = time.monotonic()
            if not reply.get("ok"):
                raise WorkerFailure(
                    f"worker {link.name} failed shard {shard.index}: "
                    f"{reply.get('error')}"
                )
            result = reply.get("result") or {}
            if result.get("kind") == "ping":
                # Heartbeat answer: alive, still computing.  Matching the
                # echoed id against the send time gives the RTT.
                sent = ping_sent.pop(reply.get("id"), None)
                if sent is not None:
                    self.telemetry.heartbeat_rtt.observe(last_traffic - sent)
                continue
            if result.get("kind") != "shard":
                raise WorkerFailure(
                    f"worker {link.name} sent an unexpected reply "
                    f"({result.get('kind')!r}) to shard {shard.index}"
                )
            self.spans.ingest(result.get("spans"))
            partial = decode_partial(result["partial"])
            return partial, time.monotonic() - started


class _RunState:
    """Shared scheduling state of one fabric run (thread-safe)."""

    def __init__(self, tasks: Sequence, max_attempts: int) -> None:
        self.total = len(tasks)
        self.max_attempts = max_attempts
        self.results: Queue = Queue()
        self._condition = threading.Condition()
        self._pending = deque(
            (position, task) for position, task in enumerate(tasks)
        )
        self._attempts = [0] * len(tasks)
        self._in_flight = 0
        self._completed = 0
        self._aborted = False

    def next_task(self):
        """Claim ``(position, task, attempt)``; ``None`` when nothing is left.

        Blocks while other workers still hold in-flight shards, because a
        failure there requeues work this worker must be around to pick up.
        """
        with self._condition:
            while True:
                if self._aborted:
                    return None
                if self._pending:
                    position, task = self._pending.popleft()
                    self._attempts[position] += 1
                    self._in_flight += 1
                    return position, task, self._attempts[position]
                if self._in_flight == 0:
                    return None
                self._condition.wait(timeout=0.1)

    def task_completed(self, position: int, partial) -> None:
        with self._condition:
            self._in_flight -= 1
            self._completed += 1
            self._condition.notify_all()
        self.results.put((position, partial))

    def task_failed(
        self, position: int, task, attempt: int, worker: str, error
    ) -> bool:
        """Requeue a failed assignment; returns whether it was requeued."""
        with self._condition:
            self._in_flight -= 1
            if attempt >= self.max_attempts:
                self._aborted = True
                self._condition.notify_all()
                self.results.put(
                    FabricError(
                        f"shard (position {position}) failed "
                        f"{attempt} time(s), most recently on {worker}: "
                        f"{error}"
                    )
                )
                return False
            self._pending.appendleft((position, task))
            self._condition.notify_all()
            return True

    def completed_count(self) -> int:
        with self._condition:
            return self._completed

    def abort(self) -> None:
        with self._condition:
            self._aborted = True
            self._condition.notify_all()
