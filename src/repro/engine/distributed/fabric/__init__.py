"""Multi-host fabric: coordinator + worker fleets over the serving protocol.

One cluster story for campaigns and serving: the
:class:`~repro.engine.distributed.fabric.coordinator.FabricCoordinator`
drives remote ``python -m repro.worker`` processes as a campaign executor
(shard assignment, heartbeats, retry/reassignment on worker death), and the
serving layer's :class:`~repro.serving.fabric_dispatch.FabricDispatcher`
forwards coalesced batches to the same workers.  Both paths ride the
JSON-lines protocol and the engine's seed-closure discipline, so fabric
results are bit-for-bit identical to single-host runs.
"""

from __future__ import annotations

from .connection import (
    WorkerLink,
    WorkerUnavailable,
    connect_workers,
    parse_endpoint,
    spawn_worker,
)
from .coordinator import FabricCoordinator, FabricError
from .telemetry import FabricTelemetry, ShardEvent
from .worker_loop import WorkerServer

__all__ = [
    "FabricCoordinator",
    "FabricError",
    "FabricTelemetry",
    "ShardEvent",
    "WorkerLink",
    "WorkerServer",
    "WorkerUnavailable",
    "connect_workers",
    "parse_endpoint",
    "spawn_worker",
]
