"""Worker links: one JSON-lines TCP connection to one fabric worker.

:class:`WorkerLink` is the coordinator-side client of the fabric protocol —
a blocking socket with its own receive buffer, so a read timeout never loses
a partially received line (the failure mode of ``makefile().readline()``
under ``settimeout``).  :func:`spawn_worker` launches a localhost worker
process (``python -m repro.worker --listen 127.0.0.1:0``), parses its
announce line for the bound port, and returns a connected link that owns the
process — the building block of CI worker fleets and of ``--spawn-workers``.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

#: What a worker prints (stdout, flushed) once its socket is bound.
ANNOUNCE_PREFIX = "repro-worker listening on "


class WorkerUnavailable(ConnectionError):
    """The worker's connection is gone (refused, reset, or closed)."""


def parse_endpoint(endpoint: str) -> Tuple[str, int]:
    """Split ``"host:port"`` (the ``--workers-remote`` item format)."""
    host, separator, port = endpoint.rpartition(":")
    if not separator or not host:
        raise ValueError(
            f"worker endpoint must be 'host:port', got {endpoint!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(
            f"worker endpoint has a non-integer port: {endpoint!r}"
        ) from None


class WorkerLink:
    """One coordinator-side connection to a fabric worker."""

    def __init__(
        self,
        host: str,
        port: int,
        name: Optional[str] = None,
        process: Optional[subprocess.Popen] = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.name = name or f"{host}:{port}"
        self.process = process
        self._socket: Optional[socket.socket] = None
        self._buffer = bytearray()

    @property
    def spawned(self) -> bool:
        """Whether this link owns the worker process (spawned locally)."""
        return self.process is not None

    @property
    def connected(self) -> bool:
        return self._socket is not None

    def connect(self, timeout: float = 10.0) -> "WorkerLink":
        """Open the TCP connection (idempotent)."""
        if self._socket is None:
            try:
                self._socket = socket.create_connection(
                    (self.host, self.port), timeout=timeout
                )
            except OSError as error:
                raise WorkerUnavailable(
                    f"cannot connect to worker {self.name}: {error}"
                ) from None
            self._socket.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self

    def send(self, message: Dict) -> None:
        """Send one wire message (a JSON object) as one line."""
        if self._socket is None:
            raise WorkerUnavailable(f"worker {self.name} is not connected")
        data = (json.dumps(message) + "\n").encode("utf-8")
        try:
            self._socket.sendall(data)
        except OSError as error:
            raise WorkerUnavailable(
                f"send to worker {self.name} failed: {error}"
            ) from None

    def receive(self, timeout: float) -> Optional[Dict]:
        """Read one response line; ``None`` on timeout (buffer preserved).

        Raises :class:`WorkerUnavailable` when the connection is closed or
        reset — the signal the coordinator treats as worker death.
        """
        if self._socket is None:
            raise WorkerUnavailable(f"worker {self.name} is not connected")
        deadline = time.monotonic() + max(timeout, 0.0)
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                raw = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                try:
                    return json.loads(raw.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError) as error:
                    raise WorkerUnavailable(
                        f"worker {self.name} sent an undecodable line: {error}"
                    ) from None
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            self._socket.settimeout(remaining)
            try:
                chunk = self._socket.recv(65536)
            except socket.timeout:
                return None
            except OSError as error:
                raise WorkerUnavailable(
                    f"read from worker {self.name} failed: {error}"
                ) from None
            if not chunk:
                raise WorkerUnavailable(
                    f"worker {self.name} closed the connection"
                )
            self._buffer.extend(chunk)

    def close(self, kill: bool = False) -> None:
        """Close the socket; ``kill=True`` also terminates a spawned worker."""
        sock, self._socket = self._socket, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        self._buffer.clear()
        if kill and self.process is not None:
            if self.process.poll() is None:
                self.process.terminate()
                try:
                    self.process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    self.process.kill()
                    self.process.wait()
            if self.process.stdout is not None:
                self.process.stdout.close()

    def __repr__(self) -> str:
        state = "spawned" if self.spawned else "remote"
        return f"WorkerLink({self.name!r}, {state})"


def _worker_environment() -> Dict[str, str]:
    """Subprocess environment with ``repro`` importable.

    The coordinator may run from a source checkout (``src`` layout) that the
    child would not otherwise see; prepending the package root to
    ``PYTHONPATH`` makes spawned workers work in both installed and
    checkout setups.
    """
    import repro

    package_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    paths = [package_root] + ([existing] if existing else [])
    env["PYTHONPATH"] = os.pathsep.join(paths)
    return env


def spawn_worker(
    name: Optional[str] = None,
    backend: Optional[str] = None,
    startup_timeout: float = 30.0,
    python: Optional[str] = None,
) -> WorkerLink:
    """Launch a localhost worker process and return a connected link.

    The worker binds an ephemeral port and announces it on stdout
    (``repro-worker listening on 127.0.0.1:PORT``); this helper waits for
    the announce line, connects, and hands ownership of the process to the
    returned link (closed/terminated via ``link.close(kill=True)``).
    """
    command = [python or sys.executable, "-m", "repro.worker", "--listen",
               "127.0.0.1:0"]
    if backend is not None:
        command += ["--backend", str(backend)]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=None,  # worker stderr stays visible for debugging
        env=_worker_environment(),
        text=True,
    )
    deadline = time.monotonic() + startup_timeout
    announce = None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break  # worker exited before announcing
        if line.startswith(ANNOUNCE_PREFIX):
            announce = line[len(ANNOUNCE_PREFIX):].strip()
            break
    if announce is None:
        code = process.poll()
        process.kill()
        raise WorkerUnavailable(
            f"spawned worker did not announce a port within "
            f"{startup_timeout:.0f}s (exit code {code})"
        )
    host, port = parse_endpoint(announce)
    link = WorkerLink(host, port, name=name or f"spawn:{port}", process=process)
    return link.connect()


def connect_workers(
    remote: Sequence[str] = (),
    spawn: int = 0,
    backend: Optional[str] = None,
    connect_timeout: float = 10.0,
) -> list:
    """Build the worker fleet: remote ``host:port`` links + spawned locals."""
    if spawn < 0:
        raise ValueError(f"spawn must be >= 0, got {spawn!r}")
    links = []
    try:
        for endpoint in remote:
            host, port = parse_endpoint(endpoint)
            links.append(
                WorkerLink(host, port).connect(timeout=connect_timeout)
            )
        for _ in range(int(spawn)):
            links.append(spawn_worker(backend=backend))
    except Exception:
        for link in links:
            link.close(kill=True)
        raise
    if not links:
        raise ValueError(
            "a fabric needs at least one worker (remote endpoints or spawn)"
        )
    return links
