"""Per-shard fabric telemetry: events, timings, retries, worker health.

Every state change in a fabric run emits a :class:`ShardEvent` — to the
coordinator's event log (:class:`FabricTelemetry`) and to the optional
``on_event`` callback that powers the live progress view in
``python -m repro.campaigns``.  The summary is plain JSON, so campaign
``--json`` artifacts record exactly which worker ran which shard, how long
it took, and what was retried — the forensic trail for a flaky fleet.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Event kinds, in lifecycle order.
ASSIGNED = "assigned"
COMPLETED = "completed"
WORKER_DEAD = "worker_dead"
REASSIGNED = "reassigned"


@dataclass(frozen=True)
class ShardEvent:
    """One fabric state change."""

    kind: str
    shard_index: int
    worker: str
    attempt: int
    seconds: Optional[float] = None
    error: Optional[str] = None
    completed: int = 0
    total: int = 0

    def describe(self) -> str:
        """One human line (the live progress view's format)."""
        progress = f"{self.completed}/{self.total}"
        if self.kind == ASSIGNED:
            return (
                f"[fabric] shard {self.shard_index} -> {self.worker} "
                f"(attempt {self.attempt}, {progress} done)"
            )
        if self.kind == COMPLETED:
            return (
                f"[fabric] shard {self.shard_index} done on {self.worker} "
                f"({self.seconds:.2f}s, {progress} done)"
            )
        if self.kind == WORKER_DEAD:
            return f"[fabric] worker {self.worker} died: {self.error}"
        if self.kind == REASSIGNED:
            return (
                f"[fabric] shard {self.shard_index} reassigned after "
                f"{self.worker} failed (attempt {self.attempt}: {self.error})"
            )
        return f"[fabric] {self.kind}: shard {self.shard_index}"


@dataclass
class FabricTelemetry:
    """Thread-safe event log of one fabric run + JSON summary."""

    events: List[ShardEvent] = field(default_factory=list)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, event: ShardEvent) -> None:
        with self._lock:
            self.events.append(event)

    def of_kind(self, kind: str) -> List[ShardEvent]:
        with self._lock:
            return [event for event in self.events if event.kind == kind]

    def summary(self) -> Dict:
        """Plain-JSON digest: per-shard timing/placement, failures, retries."""
        with self._lock:
            events = list(self.events)
        shards: Dict[int, Dict] = {}
        for event in events:
            if event.kind == ASSIGNED:
                shards.setdefault(
                    event.shard_index, {"attempts": 0}
                )["attempts"] = event.attempt
            elif event.kind == COMPLETED:
                entry = shards.setdefault(event.shard_index, {"attempts": 1})
                entry["worker"] = event.worker
                entry["seconds"] = event.seconds
        dead = sorted(
            {event.worker for event in events if event.kind == WORKER_DEAD}
        )
        return {
            "shards": {str(index): shards[index] for index in sorted(shards)},
            "reassignments": sum(
                1 for event in events if event.kind == REASSIGNED
            ),
            "worker_failures": dead,
            "shard_seconds_total": sum(
                event.seconds or 0.0
                for event in events
                if event.kind == COMPLETED
            ),
        }
