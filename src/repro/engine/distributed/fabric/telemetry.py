"""Per-shard fabric telemetry: events, timings, retries, worker health.

Every state change in a fabric run emits a :class:`ShardEvent` — to the
coordinator's event log (:class:`FabricTelemetry`) and to the optional
``on_event`` callback that powers the live progress view in
``python -m repro.campaigns``.  The summary is plain JSON, so campaign
``--json`` artifacts record exactly which worker ran which shard, how long
it took, and what was retried — the forensic trail for a flaky fleet.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ....obs import MetricsRegistry

#: Event kinds, in lifecycle order.
ASSIGNED = "assigned"
COMPLETED = "completed"
WORKER_DEAD = "worker_dead"
REASSIGNED = "reassigned"


@dataclass(frozen=True)
class ShardEvent:
    """One fabric state change."""

    kind: str
    shard_index: int
    worker: str
    attempt: int
    seconds: Optional[float] = None
    error: Optional[str] = None
    completed: int = 0
    total: int = 0

    def describe(self) -> str:
        """One human line (the live progress view's format)."""
        progress = f"{self.completed}/{self.total}"
        if self.kind == ASSIGNED:
            return (
                f"[fabric] shard {self.shard_index} -> {self.worker} "
                f"(attempt {self.attempt}, {progress} done)"
            )
        if self.kind == COMPLETED:
            return (
                f"[fabric] shard {self.shard_index} done on {self.worker} "
                f"({self.seconds:.2f}s, {progress} done)"
            )
        if self.kind == WORKER_DEAD:
            return f"[fabric] worker {self.worker} died: {self.error}"
        if self.kind == REASSIGNED:
            return (
                f"[fabric] shard {self.shard_index} reassigned after "
                f"{self.worker} failed (attempt {self.attempt}: {self.error})"
            )
        return f"[fabric] {self.kind}: shard {self.shard_index}"


@dataclass
class FabricTelemetry:
    """Thread-safe event log of one fabric run + JSON summary.

    Scalar accounting (shards assigned/completed, reassignments, worker
    deaths, per-shard seconds) is funnelled into a per-run
    :class:`~repro.obs.MetricsRegistry` as :meth:`record` is called; the
    :meth:`summary` aggregates read those instruments back, so the JSON
    artifact, the ``metrics`` scrape and the Prometheus exposition all
    report the same numbers.  The structured views (per-shard placement,
    the dead-worker list) still come from the event log — a registry holds
    numbers, not placements.
    """

    events: List[ShardEvent] = field(default_factory=list)
    registry: MetricsRegistry = field(
        default_factory=lambda: MetricsRegistry("fabric")
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._assigned = self.registry.counter(
            "fabric_shards_assigned_total", "Shard assignments handed to workers"
        )
        self._completed = self.registry.counter(
            "fabric_shards_completed_total", "Shards completed by workers"
        )
        self._reassigned = self.registry.counter(
            "fabric_reassignments_total", "Shards reassigned after a failure"
        )
        self._deaths = self.registry.counter(
            "fabric_worker_deaths_total", "Worker-dead events observed"
        )
        self._shard_seconds = self.registry.histogram(
            "fabric_shard_seconds", "Wall-clock seconds per completed shard attempt"
        )
        # Registered here (not in the coordinator) so every scrape of the
        # fabric registry carries the heartbeat health signal too.
        self.heartbeat_rtt = self.registry.histogram(
            "fabric_heartbeat_rtt_seconds",
            "Round-trip seconds of coordinator heartbeat pings",
        )

    def record(self, event: ShardEvent) -> None:
        with self._lock:
            self.events.append(event)
        if event.kind == ASSIGNED:
            self._assigned.inc()
        elif event.kind == COMPLETED:
            self._completed.inc()
            if event.seconds is not None:
                self._shard_seconds.observe(event.seconds)
        elif event.kind == REASSIGNED:
            self._reassigned.inc()
        elif event.kind == WORKER_DEAD:
            self._deaths.inc()

    def of_kind(self, kind: str) -> List[ShardEvent]:
        with self._lock:
            return [event for event in self.events if event.kind == kind]

    def summary(self) -> Dict:
        """Plain-JSON digest: per-shard timing/placement, failures, retries."""
        with self._lock:
            events = list(self.events)
        shards: Dict[int, Dict] = {}
        for event in events:
            if event.kind == ASSIGNED:
                shards.setdefault(
                    event.shard_index, {"attempts": 0}
                )["attempts"] = event.attempt
            elif event.kind == COMPLETED:
                entry = shards.setdefault(event.shard_index, {"attempts": 1})
                entry["worker"] = event.worker
                entry["seconds"] = event.seconds
        dead = sorted(
            {event.worker for event in events if event.kind == WORKER_DEAD}
        )
        return {
            "shards": {str(index): shards[index] for index in sorted(shards)},
            "reassignments": int(self._reassigned.value()),
            "worker_failures": dead,
            "shard_seconds_total": self._shard_seconds.sum,
            "shards_assigned": int(self._assigned.value()),
            "shards_completed": int(self._completed.value()),
            "worker_deaths": int(self._deaths.value()),
            "heartbeat_rtt_seconds": self.heartbeat_rtt.snapshot(),
        }
