"""The fabric worker's serve loop: shard assignments over JSON lines.

A worker is the remote half of the fabric: it accepts coordinator
connections and executes two kinds of work behind the same wire protocol the
serving layer already speaks (:mod:`repro.serving.protocol`):

* ``shard`` — one campaign shard: the message carries the full campaign
  spec (seed closure included) plus a row range, so the worker re-derives
  exactly the same per-row RNG streams the single-host run uses and the
  partial it returns is bit-for-bit a row slice of the unsharded campaign;
* ``batch`` — one coalesced serving batch forwarded by a
  :class:`~repro.serving.fabric_dispatch.FabricDispatcher`.

Shards and batches run on worker threads (``asyncio.to_thread``), so the
event loop keeps answering ``ping`` heartbeats while numpy computes — which
is what lets a coordinator distinguish *busy* from *dead*.  ``shutdown``
answers, then stops the server.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, Optional, Set

from ....obs import (
    MetricsRegistry,
    SpanCollector,
    global_registry,
    json_snapshot,
    render_prometheus,
    span,
    wire_to_parent,
)
from ....serving.protocol import (
    ProtocolError,
    build_request,
    encode_partial,
    error_line,
    parse_batch_payloads,
    parse_request_line,
    response_line,
    result_to_payload,
)
from ..plan import Shard
from ..spec import spec_from_json
from ..worker import run_shard

#: Per-line stream buffer limit [bytes] — sized for campaign specs and
#: coalesced batches; a sigma^2_N shard partial travels the *other* way.
MAX_LINE_BYTES = 8 << 20


class WorkerServer:
    """Asyncio JSON-lines server executing fabric work on localhost threads."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.host = host
        self._requested_port = int(port)
        self.backend = backend
        #: Per-worker metrics registry; the ``metrics`` kind merges it with
        #: the process-wide one (kernel timings, plan-cache counters).
        self.registry = registry if registry is not None else MetricsRegistry("worker")
        self._shards = self.registry.counter(
            "worker_shards_served_total", "Campaign shards executed"
        )
        self._batches = self.registry.counter(
            "worker_batches_served_total", "Forwarded serving batches executed"
        )
        self._shard_seconds = self.registry.histogram(
            "worker_shard_seconds", "Wall-clock seconds per shard execution"
        )
        #: Spans of local shard/batch executions; finished records are also
        #: shipped back in each reply's ``spans`` field so the coordinator
        #: can merge them into the cross-host tree.
        self.spans = SpanCollector()
        self._server: Optional[asyncio.AbstractServer] = None
        self._clients: Set[asyncio.StreamWriter] = set()
        self._stopping = asyncio.Event()

    @property
    def shards_served(self) -> int:
        return int(self._shards.value())

    @property
    def batches_served(self) -> int:
        return int(self._batches.value())

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle_client,
                self.host,
                self._requested_port,
                limit=MAX_LINE_BYTES,
            )

    async def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        # Closing client connections hands every handler an EOF, so the
        # handler tasks finish on their own instead of being cancelled at
        # loop teardown (a cancelled client task logs a spurious traceback
        # on 3.11).  The wait is bounded; stragglers only risk that noise.
        for writer in list(self._clients):
            writer.close()
        for _ in range(100):
            if not self._clients:
                break
            await asyncio.sleep(0.01)

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` message arrives (or cancellation)."""
        await self.start()
        await self._stopping.wait()
        await self.stop()

    def _finish_spans(self, local: SpanCollector) -> list:
        """Mirror one execution's spans into the worker store; wire payloads."""
        records = local.records()
        for record in records:
            self.spans.record(record)
        return [record.to_dict() for record in records]

    async def _execute_shard(self, fields: Dict) -> Dict:
        try:
            spec = spec_from_json(fields["spec"])
            shard = Shard(
                index=int(fields.get("index", 0)),
                start=int(fields["start"]),
                stop=int(fields["stop"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(f"invalid shard assignment: {error}") from None
        started = time.perf_counter()
        # The span continues the coordinator's trace (the optional ``trace``
        # envelope); its finished record rides back in the reply so the
        # coordinator's tree covers this host too.
        local = SpanCollector()
        with span(
            "worker.shard",
            collector=local,
            parent=wire_to_parent(fields.get("trace")),
            shard=shard.index,
            rows=shard.stop - shard.start,
        ):
            partial = await asyncio.to_thread(run_shard, (spec, shard))
        seconds = time.perf_counter() - started
        self._shards.inc()
        self._shard_seconds.observe(seconds)
        return {
            "kind": "shard",
            "index": shard.index,
            "partial": encode_partial(partial),
            "seconds": seconds,
            "spans": self._finish_spans(local),
        }

    async def _execute_batch(self, fields: Dict) -> Dict:
        from ....serving.scatter import execute_batch

        requests = [
            build_request(kind, entry)
            for kind, entry in parse_batch_payloads(fields)
        ]
        kinds = {request.kind for request in requests}
        if len(kinds) != 1:
            raise ProtocolError(
                f"a batch must be one coalesced group of a single kind, "
                f"got {sorted(kinds)}"
            )
        local = SpanCollector()
        with span(
            "worker.batch",
            collector=local,
            parent=wire_to_parent(fields.get("trace")),
            requests=len(requests),
        ):
            results = await asyncio.to_thread(
                execute_batch, requests, self.backend
            )
        self._batches.inc()
        return {
            "kind": "batch",
            "results": [result_to_payload(result) for result in results],
            "spans": self._finish_spans(local),
        }

    async def handle_line(self, line: str) -> str:
        """Serve one wire line; always returns a response line."""
        request_id = None
        try:
            request_id, kind, fields = parse_request_line(line)
            if kind == "ping":
                return response_line(
                    request_id,
                    {"kind": "ping", "pong": True, "role": "worker"},
                )
            if kind == "stats":
                return response_line(
                    request_id,
                    {
                        "kind": "stats",
                        "role": "worker",
                        "shards_served": self.shards_served,
                        "batches_served": self.batches_served,
                    },
                )
            if kind == "metrics":
                registries = (self.registry, global_registry())
                fmt = fields.get("format", "json")
                if fmt == "prometheus":
                    payload = {
                        "kind": "metrics",
                        "format": "prometheus",
                        "role": "worker",
                        "text": render_prometheus(*registries),
                    }
                elif fmt == "json":
                    payload = {
                        "kind": "metrics",
                        "format": "json",
                        "role": "worker",
                        "metrics": json_snapshot(*registries),
                    }
                else:
                    raise ProtocolError(
                        f"unknown metrics format {fmt!r} "
                        f"(expected 'json' or 'prometheus')",
                        request_id=request_id,
                    )
                return response_line(request_id, payload)
            if kind == "shutdown":
                self._stopping.set()
                return response_line(
                    request_id, {"kind": "shutdown", "stopping": True}
                )
            if kind == "shard":
                return response_line(
                    request_id, await self._execute_shard(fields)
                )
            if kind == "batch":
                return response_line(
                    request_id, await self._execute_batch(fields)
                )
            return error_line(
                request_id,
                f"request kind {kind!r} is not served by fabric workers "
                f"(use python -m repro.serve for bits/sigma2n traffic)",
            )
        except ProtocolError as error:
            if error.request_id is not None:
                request_id = error.request_id
            return error_line(request_id, str(error))
        except Exception as error:  # shard/batch failures stay on this line
            return error_line(request_id, f"worker error: {error}")

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks = set()
        self._clients.add(writer)

        async def respond(line: str) -> None:
            response = await self.handle_line(line)
            try:
                async with write_lock:
                    writer.write(response.encode())
                    await writer.drain()
            except (ConnectionError, BrokenPipeError):
                pass  # coordinator went away; it will reassign the shard

        try:
            while True:
                try:
                    raw = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                except ValueError:
                    async with write_lock:
                        writer.write(
                            error_line(
                                None,
                                f"request line exceeds {MAX_LINE_BYTES} bytes",
                            ).encode()
                        )
                        await writer.drain()
                    break
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                # One task per line: pings pipeline past an in-flight shard,
                # which is what makes heartbeats meaningful.
                task = asyncio.create_task(respond(line))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass
            self._clients.discard(writer)
