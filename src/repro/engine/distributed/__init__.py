"""Distributed campaign runner: deterministic sharding, execution, merging.

This package is the layer between the batched kernels
(:mod:`repro.engine.batch` / :mod:`repro.engine.bits`) and the user: it
plans an ensemble campaign as row-range shards (:mod:`plan`), describes the
campaign as a picklable/JSON-able spec that re-derives every shard's RNG
streams from one root ``SeedSequence`` (:mod:`spec`), executes shards
serially or across processes behind one interface (:mod:`executor`), merges
partials — including streaming-estimator state — back into the exact
unsharded result tables (:mod:`merge`), and checkpoints completed shards so
long campaigns survive interruption (:mod:`checkpoint`).

Entry points: :func:`run_campaign` (programmatic) and the
``python -m repro.campaigns`` CLI.
"""

from __future__ import annotations

from .checkpoint import CampaignCheckpoint, CheckpointLeaseError
from .executor import MultiprocessExecutor, SerialExecutor
from .merge import merge_bit_partials, merge_sigma2n_partials
from .plan import Shard, ShardPlan, plan_shards, plan_shards_for_backend
from .runner import run_campaign
from .spec import (
    BitCampaignSpec,
    CampaignSpec,
    Sigma2NCampaignSpec,
    spec_from_json,
    spec_to_json,
)
from .worker import run_shard

#: Fabric names are imported lazily: :mod:`.fabric.coordinator` pulls in the
#: serving wire protocol, whose request types import this package in turn —
#: an eager import here would make ``import repro.serving`` circular.
_FABRIC_NAMES = (
    "FabricCoordinator",
    "FabricError",
    "FabricTelemetry",
    "ShardEvent",
    "WorkerLink",
    "WorkerServer",
    "WorkerUnavailable",
    "connect_workers",
    "parse_endpoint",
    "spawn_worker",
)


def __getattr__(name: str):
    if name in _FABRIC_NAMES:
        from . import fabric

        return getattr(fabric, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BitCampaignSpec",
    "CampaignCheckpoint",
    "CampaignSpec",
    "CheckpointLeaseError",
    "FabricCoordinator",
    "FabricError",
    "FabricTelemetry",
    "MultiprocessExecutor",
    "SerialExecutor",
    "Shard",
    "ShardEvent",
    "ShardPlan",
    "Sigma2NCampaignSpec",
    "WorkerLink",
    "WorkerServer",
    "WorkerUnavailable",
    "connect_workers",
    "parse_endpoint",
    "spawn_worker",
    "merge_bit_partials",
    "merge_sigma2n_partials",
    "plan_shards",
    "plan_shards_for_backend",
    "run_campaign",
    "run_shard",
    "spec_from_json",
    "spec_to_json",
]
