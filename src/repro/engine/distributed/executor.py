"""Pluggable shard executors: serial and multi-process, one interface.

An executor runs ``function`` over ``tasks`` and yields ``(position,
result)`` pairs *in completion order* — positions index into the submitted
task list, so callers can route each partial to its shard (and checkpoint it)
the moment it lands, without waiting for stragglers.

:class:`SerialExecutor` runs in-process (the reference path; also what makes
``run_campaign`` usable with zero setup).  :class:`MultiprocessExecutor`
fans shards out over a ``concurrent.futures.ProcessPoolExecutor``; shard
tasks and partials are plain picklable payloads (specs are tuples/floats,
partials are dicts of arrays), so the only requirement on workers is that
``repro`` is importable — true for forked children and for spawned ones that
inherit ``PYTHONPATH``.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Iterator, Optional, Sequence, Tuple, TypeVar

Task = TypeVar("Task")
Result = TypeVar("Result")


class SerialExecutor:
    """Run shard tasks one after another in the current process."""

    def run(
        self, function: Callable[[Task], Result], tasks: Sequence[Task]
    ) -> Iterator[Tuple[int, Result]]:
        """Yield ``(position, function(task))`` in submission order."""
        for position, task in enumerate(tasks):
            yield position, function(task)

    def __repr__(self) -> str:
        return "SerialExecutor()"


class MultiprocessExecutor:
    """Run shard tasks across a pool of worker processes.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.  More shards than workers
        is the normal regime — shards queue and keep every worker busy, which
        is also what balances heterogeneous shard costs.
    start_method:
        Optional ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``).  ``None`` uses the platform default.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers!r}")
        self.max_workers = int(max_workers)
        self.start_method = start_method

    def run(
        self, function: Callable[[Task], Result], tasks: Sequence[Task]
    ) -> Iterator[Tuple[int, Result]]:
        """Yield ``(position, result)`` pairs as workers complete tasks."""
        tasks = list(tasks)
        if not tasks:
            return
        context = (
            multiprocessing.get_context(self.start_method)
            if self.start_method
            else None
        )
        workers = min(self.max_workers, len(tasks))
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures = {
                pool.submit(function, task): position
                for position, task in enumerate(tasks)
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield futures[future], future.result()

    def __repr__(self) -> str:
        method = f", start_method={self.start_method!r}" if self.start_method else ""
        return f"MultiprocessExecutor(max_workers={self.max_workers}{method})"
