"""Deterministic shard planning: partition an ensemble into row ranges.

A campaign over ``B`` instances is embarrassingly parallel across rows
because every instance owns one spawned RNG stream (the engine's seeding
discipline).  A :class:`ShardPlan` splits ``range(B)`` into contiguous,
balanced, non-empty row ranges; each shard re-derives its rows' streams by
slicing the root ``SeedSequence`` spawn tree, so the plan is *pure
bookkeeping* — shard outputs are bit-for-bit rows of the unsharded run
regardless of the shard count (see ``tests/engine/test_distributed_invariance``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..backends import BackendLike, resolve_backend


@dataclass(frozen=True)
class Shard:
    """One contiguous row range ``[start, stop)`` of an ensemble."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"shard index must be >= 0, got {self.index!r}")
        if not 0 <= self.start < self.stop:
            raise ValueError(
                f"shard rows must satisfy 0 <= start < stop, "
                f"got [{self.start}, {self.stop})"
            )

    @property
    def size(self) -> int:
        """Number of ensemble rows in the shard."""
        return self.stop - self.start


@dataclass(frozen=True)
class ShardPlan:
    """A complete, ordered partition of ``range(batch_size)`` into shards."""

    batch_size: int
    shards: Tuple[Shard, ...]

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size!r}")
        expected = 0
        for position, shard in enumerate(self.shards):
            if shard.index != position:
                raise ValueError(
                    f"shard at position {position} has index {shard.index}"
                )
            if shard.start != expected:
                raise ValueError(
                    f"shard {position} starts at row {shard.start}, "
                    f"expected {expected}: shards must tile the batch"
                )
            expected = shard.stop
        if expected != self.batch_size:
            raise ValueError(
                f"shards cover rows [0, {expected}) of a "
                f"batch of {self.batch_size}"
            )

    @property
    def n_shards(self) -> int:
        """Number of shards in the plan."""
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)

    def __len__(self) -> int:
        return len(self.shards)


def plan_shards(batch_size: int, n_shards: int) -> ShardPlan:
    """Balanced contiguous partition of ``batch_size`` rows into ``n_shards``.

    The first ``batch_size % n_shards`` shards get one extra row, so shard
    sizes differ by at most one.  Requesting more shards than rows clamps to
    one row per shard (empty shards are never produced).  The plan depends
    only on ``(batch_size, n_shards)`` — deterministic by construction.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size!r}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards!r}")
    n_shards = min(int(n_shards), int(batch_size))
    base, extra = divmod(int(batch_size), n_shards)
    shards = []
    start = 0
    for index in range(n_shards):
        stop = start + base + (1 if index < extra else 0)
        shards.append(Shard(index=index, start=start, stop=stop))
        start = stop
    return ShardPlan(batch_size=int(batch_size), shards=tuple(shards))


def plan_shards_for_backend(
    batch_size: int,
    n_shards: int,
    backend: BackendLike = None,
    n_periods: Optional[int] = None,
) -> ShardPlan:
    """Balanced plan whose shard count respects the backend's parallelism.

    An intra-shard parallel backend (``threaded:N``, ``auto``) wants at
    least :meth:`~repro.engine.backends.SynthesisBackend.min_shard_rows`
    rows per shard — thinner shards leave its workers starved, so slicing a
    batch into many 1-row shards can make a multiprocess campaign *slower*
    than fewer fat shards.  This clamps ``n_shards`` so every shard meets
    the backend's floor (falling back to a single shard when the whole
    batch is below it) and delegates to :func:`plan_shards`.  Shard
    partitioning never changes results — only wall-clock — so the clamp is
    always safe.
    """
    min_rows = resolve_backend(backend).min_shard_rows(n_periods)
    if min_rows > 1:
        n_shards = max(1, min(int(n_shards), int(batch_size) // int(min_rows)))
    return plan_shards(batch_size, n_shards)
