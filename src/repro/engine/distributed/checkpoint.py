"""Shard-level checkpointing: a JSON manifest plus per-shard ``.npz`` partials.

Layout of a checkpoint directory::

    manifest.json      # spec + shard plan + completed shard indices
    shard_0000.npz     # one partial payload per completed shard
    shard_0001.npz
    ...

The manifest pins the *spec* (including the root seed) and the *plan*, so a
resumed run provably continues the same campaign: any mismatch is an error,
never a silent re-seed.  Partials are written first and the manifest updated
after (both via atomic rename), so a run killed mid-write never records a
shard it cannot reload.  Because shard output is deterministic given (spec,
shard), re-running an interrupted shard from scratch is always safe.

**Single-writer lease.**  Two live coordinators writing one checkpoint
directory would interleave manifest rewrites and lose completed shards, so
:meth:`CampaignCheckpoint.initialize` takes a ``coordinator.lock`` lease
(owner token + pid) and every :meth:`~CampaignCheckpoint.save_partial`
re-validates it — a second coordinator is refused with a clear
:class:`CheckpointLeaseError` instead of corrupting the manifest.  A lease
whose owner process is dead is *stale* and is taken over silently, which is
what makes ``resume=True`` work after a coordinator crash.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path
from typing import Dict, Set

import numpy as np

from .plan import ShardPlan
from .spec import CampaignSpec, spec_from_json, spec_to_json
from .worker import Partial

_MANIFEST_VERSION = 1


class CheckpointLeaseError(RuntimeError):
    """Another live coordinator owns this checkpoint directory."""


def _pid_is_alive(pid: int) -> bool:
    """Best-effort liveness: signal 0 probes without touching the process."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


class CampaignCheckpoint:
    """Checkpoint state of one sharded campaign in one directory."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.manifest_path = self.directory / "manifest.json"
        self.lock_path = self.directory / "coordinator.lock"
        self._token = uuid.uuid4().hex
        self._completed: Set[int] = set()

    def shard_path(self, index: int) -> Path:
        """Path of the partial payload of shard ``index``."""
        return self.directory / f"shard_{index:04d}.npz"

    # -- single-writer lease -------------------------------------------------

    def _read_lock(self) -> Dict:
        try:
            return json.loads(self.lock_path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}

    def _acquire_lease(self) -> None:
        """Take the coordinator lease, refusing a live foreign owner."""
        payload = json.dumps(
            {"token": self._token, "pid": os.getpid()}
        )
        while True:
            try:
                descriptor = os.open(
                    self.lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                existing = self._read_lock()
                if existing.get("token") == self._token:
                    return  # re-initialization by the same coordinator
                owner_pid = int(existing.get("pid", -1))
                if owner_pid != os.getpid() and _pid_is_alive(owner_pid):
                    raise CheckpointLeaseError(
                        f"checkpoint directory {self.directory} is owned by a "
                        f"live coordinator (pid {owner_pid}, lock "
                        f"{self.lock_path}); refusing to write — a second "
                        f"coordinator would corrupt the manifest.  Use a "
                        f"fresh --checkpoint-dir, or stop the other run "
                        f"first."
                    )
                # Stale lease (dead process) or a same-process predecessor
                # that never released: take it over atomically.
                temporary = self.lock_path.with_suffix(".lock.tmp")
                temporary.write_text(payload)
                os.replace(temporary, self.lock_path)
                return
            with os.fdopen(descriptor, "w") as handle:
                handle.write(payload)
            return

    def _check_lease(self) -> None:
        """Refuse to write unless this coordinator still holds the lease."""
        existing = self._read_lock()
        if existing.get("token") != self._token:
            owner = existing.get("pid", "unknown")
            raise CheckpointLeaseError(
                f"lost the coordinator lease on {self.directory} (now held "
                f"by pid {owner}); refusing to write shard data over another "
                f"coordinator's checkpoint"
            )

    def release(self) -> None:
        """Give up the lease (idempotent; only removes our own lock)."""
        if self._read_lock().get("token") == self._token:
            try:
                self.lock_path.unlink()
            except OSError:
                pass

    # -- manifest ------------------------------------------------------------

    def _manifest_payload(self, spec: CampaignSpec, plan: ShardPlan) -> Dict:
        return {
            "version": _MANIFEST_VERSION,
            "spec": spec_to_json(spec),
            "plan": {
                "batch_size": plan.batch_size,
                "shards": [[shard.start, shard.stop] for shard in plan],
            },
        }

    def _write_manifest(self, spec: CampaignSpec, plan: ShardPlan) -> None:
        payload = self._manifest_payload(spec, plan)
        payload["completed"] = sorted(self._completed)
        temporary = self.manifest_path.with_suffix(".json.tmp")
        temporary.write_text(json.dumps(payload, indent=2))
        os.replace(temporary, self.manifest_path)

    def initialize(
        self, spec: CampaignSpec, plan: ShardPlan, resume: bool
    ) -> Set[int]:
        """Create (or, when resuming, validate) the manifest.

        Returns the set of shard indices whose partials are already on disk.
        ``resume=True`` with no existing manifest starts a fresh run, so a
        long campaign can always be launched with resume enabled.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        self._acquire_lease()
        if resume and self.manifest_path.exists():
            manifest = json.loads(self.manifest_path.read_text())
            if manifest.get("version") != _MANIFEST_VERSION:
                raise ValueError(
                    f"unsupported checkpoint manifest version in "
                    f"{self.manifest_path}"
                )
            recorded = spec_from_json(manifest["spec"])
            if spec_to_json(recorded) != spec_to_json(spec):
                raise ValueError(
                    "checkpoint manifest describes a different campaign "
                    f"(spec mismatch in {self.manifest_path}); refusing to "
                    "resume — use a fresh checkpoint directory"
                )
            expected = self._manifest_payload(spec, plan)["plan"]
            if manifest.get("plan") != expected:
                raise ValueError(
                    "checkpoint manifest was written with a different shard "
                    f"plan (found {manifest.get('plan')}, expected "
                    f"{expected}); rerun with the original --shards value"
                )
            self._completed = {
                int(index)
                for index in manifest.get("completed", [])
                if self.shard_path(int(index)).exists()
            }
        else:
            self._completed = set()
        self._write_manifest(spec, plan)
        self._spec = spec
        self._plan = plan
        return set(self._completed)

    # -- partials ------------------------------------------------------------

    def save_partial(self, index: int, partial: Partial) -> None:
        """Persist one shard's payload and record it as completed.

        Validates the coordinator lease first: if another coordinator has
        taken over the directory since :meth:`initialize`, this raises
        :class:`CheckpointLeaseError` *before* touching any file.
        """
        self._check_lease()
        path = self.shard_path(index)
        temporary = path.with_suffix(".npz.tmp")
        with open(temporary, "wb") as handle:
            np.savez(handle, **partial)
        os.replace(temporary, path)
        self._completed.add(int(index))
        self._write_manifest(self._spec, self._plan)

    def load_partial(self, index: int) -> Partial:
        """Reload one shard's payload from its ``.npz`` file."""
        with np.load(self.shard_path(index), allow_pickle=False) as archive:
            return {name: archive[name].copy() for name in archive.files}
