"""Stdlib HTTP/1.1 request framing and RFC 6455 WebSocket codec.

This is the byte-level half of the HTTP gateway: parse one request off an
asyncio stream (with hard limits on request line, header block and body so a
hostile peer cannot balloon memory), render responses, and speak just enough
WebSocket for the streaming-session endpoint — the server handshake
(``Sec-WebSocket-Accept``), masked client frames, and unmasked server
frames.  No routing or protocol semantics live here; the gateway maps parsed
requests onto the shared serving envelopes.

Limits are deliberate 4xx responses, not connection drops: an oversized body
gets ``413``, an oversized header block ``431``, a chunked request body
``501`` (``Content-Length`` is the only supported framing).  Only a limit
violation that leaves the stream position unknowable closes the connection.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

import numpy as np

#: Hard cap on the request line (method + target + version) [bytes].
MAX_REQUEST_LINE_BYTES = 8192
#: Hard cap on the whole header block [bytes].
MAX_HEADER_BYTES = 32 * 1024
#: Default cap on request bodies and WebSocket payloads [bytes].
MAX_BODY_BYTES = 1 << 20

STATUS_REASONS = {
    101: "Switching Protocols",
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    410: "Gone",
    413: "Content Too Large",
    414: "URI Too Long",
    426: "Upgrade Required",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
    505: "HTTP Version Not Supported",
}


class HTTPError(Exception):
    """Unacceptable HTTP input; carries the response status to send back."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)


class WebSocketError(Exception):
    """Invalid WebSocket frame; carries the close code to send back."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = int(code)


@dataclass
class HTTPRequest:
    """One parsed HTTP request (headers lower-cased, path percent-decoded)."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        """Whether the connection survives this exchange (HTTP/1.1 default)."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return "keep-alive" in connection
        return "close" not in connection

    @property
    def wants_websocket(self) -> bool:
        """Whether this request asks for a WebSocket upgrade."""
        return (
            "websocket" in self.headers.get("upgrade", "").lower()
            and "upgrade" in self.headers.get("connection", "").lower()
        )


async def read_request(
    reader: asyncio.StreamReader, max_body: int = MAX_BODY_BYTES
) -> Optional[HTTPRequest]:
    """Parse the next request off the stream; ``None`` on clean EOF.

    Raises :class:`HTTPError` on anything malformed or over a limit.  The
    body is framed by ``Content-Length`` only; ``Transfer-Encoding`` is
    rejected with ``501`` rather than guessed at.
    """
    line = await _read_line(reader, MAX_REQUEST_LINE_BYTES, status=414)
    if line is None:
        return None
    if not line:
        # Tolerate one stray blank line between pipelined requests (RFC 9112
        # allows ignoring leading CRLFs).
        line = await _read_line(reader, MAX_REQUEST_LINE_BYTES, status=414)
        if line is None or not line:
            return None
    parts = line.split(" ")
    if len(parts) != 3:
        raise HTTPError(400, f"malformed request line: {line[:128]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HTTPError(505, f"unsupported HTTP version {version!r}")
    if not method.isalpha():
        raise HTTPError(400, f"malformed method {method[:32]!r}")
    split = urlsplit(target)
    headers = await _read_headers(reader)
    body = await _read_body(reader, headers, max_body)
    return HTTPRequest(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
        version=version,
    )


async def _read_line(
    reader: asyncio.StreamReader, limit: int, status: int
) -> Optional[str]:
    try:
        raw = await reader.readline()
    except ValueError:
        # The stream buffer limit tripped before a newline arrived; the
        # stream is no longer line-aligned, so the caller must close.
        raise HTTPError(status, f"line exceeds {limit} bytes") from None
    if not raw:
        return None
    if len(raw) > limit:
        raise HTTPError(status, f"line exceeds {limit} bytes")
    return raw.decode("latin-1").rstrip("\r\n")


async def _read_headers(reader: asyncio.StreamReader) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    total = 0
    while True:
        line = await _read_line(reader, MAX_HEADER_BYTES, status=431)
        if line is None:
            raise HTTPError(400, "connection closed inside the header block")
        if not line:
            return headers
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HTTPError(431, f"header block exceeds {MAX_HEADER_BYTES} bytes")
        name, colon, value = line.partition(":")
        if not colon or not name or name != name.strip():
            raise HTTPError(400, f"malformed header line: {line[:128]!r}")
        headers[name.lower()] = value.strip()


async def _read_body(
    reader: asyncio.StreamReader, headers: Dict[str, str], max_body: int
) -> bytes:
    if "transfer-encoding" in headers:
        raise HTTPError(
            501,
            "Transfer-Encoding request bodies are not supported; "
            "send a Content-Length body",
        )
    declared = headers.get("content-length")
    if declared is None:
        return b""
    try:
        length = int(declared)
    except ValueError:
        raise HTTPError(400, f"invalid Content-Length {declared!r}") from None
    if length < 0:
        raise HTTPError(400, f"invalid Content-Length {declared!r}")
    if length > max_body:
        raise HTTPError(
            413, f"request body of {length} bytes exceeds the {max_body}-byte cap"
        )
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise HTTPError(400, "connection closed inside the request body") from None


def render_response(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    """Serialize one HTTP/1.1 response (always with ``Content-Length``)."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    if body or status not in (101, 204):
        lines.append(f"content-type: {content_type}")
    lines.append(f"content-length: {len(body)}")
    lines.extend(f"{name}: {value}" for name, value in headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


# -- WebSocket (RFC 6455) ----------------------------------------------------

WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONTINUATION = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA


def websocket_accept(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's handshake key."""
    digest = hashlib.sha1((key.strip() + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def render_websocket_handshake(request: HTTPRequest) -> bytes:
    """The ``101 Switching Protocols`` response to a WebSocket upgrade.

    Raises :class:`HTTPError` (``400``/``426``) when the upgrade request is
    not a valid RFC 6455 opening handshake.
    """
    if not request.wants_websocket:
        raise HTTPError(426, "this endpoint requires a WebSocket upgrade")
    key = request.headers.get("sec-websocket-key")
    if not key:
        raise HTTPError(400, "WebSocket upgrade is missing Sec-WebSocket-Key")
    if request.headers.get("sec-websocket-version", "13") != "13":
        raise HTTPError(400, "only WebSocket version 13 is supported")
    return render_response(
        101,
        headers=(
            ("upgrade", "websocket"),
            ("connection", "Upgrade"),
            ("sec-websocket-accept", websocket_accept(key)),
        ),
    )


def encode_ws_frame(opcode: int, payload: bytes) -> bytes:
    """One unmasked (server-to-client) WebSocket frame, FIN set."""
    head = bytearray([0x80 | (opcode & 0x0F)])
    n = len(payload)
    if n < 126:
        head.append(n)
    elif n < 1 << 16:
        head.append(126)
        head += n.to_bytes(2, "big")
    else:
        head.append(127)
        head += n.to_bytes(8, "big")
    return bytes(head) + payload


def encode_ws_close(code: int = 1000, reason: str = "") -> bytes:
    """A close frame carrying a status code and optional reason."""
    return encode_ws_frame(
        OP_CLOSE, code.to_bytes(2, "big") + reason.encode("utf-8")[:123]
    )


def _unmask(payload: bytes, mask: bytes) -> bytes:
    if not payload:
        return payload
    data = np.frombuffer(payload, dtype=np.uint8)
    key = np.resize(np.frombuffer(mask, dtype=np.uint8), data.shape)
    return (data ^ key).tobytes()


async def read_ws_frame(
    reader: asyncio.StreamReader, max_payload: int = MAX_BODY_BYTES
) -> Tuple[int, bytes]:
    """The next ``(opcode, payload)`` client frame, unmasked.

    Raises :class:`WebSocketError` (with the RFC 6455 close code to send)
    on protocol violations, and lets EOF surface as
    ``asyncio.IncompleteReadError``.
    """
    header = await reader.readexactly(2)
    if not header[0] & 0x80:
        raise WebSocketError(1003, "fragmented frames are not supported")
    if header[0] & 0x70:
        raise WebSocketError(1002, "RSV bits set without a negotiated extension")
    opcode = header[0] & 0x0F
    masked = bool(header[1] & 0x80)
    length = header[1] & 0x7F
    if length == 126:
        length = int.from_bytes(await reader.readexactly(2), "big")
    elif length == 127:
        length = int.from_bytes(await reader.readexactly(8), "big")
    if length > max_payload:
        raise WebSocketError(
            1009, f"frame payload of {length} bytes exceeds the {max_payload}-byte cap"
        )
    if not masked:
        raise WebSocketError(1002, "client frames must be masked")
    mask = await reader.readexactly(4)
    payload = await reader.readexactly(length) if length else b""
    return opcode, _unmask(payload, mask)


def encode_client_frame(opcode: int, payload: bytes, mask: bytes) -> bytes:
    """One masked (client-to-server) frame — for tests and the example client."""
    if len(mask) != 4:
        raise ValueError("mask must be 4 bytes")
    head = bytearray([0x80 | (opcode & 0x0F)])
    n = len(payload)
    if n < 126:
        head.append(0x80 | n)
    elif n < 1 << 16:
        head.append(0x80 | 126)
        head += n.to_bytes(2, "big")
    else:
        head.append(0x80 | 127)
        head += n.to_bytes(8, "big")
    return bytes(head) + mask + _unmask(payload, mask)
