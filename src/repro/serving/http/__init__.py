"""HTTP/WebSocket front door for the TRNG serving layer.

The gateway (:class:`HTTPGateway`) speaks the same versioned envelopes as
the TCP/stdio servers over plain HTTP/1.1 — responses are bit-for-bit
identical across transports — and adds stateful streaming sessions
(:mod:`repro.serving.http.sessions`) over REST or WebSocket.  Everything is
stdlib-only; see :mod:`repro.serving.http.gateway` for the route table.
"""

from .gateway import (
    CODE_STATUS,
    HTTPGateway,
    http_request,
    run_http_self_test,
)
from .sessions import (
    SessionError,
    SessionExpired,
    SessionManager,
    SessionNotFound,
    StreamSession,
)
from .wire import MAX_BODY_BYTES, HTTPError, HTTPRequest, WebSocketError

__all__ = [
    "CODE_STATUS",
    "HTTPError",
    "HTTPGateway",
    "HTTPRequest",
    "MAX_BODY_BYTES",
    "SessionError",
    "SessionExpired",
    "SessionManager",
    "SessionNotFound",
    "StreamSession",
    "WebSocketError",
    "http_request",
    "run_http_self_test",
]
