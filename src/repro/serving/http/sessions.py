"""Stateful streaming sessions: a live TRNG sampler kept between requests.

A :class:`StreamSession` owns one single-row
:class:`~repro.engine.bits.BatchedEROTRNG` built **exactly** the way the
one-shot serving path builds it for a solo :class:`BitsRequest` — same
configuration, same per-request spawned generator, same
:func:`~repro.serving.scatter.serving_synthesis_block` — so the engine's
streaming contract (consecutive calls continue the clock timelines on a
fixed synthesis-block grid) turns directly into the session guarantee:

    the concatenation of a session's chunked reads is **bit-for-bit** the
    one-shot result of serving ``BitsRequest(n_bits=total, seed=...)``,
    for any chunking.

:class:`SessionManager` is the lifecycle layer the gateway talks to: opaque
ids, an idle TTL (a session untouched for ``idle_ttl_s`` is expired) and an
LRU cap (opening past ``max_sessions`` evicts the least recently used).
Closed-by-TTL/eviction ids are remembered for a while so a late request
gets the distinct ``session_expired`` error (HTTP ``410``) instead of a
generic ``not_found``.
"""

from __future__ import annotations

import secrets
import threading
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from ...obs import MetricsRegistry
from ..requests import BitsRequest
from ..scatter import serving_synthesis_block

#: How many expired/evicted session ids are remembered for ``410`` answers.
_EXPIRED_MEMORY = 1024


class SessionError(Exception):
    """A session lookup failure; ``code`` is the protocol error token."""

    code = "not_found"


class SessionNotFound(SessionError):
    """No session with that id was ever known (or it aged out of memory)."""

    code = "not_found"


class SessionExpired(SessionError):
    """The session existed but was expired (idle TTL) or evicted (LRU cap)."""

    code = "session_expired"


class StreamSession:
    """One client's live bit stream over a persistent single-row TRNG.

    Reads are serialized by a per-session lock (the sampler is stateful);
    the gateway runs them on worker threads so a long read never blocks the
    event loop.  ``request.n_bits`` is irrelevant here — the request object
    is the carrier of the *generator-defining* fields (seed, divider, design
    parameters), which is all the sampler construction consumes.
    """

    def __init__(self, request: BitsRequest, backend=None) -> None:
        from ...engine.bits import BatchedEROTRNG

        self.request = request
        self._trng = BatchedEROTRNG(
            request.configuration(),
            batch_size=1,
            rngs=[request.generator()],
            synthesis_block_periods=serving_synthesis_block(request.divider),
            backend=backend,
        )
        self._lock = threading.Lock()
        self.bits_served = 0
        self.created_at = time.monotonic()
        self.last_used = self.created_at

    def read(self, n_bits: int) -> Tuple[int, np.ndarray]:
        """The next ``n_bits`` of the stream as ``(start_offset, bits)``.

        Streaming semantics: the bits continue exactly where the previous
        read stopped, regardless of how the stream is chunked.
        """
        n_bits = int(n_bits)
        if n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {n_bits!r}")
        with self._lock:
            offset = self.bits_served
            bits = self._trng.generate_exact(n_bits)[0]
            self.bits_served += int(bits.size)
            self.last_used = time.monotonic()
            return offset, bits

    def info(self) -> Dict:
        """Plain-JSON description (the session-status reply)."""
        return {
            "seed": self.request.seed,
            "divider": self.request.divider,
            "f0_hz": self.request.f0_hz,
            "bits_served": self.bits_served,
            "idle_s": max(time.monotonic() - self.last_used, 0.0),
        }


class SessionManager:
    """Id-keyed session registry with an idle TTL and an LRU capacity cap."""

    def __init__(
        self,
        max_sessions: int = 64,
        idle_ttl_s: float = 300.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions!r}")
        if idle_ttl_s <= 0.0:
            raise ValueError(f"idle_ttl_s must be > 0, got {idle_ttl_s!r}")
        self.max_sessions = int(max_sessions)
        self.idle_ttl_s = float(idle_ttl_s)
        self._lock = threading.Lock()
        # Insertion/recency order: least recently used first.
        self._sessions: "OrderedDict[str, StreamSession]" = OrderedDict()
        self._gone: "OrderedDict[str, None]" = OrderedDict()
        registry = metrics if metrics is not None else MetricsRegistry("sessions")
        self._active = registry.gauge(
            "serving_sessions_active", "Streaming sessions currently open"
        )
        self._opened = registry.counter(
            "serving_sessions_opened_total", "Streaming sessions opened"
        )
        self._expired = registry.counter(
            "serving_sessions_expired_total",
            "Streaming sessions closed by the idle TTL",
        )
        self._evicted = registry.counter(
            "serving_sessions_evicted_total",
            "Streaming sessions evicted by the LRU capacity cap",
        )

    def __len__(self) -> int:
        return len(self._sessions)

    def _forget(self, session_id: str) -> None:
        self._gone[session_id] = None
        while len(self._gone) > _EXPIRED_MEMORY:
            self._gone.popitem(last=False)

    def open(self, request: BitsRequest, backend=None) -> Tuple[str, StreamSession]:
        """Create a session; returns ``(id, session)``, evicting LRU overflow."""
        session = StreamSession(request, backend=backend)
        with self._lock:
            session_id = secrets.token_hex(8)
            self._sessions[session_id] = session
            self._opened.inc()
            while len(self._sessions) > self.max_sessions:
                victim, _ = self._sessions.popitem(last=False)
                self._forget(victim)
                self._evicted.inc()
            self._active.set(len(self._sessions))
        return session_id, session

    def get(self, session_id: str) -> StreamSession:
        """The live session, touched for LRU; raises a typed lookup error."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                if session_id in self._gone:
                    raise SessionExpired(
                        f"session {session_id!r} expired or was evicted"
                    )
                raise SessionNotFound(f"unknown session {session_id!r}")
            if time.monotonic() - session.last_used > self.idle_ttl_s:
                del self._sessions[session_id]
                self._forget(session_id)
                self._expired.inc()
                self._active.set(len(self._sessions))
                raise SessionExpired(
                    f"session {session_id!r} expired after "
                    f"{self.idle_ttl_s:g} s idle"
                )
            self._sessions.move_to_end(session_id)
            return session

    def close(self, session_id: str) -> bool:
        """Explicitly close a session; ``False`` if it was already gone.

        Unknown ids raise :class:`SessionNotFound`; already-expired ids are
        a successful no-op (the client wanted it gone and it is).
        """
        with self._lock:
            if session_id in self._sessions:
                del self._sessions[session_id]
                self._forget(session_id)
                self._active.set(len(self._sessions))
                return True
            if session_id in self._gone:
                return False
            raise SessionNotFound(f"unknown session {session_id!r}")

    def sweep(self, now: Optional[float] = None) -> int:
        """Expire every session idle past the TTL; returns the count."""
        now = time.monotonic() if now is None else now
        expired = 0
        with self._lock:
            for session_id in list(self._sessions):
                if now - self._sessions[session_id].last_used > self.idle_ttl_s:
                    del self._sessions[session_id]
                    self._forget(session_id)
                    self._expired.inc()
                    expired += 1
            if expired:
                self._active.set(len(self._sessions))
        return expired

    def close_all(self) -> int:
        """Close every session (gateway shutdown); returns the count."""
        with self._lock:
            closed = len(self._sessions)
            for session_id in list(self._sessions):
                self._forget(session_id)
            self._sessions.clear()
            self._active.set(0)
        return closed
