"""The HTTP/WebSocket front door over one coalescing TRNG service.

:class:`HTTPGateway` maps HTTP onto the exact same versioned envelopes and
the exact same :func:`~repro.serving.server.serve_envelope` core as the TCP
and stdio servers — a ``POST /v1/bits`` body is the identical JSON object a
TCP client would send as a line, it lands in the identical coalescing
window, and the response body is the identical envelope.  The transport
never touches results, so HTTP-served bits are bit-for-bit TCP-served bits
(``run_http_self_test`` proves it end to end).

Routes
------
* ``POST /v1/bits`` / ``POST /v1/sigma2n`` — one-shot requests through the
  coalescing path (``kind`` implied by the path; scheduling fields
  ``priority``/``deadline_ms`` accepted).
* ``POST /v1/sessions`` — open a streaming session;
  ``POST /v1/sessions/<id>/bits`` reads the next chunk,
  ``GET /v1/sessions/<id>`` inspects, ``DELETE /v1/sessions/<id>`` closes.
  This is the plain-HTTP fallback for clients without WebSocket support.
* ``GET /v1/stream`` — WebSocket upgrade; JSON text frames carry
  ``{"op": "open" | "read" | "close" | "ping"}`` messages over one
  connection (sessions opened here are closed with the connection).
* ``GET /metrics`` — Prometheus text exposition (format 0.0.4) of the
  service registry merged with the process-wide one.
* ``GET /healthz`` — liveness/readiness JSON (queue depth, session count,
  fabric attachment).

Error envelopes carry the protocol's stable ``code`` token, mapped onto
HTTP status codes by :data:`CODE_STATUS` — the body of a 4xx/5xx is the
same ``{"ok": false, "error": ..., "code": ...}`` object a TCP client
would read.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

import numpy as np

from ...obs import global_registry, render_prometheus
from ..config import ServiceConfig
from ..protocol import (
    ProtocolError,
    bits_to_string,
    build_request,
    error_envelope,
    response_envelope,
    string_to_bits,
)
from ..scatter import run_bits_batch
from ..server import SeedFactory, serve_envelope
from ..service import TRNGService
from .sessions import SessionError, SessionManager
from .wire import (
    MAX_BODY_BYTES,
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    HTTPError,
    HTTPRequest,
    WebSocketError,
    encode_ws_close,
    encode_ws_frame,
    read_request,
    read_ws_frame,
    render_response,
    render_websocket_handshake,
)

#: Protocol error code -> HTTP status.  The JSON body still carries the
#: code, so HTTP clients can match on either.
CODE_STATUS = {
    "bad_request": 400,
    "unsupported_version": 400,
    "worker_only": 403,
    "overloaded": 429,
    "deadline_exceeded": 504,
    "stopped": 503,
    "not_found": 404,
    "session_expired": 410,
    "internal": 500,
}

#: Fields accepted when opening a session: a bits request minus ``n_bits``
#: (the stream has no predetermined length) and minus scheduling fields
#: (session reads run on the session's own sampler, not the coalescer).
SESSION_FIELDS = (
    "divider",
    "seed",
    "f0_hz",
    "b_thermal_hz",
    "b_flicker_hz2",
    "frequency_mismatch",
)

#: Cap on one session read [bits] — keeps a response body ~1 MiB.
MAX_SESSION_READ_BITS = 1 << 20

_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _json_bytes(payload: Dict) -> bytes:
    return (json.dumps(payload) + "\n").encode("utf-8")


def _envelope_status(envelope: Dict) -> int:
    if envelope.get("ok"):
        return 200
    return CODE_STATUS.get(envelope.get("code"), 500)


class HTTPGateway:
    """Stdlib-only HTTP/1.1 + WebSocket server in front of one service."""

    def __init__(
        self,
        service: TRNGService,
        host: str = "127.0.0.1",
        port: int = 0,
        default_seed: SeedFactory = None,
        sessions: Optional[SessionManager] = None,
        max_sessions: int = 64,
        session_ttl_s: float = 300.0,
        max_body: int = MAX_BODY_BYTES,
    ) -> None:
        self.service = service
        self.host = host
        self._requested_port = int(port)
        self._default_seed = default_seed
        self.max_body = int(max_body)
        self.sessions = (
            sessions
            if sessions is not None
            else SessionManager(
                max_sessions=max_sessions,
                idle_ttl_s=session_ttl_s,
                metrics=service.registry,
            )
        )
        self._requests_total = service.registry.counter(
            "http_requests_total",
            "HTTP requests served by the gateway",
            labelnames=("method", "route", "status"),
        )
        self._ws_connections = service.registry.counter(
            "http_websocket_connections_total",
            "WebSocket streaming connections accepted",
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._sweep_task: Optional[asyncio.Task] = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._server is None:
            # The stream limit bounds any single header/request line; bodies
            # are framed by Content-Length with their own cap.
            self._server = await asyncio.start_server(
                self._handle_connection,
                self.host,
                self._requested_port,
                limit=self.max_body + (64 << 10),
            )
            self._sweep_task = asyncio.create_task(
                self._sweep_loop(), name="http-session-sweep"
            )

    async def stop(self) -> None:
        sweep, self._sweep_task = self._sweep_task, None
        if sweep is not None:
            sweep.cancel()
            try:
                await sweep
            except asyncio.CancelledError:
                pass
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        self.sessions.close_all()

    async def serve_forever(self) -> None:
        await self.start()
        await self._server.serve_forever()

    async def _sweep_loop(self) -> None:
        interval = max(self.sessions.idle_ttl_s / 4.0, 0.05)
        while True:
            await asyncio.sleep(interval)
            self.sessions.sweep()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader, max_body=self.max_body)
                except HTTPError as error:
                    # Framing is unknowable after a malformed request:
                    # answer once, then close.
                    body = _json_bytes(error_envelope(None, str(error)))
                    self._count("?", "malformed", error.status)
                    writer.write(
                        render_response(
                            error.status, body, headers=(("connection", "close"),)
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                if request.path == "/v1/stream" and request.wants_websocket:
                    await self._serve_websocket(request, reader, writer)
                    break
                response, keep_alive = await self._respond(request)
                writer.write(response)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    def _count(self, method: str, route: str, status: int) -> None:
        self._requests_total.inc(method=method, route=route, status=str(status))

    async def _respond(self, request: HTTPRequest) -> Tuple[bytes, bool]:
        """One routed exchange; returns ``(response_bytes, keep_alive)``."""
        content_type = "application/json"
        try:
            route, handler = self._route(request)
            status, body, content_type = await handler(request)
        except HTTPError as error:
            route = "error"
            status = error.status
            body = _json_bytes(error_envelope(None, str(error)))
        except SessionError as error:
            route = "sessions"
            status = CODE_STATUS[error.code]
            body = _json_bytes(error_envelope(None, str(error), code=error.code))
        except Exception as error:  # route handlers must not kill the server
            route = "error"
            status = 500
            body = _json_bytes(
                error_envelope(None, f"internal error: {error}", code="internal")
            )
        self._count(request.method, route, status)
        keep_alive = request.keep_alive
        headers = (("connection", "keep-alive" if keep_alive else "close"),)
        return (
            render_response(status, body, content_type, headers=headers),
            keep_alive,
        )

    def _route(self, request: HTTPRequest):
        """Match ``(method, path)`` to ``(route_label, handler)``."""
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz":
            self._require(method, ("GET",), path)
            return "/healthz", self._handle_healthz
        if path == "/metrics":
            self._require(method, ("GET",), path)
            return "/metrics", self._handle_metrics
        if path == "/v1/bits":
            self._require(method, ("POST",), path)
            return "/v1/bits", lambda req: self._handle_api(req, "bits")
        if path == "/v1/sigma2n":
            self._require(method, ("POST",), path)
            return "/v1/sigma2n", lambda req: self._handle_api(req, "sigma2n")
        if path == "/v1/sessions":
            self._require(method, ("POST",), path)
            return "/v1/sessions", self._handle_session_open
        parts = path.split("/")
        if len(parts) >= 4 and parts[1] == "v1" and parts[2] == "sessions":
            session_id = parts[3]
            if len(parts) == 4:
                self._require(method, ("GET", "DELETE"), path)
                if method == "GET":
                    return (
                        "/v1/sessions/{id}",
                        lambda req: self._handle_session_info(req, session_id),
                    )
                return (
                    "/v1/sessions/{id}",
                    lambda req: self._handle_session_close(req, session_id),
                )
            if len(parts) == 5 and parts[4] == "bits":
                self._require(method, ("POST",), path)
                return (
                    "/v1/sessions/{id}/bits",
                    lambda req: self._handle_session_read(req, session_id),
                )
        raise HTTPError(404, f"no route for {method} {request.path}")

    @staticmethod
    def _require(method: str, allowed: Tuple[str, ...], path: str) -> None:
        if method not in allowed:
            raise HTTPError(
                405, f"{path} supports {', '.join(allowed)}, not {method}"
            )

    @staticmethod
    def _json_body(request: HTTPRequest) -> Dict:
        if not request.body:
            return {}
        try:
            payload = json.loads(request.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise HTTPError(400, f"invalid JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise HTTPError(400, "request body must be a JSON object")
        return payload

    # -- route handlers ------------------------------------------------------

    async def _handle_api(self, request: HTTPRequest, kind: str):
        """One-shot bits/sigma2n through the shared envelope core."""
        payload = self._json_body(request)
        if payload.get("kind", kind) != kind:
            raise HTTPError(
                400,
                f"this endpoint serves kind {kind!r}, "
                f"body says {payload.get('kind')!r}",
            )
        payload["kind"] = kind
        _, envelope = await serve_envelope(
            self.service, payload, self._default_seed
        )
        return _envelope_status(envelope), _json_bytes(envelope), "application/json"

    async def _handle_metrics(self, request: HTTPRequest):
        text = render_prometheus(self.service.registry, global_registry())
        return 200, text.encode("utf-8"), _PROMETHEUS_CONTENT_TYPE

    async def _handle_healthz(self, request: HTTPRequest):
        queue_depth = self.service.registry.get("serve_queue_depth")
        healthy = self.service.running
        payload = {
            "status": "ok" if healthy else "stopped",
            "serving": healthy,
            "queue_depth": int(queue_depth.value()) if queue_depth else 0,
            "max_pending": self.service.config.max_pending,
            "sessions": len(self.sessions),
            "fabric": self.service.fabric is not None,
            "backend": type(self.service.backend).__name__,
        }
        return (200 if healthy else 503), _json_bytes(payload), "application/json"

    def _open_session(self, fields: Dict) -> Dict:
        """Validate open fields, create the session, return the result payload."""
        unknown = sorted(set(fields) - set(SESSION_FIELDS))
        if unknown:
            raise ProtocolError(
                f"unknown fields for a session: {unknown} "
                f"(expected a subset of {list(SESSION_FIELDS)})"
            )
        # n_bits=1 is a placeholder: sessions stream, so the carrier request
        # only contributes the generator-defining fields.
        carrier = build_request(
            "bits", {"n_bits": 1, **fields}, default_seed=self._default_seed
        )
        session_id, session = self.sessions.open(
            carrier, backend=self.service.backend
        )
        return {
            "kind": "session",
            "session": session_id,
            "seed": carrier.seed,
            "divider": carrier.divider,
        }

    async def _handle_session_open(self, request: HTTPRequest):
        fields = self._json_body(request)
        try:
            result = self._open_session(fields)
        except ProtocolError as error:
            body = _json_bytes(error_envelope(None, str(error), code=error.code))
            return CODE_STATUS[error.code], body, "application/json"
        return 201, _json_bytes(response_envelope(None, result)), "application/json"

    def _read_chunk_size(self, fields: Dict) -> int:
        n_bits = fields.get("n_bits")
        if not isinstance(n_bits, int) or isinstance(n_bits, bool) or n_bits < 1:
            raise HTTPError(400, f"n_bits must be a positive integer, got {n_bits!r}")
        if n_bits > MAX_SESSION_READ_BITS:
            raise HTTPError(
                400,
                f"n_bits {n_bits} exceeds the per-read cap of "
                f"{MAX_SESSION_READ_BITS} bits; read in chunks (the stream "
                f"is chunk-invariant)",
            )
        return n_bits

    async def _read_session_bits(self, session_id: str, n_bits: int) -> Dict:
        session = self.sessions.get(session_id)
        # The per-session lock serializes concurrent reads; the worker
        # thread keeps the event loop free while the engine runs.
        offset, bits = await asyncio.to_thread(session.read, n_bits)
        return {
            "kind": "bits",
            "session": session_id,
            "bits": bits_to_string(bits),
            "n_bits": int(bits.size),
            "offset": offset,
            "seed": session.request.seed,
            "divider": session.request.divider,
        }

    async def _handle_session_read(self, request: HTTPRequest, session_id: str):
        n_bits = self._read_chunk_size(self._json_body(request))
        result = await self._read_session_bits(session_id, n_bits)
        return 200, _json_bytes(response_envelope(None, result)), "application/json"

    async def _handle_session_info(self, request: HTTPRequest, session_id: str):
        session = self.sessions.get(session_id)
        result = {"kind": "session", "session": session_id, **session.info()}
        return 200, _json_bytes(response_envelope(None, result)), "application/json"

    async def _handle_session_close(self, request: HTTPRequest, session_id: str):
        closed = self.sessions.close(session_id)
        result = {"kind": "session", "session": session_id, "closed": closed}
        return 200, _json_bytes(response_envelope(None, result)), "application/json"

    # -- WebSocket streaming -------------------------------------------------

    async def _serve_websocket(
        self,
        request: HTTPRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """The ``/v1/stream`` endpoint: session ops as JSON text frames."""
        try:
            handshake = render_websocket_handshake(request)
        except HTTPError as error:
            self._count(request.method, "/v1/stream", error.status)
            body = _json_bytes(error_envelope(None, str(error)))
            writer.write(
                render_response(
                    error.status, body, headers=(("connection", "close"),)
                )
            )
            await writer.drain()
            return
        writer.write(handshake)
        await writer.drain()
        self._ws_connections.inc()
        self._count(request.method, "/v1/stream", 101)
        owned_sessions = set()
        try:
            while True:
                try:
                    opcode, payload = await read_ws_frame(
                        reader, max_payload=self.max_body
                    )
                except WebSocketError as error:
                    writer.write(encode_ws_close(error.code, str(error)))
                    await writer.drain()
                    return
                if opcode == OP_CLOSE:
                    writer.write(encode_ws_close(1000))
                    await writer.drain()
                    return
                if opcode == OP_PING:
                    writer.write(encode_ws_frame(OP_PONG, payload))
                    await writer.drain()
                    continue
                if opcode == OP_PONG:
                    continue
                if opcode != OP_TEXT:
                    writer.write(
                        encode_ws_close(1003, "only JSON text frames are accepted")
                    )
                    await writer.drain()
                    return
                reply = await self._handle_ws_message(payload, owned_sessions)
                writer.write(encode_ws_frame(OP_TEXT, _json_bytes(reply)))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            # Sessions opened over this socket die with it — a WebSocket
            # stream is connection-scoped, unlike the REST sessions.
            for session_id in owned_sessions:
                try:
                    self.sessions.close(session_id)
                except SessionError:
                    pass

    async def _handle_ws_message(self, payload: bytes, owned_sessions: set) -> Dict:
        """One ``{"op": ...}`` message to one reply envelope (never raises)."""
        message_id = None
        try:
            try:
                message = json.loads(payload)
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                raise ProtocolError(f"invalid JSON frame: {error}") from None
            if not isinstance(message, dict):
                raise ProtocolError("each frame must be a JSON object")
            message_id = message.pop("id", None)
            op = message.pop("op", None)
            if op == "ping":
                return response_envelope(message_id, {"kind": "ping", "pong": True})
            if op == "open":
                result = self._open_session(message)
                owned_sessions.add(result["session"])
                return response_envelope(message_id, result)
            if op == "read":
                session_id = message.pop("session", None)
                if not isinstance(session_id, str):
                    raise ProtocolError("'read' requires a 'session' id")
                try:
                    n_bits = self._read_chunk_size(message)
                except HTTPError as error:
                    raise ProtocolError(str(error)) from None
                result = await self._read_session_bits(session_id, n_bits)
                return response_envelope(message_id, result)
            if op == "close":
                session_id = message.pop("session", None)
                if not isinstance(session_id, str):
                    raise ProtocolError("'close' requires a 'session' id")
                closed = self.sessions.close(session_id)
                owned_sessions.discard(session_id)
                return response_envelope(
                    message_id,
                    {"kind": "session", "session": session_id, "closed": closed},
                )
            raise ProtocolError(
                f"unknown op {op!r} (expected open, read, close or ping)"
            )
        except ProtocolError as error:
            return error_envelope(message_id, str(error), code=error.code)
        except SessionError as error:
            return error_envelope(message_id, str(error), code=error.code)
        except Exception as error:
            return error_envelope(
                message_id, f"internal error: {error}", code="internal"
            )


# -- self-test ---------------------------------------------------------------


async def http_request(
    host: str, port: int, method: str, path: str, payload: Optional[Dict] = None
) -> Tuple[int, bytes]:
    """Minimal one-shot HTTP client; returns ``(status, body)``.

    Used by the self-test and the example client so neither needs anything
    beyond the stdlib (``connection: close`` framing keeps parsing trivial).
    """
    reader, writer = await asyncio.open_connection(host, port)
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"host: {host}:{port}\r\n"
        f"content-type: application/json\r\n"
        f"content-length: {len(body)}\r\n"
        f"connection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, BrokenPipeError):
        pass
    header_block, _, response_body = raw.partition(b"\r\n\r\n")
    status_line = header_block.split(b"\r\n", 1)[0].decode("latin-1")
    status = int(status_line.split(" ")[1])
    return status, response_body


async def run_http_self_test(
    n_clients: int = 16,
    n_bits: int = 48,
    dividers=(8, 16),
    max_batch: int = 16,
    max_wait_ms: float = 150.0,
    base_seed: int = 20140324,
    host: str = "127.0.0.1",
    backend=None,
) -> Dict:
    """End-to-end HTTP smoke: coalescing, TCP-equivalence, sessions, metrics.

    Spawns a real gateway on an ephemeral port and asserts that

    * concurrent ``POST /v1/bits`` requests coalesce and every response is
      **bit-for-bit** the solo-served result (the same contract the TCP
      self-test proves — and since both edges call the same engine bridge,
      HTTP == TCP bitwise);
    * a streaming session read in chunks reproduces the one-shot result of
      the same seed exactly (chunk invariance);
    * ``GET /metrics`` serves a parseable Prometheus exposition and
      ``GET /healthz`` reports ok.

    Returns a summary dict; raises ``AssertionError`` on any violation.
    """
    from ..requests import BitsRequest

    requests = [
        BitsRequest(
            n_bits=n_bits,
            divider=int(dividers[index % len(dividers)]),
            seed=base_seed + index,
        )
        for index in range(n_clients)
    ]
    config = ServiceConfig(
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        max_pending=4 * n_clients,
        backend=backend,
    )
    service = TRNGService(config)
    gateway = HTTPGateway(service, host=host, port=0)
    async with service:
        await gateway.start()
        try:
            port = gateway.port

            async def client(index: int) -> Dict:
                request = requests[index]
                status, body = await http_request(
                    host,
                    port,
                    "POST",
                    "/v1/bits",
                    {
                        "id": index,
                        "n_bits": request.n_bits,
                        "divider": request.divider,
                        "seed": request.seed,
                    },
                )
                envelope = json.loads(body)
                if status != 200 or not envelope.get("ok"):
                    raise AssertionError(
                        f"client {index}: HTTP {status}: {envelope.get('error')}"
                    )
                return envelope

            envelopes = await asyncio.gather(
                *(client(index) for index in range(n_clients))
            )

            # Streaming session: three uneven chunks must concatenate to the
            # one-shot solo result for the same seed.
            status, body = await http_request(
                host, port, "POST", "/v1/sessions",
                {"divider": int(dividers[0]), "seed": base_seed},
            )
            assert status == 201, f"session open failed: HTTP {status}"
            session_id = json.loads(body)["result"]["session"]
            chunks = []
            for chunk_bits in (7, 1, n_bits - 8):
                status, body = await http_request(
                    host, port, "POST", f"/v1/sessions/{session_id}/bits",
                    {"n_bits": chunk_bits},
                )
                assert status == 200, f"session read failed: HTTP {status}"
                chunks.append(string_to_bits(json.loads(body)["result"]["bits"]))
            session_bits = np.concatenate(chunks)

            status, metrics_body = await http_request(host, port, "GET", "/metrics")
            assert status == 200, f"metrics scrape failed: HTTP {status}"
            metrics_text = metrics_body.decode("utf-8")
            assert "# TYPE serve_requests_total counter" in metrics_text, (
                "metrics exposition is missing the serving counters"
            )

            status, health_body = await http_request(host, port, "GET", "/healthz")
            assert status == 200, f"healthz failed: HTTP {status}"
            assert json.loads(health_body)["status"] == "ok"
        finally:
            await gateway.stop()
        stats = service.stats.snapshot()

    for index, envelope in enumerate(envelopes):
        served = string_to_bits(envelope["result"]["bits"])
        solo = run_bits_batch([requests[index]])[0].bits
        if not np.array_equal(served, solo):
            raise AssertionError(
                f"client {index}: HTTP-served bits differ from solo-served bits"
            )
    one_shot = run_bits_batch(
        [BitsRequest(n_bits=n_bits, divider=int(dividers[0]), seed=base_seed)]
    )[0].bits
    if not np.array_equal(session_bits, one_shot):
        raise AssertionError(
            "session chunks do not concatenate to the one-shot stream"
        )
    if stats["max_batch_size"] < 2:
        raise AssertionError(
            "no coalescing happened over HTTP: every batch served a single "
            f"request (stats: {stats})"
        )
    return {
        "clients": n_clients,
        "n_bits": n_bits,
        "dividers": list(int(d) for d in dividers),
        "stats": stats,
        "solo_equivalence": "bitwise",
        "session_chunk_invariance": "bitwise",
    }
