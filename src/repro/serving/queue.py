"""Bounded request queue with an explicit load-shedding policy.

The queue is the serving layer's backpressure point: every client request
becomes a :class:`PendingRequest` (request + result future) and must pass
through a bounded :class:`asyncio.Queue` before the coalescer sees it.  When
the queue is full, the ``overflow`` policy decides what happens:

* ``"reject"`` (default) — **load shedding**: :meth:`RequestQueue.submit`
  raises :class:`ServiceOverloaded` immediately, so callers get a fast,
  explicit failure instead of unbounded latency;
* ``"wait"`` — **backpressure**: ``submit`` suspends until the dispatcher
  drains a slot, propagating the slowdown to the producers.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Optional

from ..obs import MetricsRegistry
from .requests import Request

OVERFLOW_POLICIES = ("reject", "wait")


class ServiceOverloaded(RuntimeError):
    """The bounded request queue is full and the policy is load shedding."""


class ServiceStopped(RuntimeError):
    """The service stopped before this request could be served."""


class DeadlineExceeded(RuntimeError):
    """The request's ``deadline_ms`` budget expired before dispatch.

    Raised *instead of* running the engine: an expired request is failed
    fast by the coalescer and never consumes a row of a batched call.
    """


#: Process-wide arrival counter: a total order over pending requests that is
#: stable across queues (the coalescer uses it for FIFO-within-priority).
_ARRIVALS = itertools.count()


@dataclass
class PendingRequest:
    """One queued request and the future its result will resolve."""

    request: Request
    future: asyncio.Future = field(repr=False)
    #: Enqueue timestamp (``time.monotonic``); the queue-wait histogram and
    #: the batch wait-time accounting measure from here.
    enqueued_at: float = field(default=0.0, repr=False, compare=False)
    #: Absolute dispatch deadline (``time.monotonic``) derived from the
    #: request's ``deadline_ms``; ``None`` means no deadline.
    deadline_at: Optional[float] = field(default=None, repr=False, compare=False)
    #: Arrival sequence number (FIFO tiebreak within a priority class).
    arrival: int = field(default=0, repr=False, compare=False)

    @property
    def priority(self) -> str:
        """The request's scheduling class (``"normal"`` when absent)."""
        return getattr(self.request, "priority", "normal")

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the dispatch deadline has passed."""
        if self.deadline_at is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline_at

    def resolve(self, result) -> bool:
        """Fulfil the future; False when the caller already went away."""
        if self.future.done():
            return False
        self.future.set_result(result)
        return True

    def fail(self, error: BaseException) -> bool:
        """Fail the future; False when the caller already went away."""
        if self.future.done():
            return False
        self.future.set_exception(error)
        return True


class RequestQueue:
    """Bounded FIFO of :class:`PendingRequest` with an overflow policy."""

    def __init__(
        self,
        max_pending: int = 1024,
        overflow: str = "reject",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending!r}")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow must be one of {OVERFLOW_POLICIES}, got {overflow!r}"
            )
        self.max_pending = int(max_pending)
        self.overflow = overflow
        self._queue: asyncio.Queue[PendingRequest] = asyncio.Queue(
            maxsize=self.max_pending
        )
        self._closed: Optional[BaseException] = None
        # Queue depth and wait time are the queue's own metrics: the service
        # passes its registry in so the scrape surface sees them; a bare
        # RequestQueue keeps them in a private registry (tests, direct use).
        registry = metrics if metrics is not None else MetricsRegistry("queue")
        self._depth = registry.gauge(
            "serve_queue_depth", "Requests waiting in the bounded queue"
        )
        self._wait_seconds = registry.histogram(
            "serve_queue_wait_seconds",
            "Seconds a request spent queued before the coalescer claimed it",
        )

    def __len__(self) -> int:
        return self._queue.qsize()

    async def submit(self, request: Request) -> asyncio.Future:
        """Enqueue a request; returns the future its result will resolve.

        Under the ``"reject"`` policy a full queue raises
        :class:`ServiceOverloaded` without suspending; under ``"wait"`` the
        call suspends until a slot frees up.
        """
        if self._closed is not None:
            raise self._closed
        future = asyncio.get_running_loop().create_future()
        now = time.monotonic()
        deadline_ms = getattr(request, "deadline_ms", None)
        pending = PendingRequest(
            request=request,
            future=future,
            enqueued_at=now,
            deadline_at=None if deadline_ms is None else now + deadline_ms / 1e3,
            arrival=next(_ARRIVALS),
        )
        if self.overflow == "reject":
            try:
                self._queue.put_nowait(pending)
            except asyncio.QueueFull:
                raise ServiceOverloaded(
                    f"request queue is full ({self.max_pending} pending); "
                    f"the load-shedding policy rejects new requests"
                ) from None
        else:
            await self._queue.put(pending)
            # The queue may have been drained (service stopped) while this
            # submitter was suspended on the full queue: its request just
            # landed in a dispatcherless queue, so fail the future now
            # instead of letting the caller await it forever.
            if self._closed is not None:
                pending.fail(self._closed)
        self._depth.set(self._queue.qsize())
        return future

    async def get(self) -> PendingRequest:
        """Next pending request (FIFO); suspends while the queue is empty."""
        pending = await self._queue.get()
        self._depth.set(self._queue.qsize())
        self._wait_seconds.observe(time.monotonic() - pending.enqueued_at)
        return pending

    def get_nowait(self) -> Optional[PendingRequest]:
        """Next pending request, or ``None`` when the queue is empty.

        The coalescer drains every already-arrived request into its pending
        pool before choosing a batch leader, so priority selection sees the
        whole backlog, not just the FIFO head.
        """
        try:
            pending = self._queue.get_nowait()
        except asyncio.QueueEmpty:
            return None
        self._depth.set(self._queue.qsize())
        self._wait_seconds.observe(time.monotonic() - pending.enqueued_at)
        return pending

    def drain(self, error: BaseException) -> int:
        """Close the queue and fail every queued request; returns the count.

        After draining, new :meth:`submit` calls raise ``error`` until
        :meth:`reopen` is called (the service does so on restart).
        """
        self._closed = error
        failed = 0
        while True:
            try:
                pending = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                self._depth.set(0)
                return failed
            if pending.fail(error):
                failed += 1

    def reopen(self) -> None:
        """Accept submissions again after a :meth:`drain` (service restart)."""
        self._closed = None
