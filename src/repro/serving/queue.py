"""Bounded request queue with an explicit load-shedding policy.

The queue is the serving layer's backpressure point: every client request
becomes a :class:`PendingRequest` (request + result future) and must pass
through a bounded :class:`asyncio.Queue` before the coalescer sees it.  When
the queue is full, the ``overflow`` policy decides what happens:

* ``"reject"`` (default) — **load shedding**: :meth:`RequestQueue.submit`
  raises :class:`ServiceOverloaded` immediately, so callers get a fast,
  explicit failure instead of unbounded latency;
* ``"wait"`` — **backpressure**: ``submit`` suspends until the dispatcher
  drains a slot, propagating the slowdown to the producers.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Optional

from .requests import Request

OVERFLOW_POLICIES = ("reject", "wait")


class ServiceOverloaded(RuntimeError):
    """The bounded request queue is full and the policy is load shedding."""


class ServiceStopped(RuntimeError):
    """The service stopped before this request could be served."""


@dataclass
class PendingRequest:
    """One queued request and the future its result will resolve."""

    request: Request
    future: asyncio.Future = field(repr=False)

    def resolve(self, result) -> bool:
        """Fulfil the future; False when the caller already went away."""
        if self.future.done():
            return False
        self.future.set_result(result)
        return True

    def fail(self, error: BaseException) -> bool:
        """Fail the future; False when the caller already went away."""
        if self.future.done():
            return False
        self.future.set_exception(error)
        return True


class RequestQueue:
    """Bounded FIFO of :class:`PendingRequest` with an overflow policy."""

    def __init__(self, max_pending: int = 1024, overflow: str = "reject") -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending!r}")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow must be one of {OVERFLOW_POLICIES}, got {overflow!r}"
            )
        self.max_pending = int(max_pending)
        self.overflow = overflow
        self._queue: asyncio.Queue[PendingRequest] = asyncio.Queue(
            maxsize=self.max_pending
        )
        self._closed: Optional[BaseException] = None

    def __len__(self) -> int:
        return self._queue.qsize()

    async def submit(self, request: Request) -> asyncio.Future:
        """Enqueue a request; returns the future its result will resolve.

        Under the ``"reject"`` policy a full queue raises
        :class:`ServiceOverloaded` without suspending; under ``"wait"`` the
        call suspends until a slot frees up.
        """
        if self._closed is not None:
            raise self._closed
        future = asyncio.get_running_loop().create_future()
        pending = PendingRequest(request=request, future=future)
        if self.overflow == "reject":
            try:
                self._queue.put_nowait(pending)
            except asyncio.QueueFull:
                raise ServiceOverloaded(
                    f"request queue is full ({self.max_pending} pending); "
                    f"the load-shedding policy rejects new requests"
                ) from None
        else:
            await self._queue.put(pending)
            # The queue may have been drained (service stopped) while this
            # submitter was suspended on the full queue: its request just
            # landed in a dispatcherless queue, so fail the future now
            # instead of letting the caller await it forever.
            if self._closed is not None:
                pending.fail(self._closed)
        return future

    async def get(self) -> PendingRequest:
        """Next pending request (FIFO); suspends while the queue is empty."""
        return await self._queue.get()

    def drain(self, error: BaseException) -> int:
        """Close the queue and fail every queued request; returns the count.

        After draining, new :meth:`submit` calls raise ``error`` until
        :meth:`reopen` is called (the service does so on restart).
        """
        self._closed = error
        failed = 0
        while True:
            try:
                pending = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return failed
            if pending.fail(error):
                failed += 1

    def reopen(self) -> None:
        """Accept submissions again after a :meth:`drain` (service restart)."""
        self._closed = None
