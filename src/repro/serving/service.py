"""The serving facade: async ``get_bits`` / ``get_sigma2n`` over one engine.

:class:`TRNGService` wires the pieces together: a bounded
:class:`~repro.serving.queue.RequestQueue` (backpressure / load shedding), a
:class:`~repro.serving.coalescer.Coalescer` (request grouping), one dispatch
loop that runs each coalesced batch on a worker thread
(``asyncio.to_thread`` — the event loop keeps accepting requests while numpy
runs), and a :class:`~repro.serving.scatter.Scatterer` that resolves the
per-request futures.  :class:`ServiceStats` counts everything the benchmark
and the self-test assert on (batches, coalesced sizes, rejections).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from ..engine.backends import BackendLike, plan_cache_stats, resolve_backend
from .coalescer import Coalescer
from .fast_tier import FastTierCache
from .queue import RequestQueue, ServiceStopped
from .requests import BitsRequest, BitsResult, Request, Sigma2NRequest, Sigma2NResult
from .scatter import Scatterer, execute_batch

if TYPE_CHECKING:
    from .fabric_dispatch import FabricDispatcher


@dataclass
class ServiceStats:
    """Counters of one service lifetime (read with :meth:`snapshot`)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    batches: int = 0
    batched_requests: int = 0
    coalesced_batches: int = 0
    coalesced_requests: int = 0
    max_batch_size: int = 0
    requests_by_kind: Dict[str, int] = field(default_factory=dict)
    #: The service's fast-tier cache, attached by :class:`TRNGService` so the
    #: snapshot can surface its counters alongside the request counters.
    fast_cache: Optional[FastTierCache] = None
    #: The service's fabric dispatcher (when serving through remote workers),
    #: attached so the snapshot includes a ``fabric`` section.
    fabric: Optional["FabricDispatcher"] = None

    def record_submit(self, request: Request) -> None:
        self.submitted += 1
        kind = request.kind
        self.requests_by_kind[kind] = self.requests_by_kind.get(kind, 0) + 1

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_requests += size
        self.max_batch_size = max(self.max_batch_size, size)
        if size > 1:
            self.coalesced_batches += 1
            self.coalesced_requests += size

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    def snapshot(self) -> Dict:
        """Plain-JSON view of the counters (the ``stats`` protocol reply).

        Includes the process-wide synthesis plan-cache counters
        (:func:`repro.engine.backends.plan_cache_stats`) and, when the
        service has one, the fast-tier cache counters.
        """
        snapshot = {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "batches": self.batches,
            "coalesced_batches": self.coalesced_batches,
            "coalesced_requests": self.coalesced_requests,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": self.mean_batch_size,
            "requests_by_kind": dict(self.requests_by_kind),
            "plan_cache": plan_cache_stats(),
        }
        if self.fast_cache is not None:
            snapshot["fast_tier"] = self.fast_cache.stats()
        if self.fabric is not None:
            snapshot["fabric"] = self.fabric.stats()
        return snapshot


class TRNGService:
    """Async facade over the batched engine with request coalescing.

    Parameters
    ----------
    max_batch:
        Most requests one engine call may serve; ``1`` disables coalescing
        (the serial reference mode).
    max_wait_ms:
        How long a batch leader waits for companions.  The window is pure
        latency budget: a request is never delayed longer than this before
        its engine call starts (plus queueing behind earlier batches).
    max_pending:
        Bound of the request queue — the backpressure knob.
    overflow:
        ``"reject"`` (load shedding, raises
        :class:`~repro.serving.queue.ServiceOverloaded`) or ``"wait"``
        (suspend the submitter until a slot frees).
    backend:
        Synthesis backend every engine call runs on: an instance, a spec
        string (``"numpy"`` | ``"threaded[:N]"``) or ``None`` (the
        ``REPRO_BACKEND``/NumPy default).  Resolved once at construction;
        backends are bit-for-bit equivalent, so served results never depend
        on the choice.
    fast_cache:
        The fitted-campaign cache behind ``tier="fast"`` sigma^2_N requests
        (see :mod:`repro.serving.fast_tier`); pass an instance to tune the
        r^2 admission gate or share a cache across services.  Defaults to a
        fresh cache with the standard gate.
    fabric:
        A :class:`~repro.serving.fabric_dispatch.FabricDispatcher` to run
        coalesced batches on remote workers instead of a local thread.
        Results are bit-for-bit identical either way; the service does not
        own the dispatcher (close it yourself after :meth:`stop`).
    """

    def __init__(
        self,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        max_pending: int = 1024,
        overflow: str = "reject",
        backend: BackendLike = None,
        fast_cache: Optional[FastTierCache] = None,
        fabric: Optional["FabricDispatcher"] = None,
    ) -> None:
        self.queue = RequestQueue(max_pending=max_pending, overflow=overflow)
        self.coalescer = Coalescer(max_batch=max_batch, max_wait_ms=max_wait_ms)
        self.scatterer = Scatterer()
        self.fast_cache = fast_cache if fast_cache is not None else FastTierCache()
        self.fabric = fabric
        self.stats = ServiceStats(fast_cache=self.fast_cache, fabric=fabric)
        self.backend = resolve_backend(backend)
        self._dispatch_task: Optional[asyncio.Task] = None

    @property
    def running(self) -> bool:
        return self._dispatch_task is not None and not self._dispatch_task.done()

    async def start(self) -> None:
        """Start the dispatch loop (idempotent; reopens a stopped queue)."""
        if not self.running:
            self.queue.reopen()
            self._dispatch_task = asyncio.create_task(
                self._dispatch_loop(), name="trng-service-dispatch"
            )

    async def stop(self) -> None:
        """Stop dispatching and fail everything still pending."""
        task, self._dispatch_task = self._dispatch_task, None
        if task is not None and not task.done():
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        stopped = ServiceStopped("TRNG service stopped")
        self.stats.failed += self.queue.drain(stopped)
        self.stats.failed += self.coalescer.drain(stopped)

    async def __aenter__(self) -> "TRNGService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def _dispatch_loop(self) -> None:
        while True:
            batch = await self.coalescer.next_batch(self.queue)
            self.stats.record_batch(len(batch))
            requests = [pending.request for pending in batch]
            run_batch = (
                self.fabric.execute_batch if self.fabric is not None else execute_batch
            )
            try:
                results = await asyncio.to_thread(
                    run_batch, requests, self.backend, self.fast_cache
                )
            except asyncio.CancelledError:
                self.stats.failed += self.scatterer.fail(
                    batch, ServiceStopped("TRNG service stopped")
                )
                raise
            except Exception as error:
                self.stats.failed += self.scatterer.fail(batch, error)
                continue
            self.stats.completed += self.scatterer.scatter(batch, results)

    async def submit(self, request: Request) -> asyncio.Future:
        """Low-level enqueue; prefer :meth:`get_bits` / :meth:`get_sigma2n`."""
        if not self.running:
            raise ServiceStopped("TRNG service is not running (call start())")
        try:
            future = await self.queue.submit(request)
        except Exception:
            self.stats.rejected += 1
            raise
        self.stats.record_submit(request)
        return future

    async def get_bits(self, request: Optional[BitsRequest] = None, **parameters):
        """Serve one bit request; returns its :class:`BitsResult`.

        Pass a prebuilt :class:`~repro.serving.requests.BitsRequest` or the
        dataclass fields as keyword arguments (``n_bits=..., divider=...``).
        """
        if request is None:
            request = BitsRequest(**parameters)
        elif parameters:
            raise TypeError("pass either a request object or keyword fields")
        result = await (await self.submit(request))
        assert isinstance(result, BitsResult)
        return result

    async def get_sigma2n(
        self, request: Optional[Sigma2NRequest] = None, **parameters
    ):
        """Serve one sigma^2_N request; returns its :class:`Sigma2NResult`."""
        if request is None:
            request = Sigma2NRequest(**parameters)
        elif parameters:
            raise TypeError("pass either a request object or keyword fields")
        result = await (await self.submit(request))
        assert isinstance(result, Sigma2NResult)
        return result
