"""The serving facade: async ``get_bits`` / ``get_sigma2n`` over one engine.

:class:`TRNGService` wires the pieces together: a bounded
:class:`~repro.serving.queue.RequestQueue` (backpressure / load shedding), a
:class:`~repro.serving.coalescer.Coalescer` (request grouping), one dispatch
loop that runs each coalesced batch on a worker thread
(``asyncio.to_thread`` — the event loop keeps accepting requests while numpy
runs), and a :class:`~repro.serving.scatter.Scatterer` that resolves the
per-request futures.  :class:`ServiceStats` counts everything the benchmark
and the self-test assert on (batches, coalesced sizes, rejections).
"""

from __future__ import annotations

import asyncio
import time
import warnings
from typing import TYPE_CHECKING, Dict, Optional

from ..engine.backends import plan_cache_stats, resolve_backend
from ..obs import SIZE_BUCKETS, MetricsRegistry, SpanCollector, global_collector, span
from .coalescer import Coalescer
from .config import ServiceConfig
from .fast_tier import FastTierCache
from .queue import RequestQueue, ServiceStopped
from .requests import BitsRequest, BitsResult, Request, Sigma2NRequest, Sigma2NResult
from .scatter import Scatterer, execute_batch

if TYPE_CHECKING:
    from .fabric_dispatch import FabricDispatcher

#: TRNGService keyword arguments superseded by :class:`ServiceConfig`.
_LEGACY_SERVICE_KWARGS = (
    "max_batch",
    "max_wait_ms",
    "max_pending",
    "overflow",
    "backend",
)


class ServiceStats:
    """One service lifetime's counters — a thin view over a metrics registry.

    Every number lives in the :class:`~repro.obs.MetricsRegistry` (one per
    service, shared with the request queue and the ``metrics`` protocol
    kind), so the ``stats`` reply, the Prometheus exposition and these
    attributes can never drift apart: they all read the same instruments.
    The attribute surface of the old dataclass is preserved as read-only
    properties (``stats.submitted``, ``stats.rejected``, ...).
    """

    def __init__(
        self,
        fast_cache: Optional[FastTierCache] = None,
        fabric: Optional["FabricDispatcher"] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        #: The service's fast-tier cache, attached by :class:`TRNGService` so
        #: the snapshot can surface its counters alongside the request counters.
        self.fast_cache = fast_cache
        #: The service's fabric dispatcher (when serving through remote
        #: workers), attached so the snapshot includes a ``fabric`` section.
        self.fabric = fabric
        self.registry = registry if registry is not None else MetricsRegistry("serving")
        self._submitted = self.registry.counter(
            "serve_requests_total", "Requests submitted", labelnames=("kind",)
        )
        self._completed = self.registry.counter(
            "serve_completed_total", "Requests completed successfully"
        )
        self._failed = self.registry.counter(
            "serve_failed_total", "Requests failed (engine error or shutdown)"
        )
        self._rejected = self.registry.counter(
            "serve_rejected_total", "Requests rejected by the bounded queue"
        )
        self._batches = self.registry.counter(
            "serve_batches_total", "Engine calls dispatched (coalesced batches)"
        )
        self._batched_requests = self.registry.counter(
            "serve_batched_requests_total", "Requests carried by engine calls"
        )
        self._coalesced_batches = self.registry.counter(
            "serve_coalesced_batches_total", "Batches that served > 1 request"
        )
        self._coalesced_requests = self.registry.counter(
            "serve_coalesced_requests_total",
            "Requests served by a coalesced (> 1 request) batch",
        )
        self._max_batch = self.registry.gauge(
            "serve_max_batch_size", "Largest batch dispatched so far"
        )
        self._batch_size = self.registry.histogram(
            "serve_batch_size", "Requests per dispatched batch", SIZE_BUCKETS
        )
        self._execute_seconds = self.registry.histogram(
            "serve_execute_seconds",
            "Wall-clock seconds per batch execution (scatter latency)",
        )
        # Owned by the coalescer (which increments it); registered here so
        # the property/snapshot surface works before the first batch.
        self._deadline_expired = self.registry.counter(
            "serve_deadline_expired_total",
            "Requests failed fast because deadline_ms expired before dispatch",
        )

    def record_submit(self, request: Request) -> None:
        self._submitted.inc(kind=request.kind)

    def record_batch(self, size: int) -> None:
        self._batches.inc()
        self._batched_requests.inc(size)
        self._batch_size.observe(size)
        self._max_batch.set_max(size)
        if size > 1:
            self._coalesced_batches.inc()
            self._coalesced_requests.inc(size)

    def record_completed(self, count: int = 1) -> None:
        self._completed.inc(count)

    def record_failed(self, count: int = 1) -> None:
        if count:
            self._failed.inc(count)

    def record_rejected(self, count: int = 1) -> None:
        self._rejected.inc(count)

    def observe_execute(self, seconds: float) -> None:
        self._execute_seconds.observe(seconds)

    # -- read-only attribute surface (the pre-registry dataclass fields) -----

    @property
    def submitted(self) -> int:
        return int(self._submitted.total())

    @property
    def completed(self) -> int:
        return int(self._completed.value())

    @property
    def failed(self) -> int:
        return int(self._failed.value())

    @property
    def rejected(self) -> int:
        return int(self._rejected.value())

    @property
    def batches(self) -> int:
        return int(self._batches.value())

    @property
    def batched_requests(self) -> int:
        return int(self._batched_requests.value())

    @property
    def coalesced_batches(self) -> int:
        return int(self._coalesced_batches.value())

    @property
    def coalesced_requests(self) -> int:
        return int(self._coalesced_requests.value())

    @property
    def max_batch_size(self) -> int:
        return int(self._max_batch.value())

    @property
    def deadline_expired(self) -> int:
        return int(self._deadline_expired.value())

    @property
    def requests_by_kind(self) -> Dict[str, int]:
        return {key[0]: int(value) for key, value in self._submitted.items()}

    @property
    def mean_batch_size(self) -> float:
        batches = self.batches
        return self.batched_requests / batches if batches else 0.0

    @property
    def coalesce_ratio(self) -> float:
        """Fraction of batched requests that shared their engine call."""
        batched = self.batched_requests
        return self.coalesced_requests / batched if batched else 0.0

    def snapshot(self) -> Dict:
        """Plain-JSON view of the counters (the ``stats`` protocol reply).

        Everything is read live from the shared registry; includes the
        process-wide synthesis plan-cache counters
        (:func:`repro.engine.backends.plan_cache_stats`), queue depth,
        the coalesce ratio, the latency histograms and, when the service
        has them, the fast-tier cache and fabric dispatch counters.
        """
        queue_depth = self.registry.get("serve_queue_depth")
        queue_wait = self.registry.get("serve_queue_wait_seconds")
        coalesce_wait = self.registry.get("serving_coalesce_wait_seconds")
        snapshot = {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "deadline_expired": self.deadline_expired,
            "batches": self.batches,
            "coalesced_batches": self.coalesced_batches,
            "coalesced_requests": self.coalesced_requests,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": self.mean_batch_size,
            "coalesce_ratio": self.coalesce_ratio,
            "queue_depth": int(queue_depth.value()) if queue_depth else 0,
            "requests_by_kind": dict(self.requests_by_kind),
            "batch_size": self._batch_size.snapshot(),
            "queue_wait_seconds": (
                queue_wait.snapshot() if queue_wait is not None else None
            ),
            "coalesce_wait_seconds": (
                coalesce_wait.snapshot() if coalesce_wait is not None else None
            ),
            "execute_seconds": self._execute_seconds.snapshot(),
            "plan_cache": plan_cache_stats(),
        }
        if self.fast_cache is not None:
            snapshot["fast_tier"] = self.fast_cache.stats()
        if self.fabric is not None:
            snapshot["fabric"] = self.fabric.stats()
        return snapshot


class TRNGService:
    """Async facade over the batched engine with request coalescing.

    Parameters
    ----------
    config:
        The :class:`~repro.serving.config.ServiceConfig` naming every
        tunable (batching window, queue bound, overflow policy, backend,
        per-priority windows, fast tier).  ``None`` uses the defaults.

        The pre-config keyword form — ``TRNGService(max_batch=...,
        max_wait_ms=..., max_pending=..., overflow=..., backend=...)`` —
        still works through a shim that builds the equivalent config and
        emits a :class:`DeprecationWarning`.
    fast_cache:
        The fitted-campaign cache behind ``tier="fast"`` sigma^2_N requests
        (see :mod:`repro.serving.fast_tier`); pass an instance to tune the
        r^2 admission gate or share a cache across services.  Defaults to a
        fresh cache with the standard gate (``config.fast_tier=False``
        disables the tier entirely).
    fabric:
        A :class:`~repro.serving.fabric_dispatch.FabricDispatcher` to run
        coalesced batches on remote workers instead of a local thread.
        Results are bit-for-bit identical either way; the service does not
        own the dispatcher (close it yourself after :meth:`stop`).
    registry / spans:
        Observability injection points (a per-service
        :class:`~repro.obs.MetricsRegistry` and span collector by default).
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        fast_cache: Optional[FastTierCache] = None,
        fabric: Optional["FabricDispatcher"] = None,
        registry: Optional[MetricsRegistry] = None,
        spans: Optional[SpanCollector] = None,
        **legacy,
    ) -> None:
        if legacy:
            unknown = sorted(set(legacy) - set(_LEGACY_SERVICE_KWARGS))
            if unknown:
                raise TypeError(
                    f"TRNGService() got unexpected keyword arguments {unknown}"
                )
            if config is not None:
                raise TypeError(
                    "pass either a ServiceConfig or the legacy keyword "
                    f"arguments, not both (got {sorted(legacy)})"
                )
            warnings.warn(
                f"TRNGService({', '.join(sorted(legacy))}=...) keyword "
                f"arguments are deprecated; build a "
                f"repro.serving.ServiceConfig and pass it as the first "
                f"argument instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = ServiceConfig(**legacy)
        #: The immutable configuration this service was built from.
        self.config = config if config is not None else ServiceConfig()
        #: Per-service metrics registry — the queue, the stats view and the
        #: ``metrics`` protocol kind all read/write this one instance.
        self.registry = registry if registry is not None else MetricsRegistry("serving")
        #: Span collector the dispatch loop records ``serve.execute`` spans
        #: into (and fabric dispatch merges worker spans into).
        self.spans = spans if spans is not None else global_collector()
        self.queue = RequestQueue(
            max_pending=self.config.max_pending,
            overflow=self.config.overflow,
            metrics=self.registry,
        )
        self.coalescer = Coalescer(
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            class_wait_ms=self.config.class_waits or None,
            metrics=self.registry,
        )
        self.scatterer = Scatterer()
        if fast_cache is not None:
            self.fast_cache: Optional[FastTierCache] = fast_cache
        elif self.config.fast_tier:
            self.fast_cache = FastTierCache()
        else:
            self.fast_cache = None
        self.fabric = fabric
        self.stats = ServiceStats(
            fast_cache=self.fast_cache, fabric=fabric, registry=self.registry
        )
        self.backend = resolve_backend(self.config.backend)
        self._dispatch_task: Optional[asyncio.Task] = None

    @property
    def running(self) -> bool:
        return self._dispatch_task is not None and not self._dispatch_task.done()

    async def start(self) -> None:
        """Start the dispatch loop (idempotent; reopens a stopped queue)."""
        if not self.running:
            self.queue.reopen()
            self._dispatch_task = asyncio.create_task(
                self._dispatch_loop(), name="trng-service-dispatch"
            )

    async def stop(self) -> None:
        """Stop dispatching and fail everything still pending."""
        task, self._dispatch_task = self._dispatch_task, None
        if task is not None and not task.done():
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        stopped = ServiceStopped("TRNG service stopped")
        self.stats.record_failed(self.queue.drain(stopped))
        self.stats.record_failed(self.coalescer.drain(stopped))

    async def __aenter__(self) -> "TRNGService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def _dispatch_loop(self) -> None:
        while True:
            batch = await self.coalescer.next_batch(self.queue)
            self.stats.record_batch(len(batch))
            requests = [pending.request for pending in batch]
            run_batch = (
                self.fabric.execute_batch if self.fabric is not None else execute_batch
            )
            began = time.perf_counter()
            try:
                # The span is entered here (event loop context) and inherited
                # by the worker thread — asyncio.to_thread copies the calling
                # context, so fabric dispatch sees it as current_span() and
                # stamps its IDs into the wire messages.
                with span(
                    "serve.execute",
                    collector=self.spans,
                    requests=len(batch),
                    fabric=self.fabric is not None,
                ):
                    results = await asyncio.to_thread(
                        run_batch, requests, self.backend, self.fast_cache
                    )
            except asyncio.CancelledError:
                self.stats.record_failed(
                    self.scatterer.fail(batch, ServiceStopped("TRNG service stopped"))
                )
                raise
            except Exception as error:
                self.stats.record_failed(self.scatterer.fail(batch, error))
                continue
            self.stats.observe_execute(time.perf_counter() - began)
            self.stats.record_completed(self.scatterer.scatter(batch, results))

    async def submit(self, request: Request) -> asyncio.Future:
        """Low-level enqueue; prefer :meth:`get_bits` / :meth:`get_sigma2n`."""
        if not self.running:
            raise ServiceStopped("TRNG service is not running (call start())")
        try:
            future = await self.queue.submit(request)
        except Exception:
            self.stats.record_rejected()
            raise
        self.stats.record_submit(request)
        return future

    async def get_bits(self, request: Optional[BitsRequest] = None, **parameters):
        """Serve one bit request; returns its :class:`BitsResult`.

        Pass a prebuilt :class:`~repro.serving.requests.BitsRequest` or the
        dataclass fields as keyword arguments (``n_bits=..., divider=...``).
        """
        if request is None:
            request = BitsRequest(**parameters)
        elif parameters:
            raise TypeError("pass either a request object or keyword fields")
        result = await (await self.submit(request))
        assert isinstance(result, BitsResult)
        return result

    async def get_sigma2n(
        self, request: Optional[Sigma2NRequest] = None, **parameters
    ):
        """Serve one sigma^2_N request; returns its :class:`Sigma2NResult`."""
        if request is None:
            request = Sigma2NRequest(**parameters)
        elif parameters:
            raise TypeError("pass either a request object or keyword fields")
        result = await (await self.submit(request))
        assert isinstance(result, Sigma2NResult)
        return result
