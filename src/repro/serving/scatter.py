"""Batch execution and result scattering: one engine call, many futures.

:func:`execute_batch` is the worker-side bridge to the batched engine: it
takes one coalesced group of compatible requests, runs a **single**
``BatchedEROTRNG.generate_exact`` / ``batched_sigma2_n_campaign`` call with
one spawned RNG stream per request (row ``i`` = request ``i``'s own seed),
and returns per-request results in order.  The :class:`Scatterer` then
slices those results back onto the per-request futures.

Determinism: because every engine kernel is row-independent and row ``i``
consumes only request ``i``'s stream, slicing row ``i`` out of the batched
result is bit-for-bit the result of serving request ``i`` alone.  For bit
requests with heterogeneous ``n_bits`` the batch generates the group
maximum and each row keeps its prefix — the streaming sampler's fixed
synthesis-block grid guarantees a prefix never depends on how much further
the record was generated.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..engine.backends import BackendLike
from ..engine.batch import BatchedOscillatorEnsemble
from ..engine.bits import BatchedEROTRNG
from ..engine.campaign import batched_sigma2_n_campaign
from .queue import PendingRequest
from .requests import (
    BitsRequest,
    BitsResult,
    Request,
    Sigma2NRequest,
    Sigma2NResult,
)


#: Floor of the serving synthesis block [periods].  Small requests should
#: not pay for campaign-sized synthesis blocks.
SERVING_BLOCK_MIN_PERIODS = 128


def serving_synthesis_block(divider: int) -> int:
    """Synthesis block length the serving layer uses for bit requests.

    Deliberately a function of **group-key fields only** (the divider): the
    block length shapes the edge-time grid and the per-block RNG draw
    pattern, so deriving it from anything per-row (say, the batch's maximum
    ``n_bits``) would make a request's bits depend on its batch companions
    and break the solo/coalesced determinism contract.
    """
    return max(SERVING_BLOCK_MIN_PERIODS, 2 * int(divider))


def run_bits_batch(
    requests: Sequence[BitsRequest], backend: BackendLike = None
) -> List[BitsResult]:
    """Serve a compatible group of bit requests with one batched TRNG pass.

    ``backend`` selects the synthesis backend of the engine call (bit-for-bit
    equivalent across backends, so served bits never depend on it).
    """
    lead = requests[0]
    trng = BatchedEROTRNG(
        lead.configuration(),
        batch_size=len(requests),
        rngs=[request.generator() for request in requests],
        synthesis_block_periods=serving_synthesis_block(lead.divider),
        backend=backend,
    )
    bits = trng.generate_exact(max(request.n_bits for request in requests))
    return [
        BitsResult(
            bits=bits[row, : request.n_bits].copy(),
            seed=request.seed,
            divider=request.divider,
        )
        for row, request in enumerate(requests)
    ]


def run_sigma2n_batch(
    requests: Sequence[Sigma2NRequest], backend: BackendLike = None
) -> List[Sigma2NResult]:
    """Serve a compatible group of sigma^2_N requests with one batched campaign."""
    lead = requests[0]
    ensemble = BatchedOscillatorEnsemble.from_phase_noise(
        np.array([request.f0_hz for request in requests]),
        np.array([request.b_thermal_hz for request in requests]),
        np.array([request.b_flicker_hz2 for request in requests]),
        batch_size=len(requests),
        rngs=[request.generator() for request in requests],
        backend=backend,
        name="serving",
    )
    campaign = batched_sigma2_n_campaign(
        ensemble,
        lead.n_periods,
        n_sweep=lead.n_sweep,
        overlapping=lead.overlapping,
        min_realizations=lead.min_realizations,
    )
    table = campaign.table()
    return [
        Sigma2NResult(
            n_values=campaign.n_values.copy(),
            sigma2_s2=campaign.sigma2_s2[row].copy(),
            realization_counts=campaign.realization_counts.copy(),
            f0_hz=float(campaign.f0_hz[row]),
            b_thermal_hz=float(table["b_thermal_hz"][row]),
            b_flicker_hz2=float(table["b_flicker_hz2"][row]),
            r_squared=float(table["r_squared"][row]),
            thermal_jitter_std_s=float(table["thermal_jitter_std_s"][row]),
            seed=request.seed,
        )
        for row, request in enumerate(requests)
    ]


def execute_batch(requests: Sequence[Request], backend: BackendLike = None) -> List:
    """Run one coalesced batch on the engine (synchronous; worker-thread side)."""
    if not requests:
        return []
    if isinstance(requests[0], BitsRequest):
        return run_bits_batch(requests, backend=backend)
    return run_sigma2n_batch(requests, backend=backend)


class Scatterer:
    """Slices one batch's results back onto the per-request futures."""

    def scatter(self, batch: Sequence[PendingRequest], results: Sequence) -> int:
        """Resolve each pending future with its own result; returns #resolved.

        Futures whose callers went away (cancelled, disconnected) are
        skipped — their rows were computed but nobody is waiting.
        """
        if len(results) != len(batch):
            raise ValueError(
                f"batch produced {len(results)} results for {len(batch)} requests"
            )
        return sum(
            pending.resolve(result)
            for pending, result in zip(batch, results)
        )

    def fail(self, batch: Sequence[PendingRequest], error: BaseException) -> int:
        """Fail every pending future of a batch; returns the count."""
        return sum(pending.fail(error) for pending in batch)
