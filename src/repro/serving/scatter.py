"""Batch execution and result scattering: one engine call, many futures.

:func:`execute_batch` is the worker-side bridge to the batched engine: it
takes one coalesced group of compatible requests, runs a **single**
``BatchedEROTRNG.generate_exact`` / ``batched_sigma2_n_campaign`` call with
one spawned RNG stream per request (row ``i`` = request ``i``'s own seed),
and returns per-request results in order.  The :class:`Scatterer` then
slices those results back onto the per-request futures.

Determinism: because every engine kernel is row-independent and row ``i``
consumes only request ``i``'s stream, slicing row ``i`` out of the batched
result is bit-for-bit the result of serving request ``i`` alone.  For bit
requests with heterogeneous ``n_bits`` the batch generates the group
maximum and each row keeps its prefix — the streaming sampler's fixed
synthesis-block grid guarantees a prefix never depends on how much further
the record was generated.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..engine.backends import BackendLike
from ..engine.batch import BatchedOscillatorEnsemble
from ..engine.bits import BatchedEROTRNG
from ..engine.campaign import batched_sigma2_n_campaign
from .fast_tier import FastTierCache
from .queue import PendingRequest
from .requests import (
    BitsRequest,
    BitsResult,
    Request,
    Sigma2NRequest,
    Sigma2NResult,
)


#: Floor of the serving synthesis block [periods].  Small requests should
#: not pay for campaign-sized synthesis blocks.
SERVING_BLOCK_MIN_PERIODS = 128


def serving_synthesis_block(divider: int) -> int:
    """Synthesis block length the serving layer uses for bit requests.

    Deliberately a function of **group-key fields only** (the divider): the
    block length shapes the edge-time grid and the per-block RNG draw
    pattern, so deriving it from anything per-row (say, the batch's maximum
    ``n_bits``) would make a request's bits depend on its batch companions
    and break the solo/coalesced determinism contract.
    """
    return max(SERVING_BLOCK_MIN_PERIODS, 2 * int(divider))


def run_bits_batch(
    requests: Sequence[BitsRequest], backend: BackendLike = None
) -> List[BitsResult]:
    """Serve a compatible group of bit requests with one batched TRNG pass.

    ``backend`` selects the synthesis backend of the engine call (bit-for-bit
    equivalent across backends, so served bits never depend on it).
    """
    lead = requests[0]
    trng = BatchedEROTRNG(
        lead.configuration(),
        batch_size=len(requests),
        rngs=[request.generator() for request in requests],
        synthesis_block_periods=serving_synthesis_block(lead.divider),
        backend=backend,
    )
    bits = trng.generate_exact(max(request.n_bits for request in requests))
    return [
        BitsResult(
            bits=bits[row, : request.n_bits].copy(),
            seed=request.seed,
            divider=request.divider,
        )
        for row, request in enumerate(requests)
    ]


def run_sigma2n_batch(
    requests: Sequence[Sigma2NRequest],
    backend: BackendLike = None,
    fast_cache: Optional[FastTierCache] = None,
) -> List[Sigma2NResult]:
    """Serve a compatible group of sigma^2_N requests with one batched campaign.

    ``fast_cache`` enables the fast tier: a group of ``tier="fast"``
    requests is answered row-by-row from the fitted-campaign cache where
    possible (Eq. 11 theory interpolation, labeled ``tier="fast"``); the
    remaining rows run one exact batched campaign whose results seed the
    cache and are returned labeled ``tier="exact"``.  Exact-tier groups
    (and any group when no cache is supplied) always run the full campaign.
    """
    lead = requests[0]
    if fast_cache is not None and lead.tier == "fast":
        return _run_fast_tier_batch(requests, backend, fast_cache)
    ensemble = BatchedOscillatorEnsemble.from_phase_noise(
        np.array([request.f0_hz for request in requests]),
        np.array([request.b_thermal_hz for request in requests]),
        np.array([request.b_flicker_hz2 for request in requests]),
        batch_size=len(requests),
        rngs=[request.generator() for request in requests],
        backend=backend,
        name="serving",
    )
    campaign = batched_sigma2_n_campaign(
        ensemble,
        lead.n_periods,
        n_sweep=lead.n_sweep,
        overlapping=lead.overlapping,
        min_realizations=lead.min_realizations,
    )
    table = campaign.table()
    return [
        Sigma2NResult(
            n_values=campaign.n_values.copy(),
            sigma2_s2=campaign.sigma2_s2[row].copy(),
            realization_counts=campaign.realization_counts.copy(),
            f0_hz=float(campaign.f0_hz[row]),
            b_thermal_hz=float(table["b_thermal_hz"][row]),
            b_flicker_hz2=float(table["b_flicker_hz2"][row]),
            r_squared=float(table["r_squared"][row]),
            thermal_jitter_std_s=float(table["thermal_jitter_std_s"][row]),
            seed=request.seed,
        )
        for row, request in enumerate(requests)
    ]


def _run_fast_tier_batch(
    requests: Sequence[Sigma2NRequest],
    backend: BackendLike,
    fast_cache: FastTierCache,
) -> List[Sigma2NResult]:
    """Serve one fast-tier group: cache hits interpolate, misses compute."""
    results: List[Optional[Sigma2NResult]] = [None] * len(requests)
    miss_rows: List[int] = []
    for row, request in enumerate(requests):
        entry = fast_cache.lookup(request)
        if entry is not None:
            results[row] = fast_cache.serve(request, entry)
        else:
            miss_rows.append(row)
    if miss_rows:
        # One exact batched campaign over just the cold rows; its fits seed
        # the cache (subject to the r^2 admission gate) and the rows are
        # answered with the genuine computation, labeled exact.
        computed = run_sigma2n_batch(
            [requests[row] for row in miss_rows], backend=backend
        )
        for row, result in zip(miss_rows, computed):
            fast_cache.store(requests[row], result)
            results[row] = result
    return results


def execute_batch(
    requests: Sequence[Request],
    backend: BackendLike = None,
    fast_cache: Optional[FastTierCache] = None,
) -> List:
    """Run one coalesced batch on the engine (synchronous; worker-thread side)."""
    if not requests:
        return []
    if isinstance(requests[0], BitsRequest):
        return run_bits_batch(requests, backend=backend)
    return run_sigma2n_batch(requests, backend=backend, fast_cache=fast_cache)


class Scatterer:
    """Slices one batch's results back onto the per-request futures."""

    def scatter(self, batch: Sequence[PendingRequest], results: Sequence) -> int:
        """Resolve each pending future with its own result; returns #resolved.

        Futures whose callers went away (cancelled, disconnected) are
        skipped — their rows were computed but nobody is waiting.
        """
        if len(results) != len(batch):
            raise ValueError(
                f"batch produced {len(results)} results for {len(batch)} requests"
            )
        return sum(
            pending.resolve(result)
            for pending, result in zip(batch, results)
        )

    def fail(self, batch: Sequence[PendingRequest], error: BaseException) -> int:
        """Fail every pending future of a batch; returns the count."""
        return sum(pending.fail(error) for pending in batch)
