"""The fast tier: sigma^2_N aggregate queries served from fitted campaigns.

A ``sigma2n`` request is an *aggregate* query — the client wants the
variance curve and its Eq. 11 fit, not any particular realization of the
underlying jitter.  Two requests that agree on every physical and sweep
parameter and differ only in their seed are therefore asking for two noisy
estimates of the **same** underlying curve.  The exact tier honours the
per-seed contract (every seed gets its own campaign, bit-for-bit
reproducible); the fast tier trades that for latency: the first request
with a given parameter key pays for one exact campaign, and subsequent
requests are answered immediately with the Eq. 11 theory curve

    sigma^2_N = 2 b_th N / f0^3  +  8 ln2 b_fl N^2 / f0^4

evaluated at that campaign's *fitted* coefficients over the same ``N``
sweep (paper Eq. 11 — the curve the exact estimate converges to).

Accuracy contract
-----------------
A campaign is only admitted to the cache when its Eq. 11 fit explains the
measured curve well (``r_squared >= min_r_squared``, default 0.95); poorly
fitted campaigns — too few realizations, degenerate sweeps — are served but
never cached, so a fast answer is always backed by a statistically
consistent fit.  Responses are explicitly labeled: ``tier="fast"`` marks a
cache-backed interpolation, while a cold miss returns the exact computation
it seeded the cache with (labeled ``tier="exact"``), so clients can always
tell what they received.

Requests opt in per call (``Sigma2NRequest(tier="fast")``); the default
tier is exact and its served bytes are unchanged by this module.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.theory import sigma2_n_flicker, sigma2_n_thermal
from .requests import Sigma2NRequest, Sigma2NResult

#: Default admission gate: minimum Eq. 11 fit quality of a cached campaign.
DEFAULT_MIN_R_SQUARED = 0.95

#: Default maximum number of cached fitted campaigns.
DEFAULT_FAST_CACHE_SIZE = 256

#: The request tiers a :class:`Sigma2NRequest` may ask for.
SIGMA2N_TIERS = ("exact", "fast")


@dataclass(frozen=True)
class FittedCampaignEntry:
    """One cached exact campaign: its sweep, fit and provenance."""

    n_values: np.ndarray
    realization_counts: np.ndarray
    f0_hz: float
    b_thermal_hz: float
    b_flicker_hz2: float
    r_squared: float
    thermal_jitter_std_s: float
    source_seed: int


def _request_key(request: Sigma2NRequest) -> Tuple:
    """Every parameter that shapes the underlying curve — all but the seed."""
    return (
        int(request.n_periods),
        float(request.f0_hz),
        float(request.b_thermal_hz),
        float(request.b_flicker_hz2),
        request.n_sweep,
        bool(request.overlapping),
        int(request.min_realizations),
    )


def _frozen(array: np.ndarray) -> np.ndarray:
    array = np.asarray(array).copy()
    array.setflags(write=False)
    return array


class FastTierCache:
    """LRU cache of fitted exact campaigns keyed on curve parameters.

    Thread-safe (entries are looked up from serving worker threads);
    counters mirror the plan cache's and surface through ``ServiceStats``.
    """

    def __init__(
        self,
        min_r_squared: float = DEFAULT_MIN_R_SQUARED,
        maxsize: int = DEFAULT_FAST_CACHE_SIZE,
    ) -> None:
        if not 0.0 <= min_r_squared <= 1.0:
            raise ValueError(
                f"min_r_squared must be in [0, 1], got {min_r_squared!r}"
            )
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize!r}")
        self.min_r_squared = float(min_r_squared)
        self.maxsize = int(maxsize)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, FittedCampaignEntry]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._rejected = 0

    def lookup(self, request: Sigma2NRequest) -> Optional[FittedCampaignEntry]:
        """The cached fitted campaign for this request's curve, if any."""
        key = _request_key(request)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._hits += 1
            self._entries.move_to_end(key)
            return entry

    def store(self, request: Sigma2NRequest, result: Sigma2NResult) -> bool:
        """Admit an exact result's fit; returns False when the gate rejects it."""
        if not (result.r_squared >= self.min_r_squared):
            with self._lock:
                self._rejected += 1
            return False
        entry = FittedCampaignEntry(
            n_values=_frozen(result.n_values),
            realization_counts=_frozen(result.realization_counts),
            f0_hz=float(result.f0_hz),
            b_thermal_hz=float(result.b_thermal_hz),
            b_flicker_hz2=float(result.b_flicker_hz2),
            r_squared=float(result.r_squared),
            thermal_jitter_std_s=float(result.thermal_jitter_std_s),
            source_seed=int(result.seed),
        )
        key = _request_key(request)
        with self._lock:
            if self.maxsize == 0:
                return False
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
        return True

    def serve(
        self, request: Sigma2NRequest, entry: FittedCampaignEntry
    ) -> Sigma2NResult:
        """Answer a hit: the Eq. 11 theory curve at the entry's fitted fit."""
        n_values = np.asarray(entry.n_values, dtype=float)
        sigma2 = np.asarray(
            sigma2_n_thermal(entry.b_thermal_hz, entry.f0_hz, n_values)
        ) + np.asarray(sigma2_n_flicker(entry.b_flicker_hz2, entry.f0_hz, n_values))
        return Sigma2NResult(
            n_values=entry.n_values.copy(),
            sigma2_s2=sigma2,
            realization_counts=entry.realization_counts.copy(),
            f0_hz=entry.f0_hz,
            b_thermal_hz=entry.b_thermal_hz,
            b_flicker_hz2=entry.b_flicker_hz2,
            r_squared=entry.r_squared,
            thermal_jitter_std_s=entry.thermal_jitter_std_s,
            seed=request.seed,
            tier="fast",
        )

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (surfaced in ``ServiceStats.snapshot()``)."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "rejected": self._rejected,
                "size": len(self._entries),
                "maxsize": self.maxsize,
            }

    def clear(self) -> None:
        """Drop every entry and zero the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = self._rejected = 0
