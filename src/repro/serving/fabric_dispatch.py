"""Fabric-backed serving dispatch: coalesced batches on remote workers.

:class:`FabricDispatcher` is the serving half of the multi-host fabric: a
:class:`~repro.serving.service.TRNGService` built with one forwards each
coalesced batch as a single ``batch`` protocol message to a fabric worker
(``python -m repro.worker``) instead of running the engine call on a local
thread.  Round-robin spreads groups across the fleet; a dead worker is
retired and its batch retried on the next one; when the whole fleet is gone
the dispatcher falls back to local execution — requests never fail because
the fabric did.

Determinism: the wire payload carries every request's pinned seed, the
worker rebuilds the identical typed requests and runs the same
``execute_batch`` bridge, so served results are **bit-for-bit identical** to
local dispatch (enforced by ``tests/serving/test_fabric_dispatch.py``).

Fast-tier sigma^2_N groups are served locally: the fitted-campaign cache
lives in the coordinator process, and a cache hit is already cheaper than a
network round-trip.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from ..engine.distributed.fabric.connection import (
    WorkerLink,
    WorkerUnavailable,
    connect_workers,
)
from ..obs import SpanCollector, context_to_wire, current_span, global_collector
from .fast_tier import FastTierCache
from .protocol import payload_to_result, request_to_payload
from .requests import Request, Sigma2NRequest
from .scatter import execute_batch


class FabricDispatcher:
    """Round-robin batch forwarding to fabric workers, with local fallback.

    Parameters
    ----------
    workers:
        Connected :class:`WorkerLink` instances (the dispatcher takes
        ownership: :meth:`close` closes them and terminates spawned ones).
    request_timeout:
        Wall-clock bound for one forwarded batch; exceeding it retires the
        worker and retries elsewhere.
    fallback_local:
        Serve locally when no worker is left (default).  ``False`` raises
        :class:`WorkerUnavailable` instead — for tests and strict setups.
    """

    def __init__(
        self,
        workers: Sequence[WorkerLink],
        request_timeout: float = 120.0,
        fallback_local: bool = True,
        spans: Optional[SpanCollector] = None,
    ) -> None:
        if not workers:
            raise ValueError("FabricDispatcher needs at least one worker")
        self.workers: List[WorkerLink] = list(workers)
        self.request_timeout = float(request_timeout)
        self.fallback_local = bool(fallback_local)
        #: Where worker-side ``worker.batch`` spans (shipped back in the
        #: reply envelopes) are merged; defaults to the process collector —
        #: the same place the service's ``serve.execute`` spans land, so the
        #: combined tree shows which host ran each forwarded batch.
        self.spans = spans if spans is not None else global_collector()
        self._lock = threading.Lock()
        self._cursor = 0
        self._sequence = 0
        self.remote_batches = 0
        self.local_batches = 0
        self.failovers = 0
        self.retired: List[str] = []

    @classmethod
    def from_endpoints(
        cls,
        remote: Sequence[str] = (),
        spawn: int = 0,
        backend: Optional[str] = None,
        connect_timeout: float = 10.0,
        **kwargs,
    ) -> "FabricDispatcher":
        """Build a dispatcher from ``host:port`` endpoints + spawn count."""
        links = connect_workers(
            remote, spawn, backend=backend, connect_timeout=connect_timeout
        )
        return cls(links, **kwargs)

    # -- dispatch ------------------------------------------------------------

    def _next_worker(self) -> Optional[WorkerLink]:
        with self._lock:
            if not self.workers:
                return None
            self._cursor %= len(self.workers)
            worker = self.workers[self._cursor]
            self._cursor += 1
            return worker

    def _retire(self, worker: WorkerLink, error: Exception) -> None:
        with self._lock:
            if worker in self.workers:
                self.workers.remove(worker)
                self.retired.append(f"{worker.name}: {error}")
        worker.close(kill=True)

    def _forward(self, worker: WorkerLink, payloads: List[Dict]) -> List:
        with self._lock:
            self._sequence += 1
            wire_id = self._sequence
        message = {"id": wire_id, "kind": "batch", "requests": payloads}
        # execute_batch runs on the service's dispatch thread, inside its
        # ``serve.execute`` span (asyncio.to_thread copies the context), so
        # the worker's spans parent under the request that caused them.
        trace = context_to_wire(current_span())
        if trace is not None:
            message["trace"] = trace
        worker.send(message)
        reply = worker.receive(timeout=self.request_timeout)
        if reply is None:
            raise WorkerUnavailable(
                f"worker {worker.name} did not answer a batch within "
                f"{self.request_timeout:.0f}s"
            )
        if not reply.get("ok"):
            # A worker-side engine failure is a *request* problem, not a
            # connection problem: surface it to the callers rather than
            # burning through the fleet retrying a poisoned batch.
            raise RuntimeError(
                f"fabric worker {worker.name} failed the batch: "
                f"{reply.get('error')}"
            )
        result = reply.get("result") or {}
        if result.get("kind") != "batch":
            raise WorkerUnavailable(
                f"worker {worker.name} sent an unexpected reply "
                f"({result.get('kind')!r}) to a batch"
            )
        self.spans.ingest(result.get("spans"))
        return [payload_to_result(item) for item in result["results"]]

    def execute_batch(
        self,
        requests: Sequence[Request],
        backend=None,
        fast_cache: Optional[FastTierCache] = None,
    ) -> List:
        """Serve one coalesced group — remote when possible, local otherwise.

        Drop-in signature-compatible with
        :func:`repro.serving.scatter.execute_batch`, which is also the
        fallback path (same engine bridge, bit-identical results).
        """
        if not requests:
            return []
        lead = requests[0]
        if (
            isinstance(lead, Sigma2NRequest)
            and lead.tier == "fast"
            and fast_cache is not None
        ):
            # The fast-tier cache is coordinator-local state.
            self.local_batches += 1
            return execute_batch(requests, backend=backend, fast_cache=fast_cache)
        payloads = [request_to_payload(request) for request in requests]
        attempts = len(self.workers)
        for _ in range(attempts):
            worker = self._next_worker()
            if worker is None:
                break
            try:
                results = self._forward(worker, payloads)
            except WorkerUnavailable as error:
                self._retire(worker, error)
                with self._lock:
                    self.failovers += 1
                continue
            self.remote_batches += 1
            return results
        if not self.fallback_local:
            raise WorkerUnavailable("no live fabric workers for this batch")
        self.local_batches += 1
        return execute_batch(requests, backend=backend, fast_cache=fast_cache)

    # -- lifecycle / stats ---------------------------------------------------

    def close(self) -> None:
        """Close every link; spawned workers are terminated."""
        with self._lock:
            workers, self.workers = self.workers, []
        for worker in workers:
            try:
                if worker.connected:
                    worker.send({"id": "shutdown", "kind": "shutdown"})
            except WorkerUnavailable:
                pass
            worker.close(kill=True)

    def __enter__(self) -> "FabricDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> Dict:
        """Plain-JSON dispatch counters (surfaced in ``ServiceStats``)."""
        with self._lock:
            return {
                "workers": [worker.name for worker in self.workers],
                "remote_batches": self.remote_batches,
                "local_batches": self.local_batches,
                "failovers": self.failovers,
                "retired": list(self.retired),
            }
