"""Typed serving requests: what one client asks the batched engine for.

A request is the serving-layer analogue of a campaign spec
(:mod:`repro.engine.distributed.spec`): a frozen dataclass of plain numbers
with **seed closure** — a ``seed`` of ``None`` pins fresh ``SeedSequence``
entropy at construction, so one request instance always describes one
reproducible computation.

Determinism contract
--------------------
Each request derives its engine RNG stream from its *own* seed alone
(:meth:`BitsRequest.generator` is ``spawn_generators(seed, 1)[0]``), never
from its position in a batch.  Because batched engine row ``i`` is
bit-for-bit the scalar instance built from the same per-row generator (the
engine's seeding discipline, proven by ``tests/engine``), a request's result
is **identical whether it is served solo or coalesced** with any other
requests, in any order, under any ``max_batch``.

Coalescing compatibility
------------------------
:meth:`group_key` names the parameters that select *shared* computation —
the single ``BatchedEROTRNG`` configuration for bit requests, the shared
``N`` sweep and record length for sigma^2_N requests.  Requests with equal
group keys can ride in one batched engine call; per-row parameters (a bit
request's ``n_bits``, a sigma^2_N request's noise coefficients) may differ
within a group because the engine handles them row-wise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..engine.batch import spawn_generators
from ..engine.distributed.spec import DEFAULT_B_FLICKER_HZ2, fresh_entropy
from ..engine.rng import resolve_rng_contract
from ..paper import PAPER_B_THERMAL_HZ, PAPER_F0_HZ

GroupKey = Tuple

#: Scheduling classes, most urgent first.  ``interactive`` requests shrink
#: the coalescing window they ride in, ``batch`` requests stretch it (see
#: :class:`repro.serving.coalescer.Coalescer`); the class never changes the
#: served result, only when its engine call is dispatched.
PRIORITIES = ("interactive", "normal", "batch")


def _check_scheduling(request) -> None:
    """Validate the scheduling fields shared by every request kind.

    ``priority`` and ``deadline_ms`` steer *when* a request is dispatched,
    never *what* it computes, so they are deliberately excluded from
    :meth:`group_key` — requests of different classes still coalesce.
    """
    if request.priority not in PRIORITIES:
        raise ValueError(
            f"priority must be one of {PRIORITIES}, got {request.priority!r}"
        )
    if request.deadline_ms is not None:
        deadline = float(request.deadline_ms)
        if not deadline > 0.0:
            raise ValueError(
                f"deadline_ms must be > 0 (or None), got {request.deadline_ms!r}"
            )
        object.__setattr__(request, "deadline_ms", deadline)


def _pin_seed(request) -> None:
    if request.seed is None:
        object.__setattr__(request, "seed", fresh_entropy())
    else:
        object.__setattr__(request, "seed", int(request.seed))
    # Pin the stream contract alongside the seed: a request answered later
    # (or on a remote worker with a different environment) must derive the
    # same draws it would have at submission time.
    object.__setattr__(
        request, "rng_contract", resolve_rng_contract(request.rng_contract)
    )


def _as_count(request, name: str) -> None:
    """Normalize an integer field, rejecting non-integral values loudly."""
    value = getattr(request, name)
    if isinstance(value, float) and not value.is_integer():
        raise ValueError(f"{name} must be an integer, got {value!r}")
    object.__setattr__(request, name, int(value))


@dataclass(frozen=True)
class BitsRequest:
    """One client's ask for ``n_bits`` raw TRNG bits from an eRO-TRNG.

    ``divider`` and the design parameters (``f0_hz``, per-oscillator noise
    coefficients, ``frequency_mismatch``) select the shared batched TRNG
    configuration, so they are part of the coalescing group key; ``n_bits``
    is per-row (a coalesced batch generates the group maximum and each row
    is sliced to its own length — a prefix of a streaming bit record does
    not depend on how far past it the record was generated).
    """

    n_bits: int
    divider: int = 512
    seed: Optional[int] = None
    f0_hz: float = PAPER_F0_HZ
    # Per-oscillator coefficients: half of the paper's relative (pair) values.
    b_thermal_hz: float = PAPER_B_THERMAL_HZ / 2.0
    b_flicker_hz2: float = DEFAULT_B_FLICKER_HZ2 / 2.0
    frequency_mismatch: float = 1e-3
    #: RNG stream contract (``"spawn"`` | ``"philox"``; ``None`` resolves
    #: and pins the process default at construction).  Changes the served
    #: bits, so it is part of the group key.
    rng_contract: Optional[str] = None
    #: Scheduling class (see :data:`PRIORITIES`); never part of the group key.
    priority: str = "normal"
    #: Latency budget [ms] from submission; expired requests fail fast with
    #: :class:`~repro.serving.queue.DeadlineExceeded` instead of running.
    deadline_ms: Optional[float] = None
    kind: str = field(default="bits", init=False)

    def __post_init__(self) -> None:
        _as_count(self, "n_bits")
        _as_count(self, "divider")
        if self.n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {self.n_bits!r}")
        if self.divider < 1:
            raise ValueError(f"divider must be >= 1, got {self.divider!r}")
        _check_scheduling(self)
        _pin_seed(self)
        self.configuration()  # validate f0/mismatch eagerly

    def group_key(self) -> GroupKey:
        """Parameters that must match for two requests to share an engine call."""
        return (
            self.kind,
            self.divider,
            float(self.f0_hz),
            float(self.b_thermal_hz),
            float(self.b_flicker_hz2),
            float(self.frequency_mismatch),
            self.rng_contract,
        )

    def generator(self) -> np.random.Generator:
        """This request's engine RNG stream, derived from its seed alone."""
        return spawn_generators(self.seed, 1, rng_contract=self.rng_contract)[0]

    def configuration(self, divider: Optional[int] = None):
        """The :class:`~repro.trng.ero_trng.EROTRNGConfiguration` to serve."""
        from ..phase.psd import PhaseNoisePSD
        from ..trng.ero_trng import EROTRNGConfiguration

        return EROTRNGConfiguration(
            f0_hz=float(self.f0_hz),
            oscillator_psd=PhaseNoisePSD(
                b_thermal_hz=float(self.b_thermal_hz),
                b_flicker_hz2=float(self.b_flicker_hz2),
            ),
            divider=int(self.divider if divider is None else divider),
            frequency_mismatch=float(self.frequency_mismatch),
        )


@dataclass(frozen=True)
class Sigma2NRequest:
    """One client's ask for a sigma^2_N curve (+ Eq. 11 fit) of one oscillator.

    The record length and sweep parameters shape the shared batched campaign
    (one ``N`` sweep per engine call), so they form the group key; the noise
    coefficients are per-row — a coalesced batch may mix technology corners.

    ``tier`` selects the latency tier: ``"exact"`` (default) always runs a
    fresh per-seed campaign; ``"fast"`` may be answered from the serving
    layer's fitted-campaign cache with the Eq. 11 theory curve (see
    :mod:`repro.serving.fast_tier` for the accuracy contract).  The tier is
    part of the group key so fast and exact traffic never coalesce.
    """

    n_periods: int
    seed: Optional[int] = None
    f0_hz: float = PAPER_F0_HZ
    # Relative (oscillator-pair) coefficients, as in Sigma2NCampaignSpec.
    b_thermal_hz: float = PAPER_B_THERMAL_HZ
    b_flicker_hz2: float = DEFAULT_B_FLICKER_HZ2
    n_sweep: Optional[Tuple[int, ...]] = None
    overlapping: bool = True
    min_realizations: int = 8
    tier: str = "exact"
    #: RNG stream contract (``"spawn"`` | ``"philox"``; ``None`` resolves
    #: and pins the process default at construction).  Changes the served
    #: curve, so it is part of the group key.
    rng_contract: Optional[str] = None
    #: Scheduling class (see :data:`PRIORITIES`); never part of the group key.
    priority: str = "normal"
    #: Latency budget [ms] from submission; expired requests fail fast with
    #: :class:`~repro.serving.queue.DeadlineExceeded` instead of running.
    deadline_ms: Optional[float] = None
    kind: str = field(default="sigma2n", init=False)

    def __post_init__(self) -> None:
        _as_count(self, "n_periods")
        _as_count(self, "min_realizations")
        if self.n_periods < 1:
            raise ValueError(f"n_periods must be >= 1, got {self.n_periods!r}")
        if self.min_realizations < 1:
            raise ValueError("min_realizations must be >= 1")
        if self.tier not in ("exact", "fast"):
            raise ValueError(
                f"tier must be 'exact' or 'fast', got {self.tier!r}"
            )
        _check_scheduling(self)
        _pin_seed(self)
        if self.n_sweep is not None:
            sweep = tuple(int(n) for n in self.n_sweep)
            if not sweep or min(sweep) < 1:
                raise ValueError("n_sweep must contain integers >= 1")
            object.__setattr__(self, "n_sweep", sweep)

    def group_key(self) -> GroupKey:
        """Parameters that must match for two requests to share an engine call."""
        return (
            self.kind,
            self.tier,
            self.n_periods,
            self.n_sweep,
            self.overlapping,
            self.min_realizations,
            self.rng_contract,
        )

    def generator(self) -> np.random.Generator:
        """This request's engine RNG stream, derived from its seed alone."""
        return spawn_generators(self.seed, 1, rng_contract=self.rng_contract)[0]


Request = BitsRequest | Sigma2NRequest


@dataclass(frozen=True)
class BitsResult:
    """Served bits of one :class:`BitsRequest` (``bits`` is 1-D ``int8``)."""

    bits: np.ndarray
    seed: int
    divider: int

    @property
    def n_bits(self) -> int:
        return int(self.bits.size)


@dataclass(frozen=True)
class Sigma2NResult:
    """Served curve and fit of one :class:`Sigma2NRequest`.

    ``tier`` labels what was actually served: ``"exact"`` is a freshly run
    per-seed campaign (including the cold-miss fill of a fast request);
    ``"fast"`` is an Eq. 11 theory-curve interpolation from the
    fitted-campaign cache.
    """

    n_values: np.ndarray
    sigma2_s2: np.ndarray
    realization_counts: np.ndarray
    f0_hz: float
    b_thermal_hz: float
    b_flicker_hz2: float
    r_squared: float
    thermal_jitter_std_s: float
    seed: int
    tier: str = "exact"
