"""Async serving layer: many small client requests, full engine batches.

The serving subsystem fronts the batched engine (:mod:`repro.engine`) with
an asyncio request pipeline::

    clients -> RequestQueue -> Coalescer -> [one batched engine call]
                                        -> Scatterer -> per-request futures

Many concurrent callers each asking for a few bits (or one sigma^2_N sweep)
are **coalesced** into single ``BatchedEROTRNG.generate_exact`` /
``batched_sigma2_n_campaign`` calls, so the ``(B, n)`` vectorized kernels
run at full batch width even under small-request traffic.  Every request
carries its own seed and derives its engine RNG stream from it alone, so a
request's result is bit-for-bit identical whether it was served solo or
coalesced — the serving-layer form of the engine's shard-invariance
contract.

Run a server with ``python -m repro.serve`` (see :mod:`repro.serve`).
"""

from .coalescer import Coalescer
from .fabric_dispatch import FabricDispatcher
from .fast_tier import FastTierCache, FittedCampaignEntry
from .queue import (
    PendingRequest,
    RequestQueue,
    ServiceOverloaded,
    ServiceStopped,
)
from .requests import (
    BitsRequest,
    BitsResult,
    Sigma2NRequest,
    Sigma2NResult,
)
from .scatter import Scatterer, execute_batch
from .server import TRNGServer, run_self_test, serve_stdio
from .service import ServiceStats, TRNGService

__all__ = [
    "BitsRequest",
    "BitsResult",
    "Coalescer",
    "FabricDispatcher",
    "FastTierCache",
    "FittedCampaignEntry",
    "PendingRequest",
    "RequestQueue",
    "Scatterer",
    "ServiceOverloaded",
    "ServiceStats",
    "ServiceStopped",
    "Sigma2NRequest",
    "Sigma2NResult",
    "TRNGServer",
    "TRNGService",
    "execute_batch",
    "run_self_test",
    "serve_stdio",
]
