"""Async serving layer: many small client requests, full engine batches.

The serving subsystem fronts the batched engine (:mod:`repro.engine`) with
an asyncio request pipeline::

    clients -> RequestQueue -> Coalescer -> [one batched engine call]
                                        -> Scatterer -> per-request futures

Many concurrent callers each asking for a few bits (or one sigma^2_N sweep)
are **coalesced** into single ``BatchedEROTRNG.generate_exact`` /
``batched_sigma2_n_campaign`` calls, so the ``(B, n)`` vectorized kernels
run at full batch width even under small-request traffic.  Every request
carries its own seed and derives its engine RNG stream from it alone, so a
request's result is bit-for-bit identical whether it was served solo or
coalesced — the serving-layer form of the engine's shard-invariance
contract.

Run a server with ``python -m repro.serve`` (see :mod:`repro.serve`).
"""

from .coalescer import DEFAULT_CLASS_WAIT_FACTORS, Coalescer
from .config import ServiceConfig
from .fabric_dispatch import FabricDispatcher
from .fast_tier import FastTierCache, FittedCampaignEntry
from .http import (
    HTTPGateway,
    SessionManager,
    StreamSession,
    run_http_self_test,
)
from .protocol import ERROR_CODES, PROTOCOL_VERSION, ProtocolError
from .queue import (
    DeadlineExceeded,
    PendingRequest,
    RequestQueue,
    ServiceOverloaded,
    ServiceStopped,
)
from .requests import (
    PRIORITIES,
    BitsRequest,
    BitsResult,
    Sigma2NRequest,
    Sigma2NResult,
)
from .scatter import Scatterer, execute_batch
from .server import TRNGServer, run_self_test, serve_stdio
from .service import ServiceStats, TRNGService

__all__ = [
    "BitsRequest",
    "BitsResult",
    "Coalescer",
    "DEFAULT_CLASS_WAIT_FACTORS",
    "DeadlineExceeded",
    "ERROR_CODES",
    "FabricDispatcher",
    "FastTierCache",
    "FittedCampaignEntry",
    "HTTPGateway",
    "PRIORITIES",
    "PROTOCOL_VERSION",
    "PendingRequest",
    "ProtocolError",
    "RequestQueue",
    "Scatterer",
    "ServiceConfig",
    "ServiceOverloaded",
    "ServiceStats",
    "ServiceStopped",
    "SessionManager",
    "Sigma2NRequest",
    "Sigma2NResult",
    "StreamSession",
    "TRNGServer",
    "TRNGService",
    "execute_batch",
    "run_http_self_test",
    "run_self_test",
    "serve_stdio",
]
