"""Asyncio front-ends for the TRNG service: TCP (JSON-lines) and stdio.

:class:`TRNGServer` speaks the :mod:`repro.serving.protocol` over TCP with
full pipelining: every request line becomes its own task, so many requests
from one connection (or many connections) land in the coalescing window
together — which is the whole point of the serving layer.  Responses carry
the request ``id`` so clients can match them out of order.

:func:`run_self_test` is the CI smoke: it spawns a real server on an
ephemeral port, fires concurrent requests from real sockets, then proves
(a) coalescing actually happened (``max_batch_size > 1``) and (b) every
response is **bit-for-bit** what serving that request solo produces.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
from typing import Callable, Dict, Optional

import numpy as np

from ..obs import global_registry, json_snapshot, render_prometheus
from .config import ServiceConfig
from .protocol import (
    WORKER_ONLY_KINDS,
    ProtocolError,
    build_request,
    error_envelope,
    parse_request_payload,
    response_envelope,
    result_to_payload,
    string_to_bits,
)
from .queue import DeadlineExceeded, ServiceOverloaded, ServiceStopped
from .requests import BitsRequest
from .scatter import run_bits_batch
from .service import TRNGService

SeedFactory = Optional[Callable[[], int]]

#: Per-line stream buffer limit [bytes].  Large sigma2n sweeps fit easily;
#: anything longer gets an error response instead of a dead connection.
MAX_LINE_BYTES = 1 << 20


def seed_stream(root_seed: Optional[int]) -> SeedFactory:
    """Seed factory for requests that arrive without one.

    With a ``root_seed`` the assigned seeds are a deterministic function of
    the root and the *arrival order* of unseeded requests (reproducible
    service runs); with ``None`` each unseeded request pins its own fresh
    entropy instead.
    """
    if root_seed is None:
        return None
    rng = np.random.default_rng(int(root_seed))
    return lambda: int(rng.integers(0, 2**63))


async def serve_envelope(
    service: TRNGService, payload, default_seed: SeedFactory = None
) -> tuple:
    """Serve one request envelope; returns ``(request_id, response_dict)``.

    This is the transport-independent core every edge shares: the TCP and
    stdio servers pass a decoded line, the HTTP gateway passes a parsed
    request body, and all of them get back the identical versioned response
    envelope (never raises — failures become error envelopes with a stable
    ``code``).
    """
    request_id = None
    try:
        if isinstance(payload, str):
            request_id, kind, fields = parse_request_payload(
                _decode_line(payload)
            )
        else:
            request_id, kind, fields = parse_request_payload(payload)
        if kind in WORKER_ONLY_KINDS:
            return request_id, error_envelope(
                request_id,
                f"request kind {kind!r} is only served by fabric workers "
                f"(python -m repro.worker), not the public serving front end",
                code="worker_only",
            )
        if kind == "ping":
            return request_id, response_envelope(
                request_id, {"kind": "ping", "pong": True}
            )
        if kind == "stats":
            stats = dict(service.stats.snapshot())
            stats["kind"] = "stats"
            return request_id, response_envelope(request_id, stats)
        if kind == "metrics":
            # Scrape surface: the service's own registry merged with the
            # process-wide one (kernel timings, plan-cache counters).
            registries = (service.registry, global_registry())
            fmt = fields.get("format", "json")
            if fmt == "prometheus":
                result = {
                    "kind": "metrics",
                    "format": "prometheus",
                    "text": render_prometheus(*registries),
                }
            elif fmt == "json":
                result = {
                    "kind": "metrics",
                    "format": "json",
                    "metrics": json_snapshot(*registries),
                }
            else:
                raise ProtocolError(
                    f"unknown metrics format {fmt!r} "
                    f"(expected 'json' or 'prometheus')",
                    request_id=request_id,
                )
            return request_id, response_envelope(request_id, result)
        request = build_request(kind, fields, default_seed=default_seed)
        result = await (await service.submit(request))
        return request_id, response_envelope(request_id, result_to_payload(result))
    except ProtocolError as error:
        if error.request_id is not None:
            request_id = error.request_id
        return request_id, error_envelope(request_id, str(error), code=error.code)
    except ServiceOverloaded as error:
        return request_id, error_envelope(
            request_id, f"overloaded: {error}", code="overloaded"
        )
    except DeadlineExceeded as error:
        return request_id, error_envelope(
            request_id, f"deadline exceeded: {error}", code="deadline_exceeded"
        )
    except ServiceStopped as error:
        return request_id, error_envelope(
            request_id, f"stopped: {error}", code="stopped"
        )
    except Exception as error:  # engine-side failures stay on this envelope
        return request_id, error_envelope(
            request_id, f"internal error: {error}", code="internal"
        )


def _decode_line(line: str):
    try:
        return json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"invalid JSON: {error}") from None


async def handle_request_line(
    service: TRNGService, line: str, default_seed: SeedFactory = None
) -> str:
    """Serve one wire line; always returns a response line (never raises)."""
    _, response = await serve_envelope(service, line, default_seed)
    return json.dumps(response) + "\n"


class TRNGServer:
    """JSON-lines TCP server in front of one :class:`TRNGService`."""

    def __init__(
        self,
        service: TRNGService,
        host: str = "127.0.0.1",
        port: int = 0,
        default_seed: SeedFactory = None,
    ) -> None:
        self.service = service
        self.host = host
        self._requested_port = int(port)
        self._default_seed = default_seed
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle_client,
                self.host,
                self._requested_port,
                limit=MAX_LINE_BYTES,
            )

    async def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    async def serve_forever(self) -> None:
        await self.start()
        await self._server.serve_forever()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks = set()

        async def respond(line: str) -> None:
            response = await handle_request_line(
                self.service, line, self._default_seed
            )
            try:
                async with write_lock:
                    writer.write(response.encode())
                    await writer.drain()
            except (ConnectionError, BrokenPipeError):
                pass  # client went away; its batch row is simply dropped

        try:
            while True:
                try:
                    raw = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break  # abrupt client disconnect mid-line
                except ValueError:
                    # Line exceeded the stream limit.  The buffer is no
                    # longer line-aligned, so answer and close cleanly
                    # rather than serving from a desynchronized stream.
                    async with write_lock:
                        envelope = error_envelope(
                            None,
                            f"request line exceeds {MAX_LINE_BYTES} bytes",
                        )
                        writer.write((json.dumps(envelope) + "\n").encode())
                        await writer.drain()
                    break
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                # One task per line: requests on one connection pipeline
                # into the coalescing window instead of serializing.
                task = asyncio.create_task(respond(line))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            # Every spawned task is awaited, even on a reader error, so no
            # response task is abandoned with an unretrieved exception.
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass


async def serve_stdio(
    service: TRNGService, default_seed: SeedFactory = None
) -> None:
    """Serve the JSON-lines protocol over stdin/stdout until EOF.

    stdin is read on a dedicated *daemon* thread (not the default executor):
    ``asyncio.run`` joins executor threads at shutdown, so an executor
    blocked in ``readline`` would make Ctrl-C hang the process forever.  A
    daemon thread just dies with the interpreter.
    """
    loop = asyncio.get_running_loop()
    write_lock = asyncio.Lock()
    tasks = set()
    lines: asyncio.Queue = asyncio.Queue()

    def pump() -> None:
        while True:
            raw = sys.stdin.readline()
            try:
                loop.call_soon_threadsafe(lines.put_nowait, raw)
            except RuntimeError:
                return  # loop already closed (shutdown raced the read)
            if not raw:
                return  # EOF
    threading.Thread(target=pump, name="serve-stdio-reader", daemon=True).start()

    async def respond(line: str) -> None:
        response = await handle_request_line(service, line, default_seed)
        async with write_lock:
            sys.stdout.write(response)
            sys.stdout.flush()

    while True:
        raw = await lines.get()
        if not raw:
            break
        line = raw.strip()
        if not line:
            continue
        task = asyncio.create_task(respond(line))
        tasks.add(task)
        task.add_done_callback(tasks.discard)
    if tasks:
        await asyncio.gather(*tasks, return_exceptions=True)


async def run_self_test(
    n_clients: int = 32,
    n_bits: int = 48,
    dividers=(8, 16),
    max_batch: int = 16,
    max_wait_ms: float = 150.0,
    base_seed: int = 20140324,
    host: str = "127.0.0.1",
    backend=None,
    config: Optional[ServiceConfig] = None,
) -> Dict:
    """End-to-end smoke: concurrent sockets, coalescing, solo equivalence.

    Spawns a real TCP server, fires ``n_clients`` concurrent bit requests
    (split over ``dividers`` so several coalescing groups coexist), and then
    asserts that (a) at least one batch actually coalesced and (b) every
    client's bits are bit-for-bit identical to serving its request **solo**
    (a one-request batch through the same engine bridge).  Returns a summary
    dict; raises ``AssertionError`` on any violation.

    ``backend`` selects the *service's* synthesis backend; the solo
    reference deliberately runs on the default backend, so a non-default
    selection also smoke-tests the cross-backend bitwise contract end to end.
    """
    requests = [
        BitsRequest(
            n_bits=n_bits,
            divider=int(dividers[index % len(dividers)]),
            seed=base_seed + index,
        )
        for index in range(n_clients)
    ]
    if config is None:
        config = ServiceConfig(
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_pending=4 * n_clients,
            backend=backend,
        )
    service = TRNGService(config)
    server = TRNGServer(service, host=host, port=0)
    async with service:
        await server.start()
        try:
            port = server.port

            async def client(index: int) -> Dict:
                reader, writer = await asyncio.open_connection(host, port)
                request = requests[index]
                line = {
                    "id": index,
                    "kind": "bits",
                    "n_bits": request.n_bits,
                    "divider": request.divider,
                    "seed": request.seed,
                }
                writer.write((json.dumps(line) + "\n").encode())
                await writer.drain()
                raw = await reader.readline()
                writer.close()
                await writer.wait_closed()
                return json.loads(raw)

            responses = await asyncio.gather(
                *(client(index) for index in range(n_clients))
            )
        finally:
            await server.stop()
        stats = service.stats.snapshot()

    for index, response in enumerate(responses):
        if not response.get("ok"):
            raise AssertionError(
                f"client {index}: server error: {response.get('error')}"
            )
        served = string_to_bits(response["result"]["bits"])
        solo = run_bits_batch([requests[index]])[0].bits
        if not np.array_equal(served, solo):
            raise AssertionError(
                f"client {index}: coalesced bits differ from solo-served bits"
            )
    if stats["max_batch_size"] < 2:
        raise AssertionError(
            "no coalescing happened: every batch served a single request "
            f"(stats: {stats})"
        )
    return {
        "clients": n_clients,
        "n_bits": n_bits,
        "dividers": list(int(d) for d in dividers),
        "stats": stats,
        "solo_equivalence": "bitwise",
    }
