"""Versioned JSON wire envelopes of the TRNG serving layer.

One envelope schema is shared by **every** edge — the JSON-lines TCP and
stdio servers, the fabric worker links, and the HTTP/WebSocket gateway
(:mod:`repro.serving.http`, where the same object travels as a request
body instead of a line)::

    -> {"v": 1, "id": 1, "kind": "bits", "n_bits": 64, "divider": 512,
        "seed": 7}
    <- {"v": 1, "id": 1, "ok": true, "result": {"kind": "bits",
        "bits": "0110...", "n_bits": 64, "divider": 512, "seed": 7}}

    -> {"id": 2, "kind": "sigma2n", "n_periods": 16384, "seed": 11}
    <- {"v": 1, "id": 2, "ok": true, "result": {"kind": "sigma2n",
        "n_values": [...], "sigma2_s2": [...], "b_thermal_hz": ..., ...}}

    -> {"id": 3, "kind": "stats"}        # service counters
    -> {"id": 4, "kind": "ping"}         # liveness
    -> {"id": 5, "kind": "metrics"}      # registry snapshot (JSON)
    -> {"id": 6, "kind": "metrics", "format": "prometheus"}

``v`` is the protocol version (:data:`PROTOCOL_VERSION`); a request without
one is treated as version 1 (every pre-versioning client), and an unknown
version is rejected with a structured error (``code:
"unsupported_version"``) without touching the rest of the payload.  ``id``
is echoed verbatim so clients may pipeline requests on one connection; it
is optional (``null`` when omitted).  Errors come back as ``{"v": 1,
"id": ..., "ok": false, "error": "...", "code": "..."}`` — a malformed
line never kills the connection, and ``code`` is a stable
machine-matchable token (the HTTP gateway maps it onto status codes).
Bits travel as a compact ``"0"``/``"1"`` string.
"""

from __future__ import annotations

import base64
import io
import json
from typing import Dict, List, Optional, Tuple

import numpy as np

from .requests import BitsRequest, BitsResult, Request, Sigma2NRequest, Sigma2NResult

#: Version of the wire envelope this build speaks.  Bump only on an
#: incompatible envelope change; additive fields do not need a bump.
PROTOCOL_VERSION = 1

#: Stable error codes carried in the ``code`` field of error envelopes.
ERROR_CODES = (
    "bad_request",
    "unsupported_version",
    "worker_only",
    "overloaded",
    "deadline_exceeded",
    "stopped",
    "not_found",
    "session_expired",
    "internal",
)

#: Wire fields accepted per request kind (everything else is rejected).
#: ``priority`` and ``deadline_ms`` are scheduling fields: they steer the
#: coalescer, never the result, and are accepted on every public kind.
_REQUEST_FIELDS = {
    "bits": (
        "n_bits",
        "divider",
        "seed",
        "f0_hz",
        "b_thermal_hz",
        "b_flicker_hz2",
        "frequency_mismatch",
        "rng_contract",
        "priority",
        "deadline_ms",
    ),
    "sigma2n": (
        "n_periods",
        "seed",
        "f0_hz",
        "b_thermal_hz",
        "b_flicker_hz2",
        "n_sweep",
        "overlapping",
        "min_realizations",
        "tier",
        "rng_contract",
        "priority",
        "deadline_ms",
    ),
    # Fabric (worker-only) kinds: campaign shard assignment and coalesced
    # serving batches forwarded by a coordinator.  The public serving front
    # door rejects these — only ``python -m repro.worker`` executes them.
    # ``trace`` is the optional span-propagation envelope
    # ({"trace_id", "parent_span_id"}, see :mod:`repro.obs.trace`): workers
    # parent their execution spans under it and ship the recorded spans back
    # in the reply's ``spans`` field, producing one merged cross-host tree.
    "shard": ("spec", "index", "start", "stop", "trace"),
    "batch": ("requests", "trace"),
    # Observability scrape: a JSON metrics snapshot by default, Prometheus
    # text exposition with {"format": "prometheus"}.
    "metrics": ("format",),
}

_REQUEST_CLASSES = {"bits": BitsRequest, "sigma2n": Sigma2NRequest}

#: Kinds only a fabric worker executes; the serving server refuses them.
WORKER_ONLY_KINDS = ("shard", "batch", "shutdown")

#: Kinds that carry no fields at all.
_BARE_KINDS = ("stats", "ping", "shutdown")


class ProtocolError(ValueError):
    """A syntactically or semantically invalid protocol message.

    Carries the offending message's ``id`` when it could be extracted, so
    error responses still reach the right pipelined request, and a stable
    ``code`` token (one of :data:`ERROR_CODES`) that the HTTP gateway maps
    onto status codes.
    """

    def __init__(
        self, message: str, request_id=None, code: str = "bad_request"
    ) -> None:
        super().__init__(message)
        self.request_id = request_id
        self.code = code


def bits_to_string(bits: np.ndarray) -> str:
    """Compact ``"0"``/``"1"`` wire form of a 1-D bit array.

    Vectorized (serialization runs on the event-loop thread, so a large
    request must not stall every other connection's coalescing window).
    """
    levels = (np.asarray(bits).ravel() != 0).astype(np.uint8)
    return (levels + ord("0")).tobytes().decode("ascii")


def string_to_bits(text: str) -> np.ndarray:
    """Decode :func:`bits_to_string` output back to an ``int8`` array."""
    if not set(text) <= {"0", "1"}:
        raise ProtocolError("bit strings may only contain '0' and '1'")
    return np.frombuffer(text.encode("ascii"), dtype=np.uint8).astype(
        np.int8
    ) - ord("0")


def parse_request_line(line: str) -> Tuple[Optional[object], str, Dict]:
    """Split one wire line into ``(id, kind, fields)``.

    ``kind`` is one of ``"bits"``, ``"sigma2n"``, ``"stats"``, ``"ping"``.
    Raises :class:`ProtocolError` on anything malformed.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"invalid JSON: {error}") from None
    return parse_request_payload(payload)


def parse_request_payload(payload) -> Tuple[Optional[object], str, Dict]:
    """Split one decoded request envelope into ``(id, kind, fields)``.

    The dict form of :func:`parse_request_line` — the HTTP gateway calls
    this directly with a parsed request body, so TCP lines and HTTP bodies
    go through the identical envelope validation (version check included).
    The input dict is not mutated.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("each request envelope must be a JSON object")
    payload = dict(payload)
    request_id = payload.pop("id", None)
    version = payload.pop("v", PROTOCOL_VERSION)
    if version is not True and version is not False and isinstance(version, int):
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"unsupported protocol version {version} "
                f"(this server speaks version {PROTOCOL_VERSION})",
                request_id=request_id,
                code="unsupported_version",
            )
    else:
        raise ProtocolError(
            f"protocol version must be an integer, got {version!r}",
            request_id=request_id,
            code="unsupported_version",
        )
    kind = payload.pop("kind", None)
    if kind in _BARE_KINDS:
        if payload:
            raise ProtocolError(
                f"unexpected fields for {kind!r}: {sorted(payload)}",
                request_id=request_id,
            )
        return request_id, kind, {}
    if kind not in _REQUEST_FIELDS:
        raise ProtocolError(
            f"unknown request kind {kind!r} "
            f"(expected one of: bits, sigma2n, stats, metrics, ping)",
            request_id=request_id,
        )
    unknown = sorted(set(payload) - set(_REQUEST_FIELDS[kind]))
    if unknown:
        raise ProtocolError(
            f"unknown fields for {kind!r}: {unknown}", request_id=request_id
        )
    return request_id, kind, payload


def build_request(kind: str, fields: Dict, default_seed=None) -> Request:
    """Construct the typed request; invalid values become protocol errors.

    ``default_seed`` (a callable returning an int) supplies the seed of
    requests that arrive without one — the server wires its ``--seed``
    stream in here so unseeded traffic is still reproducible.
    """
    fields = dict(fields)
    if fields.get("seed") is None and default_seed is not None:
        fields["seed"] = default_seed()
    try:
        if fields.get("n_sweep") is not None:
            fields["n_sweep"] = tuple(fields["n_sweep"])
        return _REQUEST_CLASSES[kind](**fields)
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"invalid {kind} request: {error}") from None


def result_to_payload(result) -> Dict:
    """Plain-JSON form of a served result."""
    if isinstance(result, BitsResult):
        return {
            "kind": "bits",
            "bits": bits_to_string(result.bits),
            "n_bits": result.n_bits,
            "divider": result.divider,
            "seed": result.seed,
        }
    if isinstance(result, Sigma2NResult):
        return {
            "kind": "sigma2n",
            "n_values": np.asarray(result.n_values).tolist(),
            "sigma2_s2": np.asarray(result.sigma2_s2).tolist(),
            "realization_counts": np.asarray(result.realization_counts).tolist(),
            "f0_hz": result.f0_hz,
            "b_thermal_hz": result.b_thermal_hz,
            "b_flicker_hz2": result.b_flicker_hz2,
            "r_squared": result.r_squared,
            "thermal_jitter_std_s": result.thermal_jitter_std_s,
            "seed": result.seed,
            "tier": result.tier,
        }
    raise TypeError(f"cannot serialize result of type {type(result)!r}")


def request_to_payload(request: Request) -> Dict:
    """Wire form of a typed request (inverse of :func:`build_request`).

    Seeds are always pinned by construction, so the payload describes the
    exact same computation on whichever host rebuilds it — the property the
    fabric dispatch path relies on for coordinator/worker bit-equality.
    The scheduling fields (``priority``, ``deadline_ms``) are deliberately
    omitted: a request forwarded to a fabric worker has already been
    scheduled, and a relative deadline must not restart its clock remotely.
    """
    if isinstance(request, BitsRequest):
        return {
            "kind": "bits",
            "n_bits": request.n_bits,
            "divider": request.divider,
            "seed": request.seed,
            "f0_hz": request.f0_hz,
            "b_thermal_hz": request.b_thermal_hz,
            "b_flicker_hz2": request.b_flicker_hz2,
            "frequency_mismatch": request.frequency_mismatch,
            "rng_contract": request.rng_contract,
        }
    if isinstance(request, Sigma2NRequest):
        return {
            "kind": "sigma2n",
            "n_periods": request.n_periods,
            "seed": request.seed,
            "f0_hz": request.f0_hz,
            "b_thermal_hz": request.b_thermal_hz,
            "b_flicker_hz2": request.b_flicker_hz2,
            "n_sweep": list(request.n_sweep) if request.n_sweep else None,
            "overlapping": request.overlapping,
            "min_realizations": request.min_realizations,
            "tier": request.tier,
            "rng_contract": request.rng_contract,
        }
    raise TypeError(f"cannot serialize request of type {type(request)!r}")


def payload_to_result(payload: Dict):
    """Rebuild the typed result from :func:`result_to_payload` output."""
    kind = payload.get("kind")
    if kind == "bits":
        return BitsResult(
            bits=string_to_bits(payload["bits"]),
            seed=payload["seed"],
            divider=payload["divider"],
        )
    if kind == "sigma2n":
        return Sigma2NResult(
            n_values=np.asarray(payload["n_values"]),
            sigma2_s2=np.asarray(payload["sigma2_s2"]),
            realization_counts=np.asarray(payload["realization_counts"]),
            f0_hz=payload["f0_hz"],
            b_thermal_hz=payload["b_thermal_hz"],
            b_flicker_hz2=payload["b_flicker_hz2"],
            r_squared=payload["r_squared"],
            thermal_jitter_std_s=payload["thermal_jitter_std_s"],
            seed=payload["seed"],
            tier=payload.get("tier", "exact"),
        )
    raise ProtocolError(f"cannot decode result payload of kind {kind!r}")


def encode_partial(partial: Dict[str, np.ndarray]) -> str:
    """Base64-``.npz`` wire form of a shard partial (lossless, compact).

    The ``.npz`` container is the same format the checkpoint layer persists,
    so everything a shard can produce — including streaming-estimator state —
    round-trips bit-for-bit through the fabric protocol.
    """
    buffer = io.BytesIO()
    np.savez(buffer, **partial)
    return base64.b64encode(buffer.getvalue()).decode("ascii")


def decode_partial(text: str) -> Dict[str, np.ndarray]:
    """Decode :func:`encode_partial` output back into a partial payload."""
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as error:
        raise ProtocolError(f"invalid partial encoding: {error}") from None
    with np.load(io.BytesIO(raw), allow_pickle=False) as archive:
        return {name: archive[name].copy() for name in archive.files}


def parse_batch_payloads(fields: Dict) -> List[Tuple[str, Dict]]:
    """Validate a ``batch`` message's request list into ``(kind, fields)``.

    Each entry must itself be a valid ``bits``/``sigma2n`` wire object (the
    worker rebuilds typed requests from them with :func:`build_request`).
    """
    entries = fields.get("requests")
    if not isinstance(entries, list) or not entries:
        raise ProtocolError("'batch' requires a non-empty 'requests' list")
    parsed = []
    for position, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ProtocolError(f"batch entry {position} is not an object")
        entry = dict(entry)
        kind = entry.pop("kind", None)
        if kind not in _REQUEST_CLASSES:
            raise ProtocolError(
                f"batch entry {position} has invalid kind {kind!r}"
            )
        unknown = sorted(set(entry) - set(_REQUEST_FIELDS[kind]))
        if unknown:
            raise ProtocolError(
                f"batch entry {position}: unknown fields {unknown}"
            )
        parsed.append((kind, entry))
    return parsed


def response_envelope(request_id, result_payload: Dict) -> Dict:
    """Success response envelope (shared by every edge)."""
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": True,
        "result": result_payload,
    }


def error_envelope(request_id, message: str, code: str = "bad_request") -> Dict:
    """Error response envelope with a stable machine-matchable ``code``."""
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": message,
        "code": code,
    }


def response_line(request_id, result_payload: Dict) -> str:
    """Success response wire line (newline-terminated)."""
    return json.dumps(response_envelope(request_id, result_payload)) + "\n"


def error_line(request_id, message: str, code: str = "bad_request") -> str:
    """Error response wire line (newline-terminated)."""
    return json.dumps(error_envelope(request_id, message, code)) + "\n"
