"""Request coalescing: group compatible pending requests into one batch.

The coalescer turns a stream of small requests into full engine batches.  It
takes the oldest pending request as the batch *leader*, then keeps admitting
requests whose :meth:`group_key` matches the leader's until either
``max_batch`` requests are aboard or ``max_wait_ms`` has elapsed since the
leader arrived.  Incompatible requests observed during the window are
*deferred* — parked in arrival order and reconsidered first for the next
batch, so a minority group is never starved, only delayed by at most one
window.

With ``max_batch=1`` the window is skipped entirely: every request is its
own batch (the serial reference mode the determinism tests and the serving
benchmark compare against).
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, List

from .queue import PendingRequest, RequestQueue


class Coalescer:
    """Groups compatible pending requests within a bounded time window."""

    def __init__(self, max_batch: int = 32, max_wait_ms: float = 2.0) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch!r}")
        if max_wait_ms < 0.0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms!r}")
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self._deferred: Deque[PendingRequest] = deque()

    def __len__(self) -> int:
        """Requests currently parked for a later batch."""
        return len(self._deferred)

    def drain(self, error: BaseException) -> int:
        """Fail every deferred request (service shutdown); returns the count."""
        failed = 0
        while self._deferred:
            if self._deferred.popleft().fail(error):
                failed += 1
        return failed

    async def next_batch(self, queue: RequestQueue) -> List[PendingRequest]:
        """The next coalesced batch (>= 1 compatible pending requests).

        Suspends until at least one request is available; then collects
        compatible requests (same :meth:`group_key` as the leader) from the
        deferred pool and the queue until ``max_batch`` or the window closes.
        """
        leader = self._deferred.popleft() if self._deferred else await queue.get()
        batch = [leader]
        try:
            if self.max_batch == 1:
                return batch
            key = leader.request.group_key()

            # Deferred requests are reconsidered first, in arrival order.
            still_deferred: Deque[PendingRequest] = deque()
            while self._deferred and len(batch) < self.max_batch:
                candidate = self._deferred.popleft()
                if candidate.request.group_key() == key:
                    batch.append(candidate)
                else:
                    still_deferred.append(candidate)
            still_deferred.extend(self._deferred)
            self._deferred = still_deferred

            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.max_wait_ms / 1000.0
            while len(batch) < self.max_batch:
                timeout = deadline - loop.time()
                if timeout <= 0.0:
                    break
                try:
                    candidate = await asyncio.wait_for(queue.get(), timeout)
                except TimeoutError:
                    break
                if candidate.request.group_key() == key:
                    batch.append(candidate)
                else:
                    self._deferred.append(candidate)
            return batch
        except asyncio.CancelledError:
            # Service shutdown mid-window: the requests captured so far are
            # in neither the queue nor the deferred pool, so park them back
            # where drain() (or a restarted dispatcher) can see them —
            # otherwise their futures would hang forever.
            self._deferred.extendleft(reversed(batch))
            raise
