"""Priority/deadline-aware coalescing: group pending requests into batches.

The coalescer turns a stream of small requests into full engine batches.
Scheduling is no longer plain FIFO: every request carries a scheduling class
(:data:`~repro.serving.requests.PRIORITIES`) and an optional latency budget
(``deadline_ms``), and the coalescer trades the ``max_wait_ms`` window
against them:

* **Leader selection** — all already-arrived requests are drained into a
  pending pool and the most urgent one (priority class first, arrival order
  within a class) leads the next batch, so an ``interactive`` request never
  queues behind a backlog of ``batch`` work.
* **Per-class windows** — how long a batch waits for companions is the
  *smallest* class window among its members: ``interactive`` requests shrink
  the window they ride in (low latency), ``batch`` requests stretch their
  own (better amortization).  The per-class window is ``max_wait_ms`` scaled
  by :data:`DEFAULT_CLASS_WAIT_FACTORS`, or an absolute override per class.
* **Deadline fast-fail** — a request whose ``deadline_ms`` budget expired
  before dispatch is failed with
  :class:`~repro.serving.queue.DeadlineExceeded` and **never consumes a row
  of an engine call**; a live deadline caps the window of the batch carrying
  the request so it is dispatched in time.

Batch *membership* still requires matching :meth:`group_key` values, and
scheduling fields are deliberately not part of the group key: priorities
decide *when* an engine call happens, never *what* it computes, so the
solo/coalesced bitwise contract is untouched.

Within one priority class, requests are served in arrival order; across
classes, urgency wins (a sustained flood of ``interactive`` traffic can
starve ``batch`` requests — bound that risk with ``deadline_ms``, which
converts unbounded waiting into a fast, explicit failure).

With ``max_batch=1`` the window is skipped entirely: every request is its
own batch (the serial reference mode the determinism tests and the serving
benchmark compare against).
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Mapping, Optional

from ..obs import MetricsRegistry
from .queue import DeadlineExceeded, PendingRequest, RequestQueue
from .requests import PRIORITIES

#: Per-class coalescing-window factors applied to ``max_wait_ms``.
DEFAULT_CLASS_WAIT_FACTORS: Dict[str, float] = {
    "interactive": 0.25,
    "normal": 1.0,
    "batch": 4.0,
}

_RANK = {priority: rank for rank, priority in enumerate(PRIORITIES)}

#: A deadline caps the coalescing window this far *before* it lapses, so the
#: batch dispatches while the request is still live (dispatching exactly at
#: ``deadline_at`` would expire the request in the pre-dispatch recheck).
_DISPATCH_GUARD_S = 2e-3


class Coalescer:
    """Groups compatible pending requests within a priority-scaled window.

    Parameters
    ----------
    max_batch:
        Most requests one engine call may serve; ``1`` disables coalescing.
    max_wait_ms:
        Base coalescing window of a ``normal``-priority batch leader.
    class_wait_ms:
        Optional absolute per-class window overrides, e.g.
        ``{"interactive": 0.5, "batch": 20.0}``; classes not named fall back
        to ``max_wait_ms`` x :data:`DEFAULT_CLASS_WAIT_FACTORS`.
    metrics:
        Registry for the ``serving_coalesce_wait_seconds`` histogram (time
        from leader claim to batch dispatch) and the
        ``serve_deadline_expired_total`` counter.  A private registry is
        used when omitted (direct/test use).
    """

    def __init__(
        self,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        class_wait_ms: Optional[Mapping[str, float]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch!r}")
        if max_wait_ms < 0.0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms!r}")
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.class_wait_ms: Dict[str, float] = {}
        overrides = dict(class_wait_ms) if class_wait_ms else {}
        unknown = sorted(set(overrides) - set(PRIORITIES))
        if unknown:
            raise ValueError(
                f"unknown priority classes in class_wait_ms: {unknown} "
                f"(expected a subset of {PRIORITIES})"
            )
        for priority in PRIORITIES:
            if priority in overrides:
                wait = float(overrides[priority])
                if wait < 0.0:
                    raise ValueError(
                        f"class_wait_ms[{priority!r}] must be >= 0, got {wait!r}"
                    )
            else:
                wait = self.max_wait_ms * DEFAULT_CLASS_WAIT_FACTORS[priority]
            self.class_wait_ms[priority] = wait
        #: Requests drained from the queue but not yet dispatched, in no
        #: particular order (selection sorts by priority rank, then arrival).
        self._pool: List[PendingRequest] = []
        registry = metrics if metrics is not None else MetricsRegistry("coalescer")
        self._wait_seconds = registry.histogram(
            "serving_coalesce_wait_seconds",
            "Seconds from batch-leader claim to batch dispatch (the realized "
            "coalescing window per engine call)",
        )
        self._expired = registry.counter(
            "serve_deadline_expired_total",
            "Requests failed fast because deadline_ms expired before dispatch",
        )

    def __len__(self) -> int:
        """Requests currently pooled for a later batch."""
        return len(self._pool)

    def drain(self, error: BaseException) -> int:
        """Fail every pooled request (service shutdown); returns the count."""
        failed = 0
        while self._pool:
            if self._pool.pop().fail(error):
                failed += 1
        return failed

    def _window_s(self, pending: PendingRequest) -> float:
        return self.class_wait_ms.get(pending.priority, self.max_wait_ms) / 1e3

    def _fail_expired(self, now: float) -> None:
        """Fail-fast every pooled request whose deadline has passed."""
        live: List[PendingRequest] = []
        for pending in self._pool:
            if pending.expired(now):
                self._expire(pending, now)
            else:
                live.append(pending)
        self._pool = live

    def _expire(self, pending: PendingRequest, now: float) -> None:
        waited_ms = (now - pending.enqueued_at) * 1e3
        if pending.fail(
            DeadlineExceeded(
                f"deadline_ms={pending.request.deadline_ms:g} expired before "
                f"dispatch (waited {waited_ms:.1f} ms); no engine work was "
                f"consumed"
            )
        ):
            self._expired.inc()

    def _take_leader(self) -> PendingRequest:
        """Most urgent pooled request: lowest priority rank, then arrival."""
        index = min(
            range(len(self._pool)),
            key=lambda i: (
                _RANK.get(self._pool[i].priority, len(_RANK)),
                self._pool[i].arrival,
            ),
        )
        return self._pool.pop(index)

    async def next_batch(self, queue: RequestQueue) -> List[PendingRequest]:
        """The next coalesced batch (>= 1 compatible pending requests).

        Suspends until at least one live request is available; then collects
        compatible requests (same :meth:`group_key` as the leader) from the
        pool and the queue until ``max_batch`` is reached or the batch's
        window — the smallest class window among its members, capped by the
        earliest live deadline — closes.
        """
        while True:
            batch = await self._collect(queue)
            # Requests may expire between admission and dispatch (a long
            # window, a stampede of companions): re-check so an expired
            # request never occupies an engine row.
            now = time.monotonic()
            live = [pending for pending in batch if not pending.expired(now)]
            for pending in batch:
                if pending.expired(now):
                    self._expire(pending, now)
            if live:
                return live

    async def _collect(self, queue: RequestQueue) -> List[PendingRequest]:
        # Drain everything already queued so leader selection sees the whole
        # backlog; block only when there is no pending work at all.
        while True:
            pending = queue.get_nowait()
            if pending is None:
                break
            self._pool.append(pending)
        self._fail_expired(time.monotonic())
        if not self._pool:
            pending = await queue.get()
            if pending.expired():
                self._expire(pending, time.monotonic())
                return []
            self._pool.append(pending)

        leader = self._take_leader()
        batch = [leader]
        opened = time.monotonic()
        try:
            if self.max_batch == 1:
                self._wait_seconds.observe(0.0)
                return batch
            key = leader.request.group_key()
            window_end = opened + self._window_s(leader)
            if leader.deadline_at is not None:
                window_end = min(window_end, leader.deadline_at - _DISPATCH_GUARD_S)

            # Pooled requests are reconsidered first, in arrival order.
            remaining: List[PendingRequest] = []
            for candidate in sorted(self._pool, key=lambda p: p.arrival):
                if (
                    len(batch) < self.max_batch
                    and candidate.request.group_key() == key
                ):
                    batch.append(candidate)
                    window_end = min(window_end, opened + self._window_s(candidate))
                    if candidate.deadline_at is not None:
                        window_end = min(
                            window_end, candidate.deadline_at - _DISPATCH_GUARD_S
                        )
                else:
                    remaining.append(candidate)
            self._pool = remaining

            loop = asyncio.get_running_loop()
            while len(batch) < self.max_batch:
                timeout = window_end - time.monotonic()
                if timeout <= 0.0:
                    break
                try:
                    candidate = await asyncio.wait_for(queue.get(), timeout)
                except TimeoutError:
                    break
                if candidate.expired():
                    self._expire(candidate, time.monotonic())
                elif candidate.request.group_key() == key:
                    batch.append(candidate)
                    window_end = min(window_end, opened + self._window_s(candidate))
                    if candidate.deadline_at is not None:
                        window_end = min(
                            window_end, candidate.deadline_at - _DISPATCH_GUARD_S
                        )
                else:
                    self._pool.append(candidate)
            self._wait_seconds.observe(time.monotonic() - opened)
            return batch
        except asyncio.CancelledError:
            # Service shutdown mid-window: the requests captured so far are
            # in neither the queue nor the pool, so park them back where
            # drain() (or a restarted dispatcher) can see them — otherwise
            # their futures would hang forever.
            self._pool.extend(batch)
            raise
