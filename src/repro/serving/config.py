"""One frozen configuration object for the whole serving stack.

:class:`ServiceConfig` consolidates the knobs that used to travel as ~10
loose keyword arguments through :class:`~repro.serving.service.TRNGService`,
``python -m repro.serve`` and :func:`~repro.serving.server.run_self_test`:
batching/window limits, queue bound and overflow policy, synthesis backend,
per-priority coalescing windows, the fast tier, fabric worker endpoints and
the reproducibility seed.  Both CLIs build exactly one ``ServiceConfig``
from their flags (:meth:`ServiceConfig.from_args`) and every constructor
downstream takes the config object; the old per-kwarg constructors keep
working through a thin shim that emits a :class:`DeprecationWarning`.

The config is a frozen dataclass of plain values (strings, numbers,
tuples), so it is hashable, comparable, and trivially serializable — the
same design as the campaign specs in :mod:`repro.engine.distributed.spec`.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Mapping, Optional, Tuple

from .queue import OVERFLOW_POLICIES
from .requests import PRIORITIES


def _parse_class_wait(text: str) -> Tuple[Tuple[str, float], ...]:
    """Parse ``"interactive=0.5,batch=20"`` into sorted (class, ms) pairs."""
    pairs = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        name, _, value = item.partition("=")
        name = name.strip()
        if name not in PRIORITIES:
            raise ValueError(
                f"unknown priority class {name!r} in class-wait spec "
                f"(expected one of {PRIORITIES})"
            )
        try:
            wait = float(value)
        except ValueError:
            raise ValueError(
                f"invalid wait for class {name!r}: {value!r} (expected ms)"
            ) from None
        pairs.append((name, wait))
    return tuple(sorted(pairs))


@dataclass(frozen=True)
class ServiceConfig:
    """Every tunable of one serving stack, in one frozen value object.

    Attributes
    ----------
    max_batch:
        Most requests one engine call may serve; ``1`` disables coalescing.
    max_wait_ms:
        Base coalescing window of a ``normal``-priority batch leader.
    max_pending:
        Bound of the request queue — the backpressure knob.
    overflow:
        Full-queue policy: ``"reject"`` (load shedding) or ``"wait"``
        (suspend submitters).
    backend:
        Synthesis backend spec string (``"numpy"`` | ``"threaded[:N]"`` |
        ``"auto[:N]"``) or ``None`` for the ``REPRO_BACKEND``/NumPy default.
        Backends are bit-for-bit equivalent; the choice selects speed only.
    class_wait_ms:
        Absolute per-priority window overrides as sorted ``(class, ms)``
        pairs (see :class:`~repro.serving.coalescer.Coalescer`); classes not
        named scale ``max_wait_ms`` by the default factors.
    fast_tier:
        Whether ``tier="fast"`` sigma^2_N requests may be served from the
        fitted-campaign cache; ``False`` makes every request exact.
    spawn_workers:
        Localhost fabric workers to spawn for batch dispatch (0 = serve on
        a local worker thread).
    workers_remote:
        ``host:port`` endpoints of running ``python -m repro.worker``
        processes to dispatch batches to.
    seed:
        Root seed assigned (in arrival order) to unseeded requests; ``None``
        pins fresh entropy per request instead.
    """

    max_batch: int = 32
    max_wait_ms: float = 2.0
    max_pending: int = 1024
    overflow: str = "reject"
    backend: Optional[str] = None
    class_wait_ms: Tuple[Tuple[str, float], ...] = field(default_factory=tuple)
    fast_tier: bool = True
    spawn_workers: int = 0
    workers_remote: Tuple[str, ...] = field(default_factory=tuple)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "max_batch", int(self.max_batch))
        object.__setattr__(self, "max_wait_ms", float(self.max_wait_ms))
        object.__setattr__(self, "max_pending", int(self.max_pending))
        object.__setattr__(self, "spawn_workers", int(self.spawn_workers))
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch!r}")
        if self.max_wait_ms < 0.0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms!r}"
            )
        if self.max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {self.max_pending!r}"
            )
        if self.overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow must be one of {OVERFLOW_POLICIES}, "
                f"got {self.overflow!r}"
            )
        if self.spawn_workers < 0:
            raise ValueError(
                f"spawn_workers must be >= 0, got {self.spawn_workers!r}"
            )
        if isinstance(self.class_wait_ms, str):
            object.__setattr__(
                self, "class_wait_ms", _parse_class_wait(self.class_wait_ms)
            )
        elif isinstance(self.class_wait_ms, Mapping):
            object.__setattr__(
                self,
                "class_wait_ms",
                tuple(
                    sorted(
                        (str(k), float(v))
                        for k, v in self.class_wait_ms.items()
                    )
                ),
            )
        else:
            object.__setattr__(
                self,
                "class_wait_ms",
                tuple(sorted((str(k), float(v)) for k, v in self.class_wait_ms)),
            )
        for name, wait in self.class_wait_ms:
            if name not in PRIORITIES:
                raise ValueError(
                    f"unknown priority class {name!r} in class_wait_ms "
                    f"(expected a subset of {PRIORITIES})"
                )
            if wait < 0.0:
                raise ValueError(
                    f"class_wait_ms[{name!r}] must be >= 0, got {wait!r}"
                )
        if isinstance(self.workers_remote, str):
            object.__setattr__(
                self,
                "workers_remote",
                tuple(
                    endpoint.strip()
                    for endpoint in self.workers_remote.split(",")
                    if endpoint.strip()
                ),
            )
        else:
            object.__setattr__(
                self, "workers_remote", tuple(self.workers_remote)
            )
        if self.backend is not None and isinstance(self.backend, str):
            from ..engine.backends import validate_backend_spec

            validate_backend_spec(self.backend)
        if self.seed is not None:
            object.__setattr__(self, "seed", int(self.seed))

    @property
    def class_waits(self) -> Dict[str, float]:
        """``class_wait_ms`` as a plain dict (the coalescer's input form)."""
        return dict(self.class_wait_ms)

    @property
    def uses_fabric(self) -> bool:
        """Whether this configuration dispatches batches to fabric workers."""
        return self.spawn_workers > 0 or bool(self.workers_remote)

    def replace(self, **changes) -> "ServiceConfig":
        """A copy with the named fields changed (frozen-dataclass update)."""
        return replace(self, **changes)

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "ServiceConfig":
        """Build the config from CLI flags (``python -m repro.serve`` et al).

        Reads only the attributes present on ``args``, so argument parsers
        that expose a subset of the knobs still work.
        """
        values = {}
        for spec in fields(cls):
            if hasattr(args, spec.name) and getattr(args, spec.name) is not None:
                values[spec.name] = getattr(args, spec.name)
        return cls(**values)

    def build_fabric(self):
        """The :class:`~repro.serving.fabric_dispatch.FabricDispatcher` for
        this config, or ``None`` when serving locally.

        The caller owns the dispatcher (close it after stopping the
        service); imports lazily so purely local serving never touches the
        fabric machinery.
        """
        if not self.uses_fabric:
            return None
        from .fabric_dispatch import FabricDispatcher

        return FabricDispatcher.from_endpoints(
            remote=list(self.workers_remote),
            spawn=self.spawn_workers,
            backend=self.backend,
        )
