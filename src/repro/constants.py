"""Physical constants and unit helpers used across the library.

The paper's transistor-level noise expressions (Section III-A) are written in
SI units; every module in this package sticks to SI (seconds, hertz, volts,
amperes, farads) so that the phase-noise coefficients ``b_th`` [Hz] and
``b_fl`` [Hz^2] and the jitter values [s] combine without conversion factors.
"""

from __future__ import annotations

#: Boltzmann constant [J/K].
BOLTZMANN_K = 1.380649e-23

#: Default junction temperature used by the device models [K] (27 degC).
DEFAULT_TEMPERATURE_K = 300.15

#: Elementary charge [C] (used by shot-noise extensions).
ELEMENTARY_CHARGE = 1.602176634e-19


def celsius_to_kelvin(temperature_c: float) -> float:
    """Convert a temperature in degrees Celsius to kelvin."""
    return temperature_c + 273.15


def kelvin_to_celsius(temperature_k: float) -> float:
    """Convert a temperature in kelvin to degrees Celsius."""
    return temperature_k - 273.15


def db_to_ratio(value_db: float) -> float:
    """Convert a power quantity expressed in dB to a linear ratio."""
    return 10.0 ** (value_db / 10.0)


def ratio_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB.

    Raises
    ------
    ValueError
        If ``ratio`` is not strictly positive.
    """
    if ratio <= 0.0:
        raise ValueError(f"ratio must be > 0, got {ratio!r}")
    import math

    return 10.0 * math.log10(ratio)


def seconds_to_ps(value_s: float) -> float:
    """Convert seconds to picoseconds."""
    return value_s * 1e12


def ps_to_seconds(value_ps: float) -> float:
    """Convert picoseconds to seconds."""
    return value_ps * 1e-12


def permille(fraction: float) -> float:
    """Express a dimensionless fraction in per-mille (0/00), as in the paper's
    ``sigma/T0 = 1.6 0/00`` result."""
    return fraction * 1e3
