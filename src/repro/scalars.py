"""Scalar-in, scalar-out return-shape discipline for array-or-scalar APIs.

Many functions in this reproduction accept ``np.ndarray | float`` and promise
to return a plain Python scalar when the input was scalar.  The historical
idiom — ``if np.isscalar(x): return float(result)`` — has a hole:
``np.isscalar`` is ``False`` for 0-d arrays (``np.asarray(3.0)``,
``np.float64(3.0).reshape(())``), so those inputs leaked a 0-d ``ndarray``
back to the caller instead of a ``float``.  :func:`scalar_like` is the one
shared implementation of the pattern, closing that hole everywhere at once.
"""

from __future__ import annotations

import numpy as np


def is_scalar_input(value) -> bool:
    """True when ``value`` is scalar for return-shape purposes.

    Python numbers and numpy scalar types count (``np.isscalar``), and so do
    0-d arrays — a caller passing ``np.asarray(3.0)`` asked a scalar
    question and gets a scalar answer.
    """
    return bool(np.isscalar(value)) or (
        isinstance(value, np.ndarray) and value.ndim == 0
    )


def scalar_like(result, reference, cast=float):
    """Match ``result``'s shape to the scalar-ness of ``reference``.

    Returns ``cast(result)`` (a plain Python scalar, ``float`` by default)
    when ``reference`` was a scalar or a 0-d array, and ``result`` as an
    ``ndarray`` otherwise.
    """
    if is_scalar_input(reference):
        return cast(np.asarray(result)[()])
    return np.asarray(result)
