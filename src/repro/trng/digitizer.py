"""Digitizer models: turning the raw random analog signal into raw bits.

According to AIS31 (Fig. 1 of the paper) the digitizer transforms the raw
random analog signal into the raw binary sequence.  For ring-oscillator TRNGs
the standard digitizer is a D flip-flop: the jittery oscillator output is
sampled on the (divided) edges of a second clock, so each output bit is the
instantaneous logic level of the sampled oscillator.

:class:`DFlipFlopSampler` implements that at the event level (edge times in,
bits out), which keeps it valid for any pair of clocks — free-running rings,
PLL-synthesized clocks, attacked oscillators — as long as they expose the
:class:`repro.oscillator.period_model.Clock` interface.  Both the level
function and the sampler are thin ``B = 1`` views over the batched bit
pipeline (:mod:`repro.engine.bits`), which is where the actual edge-time
``searchsorted`` and level computation live.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.bits import BatchedDFlipFlopSampler, square_wave_level_batch
from ..oscillator.period_model import Clock


def square_wave_level(
    sample_times_s: np.ndarray,
    rising_edge_times_s: np.ndarray,
    duty_cycle: float = 0.5,
) -> np.ndarray:
    """Logic level of a square wave (defined by its rising edges) at given times.

    Parameters
    ----------
    sample_times_s:
        Times at which the wave is sampled [s]; must fall inside the span of
        the provided edges.
    rising_edge_times_s:
        Strictly increasing rising-edge times of the wave [s].  The wave is
        high for ``duty_cycle`` of each period following a rising edge.
        Unsorted (or duplicate) edges raise a dedicated ``ValueError`` rather
        than a misleading span failure.
    duty_cycle:
        High fraction of each period (0 < duty_cycle < 1).  Validated before
        the input arrays are touched.

    Returns
    -------
    numpy.ndarray
        Array of 0/1 integers, one per sample time.
    """
    if not 0.0 < duty_cycle < 1.0:
        raise ValueError("duty cycle must be in (0, 1)")
    samples = np.asarray(sample_times_s, dtype=float)
    edges = np.asarray(rising_edge_times_s, dtype=float)
    if samples.ndim != 1 or edges.ndim != 1:
        raise ValueError("sample times and edges must be one-dimensional")
    return square_wave_level_batch(
        samples[None, :], edges[None, :], duty_cycle=duty_cycle
    )[0]


@dataclass(frozen=True)
class SamplingResult:
    """Bits produced by a sampling run, plus the timing information behind them."""

    bits: np.ndarray
    sample_times_s: np.ndarray
    sampled_frequency_hz: float
    sampling_frequency_hz: float

    @property
    def n_bits(self) -> int:
        """Number of sampled bits."""
        return int(self.bits.size)

    @property
    def accumulation_ratio(self) -> float:
        """Average number of sampled-oscillator periods between two samples."""
        return self.sampled_frequency_hz / self.sampling_frequency_hz


class DFlipFlopSampler:
    """D flip-flop sampling of a jittery oscillator by a (divided) clock.

    Each :meth:`sample` call is an independent run: it builds a fresh ``B = 1``
    :class:`repro.engine.bits.BatchedDFlipFlopSampler` whose timeline starts
    at ``t = 0`` (the clocks' RNG streams still advance between calls, as
    before).  For a *continuing* bit stream — chunked calls concatenating to
    one seamless record — use the batched kernel directly, as
    :class:`repro.trng.ero_trng.EROTRNG` does.

    Parameters
    ----------
    sampled_oscillator:
        The fast, jittery oscillator connected to the D input.
    sampling_clock:
        The clock connected to the flip-flop clock input.
    divider:
        Optional integer divider applied to the sampling clock (a divider of
        ``D`` means one sample every ``D`` sampling-clock periods), as used by
        eRO-TRNG designs to let the jitter accumulate.
    duty_cycle:
        Duty cycle of the sampled oscillator waveform.
    """

    def __init__(
        self,
        sampled_oscillator: Clock,
        sampling_clock: Clock,
        divider: int = 1,
        duty_cycle: float = 0.5,
    ) -> None:
        if divider < 1:
            raise ValueError("divider must be >= 1")
        if not 0.0 < duty_cycle < 1.0:
            raise ValueError("duty cycle must be in (0, 1)")
        self.sampled_oscillator = sampled_oscillator
        self.sampling_clock = sampling_clock
        self.divider = int(divider)
        self.duty_cycle = duty_cycle

    @property
    def effective_sampling_frequency_hz(self) -> float:
        """Sampling frequency after division [Hz]."""
        return self.sampling_clock.f0_hz / self.divider

    def sample(self, n_bits: int) -> SamplingResult:
        """Produce ``n_bits`` raw bits.

        The underlying kernel draws both clocks in fixed synthesis blocks and
        keeps only a rolling window of the sampled oscillator's edge record,
        so peak memory is bounded by the block size instead of the
        ``O(n_bits * divider)`` edge record the one-shot implementation used
        to materialize.
        """
        kernel = BatchedDFlipFlopSampler(
            self.sampled_oscillator,
            self.sampling_clock,
            divider=self.divider,
            duty_cycle=self.duty_cycle,
        )
        return kernel.sample(n_bits).row(0)
