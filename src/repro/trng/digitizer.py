"""Digitizer models: turning the raw random analog signal into raw bits.

According to AIS31 (Fig. 1 of the paper) the digitizer transforms the raw
random analog signal into the raw binary sequence.  For ring-oscillator TRNGs
the standard digitizer is a D flip-flop: the jittery oscillator output is
sampled on the (divided) edges of a second clock, so each output bit is the
instantaneous logic level of the sampled oscillator.

:class:`DFlipFlopSampler` implements that at the event level (edge times in,
bits out), which keeps it valid for any pair of clocks — free-running rings,
PLL-synthesized clocks, attacked oscillators — as long as they expose the
:class:`repro.oscillator.period_model.Clock` interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..oscillator.period_model import Clock


def square_wave_level(
    sample_times_s: np.ndarray,
    rising_edge_times_s: np.ndarray,
    duty_cycle: float = 0.5,
) -> np.ndarray:
    """Logic level of a square wave (defined by its rising edges) at given times.

    Parameters
    ----------
    sample_times_s:
        Times at which the wave is sampled [s]; must fall inside the span of
        the provided edges.
    rising_edge_times_s:
        Sorted rising-edge times of the wave [s].  The wave is high for
        ``duty_cycle`` of each period following a rising edge.
    duty_cycle:
        High fraction of each period (0 < duty_cycle < 1).

    Returns
    -------
    numpy.ndarray
        Array of 0/1 integers, one per sample time.
    """
    samples = np.asarray(sample_times_s, dtype=float)
    edges = np.asarray(rising_edge_times_s, dtype=float)
    if not 0.0 < duty_cycle < 1.0:
        raise ValueError("duty cycle must be in (0, 1)")
    if edges.size < 2:
        raise ValueError("need at least two rising edges")
    if np.any(samples < edges[0]) or np.any(samples >= edges[-1]):
        raise ValueError("sample times must fall within the span of the edges")
    indices = np.searchsorted(edges, samples, side="right") - 1
    period_start = edges[indices]
    period_length = edges[indices + 1] - period_start
    phase_fraction = (samples - period_start) / period_length
    return (phase_fraction < duty_cycle).astype(np.int8)


@dataclass(frozen=True)
class SamplingResult:
    """Bits produced by a sampling run, plus the timing information behind them."""

    bits: np.ndarray
    sample_times_s: np.ndarray
    sampled_frequency_hz: float
    sampling_frequency_hz: float

    @property
    def n_bits(self) -> int:
        """Number of sampled bits."""
        return int(self.bits.size)

    @property
    def accumulation_ratio(self) -> float:
        """Average number of sampled-oscillator periods between two samples."""
        return self.sampled_frequency_hz / self.sampling_frequency_hz


class DFlipFlopSampler:
    """D flip-flop sampling of a jittery oscillator by a (divided) clock.

    Parameters
    ----------
    sampled_oscillator:
        The fast, jittery oscillator connected to the D input.
    sampling_clock:
        The clock connected to the flip-flop clock input.
    divider:
        Optional integer divider applied to the sampling clock (a divider of
        ``D`` means one sample every ``D`` sampling-clock periods), as used by
        eRO-TRNG designs to let the jitter accumulate.
    duty_cycle:
        Duty cycle of the sampled oscillator waveform.
    """

    def __init__(
        self,
        sampled_oscillator: Clock,
        sampling_clock: Clock,
        divider: int = 1,
        duty_cycle: float = 0.5,
    ) -> None:
        if divider < 1:
            raise ValueError("divider must be >= 1")
        if not 0.0 < duty_cycle < 1.0:
            raise ValueError("duty cycle must be in (0, 1)")
        self.sampled_oscillator = sampled_oscillator
        self.sampling_clock = sampling_clock
        self.divider = int(divider)
        self.duty_cycle = duty_cycle

    @property
    def effective_sampling_frequency_hz(self) -> float:
        """Sampling frequency after division [Hz]."""
        return self.sampling_clock.f0_hz / self.divider

    def sample(self, n_bits: int) -> SamplingResult:
        """Produce ``n_bits`` raw bits.

        The sampled oscillator's edge record is generated with a 10 % margin
        over the nominal duration of the sampling window so that accumulated
        jitter and frequency mismatch cannot run past the end of the record.
        """
        if n_bits < 1:
            raise ValueError("n_bits must be >= 1")
        n_sampling_periods = n_bits * self.divider
        sampling_edges = self.sampling_clock.edge_times(n_sampling_periods)
        sample_times = sampling_edges[self.divider :: self.divider]
        duration = sample_times[-1]
        n_osc_periods = (
            int(np.ceil(duration * self.sampled_oscillator.f0_hz * 1.1)) + 16
        )
        oscillator_edges = self.sampled_oscillator.edge_times(n_osc_periods)
        if oscillator_edges[-1] <= sample_times[-1]:
            raise RuntimeError(
                "sampled-oscillator record too short; frequency mismatch exceeds margin"
            )
        bits = square_wave_level(
            sample_times, oscillator_edges, duty_cycle=self.duty_cycle
        )
        return SamplingResult(
            bits=bits,
            sample_times_s=sample_times,
            sampled_frequency_hz=self.sampled_oscillator.f0_hz,
            sampling_frequency_hz=self.effective_sampling_frequency_hz,
        )
