"""Post-processing algorithms (the third AIS31 block of Fig. 1).

The post-processing block applies a deterministic algorithm to the raw binary
sequence, either to increase its entropy per bit (algebraic post-processing)
or to provide cryptographic robustness.  The classical algebraic schemes are
implemented here; they are exercised by the entropy-model benchmarks to show
how much raw entropy each one preserves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def _as_bit_array(bits: Sequence[int] | np.ndarray) -> np.ndarray:
    array = np.asarray(bits)
    if array.ndim != 1:
        raise ValueError("bit sequences must be one-dimensional")
    if array.size and not np.all((array == 0) | (array == 1)):
        raise ValueError("bit sequences may only contain 0 and 1")
    return array.astype(np.int8)


def von_neumann(bits: Sequence[int] | np.ndarray) -> np.ndarray:
    """Von Neumann unbiasing: map 01 -> 0, 10 -> 1, drop 00 and 11.

    The output of a von Neumann corrector is exactly unbiased whenever the
    input bits are independent (even if biased); with *dependent* input bits —
    precisely the situation the paper warns about — the guarantee no longer
    holds, which the test-suite demonstrates.
    """
    array = _as_bit_array(bits)
    usable = array.size - (array.size % 2)
    pairs = array[:usable].reshape(-1, 2)
    keep = pairs[:, 0] != pairs[:, 1]
    return pairs[keep, 1].astype(np.int8)


def xor_decimation(bits: Sequence[int] | np.ndarray, factor: int) -> np.ndarray:
    """Parity (XOR) of consecutive non-overlapping blocks of ``factor`` bits.

    XORing ``k`` independent bits with bias ``b`` yields a bit with bias
    ``b^k / 2^{k-1}``-ish (piling-up lemma), so decimation trades throughput
    for entropy per bit.
    """
    if factor < 1:
        raise ValueError("decimation factor must be >= 1")
    array = _as_bit_array(bits)
    usable = array.size - (array.size % factor)
    if usable == 0:
        return np.empty(0, dtype=np.int8)
    blocks = array[:usable].reshape(-1, factor)
    return (np.sum(blocks, axis=1) % 2).astype(np.int8)


def parity_filter(bits: Sequence[int] | np.ndarray, order: int = 2) -> np.ndarray:
    """Sliding-parity filter: output bit ``i`` is the XOR of input bits ``i..i+order-1``.

    Unlike :func:`xor_decimation`, the output rate equals the input rate; the
    filter only whitens short-range correlation, it cannot create entropy.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    array = _as_bit_array(bits)
    if array.size < order:
        return np.empty(0, dtype=np.int8)
    windows = np.lib.stride_tricks.sliding_window_view(array, order)
    return (np.sum(windows, axis=1) % 2).astype(np.int8)


@dataclass
class LFSRWhitener:
    """Linear-feedback shift register used as a cryptographic-style whitener.

    The raw bits are XORed into the feedback path of an LFSR and the register
    output is taken as the post-processed stream.  This mimics the simple
    "mixing" post-processing used by several industrial TRNGs; being linear it
    provides no entropy gain, only spreading.
    """

    taps: Sequence[int]
    state: int = 1

    def __post_init__(self) -> None:
        if not self.taps:
            raise ValueError("at least one tap is required")
        if min(self.taps) < 1:
            raise ValueError("tap positions are 1-based and must be >= 1")
        self.length = max(self.taps)
        if self.state <= 0:
            raise ValueError("initial state must be a positive integer")
        self.state &= (1 << self.length) - 1
        if self.state == 0:
            self.state = 1

    def process(self, bits: Sequence[int] | np.ndarray) -> np.ndarray:
        """Feed ``bits`` through the LFSR and return the output stream."""
        array = _as_bit_array(bits)
        output = np.empty(array.size, dtype=np.int8)
        state = self.state
        mask = (1 << self.length) - 1
        for index, bit in enumerate(array):
            feedback = 0
            for tap in self.taps:
                feedback ^= (state >> (tap - 1)) & 1
            feedback ^= int(bit)
            state = ((state << 1) | feedback) & mask
            output[index] = state & 1
        self.state = state
        return output


def bias(bits: Sequence[int] | np.ndarray) -> float:
    """Bias ``P(1) - 1/2`` of a bit sequence."""
    array = _as_bit_array(bits)
    if array.size == 0:
        raise ValueError("cannot compute the bias of an empty sequence")
    return float(np.mean(array) - 0.5)
