"""Sunar-Martin-Stinson model of the many-ring XOR TRNG (reference [7] of the paper).

Sunar, Martin and Stinson ("A provably secure true random number generator
with built-in tolerance to active attacks", IEEE Trans. Computers 2007)
analyse a TRNG made of many free-running rings XORed together and sampled at
a fixed rate.  Their security argument is an urn model: one sampling period is
divided into ``2 L + 1`` "urns" (phase slots); a ring contributes entropy to
the sample if one of its (jitter-displaced) transitions falls into the urn
containing the sampling instant.  With enough rings the probability that every
urn is hit — and hence that the XOR output is unbiased regardless of which
urns the attacker can influence — approaches one (a coupon-collector bound).

Like the other classical models this one assumes the jitter of each ring is
white (independent realizations); it is included both as a baseline substrate
and because the paper's refined view directly affects its key parameter (the
urn-filling probability is driven by the *thermal* jitter only).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..entropy import binary_entropy


@dataclass(frozen=True)
class SunarModel:
    """Urn model of the many-ring XOR TRNG.

    Parameters
    ----------
    n_rings:
        Number of free-running ring oscillators XORed together.
    ring_frequency_hz:
        Nominal frequency of each ring [Hz].
    sampling_frequency_hz:
        Output sampling frequency [Hz].
    relative_jitter_std:
        Standard deviation of the jitter accumulated over one sampling period,
        expressed as a fraction of the ring period (the paper's point: only
        the thermal part of the jitter should be counted here).
    """

    n_rings: int
    ring_frequency_hz: float
    sampling_frequency_hz: float
    relative_jitter_std: float

    def __post_init__(self) -> None:
        if self.n_rings < 1:
            raise ValueError("need at least one ring")
        if self.ring_frequency_hz <= 0.0 or self.sampling_frequency_hz <= 0.0:
            raise ValueError("frequencies must be > 0")
        if self.sampling_frequency_hz >= self.ring_frequency_hz:
            raise ValueError("the sampler must be slower than the rings")
        if self.relative_jitter_std < 0.0:
            raise ValueError("jitter must be >= 0")

    @property
    def transitions_per_sample(self) -> float:
        """Number of ring transitions within one sampling period."""
        return 2.0 * self.ring_frequency_hz / self.sampling_frequency_hz

    @property
    def n_urns(self) -> int:
        """Number of urns (phase slots) in the Sunar analysis.

        One urn per ring transition in a sampling period, i.e. ``2 L + 1``
        with ``L = f_ring / f_sample`` rounded to the nearest odd integer.
        """
        urns = int(round(self.transitions_per_sample)) + 1
        return urns if urns % 2 == 1 else urns + 1

    def urn_hit_probability(self) -> float:
        """Probability that one ring's transition lands in the critical urn.

        In the original analysis a ring hits the sampling urn when its
        accumulated jitter moves a transition across the urn of width one
        ring half-period around the sampling instant.  For Gaussian jitter of
        relative standard deviation ``sigma`` (in ring periods) the hit
        probability of a uniformly-phased ring is approximately
        ``min(1, sigma * sqrt(2 pi)) / n_urns`` folded over the urn grid; the
        implementation uses the standard approximation ``p = 1/n_urns`` scaled
        by the probability that the jitter is large enough to randomise the
        transition position within its urn.
        """
        if self.relative_jitter_std == 0.0:
            return 0.0
        randomisation = float(
            np.clip(self.relative_jitter_std * np.sqrt(2.0 * np.pi), 0.0, 1.0)
        )
        return randomisation / self.n_urns

    def probability_all_urns_filled(self) -> float:
        """Probability that every urn receives at least one jittered transition.

        Coupon-collector style union bound used by Sunar et al.:
        ``P >= 1 - n_urns (1 - p)^n_rings`` (clipped to [0, 1]).
        """
        probability_miss = (1.0 - self.urn_hit_probability()) ** self.n_rings
        return float(np.clip(1.0 - self.n_urns * probability_miss, 0.0, 1.0))

    def output_bias_bound(self) -> float:
        """Bound on the output bias: 1/2 times the probability of an unfilled urn."""
        return 0.5 * (1.0 - self.probability_all_urns_filled())

    def entropy_lower_bound(self) -> float:
        """Entropy per output bit implied by the bias bound [bits]."""
        return binary_entropy(0.5 + self.output_bias_bound())

    def rings_needed(self, target_fill_probability: float = 0.99) -> int:
        """Number of rings needed to fill all urns with the target probability."""
        if not 0.0 < target_fill_probability < 1.0:
            raise ValueError("target probability must be in (0, 1)")
        hit = self.urn_hit_probability()
        if hit <= 0.0:
            raise ValueError("zero jitter: no number of rings fills the urns")
        if hit >= 1.0:
            return 1
        needed = np.log((1.0 - target_fill_probability) / self.n_urns) / np.log(
            1.0 - hit
        )
        return max(int(np.ceil(needed)), 1)

    def with_jitter(self, relative_jitter_std: float) -> "SunarModel":
        """Copy of the model with a different jitter figure.

        Used to contrast the classical evaluation (total measured jitter,
        flicker included) with the refined one (thermal-only jitter): the
        refined figure is smaller, so more rings are needed for the same
        security level.
        """
        return SunarModel(
            n_rings=self.n_rings,
            ring_frequency_hz=self.ring_frequency_hz,
            sampling_frequency_hz=self.sampling_frequency_hz,
            relative_jitter_std=relative_jitter_std,
        )
