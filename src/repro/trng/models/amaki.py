"""Amaki-style Markov-chain model of an oscillator-based TRNG.

Amaki, Hashimoto, Mitsuyama and Onoye ("A design procedure for
oscillator-based hardware random number generator with stochastic behavior
modeling", WISA 2011) describe the sampled oscillator phase as a Markov chain
on a discretised phase circle: between two samples the phase advances by a
deterministic amount (set by the frequency ratio) plus a Gaussian perturbation
(the accumulated jitter), and each output bit is a deterministic function of
the phase bin (high/low half of the period).

This implementation keeps the three ingredients — phase discretisation,
wrapped-Gaussian transition kernel and bit emission — and exposes the
stationary distribution, per-bit probabilities and entropy rate.  Like the
Baudet model it inherits the independence assumption: the jitter added at
every step is independent of the past, so it serves as a second "classical"
baseline for the comparison experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ...scalars import is_scalar_input, scalar_like
from ..entropy import binary_entropy


@dataclass
class AmakiMarkovModel:
    """Discretised phase-diffusion Markov model of a sampled oscillator.

    Parameters
    ----------
    phase_step_fraction:
        Deterministic phase advance per sample, as a fraction of one period
        (set by the frequency ratio of the two oscillators, modulo 1).
    jitter_std_fraction:
        Standard deviation of the per-sample phase perturbation, as a
        fraction of one period (accumulated jitter / T0).
    n_bins:
        Number of discretisation bins of the phase circle.
    duty_cycle:
        Fraction of the period during which the sampled waveform is high.
    """

    phase_step_fraction: float
    jitter_std_fraction: float
    n_bins: int = 256
    duty_cycle: float = 0.5
    _transition_matrix: Optional[np.ndarray] = field(
        default=None, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.n_bins < 8:
            raise ValueError("need at least 8 phase bins")
        if self.jitter_std_fraction < 0.0:
            raise ValueError("jitter std must be >= 0")
        if not 0.0 < self.duty_cycle < 1.0:
            raise ValueError("duty cycle must be in (0, 1)")
        self.phase_step_fraction = float(self.phase_step_fraction) % 1.0

    # -- transition kernel ------------------------------------------------------

    def transition_matrix(self) -> np.ndarray:
        """Row-stochastic transition matrix of the phase chain."""
        if self._transition_matrix is not None:
            return self._transition_matrix
        n = self.n_bins
        centers = (np.arange(n) + 0.5) / n
        matrix = np.empty((n, n))
        for source in range(n):
            target_mean = centers[source] + self.phase_step_fraction
            distances = _wrapped_difference(centers, target_mean)
            matrix[source] = _wrapped_gaussian_density(
                distances, self.jitter_std_fraction, bin_width=1.0 / n
            )
            row_sum = matrix[source].sum()
            if row_sum <= 0.0:
                # Degenerate (zero jitter): put all mass on the nearest bin.
                matrix[source] = 0.0
                matrix[source, int(np.argmin(np.abs(distances)))] = 1.0
            else:
                matrix[source] /= row_sum
        self._transition_matrix = matrix
        return matrix

    def stationary_distribution(self, tolerance: float = 1e-12) -> np.ndarray:
        """Stationary distribution of the phase chain (power iteration)."""
        matrix = self.transition_matrix()
        distribution = np.full(self.n_bins, 1.0 / self.n_bins)
        for _iteration in range(10_000):
            updated = distribution @ matrix
            if np.max(np.abs(updated - distribution)) < tolerance:
                return updated
            distribution = updated
        return distribution

    # -- emission and entropy ---------------------------------------------------

    def bit_for_bin(self, bin_index: np.ndarray | int) -> np.ndarray | int:
        """Output bit associated with a phase bin (1 in the first ``duty_cycle``)."""
        centers = (np.asarray(bin_index) + 0.5) / self.n_bins
        bits = (centers % 1.0) < self.duty_cycle
        if is_scalar_input(bin_index):
            return scalar_like(bits, bin_index, cast=int)
        return bits.astype(np.int8)

    def probability_of_one(self) -> float:
        """Stationary probability that an output bit equals 1."""
        distribution = self.stationary_distribution()
        bits = self.bit_for_bin(np.arange(self.n_bins))
        return float(np.sum(distribution[bits == 1]))

    def entropy_per_bit(self) -> float:
        """Stationary (marginal) Shannon entropy of one output bit."""
        return binary_entropy(self.probability_of_one())

    def conditional_entropy_per_bit(self) -> float:
        """Entropy of the next bit given the current *bit* (not the full phase).

        This is the quantity an external evaluator sees; it accounts for the
        bit-to-bit memory introduced when the per-sample phase diffusion is
        small compared to one period.
        """
        matrix = self.transition_matrix()
        distribution = self.stationary_distribution()
        bits = self.bit_for_bin(np.arange(self.n_bins))
        entropy = 0.0
        for bit_value in (0, 1):
            mask = bits == bit_value
            weight = float(np.sum(distribution[mask]))
            if weight == 0.0:
                continue
            conditional_state = distribution[mask] / weight
            next_distribution = conditional_state @ matrix[mask]
            probability_one = float(np.sum(next_distribution[bits == 1]))
            entropy += weight * binary_entropy(probability_one)
        return entropy

    def simulate_bits(
        self, n_bits: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Draw a bit sequence by simulating the Markov chain."""
        if n_bits < 1:
            raise ValueError("n_bits must be >= 1")
        rng = np.random.default_rng() if rng is None else rng
        matrix = self.transition_matrix()
        cumulative = np.cumsum(matrix, axis=1)
        state = int(rng.integers(0, self.n_bins))
        bits = np.empty(n_bits, dtype=np.int8)
        all_bits = self.bit_for_bin(np.arange(self.n_bins))
        for index in range(n_bits):
            state = int(np.searchsorted(cumulative[state], rng.random()))
            state = min(state, self.n_bins - 1)
            bits[index] = all_bits[state]
        return bits


def _wrapped_difference(values: np.ndarray, reference: float) -> np.ndarray:
    """Signed circular difference on the unit circle, in (-0.5, 0.5]."""
    difference = (values - reference) % 1.0
    difference[difference > 0.5] -= 1.0
    return difference


def _wrapped_gaussian_density(
    distances: np.ndarray, std: float, bin_width: float, n_wraps: int = 8
) -> np.ndarray:
    """Un-normalised wrapped Gaussian mass per bin."""
    if std == 0.0:
        return (np.abs(distances) <= bin_width / 2.0).astype(float)
    density = np.zeros_like(distances)
    for wrap in range(-n_wraps, n_wraps + 1):
        density += np.exp(-0.5 * ((distances + wrap) / std) ** 2)
    return density * bin_width
