"""Refined (multilevel) entropy model: only thermal jitter counts as fresh entropy.

The paper's conclusion: classical models fold the *total* measured jitter —
thermal plus flicker — into the accumulated variance and, assuming mutual
independence, predict an entropy per bit that is higher than reality, "the
entropy per bit at the generator output and in consequence also the security
was thus much lower than expected".

The refined model implemented here follows the paper's recommendation:

* the per-period jitter variance fed to the Wiener/Baudet machinery is the
  *thermal-only* variance ``sigma_th^2 = b_th / f0^3`` extracted via the
  Section IV pipeline (the flicker component is autocorrelated, hence partly
  predictable by an attacker who observed the past, and must not be counted);
* the *naive* figure that a classical evaluation would have produced is also
  computed, by back-dividing the total accumulated variance measured over a
  calibration window of ``N_cal`` periods — this is what the comparison
  benchmark (experiment ``FIG2-VS-FIG3``) sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


from ...core.theory import sigma2_n_closed_form
from ...phase.psd import PhaseNoisePSD
from .baudet import BaudetModel, entropy_lower_bound, quality_factor


@dataclass(frozen=True)
class EntropyComparison:
    """Naive vs refined entropy prediction for one accumulation length."""

    accumulation_length: int
    naive_entropy: float
    refined_entropy: float
    naive_quality_factor: float
    refined_quality_factor: float

    @property
    def overestimation(self) -> float:
        """How much entropy the naive model promises in excess of the refined one."""
        return self.naive_entropy - self.refined_entropy


class RefinedEntropyModel:
    """Entropy model of an eRO-TRNG driven by the fitted ``b_th``/``b_fl``.

    Parameters
    ----------
    f0_hz:
        Nominal frequency of the oscillators [Hz].
    relative_psd:
        Phase-noise PSD of the *relative* jitter process between the two
        rings (the sum of the two per-oscillator PSDs).
    """

    def __init__(self, f0_hz: float, relative_psd: PhaseNoisePSD) -> None:
        if f0_hz <= 0.0:
            raise ValueError("f0 must be > 0")
        self.f0_hz = float(f0_hz)
        self.relative_psd = relative_psd

    @property
    def nominal_period_s(self) -> float:
        """Nominal period ``T0`` [s]."""
        return 1.0 / self.f0_hz

    @property
    def thermal_per_period_variance_s2(self) -> float:
        """Thermal-only per-period variance ``b_th / f0^3`` [s^2]."""
        return self.relative_psd.thermal_period_jitter_variance(self.f0_hz)

    # -- refined (paper) prediction ------------------------------------------

    def refined_quality_factor(self, accumulation_length: int) -> float:
        """``Q`` computed from the thermal-only accumulated variance."""
        if accumulation_length < 1:
            raise ValueError("accumulation length must be >= 1")
        accumulated = self.thermal_per_period_variance_s2 * accumulation_length
        return quality_factor(accumulated, self.nominal_period_s)

    def entropy_per_bit(self, accumulation_length: int) -> float:
        """Refined entropy lower bound after ``N`` periods of accumulation."""
        return entropy_lower_bound(self.refined_quality_factor(accumulation_length))

    def accumulation_for_entropy(self, min_entropy_per_bit: float) -> int:
        """Smallest ``N`` achieving the target entropy, counting thermal noise only."""
        baudet = BaudetModel(self.f0_hz, self.thermal_per_period_variance_s2)
        return baudet.accumulation_for_entropy(min_entropy_per_bit)

    # -- naive (classical) prediction ------------------------------------------

    def naive_per_period_variance_s2(self, calibration_length: int) -> float:
        """Per-period variance a classical evaluation would infer.

        The classical procedure measures the accumulated variance over
        ``N_cal`` periods and divides by ``2 N_cal`` (Bienayme, Eq. 6),
        implicitly assuming independence.  Because ``sigma^2_N`` also contains
        the flicker term, the inferred per-period variance is inflated by the
        factor ``1 + N_cal / K``.
        """
        if calibration_length < 1:
            raise ValueError("calibration length must be >= 1")
        total = float(
            sigma2_n_closed_form(self.relative_psd, self.f0_hz, calibration_length)
        )
        return total / (2.0 * calibration_length)

    def naive_quality_factor(
        self, accumulation_length: int, calibration_length: Optional[int] = None
    ) -> float:
        """``Q`` under the classical independence assumption."""
        if accumulation_length < 1:
            raise ValueError("accumulation length must be >= 1")
        calibration = (
            accumulation_length if calibration_length is None else calibration_length
        )
        per_period = self.naive_per_period_variance_s2(calibration)
        return quality_factor(
            per_period * accumulation_length, self.nominal_period_s
        )

    def naive_entropy_per_bit(
        self, accumulation_length: int, calibration_length: Optional[int] = None
    ) -> float:
        """Entropy the classical model would claim for the same design point."""
        return entropy_lower_bound(
            self.naive_quality_factor(accumulation_length, calibration_length)
        )

    # -- side-by-side comparison -----------------------------------------------

    def compare(
        self, accumulation_length: int, calibration_length: Optional[int] = None
    ) -> EntropyComparison:
        """Naive vs refined prediction at one accumulation length."""
        return EntropyComparison(
            accumulation_length=int(accumulation_length),
            naive_entropy=self.naive_entropy_per_bit(
                accumulation_length, calibration_length
            ),
            refined_entropy=self.entropy_per_bit(accumulation_length),
            naive_quality_factor=self.naive_quality_factor(
                accumulation_length, calibration_length
            ),
            refined_quality_factor=self.refined_quality_factor(accumulation_length),
        )
