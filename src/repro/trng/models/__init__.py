"""Stochastic models of P-TRNGs: the classical baselines and the refined model."""

from .amaki import AmakiMarkovModel
from .baudet import (
    BaudetModel,
    bit_bias_upper_bound,
    entropy_from_worst_case_bias,
    entropy_lower_bound,
    quality_factor,
    required_quality_factor,
)
from .bernard_pll import CoherentSamplingModel, sweep_jitter
from .refined import EntropyComparison, RefinedEntropyModel
from .sunar import SunarModel

__all__ = [
    "AmakiMarkovModel",
    "BaudetModel",
    "CoherentSamplingModel",
    "EntropyComparison",
    "RefinedEntropyModel",
    "SunarModel",
    "bit_bias_upper_bound",
    "entropy_from_worst_case_bias",
    "entropy_lower_bound",
    "quality_factor",
    "required_quality_factor",
    "sweep_jitter",
]
