"""Baudet-style stochastic model of the eRO-TRNG (independence assumption).

Baudet, Lubicz, Micolod and Tassiaux ("On the security of oscillator-based
random number generators", J. Cryptology 2011) model the sampled phase of an
elementary RO-TRNG as a Wiener process: between two samples the relative
phase diffuses by a Gaussian amount whose variance grows *linearly* with the
accumulation time — which is exactly the mutual-independence assumption the
paper scrutinises.

The key quantity is the quality factor

    Q = sigma_acc^2 / T0^2

the accumulated (relative) jitter variance between two samples expressed in
squared periods of the sampled oscillator.  The model then gives:

* the bias of the output bit:  |bias| <= (2/pi) exp(-2 pi^2 Q),
* a lower bound on the Shannon entropy per bit:
  H >= 1 - (4 / (pi^2 ln 2)) exp(-4 pi^2 Q).

Both expressions come from expanding the wrapped-Gaussian sampling probability
in Fourier series and keeping the dominant term; they are accurate as soon as
Q is not tiny (Q >~ 0.05).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...trng.entropy import binary_entropy


def quality_factor(accumulated_variance_s2: float, nominal_period_s: float) -> float:
    """Quality factor ``Q = sigma_acc^2 / T0^2`` of one sampling interval."""
    if accumulated_variance_s2 < 0.0:
        raise ValueError("accumulated variance must be >= 0")
    if nominal_period_s <= 0.0:
        raise ValueError("nominal period must be > 0")
    return accumulated_variance_s2 / nominal_period_s**2


def bit_bias_upper_bound(quality: float) -> float:
    """Worst-case output bias ``(2/pi) exp(-2 pi^2 Q)`` (capped at 1/2)."""
    if quality < 0.0:
        raise ValueError("quality factor must be >= 0")
    return float(min(0.5, (2.0 / np.pi) * np.exp(-2.0 * np.pi**2 * quality)))


def entropy_lower_bound(quality: float) -> float:
    """Baudet et al. lower bound on the Shannon entropy per raw bit.

    ``H >= 1 - (4/(pi^2 ln2)) exp(-4 pi^2 Q)``, clipped to [0, 1].
    """
    if quality < 0.0:
        raise ValueError("quality factor must be >= 0")
    bound = 1.0 - (4.0 / (np.pi**2 * np.log(2.0))) * np.exp(
        -4.0 * np.pi**2 * quality
    )
    return float(min(max(bound, 0.0), 1.0))


def entropy_from_worst_case_bias(quality: float) -> float:
    """Shannon entropy of a bit carrying the worst-case bias for this ``Q``."""
    return binary_entropy(0.5 + bit_bias_upper_bound(quality))


def required_quality_factor(min_entropy_per_bit: float) -> float:
    """Quality factor needed for the entropy lower bound to reach a target.

    Inverts :func:`entropy_lower_bound`; AIS31's PTG.2 class effectively asks
    for 0.997 bit of Shannon entropy per raw bit.
    """
    if not 0.0 < min_entropy_per_bit < 1.0:
        raise ValueError("target entropy must be in (0, 1)")
    deficit = 1.0 - min_entropy_per_bit
    return float(
        -np.log(deficit * np.pi**2 * np.log(2.0) / 4.0) / (4.0 * np.pi**2)
    )


@dataclass(frozen=True)
class BaudetModel:
    """Classical (Fig. 2) stochastic model of an eRO-TRNG.

    Parameters
    ----------
    f0_hz:
        Nominal frequency of the sampled oscillator [Hz].
    per_period_jitter_variance_s2:
        Variance attributed to *one* period of relative jitter, assumed to
        accumulate linearly (independent realizations).  The classical
        evaluation practice is to measure the total jitter over some window
        and divide by the window length — which, as the paper shows, silently
        folds the flicker noise into this figure.
    """

    f0_hz: float
    per_period_jitter_variance_s2: float

    def __post_init__(self) -> None:
        if self.f0_hz <= 0.0:
            raise ValueError("f0 must be > 0")
        if self.per_period_jitter_variance_s2 < 0.0:
            raise ValueError("variance must be >= 0")

    @property
    def nominal_period_s(self) -> float:
        """Nominal period of the sampled oscillator [s]."""
        return 1.0 / self.f0_hz

    def accumulated_variance(self, accumulation_length: int) -> float:
        """Variance after ``N`` periods under the independence assumption [s^2]."""
        if accumulation_length < 1:
            raise ValueError("accumulation length must be >= 1")
        return self.per_period_jitter_variance_s2 * accumulation_length

    def quality_factor(self, accumulation_length: int) -> float:
        """``Q`` after ``N`` periods of accumulation."""
        return quality_factor(
            self.accumulated_variance(accumulation_length), self.nominal_period_s
        )

    def entropy_per_bit(self, accumulation_length: int) -> float:
        """Entropy lower bound after ``N`` periods of accumulation."""
        return entropy_lower_bound(self.quality_factor(accumulation_length))

    def bias_upper_bound(self, accumulation_length: int) -> float:
        """Worst-case bias after ``N`` periods of accumulation."""
        return bit_bias_upper_bound(self.quality_factor(accumulation_length))

    def accumulation_for_entropy(self, min_entropy_per_bit: float) -> int:
        """Smallest ``N`` achieving the target entropy under this model."""
        target_q = required_quality_factor(min_entropy_per_bit)
        if self.per_period_jitter_variance_s2 == 0.0:
            raise ValueError("zero jitter: the target entropy is unreachable")
        needed = target_q * self.nominal_period_s**2 / self.per_period_jitter_variance_s2
        return int(np.ceil(needed))
