"""Bernard-Fischer-Valtchanov stochastic model of the PLL-based (coherent-sampling) TRNG.

Bernard, Fischer and Valtchanov ("Mathematical model of physical RNGs based on
coherent sampling", 2010) analyse a TRNG in which a PLL-synthesized clock at
``f_ref * K_M / K_D`` is sampled by the reference clock.  Thanks to the
rational frequency ratio, the relative phase of the two clocks visits ``K_M``
equidistant positions (pitch ``T_out / K_D``) before the pattern repeats.
Samples whose distance to the nearest clock edge is small compared to the
jitter are random; the others are deterministic.

The model below computes, for a given jitter, the per-sample probability of a
"1", the expected number of random samples per pattern and the entropy per
pattern — the figures the original paper uses to dimension ``K_M``/``K_D``.
Like the other classical models it assumes the per-sample jitter realizations
are independent, which is reasonable here because the PLL loop filters out the
slow flicker wander (see ``repro.oscillator.pll``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np
from scipy import stats

from ...oscillator.pll import PLLConfiguration
from ..entropy import binary_entropy


@dataclass(frozen=True)
class CoherentSamplingModel:
    """Stochastic model of one coherent-sampling pattern.

    Parameters
    ----------
    configuration:
        The PLL ratio and output jitter.
    reference_frequency_hz:
        Frequency of the sampling (reference) clock [Hz].
    duty_cycle:
        Duty cycle of the sampled (PLL output) clock.
    """

    configuration: PLLConfiguration
    reference_frequency_hz: float
    duty_cycle: float = 0.5

    def __post_init__(self) -> None:
        if self.reference_frequency_hz <= 0.0:
            raise ValueError("reference frequency must be > 0")
        if not 0.0 < self.duty_cycle < 1.0:
            raise ValueError("duty cycle must be in (0, 1)")

    @property
    def output_period_s(self) -> float:
        """Period of the PLL-synthesized (sampled) clock [s]."""
        ratio = (
            self.configuration.multiplication_factor
            / self.configuration.division_factor
        )
        return 1.0 / (self.reference_frequency_hz * ratio)

    @property
    def phase_positions_s(self) -> np.ndarray:
        """Relative phase of each of the ``K_D`` samples within one output period [s].

        With coherent sampling the ``K_D`` samples of one pattern land on a
        regular grid of pitch ``T_out / K_D`` (in some pattern-dependent
        order; the order does not affect the entropy computation).
        """
        k_d = self.configuration.division_factor
        return (np.arange(k_d) + 0.5) * self.output_period_s / k_d

    def probability_of_one(self) -> np.ndarray:
        """Probability that each sample of the pattern reads 1.

        A sample at relative phase ``x`` reads the sampled clock high when the
        (jittered) rising edge happens before ``x`` and the falling edge after
        it; with Gaussian edge jitter ``sigma`` this is a difference of two
        normal CDFs centred on the two edges.
        """
        sigma = self.configuration.output_jitter_std_s
        period = self.output_period_s
        positions = self.phase_positions_s
        rising_edge = 0.0
        falling_edge = self.duty_cycle * period
        if sigma == 0.0:
            return ((positions >= rising_edge) & (positions < falling_edge)).astype(
                float
            )
        after_rising = stats.norm.cdf((positions - rising_edge) / sigma)
        after_falling = stats.norm.cdf((positions - falling_edge) / sigma)
        # Wrap-around of the previous period's falling edge.
        after_previous_falling = stats.norm.cdf(
            (positions - (falling_edge - period)) / sigma
        )
        return np.clip(
            after_rising - after_falling + (1.0 - after_previous_falling), 0.0, 1.0
        )

    def sensitive_samples(self, probability_margin: float = 0.01) -> int:
        """Number of samples per pattern whose outcome is genuinely uncertain."""
        if not 0.0 < probability_margin < 0.5:
            raise ValueError("probability margin must be in (0, 0.5)")
        probabilities = self.probability_of_one()
        uncertain = (probabilities > probability_margin) & (
            probabilities < 1.0 - probability_margin
        )
        return int(np.count_nonzero(uncertain))

    def entropy_per_pattern(self) -> float:
        """Shannon entropy contributed by one pattern of ``K_D`` samples [bits].

        Samples are treated as independent (the PLL jitter is white), so the
        pattern entropy is the sum of the per-sample binary entropies.
        """
        probabilities = self.probability_of_one()
        return float(sum(binary_entropy(float(p)) for p in probabilities))

    def entropy_per_output_bit(self) -> float:
        """Entropy per output bit when the pattern is XOR-compressed to one bit.

        The original design XORs the ``K_D`` samples of a pattern into a single
        output bit; the piling-up lemma gives the resulting bias.
        """
        probabilities = self.probability_of_one()
        # Bias of the XOR of independent bits: product of individual biases
        # times 2^(n-1) (piling-up lemma), folded into probability space.
        correlation = np.prod(1.0 - 2.0 * probabilities)
        probability_one = 0.5 * (1.0 - correlation)
        return binary_entropy(float(probability_one))


def sweep_jitter(
    configuration: PLLConfiguration,
    reference_frequency_hz: float,
    jitter_values_s: np.ndarray,
) -> List[float]:
    """Entropy per output bit as a function of the PLL output jitter."""
    results = []
    for jitter in np.asarray(jitter_values_s, dtype=float):
        swept = PLLConfiguration(
            multiplication_factor=configuration.multiplication_factor,
            division_factor=configuration.division_factor,
            output_jitter_std_s=float(jitter),
        )
        model = CoherentSamplingModel(swept, reference_frequency_hz)
        results.append(model.entropy_per_output_bit())
    return results
