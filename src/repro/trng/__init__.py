"""TRNG construction layer: digitizer, eRO-TRNG, post-processing, entropy tools.

The scalar classes here are thin ``B = 1`` views over the batched bit
pipeline; :class:`repro.engine.bits.BatchedEROTRNG` (re-exported here) is
their whole-ensemble counterpart.
"""

from ..engine.bits import BatchedEROTRNG, BatchedSamplingResult
from .digitizer import DFlipFlopSampler, SamplingResult, square_wave_level
from .entropy import (
    binary_entropy,
    bit_bias,
    block_probabilities,
    conditional_entropy_per_bit,
    entropy_from_bias,
    markov_entropy_rate,
    min_entropy_per_bit,
    shannon_entropy_per_bit,
)
from .ero_trng import EROTRNG, EROTRNGConfiguration
from .postprocessing import (
    LFSRWhitener,
    bias,
    parity_filter,
    von_neumann,
    xor_decimation,
)

__all__ = [
    "BatchedEROTRNG",
    "BatchedSamplingResult",
    "DFlipFlopSampler",
    "EROTRNG",
    "EROTRNGConfiguration",
    "LFSRWhitener",
    "SamplingResult",
    "bias",
    "bit_bias",
    "binary_entropy",
    "block_probabilities",
    "conditional_entropy_per_bit",
    "entropy_from_bias",
    "markov_entropy_rate",
    "min_entropy_per_bit",
    "parity_filter",
    "shannon_entropy_per_bit",
    "square_wave_level",
    "von_neumann",
    "xor_decimation",
]
