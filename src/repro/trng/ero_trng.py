"""Elementary ring-oscillator TRNG (eRO-TRNG, Fig. 4 of the paper).

Two free-running ring oscillators: the first drives the D input of a flip-flop
and the second, divided by ``D`` (the accumulation length), drives its clock
input.  The raw random analog signal is the relative jitter of the two rings;
each output bit is decided by where the accumulated relative phase happens to
land with respect to the sampled oscillator's edges.

The class wires together the oscillator, digitizer and (optional)
post-processing layers of this library and exposes both bit generation and
the ground-truth parameters needed by the stochastic models.  Since the
batched bit pipeline (:mod:`repro.engine.bits`), a scalar :class:`EROTRNG`
is a thin ``B = 1`` view over :class:`repro.engine.bits.BatchedEROTRNG`:
the generator owns one RNG stream, spawns one sub-stream per ring, and its
bit stream *continues* across ``generate`` calls — chunked generation is
bit-for-bit identical to one monolithic call (see
:func:`repro.engine.streaming.stream_bits`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..engine.bits import BatchedEROTRNG
from ..paper import PAPER_F0_HZ
from ..phase.psd import PhaseNoisePSD
from .digitizer import SamplingResult


@dataclass(frozen=True)
class EROTRNGConfiguration:
    """Design parameters of an elementary RO-TRNG.

    Attributes
    ----------
    f0_hz:
        Nominal frequency of both ring oscillators [Hz].
    oscillator_psd:
        Per-oscillator phase-noise PSD.
    divider:
        Accumulation length ``D``: one output bit every ``D`` periods of the
        sampling oscillator.
    frequency_mismatch:
        Relative frequency difference between the two rings; a small mismatch
        is what sweeps the sampling point across the sampled period.
    """

    f0_hz: float
    oscillator_psd: PhaseNoisePSD
    divider: int
    frequency_mismatch: float = 1e-3

    def __post_init__(self) -> None:
        if self.f0_hz <= 0.0:
            raise ValueError("f0 must be > 0")
        if self.divider < 1:
            raise ValueError("divider must be >= 1")
        if abs(self.frequency_mismatch) >= 0.05:
            raise ValueError("frequency mismatch must stay below 5%")


class EROTRNG:
    """Elementary RO-TRNG: two rings, one sampling flip-flop, optional post-processing."""

    def __init__(
        self,
        configuration: EROTRNGConfiguration,
        rng: Optional[np.random.Generator] = None,
        postprocessor: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> None:
        self.configuration = configuration
        self.rng = np.random.default_rng() if rng is None else rng
        self.postprocessor = postprocessor
        # B = 1 view over the batched kernel: this instance's stream is the
        # single parent, split by the kernel into one sub-stream per ring.
        self._batched = BatchedEROTRNG(
            configuration, batch_size=1, rngs=[self.rng]
        )
        # Scalar oscillator views sharing the row streams (reading parameters
        # is free; generating periods from them advances the TRNG's streams).
        self.sampled_oscillator = self._batched.sampled_ensemble.row(0)
        self.sampling_oscillator = self._batched.sampling_ensemble.row(0)
        self._sampler = self._batched._sampler

    @classmethod
    def paper_reference_design(
        cls,
        divider: int = 5000,
        rng: Optional[np.random.Generator] = None,
    ) -> "EROTRNG":
        """An eRO-TRNG built from the paper-calibrated 103 MHz oscillators."""
        from ..measurement.platform import PAPER_CYCLONE_III

        configuration = EROTRNGConfiguration(
            f0_hz=PAPER_F0_HZ,
            oscillator_psd=PAPER_CYCLONE_III.oscillator_psd,
            divider=divider,
            frequency_mismatch=PAPER_CYCLONE_III.frequency_mismatch,
        )
        return cls(configuration, rng=rng)

    @property
    def divider(self) -> int:
        """Accumulation length ``D`` (sampling-oscillator periods per bit)."""
        return self.configuration.divider

    @property
    def relative_psd(self) -> PhaseNoisePSD:
        """Ground-truth PSD of the relative jitter exploited by the TRNG."""
        psd = self.configuration.oscillator_psd
        return PhaseNoisePSD(2.0 * psd.b_thermal_hz, 2.0 * psd.b_flicker_hz2)

    @property
    def output_bit_rate_hz(self) -> float:
        """Raw bit rate before post-processing [bit/s]."""
        return self.sampling_oscillator.f0_hz / self.divider

    def generate_raw(self, n_bits: int) -> SamplingResult:
        """Generate the next ``n_bits`` raw bits with their sampling times.

        Streaming semantics: consecutive calls continue the generator's bit
        stream (the two ring timelines advance seamlessly), so chunked
        generation concatenates to exactly the monolithic record.
        """
        return self._batched.generate_raw(n_bits).row(0)

    def generate(self, n_bits: int) -> np.ndarray:
        """Generate ``n_bits`` *raw* bits and apply the post-processor, if any.

        Length contract: ``n_bits`` counts the raw bits entering the
        post-processor, so the returned array has exactly ``n_bits`` elements
        only when no post-processor is configured.  A decimating
        post-processor (von Neumann, XOR decimation, parity filtering)
        returns *fewer* bits — possibly zero.  Callers that need an exact
        post-processed output length should use :meth:`generate_exact`.
        """
        raw = self.generate_raw(n_bits).bits
        if self.postprocessor is None:
            return raw
        return self.postprocessor(raw)

    def generate_exact(
        self, n_bits: int, chunk_bits: Optional[int] = None
    ) -> np.ndarray:
        """Exactly ``n_bits`` *post-processed* bits, whatever the decimation.

        Raw bits are generated in chunks (``chunk_bits`` raw bits at a time,
        default ``max(min(n_bits, 8192), 64)``) and fed through the
        post-processor
        until ``n_bits`` output bits have accumulated, so the peak memory is
        bounded by the per-chunk synthesis blocks rather than growing with
        the requested length — see :mod:`repro.engine.streaming`.  Raises
        ``RuntimeError`` if the post-processor keeps returning nothing.
        """
        from ..engine.streaming import generate_bits_exact

        return generate_bits_exact(self, n_bits, chunk_bits=chunk_bits)
