"""Entropy estimators for raw and post-processed bit streams.

The security requirement on a P-TRNG is expressed as entropy per bit of the
raw binary sequence (AIS31).  This module provides the empirical estimators
used to *check* a bit stream (Shannon entropy of blocks, min-entropy,
Markov-chain entropy rate) and the analytic helpers shared by the stochastic
models (binary entropy of a known bias).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def binary_entropy(probability_of_one: float) -> float:
    """Shannon entropy (bits) of a Bernoulli variable with the given probability."""
    p = float(probability_of_one)
    if not 0.0 <= p <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    if p in (0.0, 1.0):
        return 0.0
    return float(-p * np.log2(p) - (1.0 - p) * np.log2(1.0 - p))


def entropy_from_bias(bias: float) -> float:
    """Shannon entropy per bit of a Bernoulli bit with bias ``P(1) - 1/2``."""
    if not -0.5 <= bias <= 0.5:
        raise ValueError("bias must be in [-1/2, 1/2]")
    return binary_entropy(0.5 + bias)


def _as_bits(bits: Sequence[int] | np.ndarray) -> np.ndarray:
    array = np.asarray(bits)
    if array.ndim != 1:
        raise ValueError("bit sequences must be one-dimensional")
    if array.size and not np.all((array == 0) | (array == 1)):
        raise ValueError("bit sequences may only contain 0 and 1")
    return array.astype(np.int64)


def block_probabilities(bits: Sequence[int] | np.ndarray, block_size: int) -> np.ndarray:
    """Empirical probabilities of all ``2**block_size`` non-overlapping blocks."""
    array = _as_bits(bits)
    if block_size < 1:
        raise ValueError("block size must be >= 1")
    if block_size > 24:
        raise ValueError("block size above 24 bits is not supported")
    n_blocks = array.size // block_size
    if n_blocks == 0:
        raise ValueError("sequence shorter than one block")
    blocks = array[: n_blocks * block_size].reshape(n_blocks, block_size)
    weights = 1 << np.arange(block_size - 1, -1, -1)
    values = blocks @ weights
    counts = np.bincount(values, minlength=1 << block_size)
    return counts / n_blocks


def shannon_entropy_per_bit(
    bits: Sequence[int] | np.ndarray, block_size: int = 1
) -> float:
    """Empirical Shannon entropy per bit, estimated on ``block_size``-bit blocks."""
    probabilities = block_probabilities(bits, block_size)
    nonzero = probabilities[probabilities > 0.0]
    entropy_per_block = float(-np.sum(nonzero * np.log2(nonzero)))
    return entropy_per_block / block_size


def min_entropy_per_bit(bits: Sequence[int] | np.ndarray, block_size: int = 1) -> float:
    """Empirical min-entropy per bit: ``-log2(max block probability) / block_size``."""
    probabilities = block_probabilities(bits, block_size)
    max_probability = float(np.max(probabilities))
    if max_probability <= 0.0:
        raise ValueError("degenerate block distribution")
    return float(-np.log2(max_probability) / block_size)


def markov_entropy_rate(bits: Sequence[int] | np.ndarray) -> float:
    """Entropy rate of the first-order Markov chain fitted to the bit stream.

    This estimator, unlike the block Shannon entropy, is sensitive to serial
    dependence between consecutive bits — the kind of defect produced by
    correlated jitter — and is the basis of AIS31's T8-style evaluation of
    the internal random numbers.
    """
    array = _as_bits(bits)
    if array.size < 2:
        raise ValueError("need at least two bits")
    current = array[:-1]
    following = array[1:]
    entropy = 0.0
    for state in (0, 1):
        mask = current == state
        state_probability = float(np.mean(mask))
        if state_probability == 0.0:
            continue
        transition_probability = float(np.mean(following[mask]))
        entropy += state_probability * binary_entropy(transition_probability)
    return entropy


def conditional_entropy_per_bit(
    bits: Sequence[int] | np.ndarray, history_bits: int = 1
) -> float:
    """Entropy of a bit conditioned on the previous ``history_bits`` bits.

    Generalises :func:`markov_entropy_rate` to longer histories; converges to
    the true entropy rate of a stationary source as the history grows (at the
    price of needing exponentially more data).
    """
    array = _as_bits(bits)
    if history_bits < 1:
        raise ValueError("history_bits must be >= 1")
    if history_bits > 16:
        raise ValueError("history_bits above 16 is not supported")
    if array.size < history_bits + 1:
        raise ValueError("sequence too short for the requested history")
    weights = 1 << np.arange(history_bits - 1, -1, -1)
    windows = np.lib.stride_tricks.sliding_window_view(array, history_bits)[:-1]
    contexts = windows @ weights
    next_bits = array[history_bits:]
    entropy = 0.0
    total = contexts.size
    for context in np.unique(contexts):
        mask = contexts == context
        context_probability = float(np.count_nonzero(mask)) / total
        transition_probability = float(np.mean(next_bits[mask]))
        entropy += context_probability * binary_entropy(transition_probability)
    return entropy
