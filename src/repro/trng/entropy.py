"""Entropy estimators for raw and post-processed bit streams.

The security requirement on a P-TRNG is expressed as entropy per bit of the
raw binary sequence (AIS31).  This module provides the empirical estimators
used to *check* a bit stream (Shannon entropy of blocks, min-entropy,
Markov-chain entropy rate) and the analytic helpers shared by the stochastic
models (binary entropy of a known bias).

The empirical estimators (``bit_bias``, ``block_probabilities``,
``shannon_entropy_per_bit``, ``min_entropy_per_bit``, ``markov_entropy_rate``)
accept either one sequence (``(n,)``, returning a float) or a whole ensemble
(``(B, n)``, one row per TRNG instance, returning a ``(B,)`` array), with the
statistics computed vectorized across rows — the shape the batched bit
pipeline (:mod:`repro.engine.bits`) produces.
:func:`conditional_entropy_per_bit` remains 1-D only.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np


def binary_entropy(probability_of_one: float) -> float:
    """Shannon entropy (bits) of a Bernoulli variable with the given probability."""
    p = float(probability_of_one)
    if not 0.0 <= p <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    if p in (0.0, 1.0):
        return 0.0
    return float(-p * np.log2(p) - (1.0 - p) * np.log2(1.0 - p))


def entropy_from_bias(bias: float) -> float:
    """Shannon entropy per bit of a Bernoulli bit with bias ``P(1) - 1/2``."""
    if not -0.5 <= bias <= 0.5:
        raise ValueError("bias must be in [-1/2, 1/2]")
    return binary_entropy(0.5 + bias)


def _as_bits(bits: Sequence[int] | np.ndarray) -> np.ndarray:
    array = np.asarray(bits)
    if array.ndim != 1:
        raise ValueError("bit sequences must be one-dimensional")
    if array.size and not np.all((array == 0) | (array == 1)):
        raise ValueError("bit sequences may only contain 0 and 1")
    return array.astype(np.int64)


def _as_bit_rows(bits: Sequence[int] | np.ndarray) -> Tuple[np.ndarray, bool]:
    """Normalize to ``(B, n)`` int64 rows; also report whether input was 1-D."""
    array = np.asarray(bits)
    if array.ndim == 1:
        return _as_bits(array)[None, :], True
    if array.ndim != 2:
        raise ValueError("bit sequences must be (n,) or (B, n) arrays")
    if array.size and not np.all((array == 0) | (array == 1)):
        raise ValueError("bit sequences may only contain 0 and 1")
    return array.astype(np.int64), False


def _one_or_rows(values: np.ndarray, scalar: bool) -> Union[float, np.ndarray]:
    return float(values[0]) if scalar else values


def bit_bias(bits: Sequence[int] | np.ndarray) -> Union[float, np.ndarray]:
    """Empirical bias ``P(1) - 1/2`` of a bit stream (per row for ``(B, n)``)."""
    rows, scalar = _as_bit_rows(bits)
    if rows.shape[1] == 0:
        raise ValueError("need at least one bit")
    return _one_or_rows(np.mean(rows, axis=1) - 0.5, scalar)


def block_probabilities(
    bits: Sequence[int] | np.ndarray, block_size: int
) -> np.ndarray:
    """Empirical probabilities of all ``2**block_size`` non-overlapping blocks.

    Returns ``(2**block_size,)`` for a 1-D input and ``(B, 2**block_size)``
    for a ``(B, n)`` input (one distribution per row, computed with a single
    shared ``bincount``).
    """
    rows, scalar = _as_bit_rows(bits)
    if block_size < 1:
        raise ValueError("block size must be >= 1")
    if block_size > 24:
        raise ValueError("block size above 24 bits is not supported")
    batch = rows.shape[0]
    n_blocks = rows.shape[1] // block_size
    if n_blocks == 0:
        raise ValueError("sequence shorter than one block")
    blocks = rows[:, : n_blocks * block_size].reshape(batch, n_blocks, block_size)
    weights = 1 << np.arange(block_size - 1, -1, -1)
    values = blocks @ weights
    n_states = 1 << block_size
    keys = values + n_states * np.arange(batch)[:, None]
    counts = np.bincount(keys.ravel(), minlength=n_states * batch)
    probabilities = counts.reshape(batch, n_states) / n_blocks
    return probabilities[0] if scalar else probabilities


def shannon_entropy_per_bit(
    bits: Sequence[int] | np.ndarray, block_size: int = 1
) -> Union[float, np.ndarray]:
    """Empirical Shannon entropy per bit, estimated on ``block_size``-bit blocks."""
    rows, scalar = _as_bit_rows(bits)
    probabilities = np.atleast_2d(block_probabilities(rows, block_size))
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(
            probabilities > 0.0,
            -probabilities * np.log2(np.where(probabilities > 0.0, probabilities, 1.0)),
            0.0,
        )
    entropy_per_block = np.sum(terms, axis=1)
    return _one_or_rows(entropy_per_block / block_size, scalar)


def min_entropy_per_bit(
    bits: Sequence[int] | np.ndarray, block_size: int = 1
) -> Union[float, np.ndarray]:
    """Empirical min-entropy per bit: ``-log2(max block probability) / block_size``."""
    rows, scalar = _as_bit_rows(bits)
    probabilities = np.atleast_2d(block_probabilities(rows, block_size))
    max_probabilities = np.max(probabilities, axis=1)
    if np.any(max_probabilities <= 0.0):
        raise ValueError("degenerate block distribution")
    return _one_or_rows(-np.log2(max_probabilities) / block_size, scalar)


def _binary_entropy_rows(probabilities: np.ndarray) -> np.ndarray:
    """Elementwise binary entropy, with ``h(0) = h(1) = 0`` (and NaN for NaN)."""
    clipped = np.clip(probabilities, 0.0, 1.0)
    inner = (0.0 < clipped) & (clipped < 1.0)
    safe = np.where(inner, clipped, 0.5)
    entropy = -safe * np.log2(safe) - (1.0 - safe) * np.log2(1.0 - safe)
    entropy = np.where(inner, entropy, 0.0)
    return np.where(np.isnan(probabilities), np.nan, entropy)


def markov_entropy_rate(
    bits: Sequence[int] | np.ndarray,
) -> Union[float, np.ndarray]:
    """Entropy rate of the first-order Markov chain fitted to the bit stream.

    This estimator, unlike the block Shannon entropy, is sensitive to serial
    dependence between consecutive bits — the kind of defect produced by
    correlated jitter — and is the basis of AIS31's T8-style evaluation of
    the internal random numbers.  Computed per row for ``(B, n)`` inputs.
    """
    rows, scalar = _as_bit_rows(bits)
    if rows.shape[1] < 2:
        raise ValueError("need at least two bits")
    current = rows[:, :-1]
    following = rows[:, 1:]
    n_transitions = current.shape[1]
    count_one = np.sum(current, axis=1)
    count_zero = n_transitions - count_one
    ones_after_one = np.sum(following * current, axis=1)
    ones_after_zero = np.sum(following, axis=1) - ones_after_one
    entropy = np.zeros(rows.shape[0])
    with np.errstate(divide="ignore", invalid="ignore"):
        for counts, ones in (
            (count_zero, ones_after_zero),
            (count_one, ones_after_one),
        ):
            state_probability = counts / n_transitions
            transition_probability = np.where(counts > 0, ones / np.maximum(counts, 1), 0.0)
            entropy += np.where(
                counts > 0,
                state_probability * _binary_entropy_rows(transition_probability),
                0.0,
            )
    return _one_or_rows(entropy, scalar)


def conditional_entropy_per_bit(
    bits: Sequence[int] | np.ndarray, history_bits: int = 1
) -> float:
    """Entropy of a bit conditioned on the previous ``history_bits`` bits.

    Generalises :func:`markov_entropy_rate` to longer histories; converges to
    the true entropy rate of a stationary source as the history grows (at the
    price of needing exponentially more data).
    """
    array = _as_bits(bits)
    if history_bits < 1:
        raise ValueError("history_bits must be >= 1")
    if history_bits > 16:
        raise ValueError("history_bits above 16 is not supported")
    if array.size < history_bits + 1:
        raise ValueError("sequence too short for the requested history")
    weights = 1 << np.arange(history_bits - 1, -1, -1)
    windows = np.lib.stride_tricks.sliding_window_view(array, history_bits)[:-1]
    contexts = windows @ weights
    next_bits = array[history_bits:]
    entropy = 0.0
    total = contexts.size
    for context in np.unique(contexts):
        mask = contexts == context
        context_probability = float(np.count_nonzero(mask)) / total
        transition_probability = float(np.mean(next_bits[mask]))
        entropy += context_probability * binary_entropy(transition_probability)
    return entropy
