"""``python -m repro.serve`` — the async TRNG serving front-end.

Starts a JSON-lines server (TCP by default, ``--stdio`` for pipes) over one
coalescing :class:`~repro.serving.service.TRNGService`::

    # TCP server with a 64-request coalescing window
    python -m repro.serve --port 8765 --max-batch 64 --max-wait-ms 5

    # One-shot request over stdio
    echo '{"kind": "bits", "n_bits": 64, "divider": 512, "seed": 7}' | \
        python -m repro.serve --stdio

    # CI smoke: real sockets, coalescing + solo-equivalence assertions
    python -m repro.serve --self-test

See :mod:`repro.serving.protocol` for the wire format and
:mod:`repro.serving` for the pipeline and its determinism contract.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Optional

from .obs import global_registry, summary_line, write_metrics_json
from .serving.server import TRNGServer, run_self_test, seed_stream, serve_stdio
from .serving.service import TRNGService


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--host", type=str, default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8765, help="TCP port (0 picks one)"
    )
    parser.add_argument(
        "--stdio",
        action="store_true",
        help="serve stdin/stdout instead of TCP (exits at EOF)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="most requests one engine call may serve (1 disables coalescing)",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="coalescing window: how long a batch leader waits for companions",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="request queue bound (the backpressure knob)",
    )
    parser.add_argument(
        "--overflow",
        choices=("reject", "wait"),
        default="reject",
        help="full-queue policy: shed load (reject) or suspend submitters",
    )
    parser.add_argument(
        "--backend",
        type=str,
        default=None,
        metavar="numpy|threaded[:N]|auto[:N]",
        help="synthesis backend for engine calls (default: $REPRO_BACKEND or "
        "numpy); auto picks per call from a measured cost model; all "
        "backends are bit-for-bit equivalent, the choice selects execution "
        "speed only",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="root seed assigned (in arrival order) to unseeded requests",
    )
    parser.add_argument(
        "--spawn-workers",
        type=int,
        default=0,
        metavar="N",
        help="spawn N localhost fabric workers and dispatch coalesced "
        "batches to them (results stay bit-identical to local serving)",
    )
    parser.add_argument(
        "--workers-remote",
        type=str,
        default=None,
        metavar="HOST:PORT,...",
        help="comma-separated endpoints of running 'python -m repro.worker' "
        "processes to dispatch batches to (combinable with --spawn-workers)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print a one-line metrics summary to stderr every "
        "--stats-interval seconds (full JSON snapshot on exit)",
    )
    parser.add_argument(
        "--stats-interval", type=float, default=10.0, help="seconds between stats"
    )
    parser.add_argument(
        "--metrics-json",
        type=str,
        default=None,
        metavar="PATH",
        help="dump the merged metrics registries (service + process) as JSON "
        "to PATH on exit",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the end-to-end smoke (server + 32 concurrent clients) and exit",
    )
    return parser


def _fabric(args: argparse.Namespace):
    """Build the FabricDispatcher for --spawn-workers/--workers-remote."""
    remote = [
        endpoint.strip()
        for endpoint in (args.workers_remote or "").split(",")
        if endpoint.strip()
    ]
    if not remote and args.spawn_workers <= 0:
        return None
    from .serving.fabric_dispatch import FabricDispatcher

    return FabricDispatcher.from_endpoints(
        remote=remote, spawn=max(args.spawn_workers, 0), backend=args.backend
    )


def _service(args: argparse.Namespace, fabric=None) -> TRNGService:
    return TRNGService(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_pending=args.max_pending,
        overflow=args.overflow,
        backend=args.backend,
        fabric=fabric,
    )


async def _stats_loop(service: TRNGService, interval: float) -> None:
    while True:
        await asyncio.sleep(interval)
        print(summary_line(service.registry, global_registry()), file=sys.stderr)


async def _serve(args: argparse.Namespace) -> int:
    fabric = _fabric(args)
    if fabric is not None:
        print(
            f"fabric dispatch: {len(fabric.workers)} worker(s) "
            f"({', '.join(worker.name for worker in fabric.workers)})",
            file=sys.stderr,
        )
    service = _service(args, fabric=fabric)
    default_seed = seed_stream(args.seed)
    stats_task: Optional[asyncio.Task] = None
    try:
        async with service:
            if args.stats:
                stats_task = asyncio.create_task(
                    _stats_loop(service, max(args.stats_interval, 0.1))
                )
            try:
                if args.stdio:
                    await serve_stdio(service, default_seed=default_seed)
                else:
                    server = TRNGServer(
                        service,
                        host=args.host,
                        port=args.port,
                        default_seed=default_seed,
                    )
                    await server.start()
                    print(
                        f"serving on {args.host}:{server.port} "
                        f"(max_batch={args.max_batch}, "
                        f"max_wait_ms={args.max_wait_ms})",
                        file=sys.stderr,
                    )
                    try:
                        await server.serve_forever()
                    finally:
                        await server.stop()
            except asyncio.CancelledError:
                pass
            finally:
                if stats_task is not None:
                    stats_task.cancel()
            if args.stats:
                print(
                    f"final stats: {json.dumps(service.stats.snapshot())}",
                    file=sys.stderr,
                )
    finally:
        if fabric is not None:
            fabric.close()
        if args.metrics_json:
            write_metrics_json(
                args.metrics_json, service.registry, global_registry()
            )
            print(f"metrics written to {args.metrics_json}", file=sys.stderr)
    return 0


async def _self_test(args: argparse.Namespace) -> int:
    try:
        summary = await run_self_test(
            max_batch=args.max_batch,
            max_wait_ms=max(args.max_wait_ms, 100.0),
            backend=args.backend,
        )
    except AssertionError as error:
        print(f"self-test FAIL: {error}", file=sys.stderr)
        return 1
    stats = summary["stats"]
    print(
        f"self-test: {summary['clients']} concurrent clients over TCP, "
        f"dividers {summary['dividers']}"
    )
    print(
        f"self-test: coalescing happened "
        f"(max batch {stats['max_batch_size']}, "
        f"{stats['batches']} batches for {stats['completed']} requests)"
    )
    print("self-test: served bits == solo-served bits (bitwise) for all clients")
    if args.stats:
        print(f"stats: {json.dumps(stats)}", file=sys.stderr)
    return 0


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.max_batch < 1:
        print("--max-batch must be >= 1", file=sys.stderr)
        return 2
    if args.max_wait_ms < 0:
        print("--max-wait-ms must be >= 0", file=sys.stderr)
        return 2
    if args.backend is not None:
        from .engine.backends import validate_backend_spec

        try:
            validate_backend_spec(args.backend)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
    if args.workers_remote:
        from .engine.distributed.fabric.connection import parse_endpoint

        for endpoint in args.workers_remote.split(","):
            if not endpoint.strip():
                continue
            try:
                parse_endpoint(endpoint.strip())
            except ValueError as error:
                print(str(error), file=sys.stderr)
                return 2
    runner = _self_test if args.self_test else _serve
    try:
        return asyncio.run(runner(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
