"""``python -m repro.serve`` — the async TRNG serving front-end.

Starts a JSON-lines server (TCP by default, ``--stdio`` for pipes) and
optionally an HTTP/WebSocket gateway over one coalescing
:class:`~repro.serving.service.TRNGService`::

    # TCP server with a 64-request coalescing window
    python -m repro.serve --port 8765 --max-batch 64 --max-wait-ms 5

    # HTTP/WebSocket gateway (REST + streaming sessions + /metrics)
    python -m repro.serve --http 0.0.0.0:8080

    # One-shot request over stdio
    echo '{"kind": "bits", "n_bits": 64, "divider": 512, "seed": 7}' | \
        python -m repro.serve --stdio

    # CI smokes: real sockets, coalescing + solo-equivalence assertions
    python -m repro.serve --self-test
    python -m repro.serve --self-test --http 127.0.0.1:0

All flags funnel into one :class:`~repro.serving.config.ServiceConfig`; see
:mod:`repro.serving.protocol` for the wire format and :mod:`repro.serving`
for the pipeline and its determinism contract.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Optional, Tuple

from .obs import global_registry, summary_line, write_metrics_json
from .serving.config import ServiceConfig
from .serving.server import TRNGServer, run_self_test, seed_stream, serve_stdio
from .serving.service import TRNGService


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--host", type=str, default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8765, help="TCP port (0 picks one)"
    )
    parser.add_argument(
        "--stdio",
        action="store_true",
        help="serve stdin/stdout instead of TCP (exits at EOF)",
    )
    parser.add_argument(
        "--http",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help="also serve the HTTP/WebSocket gateway (REST requests, "
        "streaming sessions, GET /metrics + /healthz) on this endpoint; "
        "with --self-test, runs the HTTP smoke instead of the TCP one",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="most requests one engine call may serve (1 disables coalescing)",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="base coalescing window of a normal-priority batch leader",
    )
    parser.add_argument(
        "--class-wait-ms",
        type=str,
        default=None,
        dest="class_wait_ms",
        metavar="CLASS=MS,...",
        help="absolute per-priority coalescing windows, e.g. "
        "'interactive=0.5,batch=20' (classes not named scale --max-wait-ms "
        "by the default factors)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="request queue bound (the backpressure knob)",
    )
    parser.add_argument(
        "--overflow",
        choices=("reject", "wait"),
        default="reject",
        help="full-queue policy: shed load (reject) or suspend submitters",
    )
    parser.add_argument(
        "--backend",
        type=str,
        default=None,
        metavar="numpy|threaded[:N]|auto[:N]|philox[:N]",
        help="synthesis backend for engine calls (default: $REPRO_BACKEND or "
        "numpy); auto picks per call from a measured cost model; all "
        "backends are bit-for-bit equivalent on the same streams, so the "
        "choice selects execution speed only (requests pin their own RNG "
        "stream contract via the rng_contract wire field)",
    )
    parser.add_argument(
        "--no-fast-tier",
        action="store_false",
        dest="fast_tier",
        help="disable the fitted-campaign cache behind tier='fast' sigma2n "
        "requests (every request runs the exact campaign)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="root seed assigned (in arrival order) to unseeded requests",
    )
    parser.add_argument(
        "--spawn-workers",
        type=int,
        default=0,
        metavar="N",
        help="spawn N localhost fabric workers and dispatch coalesced "
        "batches to them (results stay bit-identical to local serving)",
    )
    parser.add_argument(
        "--workers-remote",
        type=str,
        default=None,
        metavar="HOST:PORT,...",
        help="comma-separated endpoints of running 'python -m repro.worker' "
        "processes to dispatch batches to (combinable with --spawn-workers)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print a one-line metrics summary to stderr every "
        "--stats-interval seconds (full JSON snapshot on exit)",
    )
    parser.add_argument(
        "--stats-interval", type=float, default=10.0, help="seconds between stats"
    )
    parser.add_argument(
        "--metrics-json",
        type=str,
        default=None,
        metavar="PATH",
        help="dump the merged metrics registries (service + process) as JSON "
        "to PATH on exit",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the end-to-end smoke (server + concurrent clients) and exit",
    )
    return parser


def _parse_http_endpoint(text: str) -> Tuple[str, int]:
    host, colon, port = text.rpartition(":")
    if not colon or not host:
        raise ValueError(
            f"--http expects HOST:PORT, got {text!r} (use :0 for ephemeral)"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"--http port must be an integer, got {port!r}") from None


async def _stats_loop(service: TRNGService, interval: float) -> None:
    while True:
        await asyncio.sleep(interval)
        print(summary_line(service.registry, global_registry()), file=sys.stderr)


async def _serve(args: argparse.Namespace, config: ServiceConfig) -> int:
    fabric = config.build_fabric()
    if fabric is not None:
        print(
            f"fabric dispatch: {len(fabric.workers)} worker(s) "
            f"({', '.join(worker.name for worker in fabric.workers)})",
            file=sys.stderr,
        )
    service = TRNGService(config, fabric=fabric)
    default_seed = seed_stream(config.seed)
    stats_task: Optional[asyncio.Task] = None
    gateway = None
    try:
        async with service:
            if args.stats:
                stats_task = asyncio.create_task(
                    _stats_loop(service, max(args.stats_interval, 0.1))
                )
            try:
                if args.http is not None:
                    from .serving.http import HTTPGateway

                    http_host, http_port = _parse_http_endpoint(args.http)
                    gateway = HTTPGateway(
                        service,
                        host=http_host,
                        port=http_port,
                        default_seed=default_seed,
                    )
                    await gateway.start()
                    print(
                        f"http gateway on {http_host}:{gateway.port} "
                        f"(POST /v1/bits, /v1/sigma2n; sessions; GET /metrics)",
                        file=sys.stderr,
                    )
                if args.stdio:
                    await serve_stdio(service, default_seed=default_seed)
                else:
                    server = TRNGServer(
                        service,
                        host=args.host,
                        port=args.port,
                        default_seed=default_seed,
                    )
                    await server.start()
                    print(
                        f"serving on {args.host}:{server.port} "
                        f"(max_batch={config.max_batch}, "
                        f"max_wait_ms={config.max_wait_ms})",
                        file=sys.stderr,
                    )
                    try:
                        await server.serve_forever()
                    finally:
                        await server.stop()
            except asyncio.CancelledError:
                pass
            finally:
                if gateway is not None:
                    await gateway.stop()
                if stats_task is not None:
                    stats_task.cancel()
            if args.stats:
                print(
                    f"final stats: {json.dumps(service.stats.snapshot())}",
                    file=sys.stderr,
                )
    finally:
        if fabric is not None:
            fabric.close()
        if args.metrics_json:
            write_metrics_json(
                args.metrics_json, service.registry, global_registry()
            )
            print(f"metrics written to {args.metrics_json}", file=sys.stderr)
    return 0


async def _self_test(args: argparse.Namespace, config: ServiceConfig) -> int:
    over_http = args.http is not None
    try:
        if over_http:
            from .serving.http import run_http_self_test

            http_host, _ = _parse_http_endpoint(args.http)
            summary = await run_http_self_test(
                max_batch=config.max_batch,
                max_wait_ms=max(config.max_wait_ms, 100.0),
                host=http_host or "127.0.0.1",
                backend=config.backend,
            )
        else:
            summary = await run_self_test(
                config=config.replace(max_wait_ms=max(config.max_wait_ms, 100.0))
            )
    except AssertionError as error:
        print(f"self-test FAIL: {error}", file=sys.stderr)
        return 1
    stats = summary["stats"]
    edge = "HTTP" if over_http else "TCP"
    print(
        f"self-test: {summary['clients']} concurrent clients over {edge}, "
        f"dividers {summary['dividers']}"
    )
    print(
        f"self-test: coalescing happened "
        f"(max batch {stats['max_batch_size']}, "
        f"{stats['batches']} batches for {stats['completed']} requests)"
    )
    print("self-test: served bits == solo-served bits (bitwise) for all clients")
    if over_http:
        print("self-test: session chunks == one-shot stream (bitwise)")
    if args.stats:
        print(f"stats: {json.dumps(stats)}", file=sys.stderr)
    return 0


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        config = ServiceConfig.from_args(args)
        if args.http is not None:
            _parse_http_endpoint(args.http)
    except ValueError as error:
        # Config fields validate under their dataclass names; report them
        # under the flag spellings the user typed.
        message = str(error)
        for name in (
            "max_batch",
            "max_wait_ms",
            "max_pending",
            "class_wait_ms",
            "spawn_workers",
            "workers_remote",
        ):
            message = message.replace(name, "--" + name.replace("_", "-"))
        print(message, file=sys.stderr)
        return 2
    if config.workers_remote:
        from .engine.distributed.fabric.connection import parse_endpoint

        for endpoint in config.workers_remote:
            try:
                parse_endpoint(endpoint)
            except ValueError as error:
                print(str(error), file=sys.stderr)
                return 2
    runner = _self_test if args.self_test else _serve
    try:
        return asyncio.run(runner(args, config))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
