"""Differential counter measurement circuit (Fig. 6 of the paper).

The experimental validation of the paper uses only digital resources available
inside an FPGA: two identical ring oscillators Osc1 and Osc2, and a counter
clocked by Osc1 that is sampled every ``N`` periods of Osc2.  The value

    Q_i^N = number of Osc1 rising edges during the i-th window of N Osc2 periods

fluctuates because of the *relative* jitter of the two oscillators, and the
paper shows (Eq. 12) that

    s_N(t_i) = (Q^N_{i+1} - Q^N_i) / f0

is a realization of the accumulated-difference statistic whose variance is
``sigma^2_N``.

This module simulates that circuit at the event level: given the edge times of
both oscillators it produces the counter sequence exactly as the hardware
would, including the +-1 quantisation inherent to counting edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..oscillator.period_model import Clock


@dataclass(frozen=True)
class CounterCapture:
    """Raw output of the differential counter: one ``Q_i^N`` per window.

    Attributes
    ----------
    counts:
        The counter values ``Q_i^N`` (integers).
    n_accumulations:
        The window length ``N`` in Osc2 periods.
    f0_hz:
        Nominal frequency of the oscillators, used to convert count
        differences into time differences (Eq. 12).
    """

    counts: np.ndarray
    n_accumulations: int
    f0_hz: float

    def __post_init__(self) -> None:
        if self.n_accumulations < 1:
            raise ValueError("N must be >= 1")
        if self.f0_hz <= 0.0:
            raise ValueError("f0 must be > 0")

    @property
    def n_windows(self) -> int:
        """Number of captured windows."""
        return int(self.counts.size)

    def s_n_values(self) -> np.ndarray:
        """Realizations of ``s_N`` from consecutive count differences (Eq. 12) [s]."""
        if self.counts.size < 2:
            raise ValueError("need at least two counter values to form s_N")
        differences = np.diff(self.counts.astype(float))
        return differences / self.f0_hz

    @property
    def quantization_variance_s2(self) -> float:
        """Variance contributed by the +-1 count quantisation [s^2].

        The counter only resolves time in steps of one Osc1 period ``T0``.
        Writing ``Q_i = F(b_{i+1}) - F(b_i)`` with ``F(t)`` the number of Osc1
        edges before ``t``, the count difference behind ``s_N`` is the second
        difference ``F(b_{i+2}) - 2 F(b_{i+1}) + F(b_i)``; each ``F`` carries a
        truncation error uniform on ``[0, T0)``.  When the relative phase
        drifts by more than one period per window these three errors are
        effectively independent and contribute
        ``(1 + 4 + 1) * T0^2 / 12 = T0^2 / 2`` to the variance of ``s_N``.
        """
        nominal_period = 1.0 / self.f0_hz
        return nominal_period**2 / 2.0

    def sigma2_n(self, correct_quantization: bool = False) -> float:
        """Estimate of ``sigma^2_N`` from this capture [s^2].

        Like the jitter-based estimator, the mean of squares is used because
        the true mean of the count difference is zero when the two oscillators
        run at the same nominal frequency; a deterministic frequency mismatch
        adds a constant offset which is removed first.

        Parameters
        ----------
        correct_quantization:
            When True, subtract the counter quantisation variance
            (``T0^2/6``); the result is clipped at zero.  This matters for
            accumulation lengths where the physical jitter has not yet grown
            past one oscillator period.
        """
        values = self.s_n_values()
        if values.size < 2:
            raise ValueError("need at least two s_N realizations")
        # Remove the deterministic offset caused by a mean frequency mismatch
        # between the oscillators (the paper's oscillators are matched but any
        # real pair has a small offset).
        raw = float(np.mean((values - np.mean(values)) ** 2))
        if not correct_quantization:
            return raw
        return max(raw - self.quantization_variance_s2, 0.0)


def count_edges_in_windows(
    osc1_edges_s: np.ndarray, window_boundaries_s: np.ndarray
) -> np.ndarray:
    """Count Osc1 rising edges inside consecutive windows of Osc2.

    Parameters
    ----------
    osc1_edges_s:
        Sorted rising-edge times of Osc1 [s].
    window_boundaries_s:
        Sorted times delimiting the windows (``n_windows + 1`` values) [s].

    Returns
    -------
    numpy.ndarray
        Integer array of edge counts, one per window.
    """
    edges = np.asarray(osc1_edges_s, dtype=float)
    boundaries = np.asarray(window_boundaries_s, dtype=float)
    if boundaries.size < 2:
        raise ValueError("need at least two window boundaries")
    if np.any(np.diff(boundaries) <= 0.0):
        raise ValueError("window boundaries must be strictly increasing")
    positions = np.searchsorted(edges, boundaries, side="left")
    return np.diff(positions).astype(np.int64)


class DifferentialJitterCounter:
    """Event-level simulation of the Fig. 6 measurement circuit.

    Parameters
    ----------
    oscillator_1:
        The counted oscillator (its edges increment the counter).
    oscillator_2:
        The window-defining oscillator (every ``N`` of its periods the counter
        value is latched and reset).
    """

    def __init__(self, oscillator_1: Clock, oscillator_2: Clock) -> None:
        self.oscillator_1 = oscillator_1
        self.oscillator_2 = oscillator_2

    def capture(self, n_accumulations: int, n_windows: int) -> CounterCapture:
        """Capture ``n_windows`` counter values with windows of ``N`` Osc2 periods."""
        if n_accumulations < 1:
            raise ValueError("N must be >= 1")
        if n_windows < 1:
            raise ValueError("n_windows must be >= 1")
        n_osc2_periods = n_accumulations * n_windows
        window_boundaries = self.oscillator_2.edge_times(n_osc2_periods)[
            :: n_accumulations
        ]
        # Generate enough Osc1 edges to cover the full capture duration, with
        # a safety margin for the accumulated jitter and frequency mismatch.
        duration = window_boundaries[-1] - window_boundaries[0]
        n_osc1_periods = int(np.ceil(duration * self.oscillator_1.f0_hz * 1.05)) + 16
        osc1_edges = self.oscillator_1.edge_times(
            n_osc1_periods, start_time_s=window_boundaries[0]
        )
        if osc1_edges[-1] < window_boundaries[-1]:
            raise RuntimeError(
                "oscillator 1 edge record does not cover the capture window; "
                "the frequency mismatch is larger than the 5% margin"
            )
        counts = count_edges_in_windows(osc1_edges, window_boundaries)
        return CounterCapture(
            counts=counts,
            n_accumulations=n_accumulations,
            f0_hz=self.oscillator_1.f0_hz,
        )
