"""Differential jitter measurement: the Fig. 6 circuit and the virtual FPGA platform."""

from .capture import (
    CounterCampaignResult,
    counter_capture_campaign,
    relative_jitter_campaign,
    relative_jitter_record,
)
from .counter import (
    CounterCapture,
    DifferentialJitterCounter,
    count_edges_in_windows,
)
from .platform import (
    PAPER_CYCLONE_III,
    PlatformConfiguration,
    VirtualEvaristePlatform,
)

__all__ = [
    "CounterCampaignResult",
    "CounterCapture",
    "DifferentialJitterCounter",
    "PAPER_CYCLONE_III",
    "PlatformConfiguration",
    "VirtualEvaristePlatform",
    "count_edges_in_windows",
    "counter_capture_campaign",
    "relative_jitter_campaign",
    "relative_jitter_record",
]
