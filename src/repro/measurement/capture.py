"""Capture campaigns: sweeping ``N`` and assembling the Fig. 7 data set.

A *capture campaign* runs the differential measurement of Fig. 6 (or its
ideal, non-quantised variant) for a sweep of accumulation lengths ``N`` and
packages the results as an :class:`repro.core.sigma_n.AccumulatedVarianceCurve`
ready for fitting — exactly the workflow behind the paper's Fig. 7.

Two measurement paths are provided:

* :func:`counter_capture_campaign` — uses the integer counter exactly as the
  FPGA circuit does, optionally applying the quantisation correction;
* :func:`relative_jitter_campaign` — uses the ideal relative timing between
  the two oscillators (what an ideal time-to-digital converter would return).
  This path is free of quantisation and is the default for reproducing the
  paper's fitted numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.sigma_n import (
    AccumulatedVarianceCurve,
    AccumulatedVariancePoint,
    accumulated_variance_curve,
)
from ..oscillator.period_model import Clock
from .counter import CounterCapture, DifferentialJitterCounter


def relative_jitter_record(
    oscillator_1: Clock, oscillator_2: Clock, n_periods: int
) -> np.ndarray:
    """Relative period sequence of Osc1 with respect to Osc2 [s].

    For two nominally identical oscillators the RRAS of the eRO-TRNG is their
    relative jitter (Section III of the paper); since both period processes
    are independent, the relative period is ``T1_i - T2_i + 1/f0`` — i.e. a
    period sequence whose jitter is the difference of the two jitters.
    """
    if n_periods < 1:
        raise ValueError("n_periods must be >= 1")
    periods_1 = oscillator_1.periods(n_periods)
    periods_2 = oscillator_2.periods(n_periods)
    nominal = 1.0 / oscillator_1.f0_hz
    return periods_1 - periods_2 + nominal


def relative_jitter_campaign(
    oscillator_1: Clock,
    oscillator_2: Clock,
    n_periods: int,
    n_sweep: Optional[Sequence[int]] = None,
    min_realizations: int = 8,
    overlapping: bool = True,
) -> AccumulatedVarianceCurve:
    """Estimate the sigma^2_N curve from an ideal relative-timing capture.

    This is the scalar (one oscillator pair) reference path.  To sweep many
    pairs at once — technology corners, noise mixes, divider studies — use
    :func:`repro.engine.campaign.batched_relative_jitter_campaign`, whose row
    ``i`` reproduces this function when the ensembles share the scalar
    oscillators' RNG streams (bit-for-bit with ``exact=True``, within
    ``~ sqrt(n) * eps`` by default); for records too long to hold in memory,
    pass ``chunk_periods`` there (O(chunk) streaming estimation).
    """
    record = relative_jitter_record(oscillator_1, oscillator_2, n_periods)
    return accumulated_variance_curve(
        record,
        oscillator_1.f0_hz,
        n_sweep=n_sweep,
        overlapping=overlapping,
        min_realizations=min_realizations,
    )


@dataclass(frozen=True)
class CounterCampaignResult:
    """Result of a counter-based campaign: raw captures plus the derived curve."""

    captures: List[CounterCapture]
    curve: AccumulatedVarianceCurve


def counter_capture_campaign(
    oscillator_1: Clock,
    oscillator_2: Clock,
    n_sweep: Sequence[int],
    n_windows: int = 256,
    correct_quantization: bool = True,
) -> CounterCampaignResult:
    """Run the Fig. 6 counter measurement for every ``N`` in ``n_sweep``.

    Each point uses ``n_windows`` freshly simulated windows, so the resulting
    variance estimates are mutually independent across ``N`` (unlike the
    single-record estimator, which reuses the same jitter record).

    Parameters
    ----------
    oscillator_1, oscillator_2:
        The two nominally identical ring oscillators.
    n_sweep:
        Accumulation lengths ``N`` to measure.
    n_windows:
        Number of counter windows captured per ``N``.
    correct_quantization:
        Subtract the ``T0^2/6`` counter quantisation variance from each point.
    """
    if n_windows < 4:
        raise ValueError("need at least 4 windows per point")
    counter = DifferentialJitterCounter(oscillator_1, oscillator_2)
    captures = []
    points = []
    for n in n_sweep:
        n = int(n)
        if n < 1:
            raise ValueError("accumulation lengths must be >= 1")
        capture = counter.capture(n, n_windows)
        captures.append(capture)
        points.append(
            AccumulatedVariancePoint(
                n_accumulations=n,
                sigma2_n_s2=capture.sigma2_n(
                    correct_quantization=correct_quantization
                ),
                n_realizations=capture.n_windows - 1,
            )
        )
    curve = AccumulatedVarianceCurve(points=points, f0_hz=oscillator_1.f0_hz)
    return CounterCampaignResult(captures=captures, curve=curve)
