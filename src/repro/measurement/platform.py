"""Virtual Evariste-like FPGA platform (the paper's hardware substitute).

The paper's measurements were performed on the Evariste II modular benchmark
board carrying an Altera Cyclone III FPGA, with two identical ring oscillators
at a mean frequency of 103 MHz.  That hardware is not available here, so the
reproduction provides :class:`VirtualEvaristePlatform`: a software model of
the board that

* instantiates two ring oscillators whose phase-noise coefficients are either
  calibrated to the values the paper fitted (``PAPER_CYCLONE_III``) or derived
  bottom-up from a CMOS technology node;
* exposes the same observables as the real measurement firmware: raw counter
  captures (Fig. 6), relative-jitter records and complete sigma^2_N campaigns;
* optionally applies an attack model (frequency injection, EM harmonic
  injection) to the oscillators, which is how the online-test experiments are
  exercised.

See DESIGN.md (substitutions table) for why this preserves the behaviour the
paper's analysis depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.sigma_n import AccumulatedVarianceCurve
from ..oscillator.ring import RingOscillator
from ..paper import PAPER_B_FLICKER_HZ2, PAPER_B_THERMAL_HZ, PAPER_F0_HZ
from ..phase.psd import PhaseNoisePSD
from .capture import (
    CounterCampaignResult,
    counter_capture_campaign,
    relative_jitter_campaign,
    relative_jitter_record,
)
from .counter import CounterCapture, DifferentialJitterCounter


@dataclass(frozen=True)
class PlatformConfiguration:
    """Static description of a virtual measurement platform.

    Attributes
    ----------
    name:
        Free-form identifier shown in reports.
    f0_hz:
        Nominal frequency of both ring oscillators [Hz].
    oscillator_psd:
        Per-oscillator phase-noise PSD.  The *relative* process observed by
        the measurement circuit has twice these coefficients because the two
        oscillators are independent and identically distributed.
    frequency_mismatch:
        Relative difference between the two nominal frequencies
        (``(f1 - f2)/f0``); real pairs are never perfectly matched.
    n_stages:
        Number of inverter stages per ring (informational).
    """

    name: str
    f0_hz: float
    oscillator_psd: PhaseNoisePSD
    frequency_mismatch: float = 0.0
    n_stages: int = 3

    def __post_init__(self) -> None:
        if self.f0_hz <= 0.0:
            raise ValueError("f0 must be > 0")
        if abs(self.frequency_mismatch) >= 0.05:
            raise ValueError("frequency mismatch must stay below 5%")


#: Configuration calibrated to the paper's measured oscillators: the relative
#: (Osc1 - Osc2) process has b_th = 276.04 Hz and b_fl such that K = 5354, so
#: each of the two identical oscillators carries half of each coefficient.
PAPER_CYCLONE_III = PlatformConfiguration(
    name="Evariste-II / Cyclone III (paper calibration)",
    f0_hz=PAPER_F0_HZ,
    oscillator_psd=PhaseNoisePSD(
        b_thermal_hz=PAPER_B_THERMAL_HZ / 2.0,
        b_flicker_hz2=PAPER_B_FLICKER_HZ2 / 2.0,
    ),
    frequency_mismatch=2e-4,
    n_stages=3,
)


class VirtualEvaristePlatform:
    """Software stand-in for the Evariste II board used in the paper.

    Parameters
    ----------
    configuration:
        Platform description; defaults to the paper-calibrated Cyclone III
        configuration.
    rng:
        Random generator shared by both oscillators (reproducibility).
    """

    def __init__(
        self,
        configuration: PlatformConfiguration = PAPER_CYCLONE_III,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.configuration = configuration
        self.rng = np.random.default_rng() if rng is None else rng
        f0 = configuration.f0_hz
        mismatch = configuration.frequency_mismatch
        self.oscillator_1 = RingOscillator(
            f0_hz=f0 * (1.0 + mismatch / 2.0),
            psd=configuration.oscillator_psd,
            n_stages=configuration.n_stages,
            rng=self.rng,
            name="Osc1",
        )
        self.oscillator_2 = RingOscillator(
            f0_hz=f0 * (1.0 - mismatch / 2.0),
            psd=configuration.oscillator_psd,
            n_stages=configuration.n_stages,
            rng=self.rng,
            name="Osc2",
        )

    @property
    def f0_hz(self) -> float:
        """Nominal oscillator frequency of the platform [Hz]."""
        return self.configuration.f0_hz

    @property
    def relative_psd(self) -> PhaseNoisePSD:
        """Ground-truth PSD of the relative (Osc1 vs Osc2) jitter process."""
        psd = self.configuration.oscillator_psd
        return PhaseNoisePSD(
            b_thermal_hz=2.0 * psd.b_thermal_hz,
            b_flicker_hz2=2.0 * psd.b_flicker_hz2,
        )

    # -- measurement paths ----------------------------------------------------

    def counter_capture(self, n_accumulations: int, n_windows: int) -> CounterCapture:
        """One counter capture exactly as the Fig. 6 firmware would produce it."""
        counter = DifferentialJitterCounter(self.oscillator_1, self.oscillator_2)
        return counter.capture(n_accumulations, n_windows)

    def relative_jitter(self, n_periods: int) -> np.ndarray:
        """Ideal (non-quantised) relative period record [s]."""
        return relative_jitter_record(
            self.oscillator_1, self.oscillator_2, n_periods
        )

    def sigma2_n_campaign(
        self,
        n_periods: int,
        n_sweep: Optional[Sequence[int]] = None,
        min_realizations: int = 8,
    ) -> AccumulatedVarianceCurve:
        """Full Fig. 7 campaign using the ideal relative-timing path."""
        return relative_jitter_campaign(
            self.oscillator_1,
            self.oscillator_2,
            n_periods,
            n_sweep=n_sweep,
            min_realizations=min_realizations,
        )

    def counter_campaign(
        self,
        n_sweep: Sequence[int],
        n_windows: int = 256,
        correct_quantization: bool = True,
    ) -> CounterCampaignResult:
        """Full Fig. 7 campaign using the quantised counter path."""
        return counter_capture_campaign(
            self.oscillator_1,
            self.oscillator_2,
            n_sweep,
            n_windows=n_windows,
            correct_quantization=correct_quantization,
        )

    def __repr__(self) -> str:
        return (
            f"VirtualEvaristePlatform({self.configuration.name!r}, "
            f"f0={self.f0_hz / 1e6:.1f} MHz)"
        )
