"""Reference values reported in the paper (Sections III-E and IV-B).

These constants are used by the benchmark harness (to compare "paper" vs
"measured" values in EXPERIMENTS.md) and by the ``PAPER_CYCLONE_III``
configuration that calibrates the virtual FPGA platform to the oscillators
measured in the paper.

The published experiment (Evariste II board, Altera Cyclone III FPGA):

* two identical ring oscillators at a mean frequency of 103 MHz;
* fitted thermal slope ``f0^2 sigma^2_N,th = 5.36e-6 * N``;
* hence ``b_th = 5.36e-6 / 2 * f0 = 276.04 Hz``;
* thermal-only period jitter ``sigma_th = sqrt(b_th/f0^3) ~= 15.89 ps``;
* relative jitter ``sigma/T0 ~= 1.6 permille``;
* thermal/total ratio ``r_N = 5354 / (5354 + N)``;
* 95 % thermal-dominance threshold ``N < 281``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .phase.psd import PhaseNoisePSD

#: Mean oscillation frequency of the two measured ring oscillators [Hz].
PAPER_F0_HZ = 103e6

#: Fitted slope of the normalised thermal term ``f0^2 sigma^2_N,th`` vs N.
PAPER_NORMALIZED_THERMAL_SLOPE = 5.36e-6

#: Thermal phase-noise coefficient reported in Section IV-B [Hz].
PAPER_B_THERMAL_HZ = 276.04

#: Constant of the ratio ``r_N = K / (K + N)`` reported in Section III-E.
PAPER_RATIO_CONSTANT_K = 5354.0

#: Flicker coefficient implied by ``K = b_th f0 / (4 ln2 b_fl)`` [Hz^2].
PAPER_B_FLICKER_HZ2 = PAPER_B_THERMAL_HZ * PAPER_F0_HZ / (
    4.0 * np.log(2.0) * PAPER_RATIO_CONSTANT_K
)

#: Thermal-only period jitter reported in Section IV-B [s].
PAPER_THERMAL_JITTER_S = 15.89e-12

#: Relative jitter sigma/T0 reported in Section IV-B (per-mille).
PAPER_JITTER_RATIO_PERMILLE = 1.6

#: 95 % thermal-dominance threshold on N reported in Section III-E.
PAPER_INDEPENDENCE_THRESHOLD_N = 281

#: Thermal-dominance requirement used for the threshold above.
PAPER_MIN_THERMAL_RATIO = 0.95


def paper_phase_noise_psd() -> PhaseNoisePSD:
    """The relative (Osc1 vs Osc2) phase-noise PSD fitted in the paper.

    Note that the paper's measurement is *differential*: the counter circuit of
    Fig. 6 observes the jitter of Osc1 relative to Osc2, so the fitted
    ``b_th``/``b_fl`` describe the combined (relative) process.  The virtual
    platform therefore assigns half of each coefficient to each of the two
    (independent, identical) oscillators.
    """
    return PhaseNoisePSD(
        b_thermal_hz=PAPER_B_THERMAL_HZ, b_flicker_hz2=PAPER_B_FLICKER_HZ2
    )


def paper_single_oscillator_psd() -> PhaseNoisePSD:
    """Per-oscillator PSD: half of the relative coefficients (see above)."""
    return PhaseNoisePSD(
        b_thermal_hz=PAPER_B_THERMAL_HZ / 2.0,
        b_flicker_hz2=PAPER_B_FLICKER_HZ2 / 2.0,
    )


@dataclass(frozen=True)
class PaperReference:
    """All headline numbers of the paper, bundled for the benchmark reports."""

    f0_hz: float = PAPER_F0_HZ
    normalized_thermal_slope: float = PAPER_NORMALIZED_THERMAL_SLOPE
    b_thermal_hz: float = PAPER_B_THERMAL_HZ
    b_flicker_hz2: float = PAPER_B_FLICKER_HZ2
    ratio_constant: float = PAPER_RATIO_CONSTANT_K
    thermal_jitter_s: float = PAPER_THERMAL_JITTER_S
    jitter_ratio_permille: float = PAPER_JITTER_RATIO_PERMILLE
    independence_threshold_n: int = PAPER_INDEPENDENCE_THRESHOLD_N
    min_thermal_ratio: float = PAPER_MIN_THERMAL_RATIO


PAPER_REFERENCE = PaperReference()
