"""``python -m repro.worker`` — a fabric worker process.

Listens for a coordinator (``FabricCoordinator`` for campaigns,
``FabricDispatcher`` for serving) and executes ``shard`` / ``batch``
assignments over the JSON-lines protocol, answering ``ping`` heartbeats
while it computes::

    # Ephemeral port, announced on stdout (what --spawn-workers parses)
    python -m repro.worker --listen 127.0.0.1:0

    # Fixed endpoint for --workers-remote
    python -m repro.worker --listen 0.0.0.0:9900 --backend threaded:4

The worker exits on a ``shutdown`` message, SIGTERM, or Ctrl-C.  Campaign
shards carry their own backend spec; ``--backend`` selects the synthesis
backend of forwarded *serving* batches only (all backends are bit-for-bit
equivalent).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional

from .engine.distributed.fabric.connection import ANNOUNCE_PREFIX, parse_endpoint
from .engine.distributed.fabric.worker_loop import WorkerServer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.worker",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--listen",
        type=str,
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="bind address; port 0 picks an ephemeral port "
        "(announced on stdout)",
    )
    parser.add_argument(
        "--backend",
        type=str,
        default=None,
        metavar="numpy|threaded[:N]|auto[:N]|philox[:N]",
        help="synthesis backend for forwarded serving batches (campaign "
        "shards carry their own); default: $REPRO_BACKEND or numpy",
    )
    return parser


async def _serve(host: str, port: int, backend: Optional[str]) -> int:
    server = WorkerServer(host=host, port=port, backend=backend)
    await server.start()
    # The announce line is the spawn contract: exactly this prefix, stdout,
    # flushed before any work — spawn_worker() blocks on it.
    print(f"{ANNOUNCE_PREFIX}{server.host}:{server.port}", flush=True)
    try:
        await server.serve_until_shutdown()
    finally:
        await server.stop()
    print(
        f"repro-worker exiting ({server.shards_served} shards, "
        f"{server.batches_served} batches served)",
        file=sys.stderr,
    )
    return 0


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        host, port = parse_endpoint(args.listen)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.backend is not None:
        from .engine.backends import validate_backend_spec

        try:
            validate_backend_spec(args.backend)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
    try:
        return asyncio.run(_serve(host, port, args.backend))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
