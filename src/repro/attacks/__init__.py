"""Non-invasive attacks on the entropy source, used to exercise the online tests."""

from .em_injection import EMInjectionAttack, EMInjectionParameters
from .frequency_injection import FrequencyInjectionAttack, InjectionParameters

__all__ = [
    "EMInjectionAttack",
    "EMInjectionParameters",
    "FrequencyInjectionAttack",
    "InjectionParameters",
]
