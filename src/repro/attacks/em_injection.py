"""Electromagnetic harmonic-injection attack (Bayon et al., COSADE 2012).

The second attack cited in the paper's introduction: a near-field EM probe
injects a harmonic signal into the rings of an RO-based TRNG.  Its main effect
is to *lock the rings to each other* (they all couple to the same injected
field), which collapses the relative jitter the TRNG exploits even when each
individual oscillator still looks noisy.

:class:`EMInjectionAttack` therefore acts on a *pair* of oscillators: it mixes
a common-mode period modulation into both and correlates their jitter by the
coupling factor, returning two wrapped clocks that can be plugged anywhere a
normal oscillator pair is used (measurement platform, eRO-TRNG, online tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..oscillator.period_model import Clock


@dataclass(frozen=True)
class EMInjectionParameters:
    """Parameters of the EM harmonic-injection attack.

    Attributes
    ----------
    coupling:
        0 (no coupling) .. 1 (both rings fully locked to the injected field).
        The fraction of each ring's jitter that is replaced by a *common*
        jitter component shared by the two rings.
    modulation_fraction:
        Amplitude of the common deterministic period modulation, as a fraction
        of the nominal period.
    modulation_frequency_hz:
        Frequency of the injected harmonic [Hz] (drives the deterministic
        modulation pattern).
    """

    coupling: float
    modulation_fraction: float = 0.0
    modulation_frequency_hz: float = 1e6

    def __post_init__(self) -> None:
        if not 0.0 <= self.coupling <= 1.0:
            raise ValueError("coupling must be in [0, 1]")
        if self.modulation_fraction < 0.0:
            raise ValueError("modulation fraction must be >= 0")
        if self.modulation_frequency_hz <= 0.0:
            raise ValueError("modulation frequency must be > 0")


class _CoupledClock:
    """One of the two outputs of :class:`EMInjectionAttack` (internal)."""

    def __init__(self, attack: "EMInjectionAttack", index: int) -> None:
        self._attack = attack
        self._index = index

    @property
    def f0_hz(self) -> float:
        victim = self._attack.victims[self._index]
        return victim.f0_hz

    def periods(self, n_periods: int) -> np.ndarray:
        return self._attack._coupled_periods(self._index, n_periods)

    def edge_times(self, n_periods: int, start_time_s: float = 0.0) -> np.ndarray:
        periods = self.periods(n_periods)
        edges = np.empty(n_periods + 1)
        edges[0] = start_time_s
        np.cumsum(periods, out=edges[1:])
        edges[1:] += start_time_s
        return edges


class EMInjectionAttack:
    """Couples two oscillators through a common injected EM field.

    Both rings couple to the *same* field, so they share one random initial
    modulation phase, drawn from ``rng`` at construction (the probe position
    and field phase at attack onset are not under the attacker's control).
    Passing a seeded generator makes the attack reproducible; the shared
    phase keeps the two attacked clocks' modulations mutually coherent.
    """

    def __init__(
        self,
        victim_1: Clock,
        victim_2: Clock,
        parameters: EMInjectionParameters,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.victims: Tuple[Clock, Clock] = (victim_1, victim_2)
        self.parameters = parameters
        self.rng = np.random.default_rng() if rng is None else rng
        self._field_phase_rad = float(self.rng.uniform(0.0, 2.0 * np.pi))
        self._phase_index = [0, 0]

    def attacked_pair(self) -> Tuple[Clock, Clock]:
        """The two attacked oscillators, exposing the standard clock interface."""
        return _CoupledClock(self, 0), _CoupledClock(self, 1)

    # -- internal --------------------------------------------------------------

    def _coupled_periods(self, index: int, n_periods: int) -> np.ndarray:
        if n_periods < 0:
            raise ValueError("n_periods must be >= 0")
        victim = self.victims[index]
        nominal = 1.0 / victim.f0_hz
        own_jitter = victim.periods(n_periods) - nominal
        coupling = self.parameters.coupling
        # Under coupling, a fraction of each ring's random jitter is replaced
        # by a component common to both rings.  The common component cancels
        # exactly in the *relative* jitter the TRNG and the measurement
        # circuit observe, so its effect is equivalent to attenuating each
        # ring's independent jitter by sqrt(1 - coupling); what remains of the
        # injected field is the deterministic modulation added below.
        periods = nominal + np.sqrt(max(1.0 - coupling, 0.0)) * own_jitter
        modulation = self.parameters.modulation_fraction
        if modulation > 0.0 and n_periods > 0:
            start = self._phase_index[index]
            indices = start + np.arange(n_periods)
            phase = (
                2.0
                * np.pi
                * self.parameters.modulation_frequency_hz
                * indices
                / victim.f0_hz
                + self._field_phase_rad
            )
            periods = periods + modulation * nominal * np.sin(phase)
            self._phase_index[index] += n_periods
        return periods
