"""Frequency-injection attack on ring-oscillator TRNGs (Markettos & Moore, CHES 2009).

The introduction of the paper cites the frequency-injection attack as one of
the non-invasive attacks that motivate precise stochastic models and online
tests: injecting a signal close to the oscillator frequency (through the power
supply or an input pin) pulls the ring into injection locking, which

* suppresses the random (thermal) jitter of the locked oscillator, and
* correlates the two oscillators of an eRO-TRNG, killing the *relative*
  jitter the TRNG harvests.

:class:`FrequencyInjectionAttack` wraps any clock and produces the periods the
attacked oscillator would exhibit, parameterised by a locking strength in
``[0, 1]`` (0 = no effect, 1 = fully locked) and the injected frequency.  The
model captures the two first-order effects above without simulating the full
Adler injection-locking dynamics — sufficient for exercising the online tests
of the paper's conclusion (experiment ``CONCL-ONLINE-TEST``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..oscillator.period_model import Clock


@dataclass(frozen=True)
class InjectionParameters:
    """Parameters of a frequency-injection attack.

    Attributes
    ----------
    injection_frequency_hz:
        Frequency of the injected signal [Hz].
    locking_strength:
        0 (no locking) .. 1 (complete lock).  Random jitter is scaled by
        ``sqrt(1 - strength)`` and the oscillator frequency is pulled toward
        the injection frequency proportionally to the strength.
    deterministic_modulation_fraction:
        Amplitude of the residual deterministic (beat) modulation of the
        period, as a fraction of the nominal period.
    """

    injection_frequency_hz: float
    locking_strength: float
    deterministic_modulation_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.injection_frequency_hz <= 0.0:
            raise ValueError("injection frequency must be > 0")
        if not 0.0 <= self.locking_strength <= 1.0:
            raise ValueError("locking strength must be in [0, 1]")
        if self.deterministic_modulation_fraction < 0.0:
            raise ValueError("modulation fraction must be >= 0")


class FrequencyInjectionAttack:
    """A clock wrapper modelling an oscillator under frequency injection.

    The attacker does not control the phase of the injected signal relative
    to the victim's oscillation at attack onset, so the beat modulation
    starts at a random initial phase drawn from ``rng`` at construction.
    Passing a seeded generator makes the whole attack reproducible; two
    attacks built from identically seeded generators produce bit-identical
    period sequences.
    """

    def __init__(
        self,
        victim: Clock,
        parameters: InjectionParameters,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.victim = victim
        self.parameters = parameters
        self.rng = np.random.default_rng() if rng is None else rng
        self._injection_phase_rad = float(self.rng.uniform(0.0, 2.0 * np.pi))
        self._phase_index = 0

    @property
    def f0_hz(self) -> float:
        """Frequency of the attacked oscillator: pulled toward the injection."""
        strength = self.parameters.locking_strength
        return (
            (1.0 - strength) * self.victim.f0_hz
            + strength * self.parameters.injection_frequency_hz
        )

    def periods(self, n_periods: int) -> np.ndarray:
        """Periods of the attacked oscillator [s].

        The victim's jitter (deviation from its own nominal period) is scaled
        by ``sqrt(1 - locking_strength)``; a deterministic beat-frequency
        modulation is added on top, and the mean period is shifted to the
        pulled frequency.
        """
        if n_periods < 0:
            raise ValueError("n_periods must be >= 0")
        victim_periods = self.victim.periods(n_periods)
        victim_nominal = 1.0 / self.victim.f0_hz
        jitter = victim_periods - victim_nominal
        strength = self.parameters.locking_strength
        suppressed_jitter = jitter * np.sqrt(max(1.0 - strength, 0.0))
        pulled_nominal = 1.0 / self.f0_hz
        periods = pulled_nominal + suppressed_jitter
        modulation = self.parameters.deterministic_modulation_fraction
        if modulation > 0.0 and n_periods > 0:
            beat_frequency = abs(
                self.parameters.injection_frequency_hz - self.victim.f0_hz
            )
            indices = self._phase_index + np.arange(n_periods)
            phase = (
                2.0 * np.pi * beat_frequency * indices / self.victim.f0_hz
                + self._injection_phase_rad
            )
            periods = periods + modulation * pulled_nominal * np.sin(phase)
            self._phase_index += n_periods
        return periods

    def edge_times(self, n_periods: int, start_time_s: float = 0.0) -> np.ndarray:
        """Rising-edge times of the attacked oscillator [s]."""
        periods = self.periods(n_periods)
        edges = np.empty(n_periods + 1)
        edges[0] = start_time_s
        np.cumsum(periods, out=edges[1:])
        edges[1:] += start_time_s
        return edges
