"""AIS31 statistical tests, online tests and the paper's thermal-noise test."""

from .nist import (
    approximate_entropy_test,
    cumulative_sums_test,
    frequency_within_block_test,
    nist_battery,
    runs_test,
    serial_test,
)
from .online import (
    OnlineTestBench,
    OnlineTestReport,
    autocorrelation_online_test,
    monobit_online_test,
    total_failure_test,
)
from .procedure_a import (
    TestResult,
    all_passed,
    procedure_a,
    t0_disjointness_test,
    t1_monobit_test,
    t2_poker_test,
    t3_runs_test,
    t4_long_run_test,
    t5_autocorrelation_test,
)
from .procedure_b import (
    coron_entropy_estimate,
    procedure_b,
    t6_uniform_distribution_test,
    t7_comparative_test,
    t8_entropy_test,
)
from .thermal_test import (
    ThermalNoiseOnlineTest,
    ThermalTestResult,
    characterize_reference,
)

__all__ = [
    "OnlineTestBench",
    "OnlineTestReport",
    "TestResult",
    "ThermalNoiseOnlineTest",
    "ThermalTestResult",
    "all_passed",
    "approximate_entropy_test",
    "autocorrelation_online_test",
    "characterize_reference",
    "coron_entropy_estimate",
    "cumulative_sums_test",
    "frequency_within_block_test",
    "monobit_online_test",
    "nist_battery",
    "runs_test",
    "serial_test",
    "procedure_a",
    "procedure_b",
    "t0_disjointness_test",
    "t1_monobit_test",
    "t2_poker_test",
    "t3_runs_test",
    "t4_long_run_test",
    "t5_autocorrelation_test",
    "t6_uniform_distribution_test",
    "t7_comparative_test",
    "t8_entropy_test",
    "total_failure_test",
]
