"""Online test framework: total-failure test and continuous health monitoring.

AIS31 requires the generator to embed tests that run *during operation*: a
fast total-failure test that reacts within a few bits when the entropy source
dies, and online tests that detect slower degradation (e.g. under attack).
The paper's conclusion proposes a new, generator-specific online test based on
the embedded thermal-noise measurement (``repro.ais31.thermal_test``); this
module provides the surrounding machinery shared by all online tests: block
scheduling, alarm counting and the classical bit-level tests used as
comparison baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from .procedure_a import TestResult, t1_monobit_test, t5_autocorrelation_test


@dataclass(frozen=True)
class OnlineTestReport:
    """Aggregate outcome of an online-test run over consecutive blocks."""

    block_results: List[TestResult]
    alarm_threshold: int

    @property
    def n_blocks(self) -> int:
        """Number of evaluated blocks."""
        return len(self.block_results)

    @property
    def n_failures(self) -> int:
        """Number of failed blocks."""
        return sum(1 for result in self.block_results if not result.passed)

    @property
    def alarm(self) -> bool:
        """True when the number of failed blocks reaches the alarm threshold."""
        return self.n_failures >= self.alarm_threshold

    @property
    def first_failure_block(self) -> Optional[int]:
        """Index of the first failing block, or None when all blocks passed."""
        for index, result in enumerate(self.block_results):
            if not result.passed:
                return index
        return None


def total_failure_test(
    bits: Sequence[int] | np.ndarray, max_run_length: int = 64
) -> TestResult:
    """Total-failure test: a run of identical bits longer than the limit is fatal.

    A dead entropy source (stuck oscillator, completely locked by injection)
    produces constant — or perfectly periodic — output almost immediately, so
    a simple run-length watchdog catches it within ``max_run_length`` bits.
    """
    array = np.asarray(bits)
    if array.size == 0:
        raise ValueError("cannot run the total failure test on an empty sequence")
    if max_run_length < 2:
        raise ValueError("max_run_length must be >= 2")
    longest = 1
    current = 1
    for index in range(1, array.size):
        if array[index] == array[index - 1]:
            current += 1
            longest = max(longest, current)
        else:
            current = 1
    passed = longest < max_run_length
    return TestResult(
        name="total failure",
        passed=bool(passed),
        statistic=float(longest),
        details=f"longest identical-bit run = {longest}",
    )


BlockTest = Callable[[np.ndarray], TestResult]


@dataclass
class OnlineTestBench:
    """Runs a block test over a stream of raw bits and counts alarms.

    Parameters
    ----------
    block_test:
        Function evaluating one block of bits (e.g. the T1 monobit test, or
        the thermal-noise online test adapted to bits).
    block_size_bits:
        Number of bits per evaluated block.
    alarm_threshold:
        Number of failed blocks that triggers the alarm (AIS31 allows rare
        statistical failures; an alarm needs repetition).
    """

    block_test: BlockTest
    block_size_bits: int
    alarm_threshold: int = 2

    def __post_init__(self) -> None:
        if self.block_size_bits < 1:
            raise ValueError("block size must be >= 1")
        if self.alarm_threshold < 1:
            raise ValueError("alarm threshold must be >= 1")

    def run(self, bits: Sequence[int] | np.ndarray) -> OnlineTestReport:
        """Evaluate every complete block of the stream."""
        array = np.asarray(bits)
        n_blocks = array.size // self.block_size_bits
        if n_blocks == 0:
            raise ValueError("stream shorter than one block")
        results = []
        for index in range(n_blocks):
            block = array[
                index * self.block_size_bits : (index + 1) * self.block_size_bits
            ]
            results.append(self.block_test(block))
        return OnlineTestReport(
            block_results=results, alarm_threshold=self.alarm_threshold
        )

    def run_stream(self, chunks: Iterable) -> OnlineTestReport:
        """Evaluate an *unbounded* chunked stream with bounded memory.

        ``chunks`` is any iterable of 1-D sample arrays — e.g. the output of
        :func:`repro.engine.streaming.stream_bits` for a *scalar* TRNG, or
        chunked jitter records for the sample-domain tests.  Each complete
        block is evaluated the moment it fills; only the
        (< ``block_size_bits``) remainder is retained between chunks, so
        memory stays ``O(block)`` no matter how long the stream runs.  For
        any chunking of a given stream the report is identical to
        :meth:`run` on the concatenated samples (trailing partial block
        ignored in both).

        A bench monitors *one* generator: multi-row ``(B, k)`` chunks (a
        batched TRNG's stream) are rejected — flattening them would
        interleave instances and make the block verdicts chunking-dependent.
        Run one bench per row instead.
        """
        results: List[TestResult] = []
        leftover: Optional[np.ndarray] = None
        for chunk in chunks:
            array = np.asarray(chunk)
            if array.ndim != 1:
                raise ValueError(
                    f"run_stream needs 1-D chunks (one generator); got shape "
                    f"{array.shape} — run one bench per batched row instead"
                )
            data = (
                array
                if leftover is None or leftover.size == 0
                else np.concatenate([leftover, array])
            )
            n_blocks = data.size // self.block_size_bits
            for index in range(n_blocks):
                block = data[
                    index * self.block_size_bits : (index + 1) * self.block_size_bits
                ]
                results.append(self.block_test(block))
            leftover = data[n_blocks * self.block_size_bits :]
        if not results:
            raise ValueError("stream shorter than one block")
        return OnlineTestReport(
            block_results=results, alarm_threshold=self.alarm_threshold
        )


def thermal_variance_online_test(
    reference_b_thermal_hz: float,
    f0_hz: float,
    minimum_ratio: float = 0.5,
    accumulation_lengths: Sequence[int] = (16, 128),
    block_size_samples: int = 8192,
    alarm_threshold: int = 2,
    min_realizations: int = 8,
) -> OnlineTestBench:
    """The paper's embedded thermal test as a *streaming* online test.

    Each block of the relative jitter record (the generator's raw analog
    signal, chunked to any convenient size via :meth:`OnlineTestBench.run_stream`)
    is fed to a :class:`repro.engine.streaming.StreamingSigma2NEstimator` at
    two accumulation lengths ``N1 < N2``; the two points identify the linear
    (thermal) and quadratic (flicker) parts of Eq. 11 exactly, and the block
    fails when the recovered ``b_th`` drops below ``minimum_ratio`` times the
    healthy reference — the signature of an injection attack or source
    failure.  Combined with ``run_stream`` this runs on unbounded streams
    with ``O(block)`` memory: nothing beyond the current block and the
    estimator's ``O(N2)`` tail is ever held.

    Parameters mirror :class:`repro.ais31.thermal_test.ThermalNoiseOnlineTest`
    (which drives the Fig. 6 counter instead of a sample stream); the default
    ``N`` pair sits deep in the paper's thermal-dominated region ``N < 281``
    so the two-point solve is well conditioned.
    """
    from ..core.fitting import coefficients_to_phase_noise
    from ..engine.streaming import StreamingSigma2NEstimator

    if reference_b_thermal_hz <= 0.0:
        raise ValueError("reference b_th must be > 0")
    if not 0.0 < minimum_ratio < 1.0:
        raise ValueError("minimum ratio must be in (0, 1)")
    if f0_hz <= 0.0:
        raise ValueError("f0 must be > 0")
    lengths = sorted(int(n) for n in accumulation_lengths)
    if len(lengths) != 2 or lengths[0] < 1 or lengths[0] == lengths[1]:
        raise ValueError("need two distinct accumulation lengths >= 1")
    n1, n2 = lengths
    if min_realizations < 1:
        raise ValueError("min_realizations must be >= 1")
    # The estimator drops a sweep point below 2 windows (count = block - 2N
    # + 1) or below min_realizations effective windows (block // 2N); every
    # block must retain both N points or the two-point solve has nothing to
    # work with.
    minimum_block = max(2 * n2 * min_realizations, 2 * n2 + 1)
    if block_size_samples < minimum_block:
        raise ValueError(
            f"block_size_samples must be >= {minimum_block} "
            f"(max(2 * N2 * min_realizations, 2 * N2 + 1)) so every block "
            f"yields both sigma^2_N points"
        )

    def thermal_block_test(block: np.ndarray) -> TestResult:
        estimator = StreamingSigma2NEstimator((n1, n2), batch_size=1)
        estimator.update(np.asarray(block, dtype=float)[None, :])
        curve = estimator.curves(f0_hz, min_realizations=min_realizations)[0]
        sigma2 = {
            point.n_accumulations: point.sigma2_n_s2 for point in curve.points
        }
        # Solve sigma2 = A n + B n^2 exactly from the two points.
        determinant = n1 * n2**2 - n2 * n1**2
        linear = (sigma2[n1] * n2**2 - sigma2[n2] * n1**2) / determinant
        quadratic = (sigma2[n2] * n1 - sigma2[n1] * n2) / determinant
        b_thermal, _ = coefficients_to_phase_noise(linear, quadratic, f0_hz)
        passed = b_thermal >= minimum_ratio * reference_b_thermal_hz
        return TestResult(
            name="thermal sigma^2_N",
            passed=bool(passed),
            statistic=float(b_thermal),
            details=(
                f"estimated b_th = {b_thermal:.4g} Hz "
                f"(reference {reference_b_thermal_hz:.4g} Hz, "
                f"alarm below {minimum_ratio:.2f}x)"
            ),
        )

    return OnlineTestBench(
        block_test=thermal_block_test,
        block_size_bits=block_size_samples,
        alarm_threshold=alarm_threshold,
    )


def monobit_online_test(block_size_bits: int = 20_000) -> OnlineTestBench:
    """Classical online test: T1 monobit on consecutive blocks."""
    return OnlineTestBench(
        block_test=t1_monobit_test, block_size_bits=block_size_bits
    )


def autocorrelation_online_test(block_size_bits: int = 10_000) -> OnlineTestBench:
    """Classical online test: T5 autocorrelation on consecutive blocks."""
    return OnlineTestBench(
        block_test=t5_autocorrelation_test, block_size_bits=block_size_bits
    )
