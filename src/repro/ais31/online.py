"""Online test framework: total-failure test and continuous health monitoring.

AIS31 requires the generator to embed tests that run *during operation*: a
fast total-failure test that reacts within a few bits when the entropy source
dies, and online tests that detect slower degradation (e.g. under attack).
The paper's conclusion proposes a new, generator-specific online test based on
the embedded thermal-noise measurement (``repro.ais31.thermal_test``); this
module provides the surrounding machinery shared by all online tests: block
scheduling, alarm counting and the classical bit-level tests used as
comparison baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from .procedure_a import TestResult, t1_monobit_test, t5_autocorrelation_test


@dataclass(frozen=True)
class OnlineTestReport:
    """Aggregate outcome of an online-test run over consecutive blocks."""

    block_results: List[TestResult]
    alarm_threshold: int

    @property
    def n_blocks(self) -> int:
        """Number of evaluated blocks."""
        return len(self.block_results)

    @property
    def n_failures(self) -> int:
        """Number of failed blocks."""
        return sum(1 for result in self.block_results if not result.passed)

    @property
    def alarm(self) -> bool:
        """True when the number of failed blocks reaches the alarm threshold."""
        return self.n_failures >= self.alarm_threshold

    @property
    def first_failure_block(self) -> Optional[int]:
        """Index of the first failing block, or None when all blocks passed."""
        for index, result in enumerate(self.block_results):
            if not result.passed:
                return index
        return None


def total_failure_test(
    bits: Sequence[int] | np.ndarray, max_run_length: int = 64
) -> TestResult:
    """Total-failure test: a run of identical bits longer than the limit is fatal.

    A dead entropy source (stuck oscillator, completely locked by injection)
    produces constant — or perfectly periodic — output almost immediately, so
    a simple run-length watchdog catches it within ``max_run_length`` bits.
    """
    array = np.asarray(bits)
    if array.size == 0:
        raise ValueError("cannot run the total failure test on an empty sequence")
    if max_run_length < 2:
        raise ValueError("max_run_length must be >= 2")
    longest = 1
    current = 1
    for index in range(1, array.size):
        if array[index] == array[index - 1]:
            current += 1
            longest = max(longest, current)
        else:
            current = 1
    passed = longest < max_run_length
    return TestResult(
        name="total failure",
        passed=bool(passed),
        statistic=float(longest),
        details=f"longest identical-bit run = {longest}",
    )


BlockTest = Callable[[np.ndarray], TestResult]


@dataclass
class OnlineTestBench:
    """Runs a block test over a stream of raw bits and counts alarms.

    Parameters
    ----------
    block_test:
        Function evaluating one block of bits (e.g. the T1 monobit test, or
        the thermal-noise online test adapted to bits).
    block_size_bits:
        Number of bits per evaluated block.
    alarm_threshold:
        Number of failed blocks that triggers the alarm (AIS31 allows rare
        statistical failures; an alarm needs repetition).
    """

    block_test: BlockTest
    block_size_bits: int
    alarm_threshold: int = 2

    def __post_init__(self) -> None:
        if self.block_size_bits < 1:
            raise ValueError("block size must be >= 1")
        if self.alarm_threshold < 1:
            raise ValueError("alarm threshold must be >= 1")

    def run(self, bits: Sequence[int] | np.ndarray) -> OnlineTestReport:
        """Evaluate every complete block of the stream."""
        array = np.asarray(bits)
        n_blocks = array.size // self.block_size_bits
        if n_blocks == 0:
            raise ValueError("stream shorter than one block")
        results = []
        for index in range(n_blocks):
            block = array[
                index * self.block_size_bits : (index + 1) * self.block_size_bits
            ]
            results.append(self.block_test(block))
        return OnlineTestReport(
            block_results=results, alarm_threshold=self.alarm_threshold
        )


def monobit_online_test(block_size_bits: int = 20_000) -> OnlineTestBench:
    """Classical online test: T1 monobit on consecutive blocks."""
    return OnlineTestBench(
        block_test=t1_monobit_test, block_size_bits=block_size_bits
    )


def autocorrelation_online_test(block_size_bits: int = 10_000) -> OnlineTestBench:
    """Classical online test: T5 autocorrelation on consecutive blocks."""
    return OnlineTestBench(
        block_test=t5_autocorrelation_test, block_size_bits=block_size_bits
    )
