"""The paper's proposed embedded thermal-noise online test.

The conclusion of the paper: "the enhanced model enables to measure very
simply and precisely the thermal noise.  Since this measurement can be easily
embedded in a logic device, it can be used for implementing fast and precise
generator-specific statistical test.  Such test, required by AIS31, could
detect very quickly attacks targeting the entropy source."

The test implemented here does exactly that:

1. at characterisation time, the reference thermal coefficient ``b_th`` (or
   the thermal jitter ``sigma_th``) of the healthy generator is recorded;
2. during operation, short counter captures (Fig. 6) at one or two
   accumulation lengths are used to re-estimate ``b_th`` on the fly;
3. an alarm is raised when the estimate drops below a configurable fraction of
   the reference — the signature of an attack (frequency injection or EM
   locking reduces the exploitable random jitter) or of a source failure.

Because the measurement targets the *thermal* component specifically, it is
insensitive to the flicker noise that otherwise masks slow jitter changes —
the very problem the multilevel model solves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.fitting import coefficients_to_phase_noise
from ..core.thermal_extraction import ThermalNoiseReport, extract_thermal_noise_from_curve
from ..measurement.counter import DifferentialJitterCounter
from ..oscillator.period_model import Clock


@dataclass(frozen=True)
class ThermalTestResult:
    """Outcome of one execution of the embedded thermal-noise test."""

    estimated_b_thermal_hz: float
    reference_b_thermal_hz: float
    minimum_ratio: float
    passed: bool

    @property
    def ratio(self) -> float:
        """Estimated / reference ``b_th`` (1.0 means perfectly healthy)."""
        if self.reference_b_thermal_hz == 0.0:
            return 0.0
        return self.estimated_b_thermal_hz / self.reference_b_thermal_hz


@dataclass
class ThermalNoiseOnlineTest:
    """Generator-specific online test monitoring the thermal jitter level.

    Parameters
    ----------
    reference_b_thermal_hz:
        ``b_th`` of the healthy generator, from the characterisation run.
    minimum_ratio:
        Fraction of the reference below which the test fails (e.g. 0.5: alarm
        when the measured thermal noise halves).
    accumulation_lengths:
        The two window lengths ``N1 < N2`` used to separate the linear
        (thermal) and quadratic (flicker) parts with only two measurements.
    n_windows:
        Counter windows captured per accumulation length at every execution.
    correct_quantization:
        Subtract the counter quantisation variance from the estimates.
    """

    reference_b_thermal_hz: float
    minimum_ratio: float = 0.5
    accumulation_lengths: Sequence[int] = (1024, 8192)
    n_windows: int = 256
    correct_quantization: bool = True

    def __post_init__(self) -> None:
        if self.reference_b_thermal_hz <= 0.0:
            raise ValueError("reference b_th must be > 0")
        if not 0.0 < self.minimum_ratio < 1.0:
            raise ValueError("minimum ratio must be in (0, 1)")
        lengths = sorted(int(n) for n in self.accumulation_lengths)
        if len(lengths) < 2 or lengths[0] < 1 or lengths[0] == lengths[-1]:
            raise ValueError("need two distinct accumulation lengths >= 1")
        self.accumulation_lengths = tuple(lengths)
        if self.n_windows < 8:
            raise ValueError("need at least 8 windows per estimate")

    # -- estimation ----------------------------------------------------------

    def estimate_b_thermal(
        self, oscillator_1: Clock, oscillator_2: Clock
    ) -> float:
        """Estimate ``b_th`` from two short counter captures.

        With measurements at two accumulation lengths the linear and quadratic
        coefficients of Eq. 11 are identified exactly (two equations, two
        unknowns); the linear one gives ``b_th``.
        """
        counter = DifferentialJitterCounter(oscillator_1, oscillator_2)
        n_values = np.array(self.accumulation_lengths, dtype=float)
        sigma2 = np.empty(n_values.size)
        for index, n in enumerate(self.accumulation_lengths):
            capture = counter.capture(int(n), self.n_windows)
            sigma2[index] = capture.sigma2_n(
                correct_quantization=self.correct_quantization
            )
        # Solve sigma2 = A n + B n^2 exactly from the two points.
        n1, n2 = n_values
        determinant = n1 * n2**2 - n2 * n1**2
        linear = (sigma2[0] * n2**2 - sigma2[1] * n1**2) / determinant
        quadratic = (sigma2[1] * n1 - sigma2[0] * n2) / determinant
        b_thermal, _b_flicker = coefficients_to_phase_noise(
            float(linear), float(quadratic), oscillator_1.f0_hz
        )
        return b_thermal

    def execute(self, oscillator_1: Clock, oscillator_2: Clock) -> ThermalTestResult:
        """Run the online test once on the live oscillator pair."""
        estimate = self.estimate_b_thermal(oscillator_1, oscillator_2)
        passed = estimate >= self.minimum_ratio * self.reference_b_thermal_hz
        return ThermalTestResult(
            estimated_b_thermal_hz=estimate,
            reference_b_thermal_hz=self.reference_b_thermal_hz,
            minimum_ratio=self.minimum_ratio,
            passed=bool(passed),
        )


def characterize_reference(
    oscillator_1: Clock,
    oscillator_2: Clock,
    n_sweep: Optional[Sequence[int]] = None,
    n_windows: int = 512,
) -> ThermalNoiseReport:
    """Characterisation run: measure the healthy generator's ``b_th``/``b_fl``.

    Uses the counter path with a denser sweep than the online test (this runs
    once, offline, so it can afford the time).
    """
    from ..measurement.capture import counter_capture_campaign

    if n_sweep is None:
        n_sweep = [256, 512, 1024, 2048, 4096, 8192, 16384]
    campaign = counter_capture_campaign(
        oscillator_1,
        oscillator_2,
        n_sweep=n_sweep,
        n_windows=n_windows,
        correct_quantization=True,
    )
    return extract_thermal_noise_from_curve(campaign.curve)
