"""AIS31 Procedure A statistical tests (T0 - T5).

The paper frames P-TRNG security in the AIS31 methodology [10]: the generator
must pass black-box statistical tests on its internal random numbers and, for
the higher classes, generator-specific online tests backed by a stochastic
model.  Procedure A is the black-box battery; its tests T1-T4 are the FIPS
140-1 tests on 20 000-bit blocks, T0 is a disjointness test on 48-bit words
and T5 an autocorrelation test.

Every test accepts either one bit sequence (``(n,)``) or a whole ensemble of
sequences (``(B, n)``, one row per TRNG instance) and computes its statistics
vectorized across rows — there is no Python loop over the bits of any row.
A 1-D input returns a single :class:`TestResult`; a 2-D input returns a list
of ``B`` results (row order).  The scalar path is the ``B = 1`` view of the
batched kernels, so both are exercised by the same reference vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np


@dataclass(frozen=True)
class TestResult:
    """Outcome of one statistical test on a block of bits."""

    name: str
    passed: bool
    statistic: float
    details: str = ""

    def __bool__(self) -> bool:
        return self.passed


def _as_bits(bits: Sequence[int] | np.ndarray, minimum: int) -> np.ndarray:
    array = np.asarray(bits)
    if array.ndim != 1:
        raise ValueError("bit sequences must be one-dimensional")
    if array.size < minimum:
        raise ValueError(f"test needs at least {minimum} bits, got {array.size}")
    if not np.all((array == 0) | (array == 1)):
        raise ValueError("bit sequences may only contain 0 and 1")
    return array.astype(np.int64)


def _as_bit_rows(
    bits: Sequence[int] | np.ndarray, minimum: int
) -> Tuple[np.ndarray, bool]:
    """Normalize to ``(B, n)`` int64 rows; also report whether input was 1-D."""
    array = np.asarray(bits)
    if array.ndim == 1:
        return _as_bits(array, minimum)[None, :], True
    if array.ndim != 2:
        raise ValueError("bit sequences must be (n,) or (B, n) arrays")
    if array.shape[1] < minimum:
        raise ValueError(
            f"test needs at least {minimum} bits, got {array.shape[1]}"
        )
    if not np.all((array == 0) | (array == 1)):
        raise ValueError("bit sequences may only contain 0 and 1")
    return array.astype(np.int64), False


def _one_or_many(
    results: List[TestResult], scalar: bool
) -> Union[TestResult, List[TestResult]]:
    return results[0] if scalar else results


def t0_disjointness_test(
    bits: Sequence[int] | np.ndarray,
) -> Union[TestResult, List[TestResult]]:
    """T0: 2^16 consecutive 48-bit words must be pairwise distinct.

    Requires ``65536 * 48 = 3 145 728`` bits (per row).
    """
    n_words = 1 << 16
    word_bits = 48
    rows, scalar = _as_bit_rows(bits, n_words * word_bits)
    words = rows[:, : n_words * word_bits].reshape(-1, n_words, word_bits)
    weights = 1 << np.arange(word_bits - 1, -1, -1, dtype=np.int64)
    values = np.einsum("bwk,k->bw", words, weights)
    values.sort(axis=1)
    n_repeated = np.sum(values[:, 1:] == values[:, :-1], axis=1)
    return _one_or_many(
        [
            TestResult(
                name="T0 disjointness",
                passed=bool(repeated == 0),
                statistic=float(repeated),
                details=f"{int(repeated)} repeated 48-bit words",
            )
            for repeated in n_repeated
        ],
        scalar,
    )


def t1_monobit_test(
    bits: Sequence[int] | np.ndarray,
) -> Union[TestResult, List[TestResult]]:
    """T1: number of ones in 20 000 bits must lie in (9654, 10346)."""
    rows, scalar = _as_bit_rows(bits, 20_000)
    ones = np.sum(rows[:, :20_000], axis=1)
    return _one_or_many(
        [
            TestResult(
                name="T1 monobit",
                passed=bool(9654 < count < 10346),
                statistic=float(count),
                details=f"{int(count)} ones in 20000 bits",
            )
            for count in ones
        ],
        scalar,
    )


def t2_poker_test(
    bits: Sequence[int] | np.ndarray,
) -> Union[TestResult, List[TestResult]]:
    """T2: chi-square statistic on 4-bit nibbles of 20 000 bits in (1.03, 57.4)."""
    rows, scalar = _as_bit_rows(bits, 20_000)
    batch = rows.shape[0]
    nibbles = rows[:, :20_000].reshape(batch, 5000, 4)
    weights = np.array([8, 4, 2, 1])
    values = nibbles @ weights
    keys = values + 16 * np.arange(batch)[:, None]
    counts = np.bincount(keys.ravel(), minlength=16 * batch).reshape(batch, 16)
    statistics = 16.0 / 5000.0 * np.sum(counts.astype(float) ** 2, axis=1) - 5000.0
    return _one_or_many(
        [
            TestResult(
                name="T2 poker",
                passed=bool(1.03 < statistic < 57.4),
                statistic=float(statistic),
                details=f"chi-square = {statistic:.2f}",
            )
            for statistic in statistics
        ],
        scalar,
    )


#: Allowed run-count intervals of the T3 runs test, per run length (1..6+).
_T3_BOUNDS: Dict[int, tuple] = {
    1: (2267, 2733),
    2: (1079, 1421),
    3: (502, 748),
    4: (223, 402),
    5: (90, 223),
    6: (90, 223),
}


def _run_table(rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run decomposition of every row of a 0/1 array, without a row loop.

    Returns ``(values, lengths, row_first_run)``: the value and length of
    every run (all rows concatenated, row-major) and, per row, the index of
    its first run in those arrays.
    """
    batch, n = rows.shape
    flat = rows.reshape(-1)
    starts = np.empty(batch * n, dtype=bool)
    starts[0] = True
    np.not_equal(flat[1:], flat[:-1], out=starts[1:])
    starts[::n] = True  # a row boundary always starts a new run
    start_positions = np.flatnonzero(starts)
    lengths = np.diff(np.append(start_positions, batch * n))
    values = flat[start_positions]
    row_first_run = np.searchsorted(start_positions, np.arange(batch) * n)
    return values, lengths, row_first_run


def _run_lengths(array: np.ndarray) -> List[tuple]:
    """List of (value, length) runs of a 0/1 array."""
    if array.size == 0:
        return []
    values, lengths, _first = _run_table(np.asarray(array)[None, :])
    return [(int(value), int(length)) for value, length in zip(values, lengths)]


def t3_runs_test(
    bits: Sequence[int] | np.ndarray,
) -> Union[TestResult, List[TestResult]]:
    """T3: counts of runs of each length (1..5, >=6) within AIS31 bounds."""
    rows, scalar = _as_bit_rows(bits, 20_000)
    rows = rows[:, :20_000]
    batch = rows.shape[0]
    values, lengths, row_first_run = _run_table(rows)
    run_rows = np.searchsorted(
        row_first_run, np.arange(values.size), side="right"
    ) - 1
    keys = (run_rows * 2 + values) * 6 + (np.minimum(lengths, 6) - 1)
    counts = np.bincount(keys, minlength=batch * 12).reshape(batch, 2, 6)
    lows = np.array([_T3_BOUNDS[length][0] for length in range(1, 7)])
    highs = np.array([_T3_BOUNDS[length][1] for length in range(1, 7)])
    in_bounds = (counts >= lows) & (counts <= highs)
    centers = (lows + highs) / 2.0
    half_widths = (highs - lows) / 2.0
    deviations = np.max(np.abs(counts - centers) / half_widths, axis=(1, 2))
    results = []
    for row in range(batch):
        failures = [
            f"runs({value}, len {length}) = {counts[row, value, length - 1]}"
            for value in (0, 1)
            for length in range(1, 7)
            if not in_bounds[row, value, length - 1]
        ]
        results.append(
            TestResult(
                name="T3 runs",
                passed=not failures,
                statistic=float(deviations[row]),
                details="; ".join(failures)
                if failures
                else "all run counts in bounds",
            )
        )
    return _one_or_many(results, scalar)


def t4_long_run_test(
    bits: Sequence[int] | np.ndarray,
) -> Union[TestResult, List[TestResult]]:
    """T4: no run of length >= 34 in 20 000 bits."""
    rows, scalar = _as_bit_rows(bits, 20_000)
    _values, lengths, row_first_run = _run_table(rows[:, :20_000])
    longest = np.maximum.reduceat(lengths, row_first_run)
    return _one_or_many(
        [
            TestResult(
                name="T4 long run",
                passed=bool(length < 34),
                statistic=float(length),
                details=f"longest run = {int(length)}",
            )
            for length in longest
        ],
        scalar,
    )


def t5_autocorrelation_test(
    bits: Sequence[int] | np.ndarray, shift: int = 1
) -> Union[TestResult, List[TestResult]]:
    """T5: autocorrelation statistic of a 10 000-bit block in (2326, 2674).

    Uses the first 5000 bits XORed with the ``shift``-displaced bits, per the
    AIS31 specification (shift between 1 and 5000).
    """
    if not 1 <= shift <= 5000:
        raise ValueError("shift must be in [1, 5000]")
    rows, scalar = _as_bit_rows(bits, 10_000)
    statistics = np.sum(
        rows[:, :5000] ^ rows[:, shift : shift + 5000], axis=1
    )
    return _one_or_many(
        [
            TestResult(
                name="T5 autocorrelation",
                passed=bool(2326 < statistic < 2674),
                statistic=float(statistic),
                details=f"Z(shift={shift}) = {int(statistic)}",
            )
            for statistic in statistics
        ],
        scalar,
    )


def procedure_a(
    bits: Sequence[int] | np.ndarray, include_t0: bool = False
) -> Union[List[TestResult], List[List[TestResult]]]:
    """Run the Procedure A battery on one bit stream or a ``(B, n)`` ensemble.

    ``T0`` needs more than 3 million bits and is therefore opt-in; the block
    tests T1-T5 are run on the first 20 000 bits.  A 1-D input returns one
    flat result list; a 2-D input returns one result list per row, each
    computed by the vectorized batch kernels.
    """
    array = np.asarray(bits)
    batteries = []
    if include_t0:
        batteries.append(t0_disjointness_test(array))
    batteries.extend(
        [
            t1_monobit_test(array),
            t2_poker_test(array),
            t3_runs_test(array),
            t4_long_run_test(array),
            t5_autocorrelation_test(array),
        ]
    )
    if array.ndim == 1:
        return batteries
    return [list(row_results) for row_results in zip(*batteries)]


def all_passed(results: Sequence[TestResult]) -> bool:
    """True when every test in a (flat) result list passed."""
    return all(result.passed for result in results)


def rows_passed(per_row_results: Sequence[Sequence[TestResult]]) -> np.ndarray:
    """Per-row verdicts of a batched battery run, as a ``(B,)`` bool array."""
    return np.array(
        [all_passed(row_results) for row_results in per_row_results], dtype=bool
    )
