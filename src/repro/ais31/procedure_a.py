"""AIS31 Procedure A statistical tests (T0 - T5).

The paper frames P-TRNG security in the AIS31 methodology [10]: the generator
must pass black-box statistical tests on its internal random numbers and, for
the higher classes, generator-specific online tests backed by a stochastic
model.  Procedure A is the black-box battery; its tests T1-T4 are the FIPS
140-1 tests on 20 000-bit blocks, T0 is a disjointness test on 48-bit words
and T5 an autocorrelation test.

Each test returns a :class:`TestResult` with the statistic, the pass verdict
and the bounds used, so the online-test framework can log and aggregate them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


@dataclass(frozen=True)
class TestResult:
    """Outcome of one statistical test on a block of bits."""

    name: str
    passed: bool
    statistic: float
    details: str = ""

    def __bool__(self) -> bool:
        return self.passed


def _as_bits(bits: Sequence[int] | np.ndarray, minimum: int) -> np.ndarray:
    array = np.asarray(bits)
    if array.ndim != 1:
        raise ValueError("bit sequences must be one-dimensional")
    if array.size < minimum:
        raise ValueError(f"test needs at least {minimum} bits, got {array.size}")
    if not np.all((array == 0) | (array == 1)):
        raise ValueError("bit sequences may only contain 0 and 1")
    return array.astype(np.int64)


def t0_disjointness_test(bits: Sequence[int] | np.ndarray) -> TestResult:
    """T0: 2^16 consecutive 48-bit words must be pairwise distinct.

    Requires ``65536 * 48 = 3 145 728`` bits.
    """
    n_words = 1 << 16
    word_bits = 48
    array = _as_bits(bits, n_words * word_bits)
    words = array[: n_words * word_bits].reshape(n_words, word_bits)
    weights = 1 << np.arange(word_bits - 1, -1, -1, dtype=np.uint64)
    values = (words.astype(np.uint64) * weights).sum(axis=1)
    n_distinct = np.unique(values).size
    passed = n_distinct == n_words
    return TestResult(
        name="T0 disjointness",
        passed=bool(passed),
        statistic=float(n_words - n_distinct),
        details=f"{n_words - n_distinct} repeated 48-bit words",
    )


def t1_monobit_test(bits: Sequence[int] | np.ndarray) -> TestResult:
    """T1: number of ones in 20 000 bits must lie in (9654, 10346)."""
    array = _as_bits(bits, 20_000)[:20_000]
    ones = int(np.sum(array))
    passed = 9654 < ones < 10346
    return TestResult(
        name="T1 monobit",
        passed=bool(passed),
        statistic=float(ones),
        details=f"{ones} ones in 20000 bits",
    )


def t2_poker_test(bits: Sequence[int] | np.ndarray) -> TestResult:
    """T2: chi-square statistic on 4-bit nibbles of 20 000 bits in (1.03, 57.4)."""
    array = _as_bits(bits, 20_000)[:20_000]
    nibbles = array.reshape(5000, 4)
    weights = np.array([8, 4, 2, 1])
    values = nibbles @ weights
    counts = np.bincount(values, minlength=16)
    statistic = float(16.0 / 5000.0 * np.sum(counts.astype(float) ** 2) - 5000.0)
    passed = 1.03 < statistic < 57.4
    return TestResult(
        name="T2 poker",
        passed=bool(passed),
        statistic=statistic,
        details=f"chi-square = {statistic:.2f}",
    )


#: Allowed run-count intervals of the T3 runs test, per run length (1..6+).
_T3_BOUNDS: Dict[int, tuple] = {
    1: (2267, 2733),
    2: (1079, 1421),
    3: (502, 748),
    4: (223, 402),
    5: (90, 223),
    6: (90, 223),
}


def _run_lengths(array: np.ndarray) -> List[tuple]:
    """List of (value, length) runs of a 0/1 array."""
    if array.size == 0:
        return []
    change_points = np.flatnonzero(np.diff(array)) + 1
    boundaries = np.concatenate(([0], change_points, [array.size]))
    return [
        (int(array[start]), int(end - start))
        for start, end in zip(boundaries[:-1], boundaries[1:])
    ]


def t3_runs_test(bits: Sequence[int] | np.ndarray) -> TestResult:
    """T3: counts of runs of each length (1..5, >=6) within AIS31 bounds."""
    array = _as_bits(bits, 20_000)[:20_000]
    runs = _run_lengths(array)
    failures = []
    worst_deviation = 0.0
    for value in (0, 1):
        for length in range(1, 7):
            if length < 6:
                count = sum(
                    1 for run_value, run_length in runs
                    if run_value == value and run_length == length
                )
            else:
                count = sum(
                    1 for run_value, run_length in runs
                    if run_value == value and run_length >= 6
                )
            low, high = _T3_BOUNDS[length]
            if not low <= count <= high:
                failures.append(f"runs({value}, len {length}) = {count}")
            center = (low + high) / 2.0
            half_width = (high - low) / 2.0
            worst_deviation = max(worst_deviation, abs(count - center) / half_width)
    passed = not failures
    return TestResult(
        name="T3 runs",
        passed=bool(passed),
        statistic=worst_deviation,
        details="; ".join(failures) if failures else "all run counts in bounds",
    )


def t4_long_run_test(bits: Sequence[int] | np.ndarray) -> TestResult:
    """T4: no run of length >= 34 in 20 000 bits."""
    array = _as_bits(bits, 20_000)[:20_000]
    longest = max(length for _value, length in _run_lengths(array))
    passed = longest < 34
    return TestResult(
        name="T4 long run",
        passed=bool(passed),
        statistic=float(longest),
        details=f"longest run = {longest}",
    )


def t5_autocorrelation_test(
    bits: Sequence[int] | np.ndarray, shift: int = 1
) -> TestResult:
    """T5: autocorrelation statistic of a 10 000-bit block in (2326, 2674).

    Uses the first 5000 bits XORed with the ``shift``-displaced bits, per the
    AIS31 specification (shift between 1 and 5000).
    """
    if not 1 <= shift <= 5000:
        raise ValueError("shift must be in [1, 5000]")
    array = _as_bits(bits, 10_000)[:10_000]
    statistic = int(np.sum(array[:5000] ^ array[shift : shift + 5000]))
    passed = 2326 < statistic < 2674
    return TestResult(
        name="T5 autocorrelation",
        passed=bool(passed),
        statistic=float(statistic),
        details=f"Z(shift={shift}) = {statistic}",
    )


def procedure_a(bits: Sequence[int] | np.ndarray, include_t0: bool = False) -> List[TestResult]:
    """Run the Procedure A battery on a bit stream.

    ``T0`` needs more than 3 million bits and is therefore opt-in; the block
    tests T1-T5 are run on the first 20 000 bits.
    """
    results = []
    if include_t0:
        results.append(t0_disjointness_test(bits))
    results.extend(
        [
            t1_monobit_test(bits),
            t2_poker_test(bits),
            t3_runs_test(bits),
            t4_long_run_test(bits),
            t5_autocorrelation_test(bits),
        ]
    )
    return results


def all_passed(results: Sequence[TestResult]) -> bool:
    """True when every test in a result list passed."""
    return all(result.passed for result in results)
