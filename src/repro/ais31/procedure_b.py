"""AIS31 Procedure B tests (T6 - T8) on the raw binary sequence.

Procedure B evaluates the *raw* (pre-post-processing) sequence: T6 checks the
uniformity of the one-step transition probabilities, T7 the homogeneity of
multinomial transition distributions, and T8 estimates the entropy per bit
with Coron's estimator.  Together with the stochastic model they support the
PTG.2 / PTG.3 claims; the paper's contribution directly affects how the
stochastic-model part should be built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
from scipy import stats

from .procedure_a import TestResult, _as_bits


def t6_uniform_distribution_test(
    bits: Sequence[int] | np.ndarray, tolerance: float = 0.025
) -> TestResult:
    """T6: the conditional probabilities P(1 | previous bit) must be near 1/2.

    AIS31's T6(a)/T6(b) check |P(x=1) - 0.5| and the disjointness of the
    one-step transition frequencies; this implementation checks
    ``|P(1|0) - P(1|1)| < 2 * tolerance`` and ``|P(1) - 0.5| < tolerance`` on
    100 000 bits.
    """
    array = _as_bits(bits, 100_000)[:100_000]
    marginal = float(np.mean(array))
    previous = array[:-1]
    following = array[1:]
    probability_one_after_zero = float(np.mean(following[previous == 0]))
    probability_one_after_one = float(np.mean(following[previous == 1]))
    marginal_ok = abs(marginal - 0.5) < tolerance
    conditional_gap = abs(probability_one_after_one - probability_one_after_zero)
    conditional_ok = conditional_gap < 2.0 * tolerance
    passed = marginal_ok and conditional_ok
    return TestResult(
        name="T6 uniform distribution",
        passed=bool(passed),
        statistic=max(abs(marginal - 0.5), conditional_gap / 2.0),
        details=(
            f"P(1) = {marginal:.4f}, P(1|0) = {probability_one_after_zero:.4f}, "
            f"P(1|1) = {probability_one_after_one:.4f}"
        ),
    )


def t7_comparative_test(
    bits: Sequence[int] | np.ndarray, significance: float = 1e-4
) -> TestResult:
    """T7: homogeneity of the transition distributions for 2-bit histories.

    The empirical distributions of the bit following each 2-bit history are
    compared with a chi-square homogeneity test; under the null (i.i.d. bits)
    the statistic is chi-square distributed with 3 degrees of freedom.
    """
    array = _as_bits(bits, 100_000)[:100_000]
    histories = array[:-2] * 2 + array[1:-1]
    following = array[2:]
    counts = np.zeros((4, 2))
    for history in range(4):
        mask = histories == history
        counts[history, 1] = np.sum(following[mask])
        counts[history, 0] = np.count_nonzero(mask) - counts[history, 1]
    row_totals = counts.sum(axis=1, keepdims=True)
    column_totals = counts.sum(axis=0, keepdims=True)
    grand_total = counts.sum()
    expected = row_totals @ column_totals / grand_total
    with np.errstate(divide="ignore", invalid="ignore"):
        contributions = np.where(expected > 0, (counts - expected) ** 2 / expected, 0.0)
    statistic = float(np.sum(contributions))
    p_value = float(stats.chi2.sf(statistic, df=3))
    passed = p_value > significance
    return TestResult(
        name="T7 comparative",
        passed=bool(passed),
        statistic=statistic,
        details=f"chi-square = {statistic:.2f}, p = {p_value:.3g}",
    )


def coron_entropy_estimate(
    bits: Sequence[int] | np.ndarray, block_size: int = 8, q: int = 2560
) -> float:
    """Coron's entropy estimator (the statistic behind AIS31's T8) [bits/block].

    The sequence is split into ``block_size``-bit words; after an
    initialisation segment of ``q`` words, each word contributes
    ``log2(distance to its previous occurrence)`` (in the Coron-corrected
    ``g`` function).  The result approaches the entropy per block for
    stationary sources with memory shorter than the block.
    """
    array = _as_bits(bits, (q + 256) * block_size)
    n_words = array.size // block_size
    words = array[: n_words * block_size].reshape(n_words, block_size)
    weights = 1 << np.arange(block_size - 1, -1, -1)
    values = words @ weights
    if n_words <= q:
        raise ValueError("sequence too short for the requested q")
    # Coron's corrected g function: g(i) = (1/ln 2) * sum_{k=1}^{i-1} 1/k,
    # approximated through the digamma function for large distances.
    last_seen = {}
    for index in range(q):
        last_seen[int(values[index])] = index
    total = 0.0
    count = 0
    for index in range(q, n_words):
        value = int(values[index])
        if value in last_seen:
            distance = index - last_seen[value]
        else:
            distance = index + 1
        total += _coron_g(distance)
        last_seen[value] = index
        count += 1
    return total / count


def _coron_g(distance: int) -> float:
    """Coron's ``g`` function: expectation-corrected log2 of the recurrence distance."""
    if distance < 1:
        raise ValueError("distance must be >= 1")
    # (1/ln2) * (psi(distance) + Euler-Mascheroni) equals sum_{k=1}^{d-1} 1/k / ln2.
    from scipy.special import digamma

    euler_gamma = 0.5772156649015329
    return float((digamma(distance) + euler_gamma) / np.log(2.0))


def t8_entropy_test(
    bits: Sequence[int] | np.ndarray,
    block_size: int = 8,
    minimum_entropy_per_bit: float = 0.997,
) -> TestResult:
    """T8: Coron entropy estimate per bit must exceed ``minimum_entropy_per_bit``."""
    estimate_per_block = coron_entropy_estimate(bits, block_size=block_size)
    estimate_per_bit = estimate_per_block / block_size
    passed = estimate_per_bit > minimum_entropy_per_bit
    return TestResult(
        name="T8 entropy",
        passed=bool(passed),
        statistic=estimate_per_bit,
        details=f"Coron estimate = {estimate_per_bit:.4f} bit/bit",
    )


def procedure_b(bits: Sequence[int] | np.ndarray) -> List[TestResult]:
    """Run the Procedure B battery (T6, T7, T8) on a raw bit stream."""
    return [
        t6_uniform_distribution_test(bits),
        t7_comparative_test(bits),
        t8_entropy_test(bits),
    ]
