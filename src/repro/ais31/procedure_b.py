"""AIS31 Procedure B tests (T6 - T8) on the raw binary sequence.

Procedure B evaluates the *raw* (pre-post-processing) sequence: T6 checks the
uniformity of the one-step transition probabilities, T7 the homogeneity of
multinomial transition distributions, and T8 estimates the entropy per bit
with Coron's estimator.  Together with the stochastic model they support the
PTG.2 / PTG.3 claims; the paper's contribution directly affects how the
stochastic-model part should be built.

Like Procedure A, every test accepts one sequence (``(n,)``, returning one
:class:`~repro.ais31.procedure_a.TestResult`) or a ``(B, n)`` ensemble
(returning ``B`` results), with all statistics — including the Coron
recurrence distances — computed vectorized across rows.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np
from scipy import stats
from scipy.special import digamma

from .procedure_a import TestResult, _as_bit_rows, _one_or_many

_EULER_GAMMA = 0.5772156649015329


def t6_uniform_distribution_test(
    bits: Sequence[int] | np.ndarray, tolerance: float = 0.025
) -> Union[TestResult, List[TestResult]]:
    """T6: the conditional probabilities P(1 | previous bit) must be near 1/2.

    AIS31's T6(a)/T6(b) check |P(x=1) - 0.5| and the disjointness of the
    one-step transition frequencies; this implementation checks
    ``|P(1|0) - P(1|1)| < 2 * tolerance`` and ``|P(1) - 0.5| < tolerance`` on
    100 000 bits.
    """
    rows, scalar = _as_bit_rows(bits, 100_000)
    rows = rows[:, :100_000]
    marginals = np.mean(rows, axis=1)
    previous = rows[:, :-1]
    following = rows[:, 1:]
    ones_after_one = np.sum(following * previous, axis=1)
    ones_after_zero = np.sum(following, axis=1) - ones_after_one
    count_one = np.sum(previous, axis=1)
    count_zero = previous.shape[1] - count_one
    with np.errstate(divide="ignore", invalid="ignore"):
        probability_one_after_zero = ones_after_zero / count_zero
        probability_one_after_one = ones_after_one / count_one
    conditional_gaps = np.abs(
        probability_one_after_one - probability_one_after_zero
    )
    results = []
    for row in range(rows.shape[0]):
        marginal_ok = abs(marginals[row] - 0.5) < tolerance
        conditional_ok = conditional_gaps[row] < 2.0 * tolerance
        results.append(
            TestResult(
                name="T6 uniform distribution",
                passed=bool(marginal_ok and conditional_ok),
                statistic=float(
                    max(abs(marginals[row] - 0.5), conditional_gaps[row] / 2.0)
                ),
                details=(
                    f"P(1) = {marginals[row]:.4f}, "
                    f"P(1|0) = {probability_one_after_zero[row]:.4f}, "
                    f"P(1|1) = {probability_one_after_one[row]:.4f}"
                ),
            )
        )
    return _one_or_many(results, scalar)


def t7_comparative_test(
    bits: Sequence[int] | np.ndarray, significance: float = 1e-4
) -> Union[TestResult, List[TestResult]]:
    """T7: homogeneity of the transition distributions for 2-bit histories.

    The empirical distributions of the bit following each 2-bit history are
    compared with a chi-square homogeneity test; under the null (i.i.d. bits)
    the statistic is chi-square distributed with 3 degrees of freedom.
    """
    rows, scalar = _as_bit_rows(bits, 100_000)
    rows = rows[:, :100_000]
    batch = rows.shape[0]
    histories = rows[:, :-2] * 2 + rows[:, 1:-1]
    following = rows[:, 2:]
    keys = (np.arange(batch)[:, None] * 4 + histories) * 2 + following
    counts = np.bincount(keys.ravel(), minlength=batch * 8).reshape(batch, 4, 2)
    counts = counts.astype(float)
    row_totals = counts.sum(axis=2, keepdims=True)
    column_totals = counts.sum(axis=1, keepdims=True)
    grand_totals = counts.sum(axis=(1, 2))[:, None, None]
    expected = row_totals * column_totals / grand_totals
    with np.errstate(divide="ignore", invalid="ignore"):
        contributions = np.where(
            expected > 0, (counts - expected) ** 2 / expected, 0.0
        )
    statistics = np.sum(contributions, axis=(1, 2))
    p_values = stats.chi2.sf(statistics, df=3)
    return _one_or_many(
        [
            TestResult(
                name="T7 comparative",
                passed=bool(p_value > significance),
                statistic=float(statistic),
                details=f"chi-square = {statistic:.2f}, p = {p_value:.3g}",
            )
            for statistic, p_value in zip(statistics, p_values)
        ],
        scalar,
    )


def coron_recurrence_distances(values: np.ndarray) -> np.ndarray:
    """Distance of every word to its previous occurrence, per row.

    ``values`` is a ``(B, n_words)`` integer array; the result has the same
    shape, with first occurrences assigned ``index + 1`` (Coron's
    convention).  Computed for all rows at once with one stable argsort that
    groups equal words per row while preserving their temporal order.
    """
    batch, n_words = values.shape
    spread = int(values.max()) + 1 if values.size else 1
    keys = (np.arange(batch, dtype=np.int64)[:, None] * spread + values).ravel()
    order = np.argsort(keys, kind="stable")
    columns = np.tile(np.arange(n_words, dtype=np.int64), batch)
    sorted_keys = keys[order]
    sorted_columns = columns[order]
    same_group = np.empty(keys.size, dtype=bool)
    same_group[0] = False
    np.equal(sorted_keys[1:], sorted_keys[:-1], out=same_group[1:])
    previous_columns = np.empty_like(sorted_columns)
    previous_columns[0] = 0
    previous_columns[1:] = sorted_columns[:-1]
    sorted_distances = np.where(
        same_group, sorted_columns - previous_columns, sorted_columns + 1
    )
    distances = np.empty(keys.size, dtype=np.int64)
    distances[order] = sorted_distances
    return distances.reshape(batch, n_words)


def coron_entropy_estimate(
    bits: Sequence[int] | np.ndarray, block_size: int = 8, q: int = 2560
) -> Union[float, np.ndarray]:
    """Coron's entropy estimator (the statistic behind AIS31's T8) [bits/block].

    The sequence is split into ``block_size``-bit words; after an
    initialisation segment of ``q`` words, each word contributes
    ``log2(distance to its previous occurrence)`` (in the Coron-corrected
    ``g`` function).  The result approaches the entropy per block for
    stationary sources with memory shorter than the block.  A ``(B, n)``
    input returns the ``(B,)`` per-row estimates, computed without a Python
    loop over rows (or words).
    """
    rows, scalar = _as_bit_rows(bits, (q + 256) * block_size)
    n_words = rows.shape[1] // block_size
    if n_words <= q:
        raise ValueError("sequence too short for the requested q")
    words = rows[:, : n_words * block_size].reshape(-1, n_words, block_size)
    weights = 1 << np.arange(block_size - 1, -1, -1)
    values = words @ weights
    distances = coron_recurrence_distances(values)[:, q:]
    estimates = np.mean(_coron_g_array(distances), axis=1)
    return float(estimates[0]) if scalar else estimates


def _coron_g_array(distances: np.ndarray) -> np.ndarray:
    """Vectorized Coron ``g``: expectation-corrected log2 of the distances."""
    # (1/ln2) * (psi(d) + Euler-Mascheroni) equals sum_{k=1}^{d-1} 1/k / ln2.
    return (digamma(distances) + _EULER_GAMMA) / np.log(2.0)


def _coron_g(distance: int) -> float:
    """Coron's ``g`` function: expectation-corrected log2 of the recurrence distance."""
    if distance < 1:
        raise ValueError("distance must be >= 1")
    return float(_coron_g_array(np.asarray(distance, dtype=float)))


def t8_entropy_test(
    bits: Sequence[int] | np.ndarray,
    block_size: int = 8,
    minimum_entropy_per_bit: float = 0.997,
) -> Union[TestResult, List[TestResult]]:
    """T8: Coron entropy estimate per bit must exceed ``minimum_entropy_per_bit``."""
    rows, scalar = _as_bit_rows(bits, (2560 + 256) * block_size)
    estimates_per_bit = (
        np.atleast_1d(coron_entropy_estimate(rows, block_size=block_size))
        / block_size
    )
    return _one_or_many(
        [
            TestResult(
                name="T8 entropy",
                passed=bool(estimate > minimum_entropy_per_bit),
                statistic=float(estimate),
                details=f"Coron estimate = {estimate:.4f} bit/bit",
            )
            for estimate in estimates_per_bit
        ],
        scalar,
    )


def procedure_b(
    bits: Sequence[int] | np.ndarray,
) -> Union[List[TestResult], List[List[TestResult]]]:
    """Run the Procedure B battery (T6, T7, T8) on a raw bit stream.

    A 1-D input returns one flat result list; a ``(B, n)`` ensemble returns
    one result list per row (vectorized across rows).
    """
    array = np.asarray(bits)
    batteries = [
        t6_uniform_distribution_test(array),
        t7_comparative_test(array),
        t8_entropy_test(array),
    ]
    if array.ndim == 1:
        return batteries
    return [list(row_results) for row_results in zip(*batteries)]


__all__ = [
    "coron_entropy_estimate",
    "coron_recurrence_distances",
    "procedure_b",
    "t6_uniform_distribution_test",
    "t7_comparative_test",
    "t8_entropy_test",
]
