"""Additional black-box statistical tests (NIST SP 800-22 style).

AIS31 evaluations are commonly complemented with the NIST SP 800-22 battery.
This module implements the subset most relevant to oscillator-based TRNG
defects (bias, short-range correlation, slow drift): frequency-within-block,
runs, cumulative sums, serial and approximate-entropy tests.  Each returns the
same :class:`repro.ais31.procedure_a.TestResult` structure so it can plug into
the online-test framework.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
from scipy import stats
from scipy.special import erfc, gammaincc

from .procedure_a import TestResult, _as_bits

DEFAULT_SIGNIFICANCE = 0.01


def frequency_within_block_test(
    bits: Sequence[int] | np.ndarray,
    block_size: int = 128,
    significance: float = DEFAULT_SIGNIFICANCE,
) -> TestResult:
    """NIST frequency-within-block test: local bias in M-bit blocks."""
    array = _as_bits(bits, 100)
    if block_size < 8:
        raise ValueError("block size must be >= 8")
    n_blocks = array.size // block_size
    if n_blocks < 1:
        raise ValueError("sequence shorter than one block")
    blocks = array[: n_blocks * block_size].reshape(n_blocks, block_size)
    proportions = blocks.mean(axis=1)
    chi_squared = float(4.0 * block_size * np.sum((proportions - 0.5) ** 2))
    p_value = float(gammaincc(n_blocks / 2.0, chi_squared / 2.0))
    return TestResult(
        name="NIST frequency within block",
        passed=bool(p_value >= significance),
        statistic=p_value,
        details=f"chi^2 = {chi_squared:.2f} over {n_blocks} blocks",
    )


def runs_test(
    bits: Sequence[int] | np.ndarray, significance: float = DEFAULT_SIGNIFICANCE
) -> TestResult:
    """NIST runs test: total number of runs versus the expectation for i.i.d. bits."""
    array = _as_bits(bits, 100)
    proportion = float(np.mean(array))
    n = array.size
    if abs(proportion - 0.5) >= 2.0 / np.sqrt(n):
        return TestResult(
            name="NIST runs",
            passed=False,
            statistic=0.0,
            details="pre-test failed: bias too large for the runs test",
        )
    n_runs = 1 + int(np.count_nonzero(np.diff(array)))
    expected = 2.0 * n * proportion * (1.0 - proportion)
    p_value = float(
        erfc(
            abs(n_runs - expected)
            / (2.0 * np.sqrt(2.0 * n) * proportion * (1.0 - proportion))
        )
    )
    return TestResult(
        name="NIST runs",
        passed=bool(p_value >= significance),
        statistic=p_value,
        details=f"{n_runs} runs, expected {expected:.0f}",
    )


def cumulative_sums_test(
    bits: Sequence[int] | np.ndarray, significance: float = DEFAULT_SIGNIFICANCE
) -> TestResult:
    """NIST cumulative-sums (cusum, forward) test: detects slow drift of the bias."""
    array = _as_bits(bits, 100)
    n = array.size
    adjusted = 2 * array - 1
    cumulative = np.cumsum(adjusted)
    z = float(np.max(np.abs(cumulative)))
    if z == 0.0:
        return TestResult(
            name="NIST cumulative sums",
            passed=False,
            statistic=0.0,
            details="degenerate constant sequence",
        )
    k_start = int(np.floor((-n / z + 1.0) / 4.0))
    k_end = int(np.floor((n / z - 1.0) / 4.0))
    first_sum = sum(
        stats.norm.cdf((4 * k + 1) * z / np.sqrt(n))
        - stats.norm.cdf((4 * k - 1) * z / np.sqrt(n))
        for k in range(k_start, k_end + 1)
    )
    k_start = int(np.floor((-n / z - 3.0) / 4.0))
    second_sum = sum(
        stats.norm.cdf((4 * k + 3) * z / np.sqrt(n))
        - stats.norm.cdf((4 * k + 1) * z / np.sqrt(n))
        for k in range(k_start, k_end + 1)
    )
    p_value = float(1.0 - first_sum + second_sum)
    p_value = float(np.clip(p_value, 0.0, 1.0))
    return TestResult(
        name="NIST cumulative sums",
        passed=bool(p_value >= significance),
        statistic=p_value,
        details=f"max |cusum| = {z:.0f}",
    )


def serial_test(
    bits: Sequence[int] | np.ndarray,
    pattern_length: int = 3,
    significance: float = DEFAULT_SIGNIFICANCE,
) -> TestResult:
    """NIST serial test: uniformity of overlapping m-bit pattern frequencies."""
    array = _as_bits(bits, 100)
    if pattern_length < 2 or pattern_length > 16:
        raise ValueError("pattern length must be in [2, 16]")

    def psi_squared(m: int) -> float:
        if m == 0:
            return 0.0
        extended = np.concatenate([array, array[: m - 1]]) if m > 1 else array
        weights = 1 << np.arange(m - 1, -1, -1)
        windows = np.lib.stride_tricks.sliding_window_view(extended, m)[: array.size]
        values = windows @ weights
        counts = np.bincount(values, minlength=1 << m)
        return float((1 << m) / array.size * np.sum(counts.astype(float) ** 2) - array.size)

    psi_m = psi_squared(pattern_length)
    psi_m1 = psi_squared(pattern_length - 1)
    psi_m2 = psi_squared(pattern_length - 2)
    delta1 = psi_m - psi_m1
    delta2 = psi_m - 2.0 * psi_m1 + psi_m2
    p_value_1 = float(gammaincc(2 ** (pattern_length - 2), delta1 / 2.0))
    p_value_2 = float(gammaincc(2 ** (pattern_length - 3), delta2 / 2.0))
    p_value = min(p_value_1, p_value_2)
    return TestResult(
        name="NIST serial",
        passed=bool(p_value >= significance),
        statistic=p_value,
        details=f"delta psi^2 = {delta1:.2f}, {delta2:.2f}",
    )


def approximate_entropy_test(
    bits: Sequence[int] | np.ndarray,
    pattern_length: int = 3,
    significance: float = DEFAULT_SIGNIFICANCE,
) -> TestResult:
    """NIST approximate-entropy test: compares m and m+1 pattern statistics."""
    array = _as_bits(bits, 100)
    if pattern_length < 1 or pattern_length > 14:
        raise ValueError("pattern length must be in [1, 14]")

    def phi(m: int) -> float:
        extended = np.concatenate([array, array[: m - 1]]) if m > 1 else array
        weights = 1 << np.arange(m - 1, -1, -1)
        windows = np.lib.stride_tricks.sliding_window_view(extended, m)[: array.size]
        values = windows @ weights
        counts = np.bincount(values, minlength=1 << m).astype(float)
        proportions = counts[counts > 0] / array.size
        return float(np.sum(proportions * np.log(proportions)))

    ap_en = phi(pattern_length) - phi(pattern_length + 1)
    chi_squared = 2.0 * array.size * (np.log(2.0) - ap_en)
    p_value = float(gammaincc(2 ** (pattern_length - 1), chi_squared / 2.0))
    return TestResult(
        name="NIST approximate entropy",
        passed=bool(p_value >= significance),
        statistic=p_value,
        details=f"ApEn = {ap_en:.6f}",
    )


def nist_battery(bits: Sequence[int] | np.ndarray) -> List[TestResult]:
    """Run the implemented NIST-style tests on a bit stream."""
    return [
        frequency_within_block_test(bits),
        runs_test(bits),
        cumulative_sums_test(bits),
        serial_test(bits),
        approximate_entropy_test(bits),
    ]
