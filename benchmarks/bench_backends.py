"""Benchmark: multithreaded synthesis backend vs the NumPy reference.

The draw-and-shape kernel of
:meth:`repro.engine.batch.BatchedJitterSynthesizer._components` (per-row
normal draws + batched pink-noise FFT) is the hot path of every campaign.
This benchmark measures it two ways:

* **kernel**: raw ``(B, n_periods)`` period synthesis — exactly the step a
  :class:`~repro.engine.backends.SynthesisBackend` owns, and what the
  headline target gates on;
* **campaign**: a full Fig. 7 ``sigma^2_N`` campaign (synthesis + vectorized
  estimate + Eq. 11 fit) — the end-to-end effect, reported for context.

Because every backend must be **bit-for-bit identical** to the
:class:`~repro.engine.backends.NumpyBackend` reference, the script asserts
exactly that before any timing run — across worker counts {1, N}, the
spectral and non-spectral flicker paths, zero-coefficient rows, and the bit
pipeline.

The headline target is a >= 2x kernel speedup at ``--workers 4`` for
B >= 256 ensembles.  The speedup is hardware-bound: ``--check`` enforces the
target only on hosts with >= 4 CPU cores, and the JSON artifact records
``mode``/``cpu_cores``/``check_eligible`` so the perf gate
(``scripts/check_bench.py`` + ``benchmarks/baselines/backends.json``) skips
small runners deterministically.

Run ``python benchmarks/bench_backends.py`` (add ``--quick`` for a smoke
run, ``--check`` to gate on the target, ``--json PATH`` for CI artifacts).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

# Allow running as a plain script from the repository root.
sys.path.insert(0, "src")

from repro.engine.backends import (  # noqa: E402
    NumpyBackend,
    PhiloxBackend,
    ThreadedBackend,
)
from repro.engine.batch import BatchedOscillatorEnsemble  # noqa: E402
from repro.engine.bits import BatchedEROTRNG  # noqa: E402
from repro.engine.campaign import batched_sigma2_n_campaign  # noqa: E402
from repro.paper import PAPER_B_THERMAL_HZ, PAPER_F0_HZ  # noqa: E402
from repro.phase.psd import PhaseNoisePSD  # noqa: E402
from repro.trng.ero_trng import EROTRNGConfiguration  # noqa: E402

TARGET_SPEEDUP = 2.0
TARGET_WORKERS = 4
TARGET_BATCH = 256

B_FLICKER_HZ2 = 5.42


def _best_of(function, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _ensemble(
    batch: int, seed: int, backend, rng_contract=None
) -> BatchedOscillatorEnsemble:
    return BatchedOscillatorEnsemble.from_phase_noise(
        PAPER_F0_HZ,
        PAPER_B_THERMAL_HZ,
        B_FLICKER_HZ2,
        batch_size=batch,
        seed=seed,
        rng_contract=rng_contract,
        backend=backend,
    )


def verify_equivalence(workers: int, seed: int) -> None:
    """Assert threaded output == the NumPy reference, bitwise, pre-timing."""
    # Heterogeneous rows including every draw-skipping case.
    b_thermal = np.array([276.04, 276.04, 0.0, 0.0, 100.0, 400.0, 0.0, 276.04])
    b_flicker = np.array([5.42, 0.0, 5.42, 0.0, 1.0, 8.0, 2.0, 5.42])
    for method in ("spectral", "ar"):
        for max_workers in {1, workers}:
            reference = BatchedOscillatorEnsemble.from_phase_noise(
                PAPER_F0_HZ,
                b_thermal,
                b_flicker,
                seed=seed,
                flicker_method=method,
                backend=NumpyBackend(),
            )
            threaded = BatchedOscillatorEnsemble.from_phase_noise(
                PAPER_F0_HZ,
                b_thermal,
                b_flicker,
                seed=seed,
                flicker_method=method,
                backend=ThreadedBackend(max_workers=max_workers),
            )
            for n_periods in (1, 257, 1024):
                if not np.array_equal(
                    reference.periods(n_periods), threaded.periods(n_periods)
                ):
                    raise AssertionError(
                        f"threaded:{max_workers} differs from numpy "
                        f"(method={method}, n={n_periods})"
                    )
    configuration = EROTRNGConfiguration(
        f0_hz=PAPER_F0_HZ,
        oscillator_psd=PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=5.42),
        divider=16,
        frequency_mismatch=1e-3,
    )
    reference_trng = BatchedEROTRNG(
        configuration, batch_size=4, seed=seed, backend=NumpyBackend()
    )
    threaded_trng = BatchedEROTRNG(
        configuration,
        batch_size=4,
        seed=seed,
        backend=ThreadedBackend(max_workers=workers),
    )
    reference_bits = reference_trng.generate_raw(256).bits
    threaded_bits = threaded_trng.generate_raw(256).bits
    if not np.array_equal(reference_bits, threaded_bits):
        raise AssertionError("bit pipeline differs between backends")

    # The philox backend selects *execution* only: on the default spawn
    # streams it must be bitwise identical to the NumPy reference, and on
    # philox-contract streams it must agree with NumPy executing the same
    # counter-based draws.
    for max_workers in {1, workers}:
        for rng_contract in (None, "philox"):
            reference = _ensemble(8, seed, NumpyBackend(), rng_contract)
            philox = _ensemble(
                8, seed, PhiloxBackend(max_workers=max_workers), rng_contract
            )
            if not np.array_equal(
                reference.periods(1024), philox.periods(1024)
            ):
                raise AssertionError(
                    f"philox:{max_workers} differs from numpy "
                    f"(rng_contract={rng_contract or 'spawn'})"
                )


def run(batch: int, n_periods: int, workers: int, repeats: int, seed: int):
    numpy_backend = NumpyBackend()
    threaded_backend = ThreadedBackend(max_workers=workers)

    philox_backend = PhiloxBackend(max_workers=workers)

    # Fresh ensembles per repetition keep both backends on cold RNG streams.
    def kernel(backend, rng_contract=None):
        def body() -> None:
            _ensemble(batch, seed, backend, rng_contract).periods(n_periods)

        return body

    def campaign(backend):
        def body() -> None:
            batched_sigma2_n_campaign(_ensemble(batch, seed, backend), n_periods)

        return body

    kernel_numpy = _best_of(kernel(numpy_backend), repeats)
    kernel_threaded = _best_of(kernel(threaded_backend), repeats)
    # The philox pair times the counter-based streams on both executors, so
    # the speedup isolates execution from stream derivation.
    kernel_numpy_philox = _best_of(kernel(numpy_backend, "philox"), repeats)
    kernel_philox = _best_of(kernel(philox_backend, "philox"), repeats)
    campaign_numpy = _best_of(campaign(numpy_backend), repeats)
    campaign_threaded = _best_of(campaign(threaded_backend), repeats)
    return (
        kernel_numpy,
        kernel_threaded,
        kernel_numpy_philox,
        kernel_philox,
        campaign_numpy,
        campaign_threaded,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--batch", type=int, default=TARGET_BATCH, help="instances B"
    )
    parser.add_argument(
        "--n-periods", type=int, default=65_536, help="periods per instance"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=TARGET_WORKERS,
        help="threaded-backend worker threads",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repetitions (best-of; raise on a noisy machine)",
    )
    parser.add_argument("--seed", type=int, default=20140324)
    parser.add_argument(
        "--quick", action="store_true", help="small smoke configuration"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the speedup target is missed",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        help="write the benchmark results to this JSON file",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.batch = min(args.batch, 16)
        args.n_periods = min(args.n_periods, 8192)
        args.workers = min(args.workers, 2)
        args.repeats = 1

    verify_equivalence(args.workers, args.seed)
    print(
        f"equivalence: threaded == numpy and philox == numpy (bitwise) for "
        f"workers {{1, {args.workers}}}, spectral + ar flicker, "
        f"zero-coefficient rows, both stream contracts and the bit pipeline"
    )

    (
        kernel_numpy,
        kernel_threaded,
        kernel_numpy_philox,
        kernel_philox,
        campaign_numpy,
        campaign_threaded,
    ) = run(args.batch, args.n_periods, args.workers, args.repeats, args.seed)
    speedup = kernel_numpy / kernel_threaded
    philox_speedup = kernel_numpy_philox / kernel_philox
    campaign_speedup = campaign_numpy / campaign_threaded
    cores = os.cpu_count() or 1
    print(
        f"\nworkload: B={args.batch} instances x {args.n_periods} periods "
        f"({cores} cores available, {args.workers} worker threads)"
    )
    print(f"kernel   numpy   : {kernel_numpy * 1e3:8.1f} ms")
    print(f"kernel   threaded: {kernel_threaded * 1e3:8.1f} ms")
    print(
        f"kernel   speedup : {speedup:.2f}x "
        f"(target >= {TARGET_SPEEDUP}x at {TARGET_WORKERS} workers, "
        f"B >= {TARGET_BATCH})"
    )
    print(f"kernel   numpy/philox streams: {kernel_numpy_philox * 1e3:8.1f} ms")
    print(f"kernel   philox  : {kernel_philox * 1e3:8.1f} ms")
    print(
        f"kernel   philox speedup : {philox_speedup:.2f}x "
        f"(counter-based streams, target >= {TARGET_SPEEDUP}x)"
    )
    print(f"campaign numpy   : {campaign_numpy * 1e3:8.1f} ms")
    print(f"campaign threaded: {campaign_threaded * 1e3:8.1f} ms")
    print(f"campaign speedup : {campaign_speedup:.2f}x (informational)")

    # Speedup-threshold eligibility, decided once and recorded in the JSON
    # output so the perf gate skips small runners deterministically (the
    # same pattern as bench_distributed.py).
    skip_reasons = []
    if args.quick:
        skip_reasons.append("quick mode")
    if args.batch < TARGET_BATCH:
        skip_reasons.append(f"batch {args.batch} < {TARGET_BATCH}")
    if args.workers < TARGET_WORKERS:
        skip_reasons.append(f"workers {args.workers} < {TARGET_WORKERS}")
    if cores < TARGET_WORKERS:
        skip_reasons.append(f"only {cores} CPU cores (need {TARGET_WORKERS})")
    eligible = not skip_reasons

    if args.json:
        payload = {
            "benchmark": "backends",
            "mode": "quick" if args.quick else "full",
            "batch": args.batch,
            "n_periods": args.n_periods,
            "workers": args.workers,
            "cpu_cores": cores,
            "kernel_numpy_seconds": kernel_numpy,
            "kernel_threaded_seconds": kernel_threaded,
            "kernel_numpy_philox_seconds": kernel_numpy_philox,
            "kernel_philox_seconds": kernel_philox,
            "speedup": speedup,
            "philox_speedup": philox_speedup,
            "campaign_numpy_seconds": campaign_numpy,
            "campaign_threaded_seconds": campaign_threaded,
            "campaign_speedup": campaign_speedup,
            "target_speedup": TARGET_SPEEDUP,
            "check_eligible": eligible,
            "check_skip_reason": None if eligible else "; ".join(skip_reasons),
            "equivalence": "bitwise",
            "quick": bool(args.quick),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"results written to {args.json}")

    if args.check:
        if not eligible:
            print(
                "note: --check skipped on this configuration: "
                f"{'; '.join(skip_reasons)} (it requires a full run with "
                f"--batch >= {TARGET_BATCH}, --workers >= {TARGET_WORKERS} "
                f"and >= {TARGET_WORKERS} CPU cores)",
                file=sys.stderr,
            )
        elif speedup < TARGET_SPEEDUP:
            print(f"FAIL: speedup below {TARGET_SPEEDUP}x", file=sys.stderr)
            return 1
        elif philox_speedup < TARGET_SPEEDUP:
            print(
                f"FAIL: philox speedup below {TARGET_SPEEDUP}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
