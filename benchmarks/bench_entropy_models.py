"""Experiment FIG2-VS-FIG3 — entropy predicted by classical vs multilevel models.

Paper claim (conclusion): classical models (Fig. 2) that assume mutually
independent jitter realizations fold the flicker noise into the per-period
jitter and therefore over-estimate the entropy per bit; "the entropy per bit
at the generator output and in consequence also the security was thus much
lower than expected".

The benchmark sweeps the accumulation length of an eRO-TRNG built from the
paper-calibrated oscillators and prints, for each design point, the entropy
claimed by the classical (naive) evaluation and by the refined model, plus
the accumulation length each approach would certify for the AIS31-style
0.997 bit/bit requirement.
"""

from __future__ import annotations

import pytest

from _bench_utils import report
from repro.paper import PAPER_F0_HZ, paper_phase_noise_psd
from repro.trng.models import BaudetModel, RefinedEntropyModel

pytestmark = pytest.mark.benchmark(group="entropy-models")

ACCUMULATION_SWEEP = [1_000, 5_000, 20_000, 50_000, 100_000, 200_000, 500_000]
CALIBRATION_LENGTH = 200_000  # periods over which a classical evaluation measures jitter
TARGET_ENTROPY = 0.997


def test_entropy_model_comparison(benchmark):
    """Sweep accumulation lengths and compare the two model families."""
    model = RefinedEntropyModel(PAPER_F0_HZ, paper_phase_noise_psd())

    def sweep():
        return [
            model.compare(n, calibration_length=CALIBRATION_LENGTH)
            for n in ACCUMULATION_SWEEP
        ]

    comparisons = benchmark(sweep)

    # Shape checks: the naive model never claims less entropy, and the gap is
    # substantial somewhere in the sweep (the paper's over-estimation effect).
    gaps = [c.naive_entropy - c.refined_entropy for c in comparisons]
    assert all(gap >= -1e-12 for gap in gaps)
    assert max(gaps) > 0.02
    # Both converge to full entropy for very long accumulation.
    assert comparisons[-1].refined_entropy > 0.99

    rows = [("accumulation N", "naive H (Fig. 2)", "refined H (Fig. 3)")]
    print("\n=== FIG2-VS-FIG3: entropy per raw bit ===")
    print("      N     naive H      refined H    overestimation")
    for comparison in comparisons:
        print(
            f"{comparison.accumulation_length:>8d}   "
            f"{comparison.naive_entropy:.4f}       "
            f"{comparison.refined_entropy:.4f}       "
            f"{comparison.overestimation:+.4f}"
        )


def test_required_accumulation_for_ais31_target(benchmark):
    """How long must the TRNG accumulate to certify 0.997 bit/bit?"""
    relative_psd = paper_phase_noise_psd()
    refined = RefinedEntropyModel(PAPER_F0_HZ, relative_psd)

    def required_lengths():
        refined_n = refined.accumulation_for_entropy(TARGET_ENTROPY)
        naive_model = BaudetModel(
            PAPER_F0_HZ, refined.naive_per_period_variance_s2(CALIBRATION_LENGTH)
        )
        naive_n = naive_model.accumulation_for_entropy(TARGET_ENTROPY)
        return refined_n, naive_n

    refined_n, naive_n = benchmark(required_lengths)

    # The naive evaluation certifies a (dangerously) shorter accumulation.
    assert naive_n < refined_n
    under_design_factor = refined_n / naive_n
    assert under_design_factor > 5.0

    report(
        "FIG2-VS-FIG3: accumulation needed for H >= 0.997",
        [
            ("refined model N", "(not given)", f"{refined_n}"),
            ("naive model N", "(not given)", f"{naive_n}"),
            (
                "under-design factor",
                "'security much lower than expected'",
                f"{under_design_factor:.1f}x",
            ),
        ],
    )
