"""Benchmark: batched TRNG bit pipeline vs a Python loop of scalar TRNGs.

Measures the bit-level screening workload for ``B`` eRO-TRNG instances —
raw-bit generation through the D-flip-flop digitizer plus the vectorized
bias/entropy estimates of an entropy-vs-divider campaign cell — two ways:

* **scalar loop**: the pre-pipeline workflow, one instance at a time through
  the public scalar API (``EROTRNG.generate`` -> ``trng.entropy`` estimators);
* **batched pipeline**: one :class:`repro.engine.bits.BatchedEROTRNG`
  ensemble generating ``(B, n_bits)`` bits in one pass, with the estimators
  applied to all rows at once.

Both paths stream from the same fixed-size synthesis blocks, so the timed
regime (best-of over repetitions, like ``bench_batch_engine``) is the
steady state of a screening campaign: synthesis blocks amortized across
repeated cells, per-cell cost dominated by the sampling pipeline and the
estimators.  That is exactly the overhead batching removes — one kernel
pass and one set of vectorized estimators instead of ``B`` of each.  (In
draw-bound regimes — very long records per call — both paths spend their
time in the identical per-row variate draws and converge; that regime is
covered by ``bench_batch_engine``.)

Both paths consume identical spawned RNG streams (the engine's seeding
protocol: one stream per instance, one sub-stream per ring), so they produce
bit-for-bit identical per-instance outputs; the speedup is pure batching —
batched synthesis blocks, one merged edge-time search per step instead of
``B``, and shared ``bincount``-based entropy estimates.  Before timing, the
script verifies row-for-row bit equivalence across several divider values.

Run ``python benchmarks/bench_bit_pipeline.py`` (add ``--quick`` for a smoke
run, ``--check`` to exit non-zero below the 8x target, ``--json PATH`` to
emit the results as JSON for CI artifacts).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

# Allow running as a plain script from the repository root.
sys.path.insert(0, "src")

from repro.engine.batch import spawn_generators  # noqa: E402
from repro.engine.bits import BatchedEROTRNG  # noqa: E402
from repro.paper import PAPER_F0_HZ, paper_phase_noise_psd  # noqa: E402
from repro.trng.entropy import (  # noqa: E402
    bit_bias,
    markov_entropy_rate,
    min_entropy_per_bit,
    shannon_entropy_per_bit,
)
from repro.trng.ero_trng import EROTRNG, EROTRNGConfiguration  # noqa: E402


def _best_of(function, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _configuration(divider: int) -> EROTRNGConfiguration:
    return EROTRNGConfiguration(
        f0_hz=PAPER_F0_HZ,
        oscillator_psd=paper_phase_noise_psd(),
        divider=divider,
        frequency_mismatch=1e-3,
    )


def verify_equivalence(batch: int, n_bits: int, dividers, seed: int) -> None:
    """Assert batched rows reproduce the scalar TRNGs bit-for-bit."""
    for divider in dividers:
        configuration = _configuration(divider)
        batched = BatchedEROTRNG(configuration, batch_size=batch, seed=seed)
        bits = batched.generate_raw(n_bits).bits
        children = spawn_generators(seed, batch)
        for row in range(min(batch, 4)):
            scalar = EROTRNG(configuration, rng=children[row])
            if not np.array_equal(bits[row], scalar.generate(n_bits)):
                raise AssertionError(
                    f"divider {divider}, row {row}: batched bits != scalar bits"
                )


def run(batch: int, n_bits: int, divider: int, repeats: int, seed: int):
    configuration = _configuration(divider)

    def estimates(bits) -> None:
        # The campaign-cell analysis: bias + three entropy estimators.
        bit_bias(bits)
        shannon_entropy_per_bit(bits)
        min_entropy_per_bit(bits, block_size=8)
        markov_entropy_rate(bits)

    def scalar_campaign() -> None:
        for trng in scalar_instances:
            estimates(trng.generate(n_bits))

    def batched_campaign() -> None:
        estimates(ensemble.generate_raw(n_bits).bits)

    # Both paths consume fresh stretches of the same per-instance streams per
    # repetition (steady-state streaming usage, like bench_batch_engine).
    scalar_instances = [
        EROTRNG(configuration, rng=generator)
        for generator in spawn_generators(seed, batch)
    ]
    scalar_seconds = _best_of(scalar_campaign, repeats)
    ensemble = BatchedEROTRNG(configuration, batch_size=batch, seed=seed)
    batched_seconds = _best_of(batched_campaign, repeats)
    return scalar_seconds, batched_seconds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch", type=int, default=64, help="instances B")
    parser.add_argument(
        "--n-bits", type=int, default=64, help="raw bits per instance"
    )
    parser.add_argument(
        "--divider", type=int, default=16, help="accumulation length D"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=11,
        help="timing repetitions (best-of; raise on a noisy machine)",
    )
    parser.add_argument("--seed", type=int, default=20140324)
    parser.add_argument(
        "--quick", action="store_true", help="small smoke configuration"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the speedup target is missed",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        help="write the benchmark results to this JSON file",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.batch = min(args.batch, 16)
        args.n_bits = min(args.n_bits, 64)
        args.repeats = min(args.repeats, 3)

    dividers = sorted({max(args.divider // 4, 1), args.divider, args.divider * 4})
    verify_equivalence(args.batch, min(args.n_bits, 256), dividers, args.seed)
    print(
        f"equivalence: batched rows == scalar EROTRNG bits (bitwise) "
        f"for dividers {dividers}"
    )

    scalar_seconds, batched_seconds = run(
        args.batch, args.n_bits, args.divider, args.repeats, args.seed
    )
    instances_per_second = args.batch / batched_seconds
    speedup = scalar_seconds / batched_seconds
    print(
        f"\nworkload: B={args.batch} instances x {args.n_bits} raw bits at "
        f"D={args.divider} + bias/entropy estimates"
    )
    print(f"scalar loop     : {scalar_seconds * 1e3:8.2f} ms")
    print(f"batched pipeline: {batched_seconds * 1e3:8.2f} ms "
          f"({instances_per_second:,.0f} instances/s)")
    print(f"speedup         : {speedup:.1f}x (target >= 8x at B=64)")

    if args.json:
        payload = {
            "benchmark": "bit_pipeline",
            "batch": args.batch,
            "n_bits": args.n_bits,
            "divider": args.divider,
            "equivalence_dividers": dividers,
            "scalar_seconds": scalar_seconds,
            "batched_seconds": batched_seconds,
            "instances_per_second": instances_per_second,
            "speedup": speedup,
            "target_speedup": 8.0,
            "quick": bool(args.quick),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"results written to {args.json}")

    if args.check:
        if args.quick or args.batch < 64:
            print(
                "note: --check skipped (it requires a full run with "
                "--batch >= 64 and no --quick)",
                file=sys.stderr,
            )
        elif speedup < 8.0:
            print("FAIL: speedup below 8x", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
