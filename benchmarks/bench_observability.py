"""Benchmark: observability overhead on the synthesis hot path.

The :mod:`repro.obs` instrumentation sits directly on the hottest code in
the repository — every kernel block observes ``engine_kernel_block_seconds``
and every plan lookup bumps the plan-cache counters — so it must be cheap
enough to leave on.  This benchmark proves two properties of the layer:

* **bitwise transparency**: instrumentation never touches an RNG stream, so
  a synthesis workload produces bit-for-bit identical output with metrics
  enabled and with the ``configure_metrics(enabled=False)`` kill switch
  thrown.  Checked inline (``np.array_equal``) before any timing run; the
  script raises before writing JSON on a mismatch.
* **<= 5% overhead**: best-of-N wall time of a serving-shaped synthesis
  workload, enabled vs killed.  The gated headline is
  ``overhead_ratio = disabled_seconds / enabled_seconds`` — 1.0 means free,
  0.95 means 5% overhead.  The committed baseline
  (``benchmarks/baselines/observability.json``) fails the perf gate when
  the ratio drops below 0.90.

Also reported (informational): raw instrument costs — ns per ``Counter.inc``
and per ``Histogram.observe``, enabled and killed — to make a future
regression easy to localise.

Run ``python benchmarks/bench_observability.py`` (add ``--quick`` for a
smoke run, ``--check`` to gate on the overhead target, ``--json PATH`` for
CI artifacts).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

# Allow running as a plain script from the repository root.
sys.path.insert(0, "src")

from repro.engine.backends import NumpyBackend, reset_plan_cache  # noqa: E402
from repro.engine.batch import spawn_generators  # noqa: E402
from repro.obs import (  # noqa: E402
    Counter,
    Histogram,
    configure_metrics,
    metrics_enabled,
)

TARGET_OVERHEAD_RATIO = 0.95  # disabled/enabled wall time; 0.95 == 5% overhead

SIGMA_S = 1.2e-12
H_MINUS1 = 3.1e-22


def _best_of(function, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _workload(batch: int, n: int, calls: int, seed: int):
    """Serving-shaped traffic: many small kernel calls, instrumented path."""
    backend = NumpyBackend()
    sigma = np.full(batch, SIGMA_S)
    h_minus1 = np.full(batch, H_MINUS1)
    results = []
    for call in range(calls):
        results.append(
            backend.synthesize(
                n, spawn_generators(seed + call, batch), sigma, h_minus1, "spectral"
            )
        )
    return results


def verify_equivalence(batch: int, n: int, calls: int, seed: int) -> None:
    """Assert enabled == killed synthesis output, bitwise, pre-timing."""
    assert metrics_enabled()
    enabled = _workload(batch, n, calls, seed)
    configure_metrics(enabled=False)
    try:
        disabled = _workload(batch, n, calls, seed)
    finally:
        configure_metrics(enabled=True)
    for left, right in zip(enabled, disabled):
        if not (
            np.array_equal(left[0], right[0])
            and np.array_equal(left[1], right[1])
        ):
            raise AssertionError(
                f"instrumented synthesis differs from kill-switch run "
                f"(B={batch}, n={n})"
            )


def time_workload(batch: int, n: int, calls: int, repeats: int, seed: int):
    """Best-of wall time of the workload, metrics enabled vs killed."""

    def run() -> None:
        _workload(batch, n, calls, seed)

    reset_plan_cache()
    run()  # warm the plan cache + numpy so both arms time the same work
    enabled_seconds = _best_of(run, repeats)
    configure_metrics(enabled=False)
    try:
        disabled_seconds = _best_of(run, repeats)
    finally:
        configure_metrics(enabled=True)
    return enabled_seconds, disabled_seconds


def time_instruments(loops: int):
    """ns per Counter.inc / Histogram.observe, enabled and killed."""
    counter = Counter("bench_total", "")
    histogram = Histogram("bench_seconds", "")
    timings = {}
    for state in ("enabled", "disabled"):
        configure_metrics(enabled=(state == "enabled"))
        try:

            def incs() -> None:
                for _ in range(loops):
                    counter.inc()

            def observes() -> None:
                for _ in range(loops):
                    histogram.observe(0.001)

            timings[f"counter_inc_{state}_ns"] = (
                _best_of(incs, 3) / loops * 1e9
            )
            timings[f"histogram_observe_{state}_ns"] = (
                _best_of(observes, 3) / loops * 1e9
            )
        finally:
            configure_metrics(enabled=True)
    return timings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--batch", type=int, default=4, help="rows per backend call B"
    )
    parser.add_argument(
        "--n-periods", type=int, default=4096, help="periods per row"
    )
    parser.add_argument(
        "--calls", type=int, default=32, help="backend calls per repetition"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="timing repetitions (best-of; raise on a noisy machine)",
    )
    parser.add_argument("--seed", type=int, default=20140324)
    parser.add_argument(
        "--quick", action="store_true", help="small smoke configuration"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the overhead target is missed",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        help="write the benchmark results to this JSON file",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.calls = min(args.calls, 8)
        args.repeats = min(args.repeats, 3)

    verify_equivalence(args.batch, args.n_periods, args.calls, args.seed)
    print(
        f"equivalence: enabled == kill-switch synthesis (bitwise) over "
        f"{args.calls} calls (B={args.batch}, n={args.n_periods})"
    )

    enabled_seconds, disabled_seconds = time_workload(
        args.batch, args.n_periods, args.calls, args.repeats, args.seed
    )
    overhead_ratio = disabled_seconds / enabled_seconds
    overhead_pct = (enabled_seconds / disabled_seconds - 1.0) * 100.0
    instruments = time_instruments(2_000 if args.quick else 20_000)
    cores = os.cpu_count() or 1

    print(
        f"\nworkload: {args.calls} calls x B={args.batch} x "
        f"n={args.n_periods} periods ({cores} cores available)"
    )
    print(f"metrics enabled : {enabled_seconds * 1e3:8.1f} ms")
    print(f"metrics killed  : {disabled_seconds * 1e3:8.1f} ms")
    print(
        f"overhead        : {overhead_pct:+.2f}% "
        f"(ratio {overhead_ratio:.3f}, target >= {TARGET_OVERHEAD_RATIO})"
    )
    print(
        f"counter.inc     : {instruments['counter_inc_enabled_ns']:6.0f} ns "
        f"enabled / {instruments['counter_inc_disabled_ns']:5.0f} ns killed"
    )
    print(
        f"hist.observe    : {instruments['histogram_observe_enabled_ns']:6.0f} ns "
        f"enabled / {instruments['histogram_observe_disabled_ns']:5.0f} ns killed"
    )

    if args.json:
        payload = {
            "benchmark": "observability",
            "mode": "quick" if args.quick else "full",
            "batch": args.batch,
            "n_periods": args.n_periods,
            "calls": args.calls,
            "cpu_cores": cores,
            "enabled_seconds": enabled_seconds,
            "disabled_seconds": disabled_seconds,
            "overhead_ratio": overhead_ratio,
            "overhead_pct": overhead_pct,
            "target_overhead_ratio": TARGET_OVERHEAD_RATIO,
            "equivalence": "bitwise",
            "quick": bool(args.quick),
            **instruments,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"results written to {args.json}")

    if args.check and overhead_ratio < TARGET_OVERHEAD_RATIO:
        print(
            f"FAIL: observability overhead ratio {overhead_ratio:.3f} below "
            f"{TARGET_OVERHEAD_RATIO}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
