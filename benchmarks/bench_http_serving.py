"""Benchmark: the HTTP front door — gateway throughput and coalescing.

Runs ``C`` concurrent HTTP clients, each issuing a stream of small
``POST /v1/bits`` requests against one in-process
:class:`repro.serving.http.HTTPGateway`, two ways:

* **serial**: ``max_batch=1`` — every HTTP request becomes its own engine
  call (the gateway adds framing/JSON overhead to the pre-serving path);
* **coalesced**: ``max_batch=C`` — requests arriving within the window
  coalesce into batched engine calls exactly as on the TCP edge.

Before any timing, the script asserts the transport contract on a sample of
the workload: the envelope served over HTTP is **identical** to the one the
JSON-lines TCP server produces for the same request (same service class,
same coalescing path), i.e. bits are bit-for-bit transport-independent.

The coalescing speedup must survive the HTTP edge: per-request gateway
overhead (connection setup, HTTP framing, JSON) is paid per request in both
modes, so batching the engine work behind the gateway still pays.  The
``--quick`` CI smoke gates on the weaker "coalesced >= serial" bound.

Run ``python benchmarks/bench_http_serving.py`` (add ``--quick`` for a
smoke run, ``--check`` to gate, ``--json PATH`` for CI artifacts).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time

# Allow running as a plain script from the repository root.
sys.path.insert(0, "src")

from repro.serving.config import ServiceConfig  # noqa: E402
from repro.serving.http import HTTPGateway, http_request  # noqa: E402
from repro.serving.requests import BitsRequest  # noqa: E402
from repro.serving.server import TRNGServer  # noqa: E402
from repro.serving.service import TRNGService  # noqa: E402

TARGET_SPEEDUP = 2.0
TARGET_CLIENTS = 32


def _payloads(clients: int, per_client: int, n_bits: int, divider: int, seed: int):
    """One request-body list per client; seeds unique per request."""
    return [
        [
            {
                "kind": "bits",
                "n_bits": n_bits,
                "divider": divider,
                "seed": seed + client * 100_003 + index,
            }
            for index in range(per_client)
        ]
        for client in range(clients)
    ]


async def _verify_transport_equivalence(config: ServiceConfig, sample) -> None:
    """Assert HTTP-served results == TCP-served results for the sample."""
    async with TRNGService(config) as service:
        gateway = HTTPGateway(service, port=0)
        server = TRNGServer(service, port=0)
        await gateway.start()
        await server.start()
        try:
            for body in sample:
                status, raw = await http_request(
                    "127.0.0.1", gateway.port, "POST", "/v1/bits", dict(body)
                )
                assert status == 200, f"HTTP {status} for {body}"
                via_http = json.loads(raw)
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write((json.dumps(body) + "\n").encode())
                await writer.drain()
                via_tcp = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                if via_http["result"] != via_tcp["result"]:
                    raise AssertionError(
                        f"seed {body['seed']}: HTTP-served result != "
                        f"TCP-served result"
                    )
        finally:
            await server.stop()
            await gateway.stop()


async def _serve_workload(config: ServiceConfig, workload):
    """Wall-clock seconds to push the workload through the gateway."""
    async with TRNGService(config) as service:
        gateway = HTTPGateway(service, port=0)
        await gateway.start()
        try:

            async def client(bodies) -> None:
                for body in bodies:
                    status, raw = await http_request(
                        "127.0.0.1", gateway.port, "POST", "/v1/bits", body
                    )
                    assert status == 200, raw
                    assert json.loads(raw)["ok"]

            start = time.perf_counter()
            await asyncio.gather(*(client(bodies) for bodies in workload))
            elapsed = time.perf_counter() - start
            return elapsed, service.stats.snapshot()
        finally:
            await gateway.stop()


def best_of(config: ServiceConfig, workload, repeats: int):
    best_seconds, stats = float("inf"), None
    for _ in range(repeats):
        seconds, snapshot = asyncio.run(_serve_workload(config, workload))
        if seconds < best_seconds:
            best_seconds, stats = seconds, snapshot
    return best_seconds, stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--clients", type=int, default=TARGET_CLIENTS, help="concurrent clients"
    )
    parser.add_argument(
        "--requests-per-client", type=int, default=6, help="requests per client"
    )
    parser.add_argument("--n-bits", type=int, default=64, help="bits per request")
    parser.add_argument(
        "--divider", type=int, default=16, help="accumulation length D"
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=5.0,
        help="coalescing window of the coalesced configuration",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repetitions (best-of; raise on a noisy machine)",
    )
    parser.add_argument("--seed", type=int, default=20140324)
    parser.add_argument(
        "--quick", action="store_true", help="small smoke configuration"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the throughput target is missed",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        help="write the benchmark results to this JSON file",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.requests_per_client = min(args.requests_per_client, 2)
        args.n_bits = min(args.n_bits, 32)
        args.divider = min(args.divider, 8)
        args.repeats = 1

    workload = _payloads(
        args.clients, args.requests_per_client, args.n_bits, args.divider,
        args.seed,
    )
    total = args.clients * args.requests_per_client

    sample = [bodies[0] for bodies in workload[:8]]
    asyncio.run(
        _verify_transport_equivalence(
            ServiceConfig(max_batch=len(sample), max_wait_ms=args.max_wait_ms),
            sample,
        )
    )
    print(
        "equivalence: HTTP-served results == TCP-served results (bitwise) "
        "on a sample of the workload"
    )

    serial_seconds, serial_stats = best_of(
        ServiceConfig(max_batch=1, max_wait_ms=0.0, max_pending=max(total, 1)),
        workload,
        args.repeats,
    )
    coalesced_seconds, coalesced_stats = best_of(
        ServiceConfig(
            max_batch=args.clients,
            max_wait_ms=args.max_wait_ms,
            max_pending=max(total, 1),
        ),
        workload,
        args.repeats,
    )
    serial_rps = total / serial_seconds
    coalesced_rps = total / coalesced_seconds
    speedup = serial_seconds / coalesced_seconds

    mode = "quick" if args.quick else "full"
    print(
        f"\nworkload: {args.clients} clients x {args.requests_per_client} "
        f"requests x {args.n_bits} bits at D={args.divider}, over HTTP"
    )
    print(
        f"serial    : {serial_seconds * 1e3:8.1f} ms "
        f"({serial_rps:,.0f} req/s, {serial_stats['batches']} engine calls)"
    )
    print(
        f"coalesced : {coalesced_seconds * 1e3:8.1f} ms "
        f"({coalesced_rps:,.0f} req/s, {coalesced_stats['batches']} engine "
        f"calls, max batch {coalesced_stats['max_batch_size']})"
    )
    print(
        f"speedup   : {speedup:.2f}x "
        f"(target >= {TARGET_SPEEDUP}x at {TARGET_CLIENTS} clients; "
        f"quick gate: >= 1x)"
    )

    if args.json:
        payload = {
            "benchmark": "http_serving",
            "mode": mode,
            "clients": args.clients,
            "requests_per_client": args.requests_per_client,
            "n_bits": args.n_bits,
            "divider": args.divider,
            "max_wait_ms": args.max_wait_ms,
            "cpu_cores": os.cpu_count() or 1,
            "total_requests": total,
            "serial_seconds": serial_seconds,
            "coalesced_seconds": coalesced_seconds,
            "serial_rps": serial_rps,
            "coalesced_rps": coalesced_rps,
            "speedup": speedup,
            "max_batch_size": coalesced_stats["max_batch_size"],
            "engine_calls_serial": serial_stats["batches"],
            "engine_calls_coalesced": coalesced_stats["batches"],
            "target_speedup": TARGET_SPEEDUP,
            "equivalence": "bitwise",
            "quick": bool(args.quick),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"results written to {args.json}")

    if args.check:
        if args.clients < TARGET_CLIENTS:
            print(
                f"note: --check skipped (it requires --clients >= "
                f"{TARGET_CLIENTS})",
                file=sys.stderr,
            )
        elif args.quick:
            if speedup < 1.0:
                print(
                    "FAIL: coalesced HTTP serving slower than serial at "
                    f"{args.clients} clients ({speedup:.2f}x)",
                    file=sys.stderr,
                )
                return 1
        elif speedup < TARGET_SPEEDUP:
            print(f"FAIL: speedup below {TARGET_SPEEDUP}x", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
