"""Experiment SEC4B-THERMAL — thermal-noise measurement via the multilevel approach.

Paper result (Sec. IV-B): from the Fig. 7 fit, ``b_th = 276.04 Hz``, hence a
thermal-only period jitter ``sigma_th = sqrt(b_th/f0^3) ~= 15.89 ps`` and a
relative jitter ``sigma/T0 ~= 1.6 permille`` — in agreement with measurements
obtained by "other more expensive methods" [19].  Here the cross-check is
against the simulator's injected ground truth.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import report
from repro.core import extract_thermal_noise_from_curve
from repro.paper import PAPER_REFERENCE

pytestmark = pytest.mark.benchmark(group="thermal-extraction")


def test_thermal_extraction_pipeline(benchmark, fig7_curve, platform):
    """Time the Section IV pipeline and compare its outputs with the paper."""
    result = benchmark(extract_thermal_noise_from_curve, fig7_curve)

    ground_truth_sigma = np.sqrt(
        platform.relative_psd.thermal_period_jitter_variance(platform.f0_hz)
    )

    assert result.b_thermal_hz == pytest.approx(PAPER_REFERENCE.b_thermal_hz, rel=0.1)
    assert result.thermal_jitter_std_ps == pytest.approx(15.89, rel=0.05)
    assert result.jitter_ratio_permille == pytest.approx(1.6, rel=0.1)
    assert result.thermal_jitter_std_s == pytest.approx(ground_truth_sigma, rel=0.05)

    report(
        "SEC4B-THERMAL: thermal noise measurement",
        [
            ("normalised slope", "5.36e-6", f"{result.fit.normalized_linear_coefficient:.3g}"),
            ("b_th [Hz]", "276.04", f"{result.b_thermal_hz:.2f}"),
            ("sigma_th [ps]", "15.89", f"{result.thermal_jitter_std_ps:.2f}"),
            ("sigma/T0 [permille]", "1.6", f"{result.jitter_ratio_permille:.2f}"),
            (
                "cross-check (ref [19])",
                "'close to' 1.6",
                f"ground truth {ground_truth_sigma * 1e12:.2f} ps",
            ),
        ],
    )


def test_thermal_extraction_with_confidence_intervals(benchmark, fig7_curve):
    """The extended pipeline with bootstrap confidence intervals."""
    result = benchmark.pedantic(
        extract_thermal_noise_from_curve,
        kwargs=dict(
            curve=fig7_curve,
            with_confidence_intervals=True,
            rng=np.random.default_rng(7),
        ),
        iterations=1,
        rounds=3,
    )
    low, high = result.b_thermal_ci_hz
    assert low <= result.b_thermal_hz <= high
    assert low > 0.5 * PAPER_REFERENCE.b_thermal_hz
    assert high < 2.0 * PAPER_REFERENCE.b_thermal_hz
