"""Experiment EQ11-VS-EQ9 — consistency of the closed form with the Wiener-Khintchine integral.

Paper derivation: Eq. 9 expresses sigma^2_N as an integral of the phase PSD
weighted by sin^4; Eq. 11 is its closed form for S_phi = b_fl/f^3 + b_th/f^2.
The benchmark sweeps (b_th, b_fl, N) and confirms the two agree to numerical
precision, while timing both evaluation paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import report
from repro.core.theory import sigma2_n_closed_form, sigma2_n_integral
from repro.paper import paper_phase_noise_psd, PAPER_F0_HZ
from repro.phase import PhaseNoisePSD

pytestmark = pytest.mark.benchmark(group="theory")

SWEEP = [
    (276.04, 1.915e6, 1),
    (276.04, 1.915e6, 100),
    (276.04, 1.915e6, 10_000),
    (10.0, 1e8, 50),
    (1e4, 10.0, 50),
]


def test_closed_form_evaluation_speed(benchmark):
    """The closed form is what an embedded test evaluates — time it."""
    psd = paper_phase_noise_psd()
    n_values = np.arange(1, 100_001)

    result = benchmark(sigma2_n_closed_form, psd, PAPER_F0_HZ, n_values)
    assert np.all(np.diff(result) > 0.0)


def test_integral_matches_closed_form(benchmark):
    """Numerically integrate Eq. 9 over the sweep and compare with Eq. 11."""

    def evaluate_sweep():
        deviations = []
        for b_th, b_fl, n in SWEEP:
            psd = PhaseNoisePSD(b_th, b_fl)
            closed = float(sigma2_n_closed_form(psd, PAPER_F0_HZ, n))
            integral = sigma2_n_integral(psd, PAPER_F0_HZ, n)
            deviations.append(abs(integral - closed) / closed)
        return deviations

    deviations = benchmark.pedantic(evaluate_sweep, iterations=1, rounds=3)
    assert max(deviations) < 1e-3

    report(
        "EQ11-VS-EQ9: closed form vs Wiener-Khintchine integral",
        [
            ("max relative deviation", "0 (exact)", f"{max(deviations):.2e}"),
            ("sweep size", "-", f"{len(SWEEP)} (b_th, b_fl, N) points"),
        ],
    )
