"""Small helpers shared by the benchmark modules."""

from __future__ import annotations

from typing import List, Tuple


def report(title: str, rows: List[Tuple[str, str, str]]) -> None:
    """Print a compact paper-vs-measured table for one experiment.

    Run pytest with ``-s`` to see the tables; a recorded run is kept in
    EXPERIMENTS.md.
    """
    width = max(len(row[0]) for row in rows)
    print(f"\n=== {title} ===")
    print(f"{'quantity'.ljust(width)} | paper        | measured")
    for name, paper_value, measured in rows:
        print(f"{name.ljust(width)} | {paper_value:<12} | {measured}")
