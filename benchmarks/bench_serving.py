"""Benchmark: coalesced serving vs serial serving under concurrent clients.

Simulates ``C`` concurrent clients, each issuing a stream of small bit
requests (its own seed per request) against one in-process
:class:`repro.serving.service.TRNGService`, two ways:

* **serial**: ``max_batch=1`` — every request is its own
  ``BatchedEROTRNG`` construction and ``generate_exact`` call, the
  pre-serving workflow;
* **coalesced**: ``max_batch=C`` — the coalescer groups compatible requests
  from the window into single batched engine calls, so the ``(B, n)``
  kernels run at full width.

Both modes serve the *identical* request set, and every request derives its
engine RNG stream from its own seed, so the served bits are bit-for-bit
identical across modes; the script asserts exactly that on a subset before
any timing.  The speedup is therefore pure coalescing: one engine
construction + one kernel pass per batch instead of per request.

The headline target is >= 5x throughput at 64 concurrent clients; the
``--quick`` CI smoke asserts the weaker "coalesced >= serial" bound at the
same client count (shared runners are noisy).

Run ``python benchmarks/bench_serving.py`` (add ``--quick`` for a smoke
run, ``--check`` to gate on the target, ``--json PATH`` for CI artifacts).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time

import numpy as np

# Allow running as a plain script from the repository root.
sys.path.insert(0, "src")

from repro.serving.requests import BitsRequest  # noqa: E402
from repro.serving.scatter import run_bits_batch  # noqa: E402
from repro.serving.service import TRNGService  # noqa: E402

TARGET_SPEEDUP = 5.0
TARGET_CLIENTS = 64


def _requests(clients: int, per_client: int, n_bits: int, divider: int, seed: int):
    """The workload: one request list per client, seeds unique per request."""
    return [
        [
            BitsRequest(
                n_bits=n_bits,
                divider=divider,
                seed=seed + client * 100_003 + index,
            )
            for index in range(per_client)
        ]
        for client in range(clients)
    ]


def verify_equivalence(workload, max_wait_ms: float) -> None:
    """Assert coalesced serving == solo serving, bit for bit, on a subset."""
    sample = [requests[0] for requests in workload[:8]]

    async def serve_coalesced():
        async with TRNGService(
            max_batch=len(sample), max_wait_ms=max_wait_ms
        ) as service:
            return await asyncio.gather(
                *(service.get_bits(request) for request in sample)
            )

    served = asyncio.run(serve_coalesced())
    for request, result in zip(sample, served):
        solo = run_bits_batch([request])[0]
        if not np.array_equal(result.bits, solo.bits):
            raise AssertionError(
                f"seed {request.seed}: coalesced bits != solo-served bits"
            )


def serve_workload(workload, max_batch: int, max_wait_ms: float):
    """Wall-clock seconds to serve the whole workload, plus the stats."""
    total = sum(len(requests) for requests in workload)

    async def run() -> float:
        service = TRNGService(
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_pending=max(total, 1),
        )
        async with service:

            async def client(requests) -> None:
                for request in requests:
                    await service.get_bits(request)

            start = time.perf_counter()
            await asyncio.gather(*(client(requests) for requests in workload))
            elapsed = time.perf_counter() - start
            return elapsed, service.stats.snapshot()

    return asyncio.run(run())


def best_of(workload, max_batch: int, max_wait_ms: float, repeats: int):
    best_seconds, stats = float("inf"), None
    for _ in range(repeats):
        seconds, snapshot = serve_workload(workload, max_batch, max_wait_ms)
        if seconds < best_seconds:
            best_seconds, stats = seconds, snapshot
    return best_seconds, stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--clients", type=int, default=TARGET_CLIENTS, help="concurrent clients"
    )
    parser.add_argument(
        "--requests-per-client", type=int, default=6, help="requests per client"
    )
    parser.add_argument(
        "--n-bits", type=int, default=64, help="bits per request"
    )
    parser.add_argument(
        "--divider", type=int, default=16, help="accumulation length D"
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=5.0,
        help="coalescing window of the coalesced configuration",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repetitions (best-of; raise on a noisy machine)",
    )
    parser.add_argument("--seed", type=int, default=20140324)
    parser.add_argument(
        "--quick", action="store_true", help="small smoke configuration"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the throughput target is missed",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        help="write the benchmark results to this JSON file",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.requests_per_client = min(args.requests_per_client, 2)
        args.n_bits = min(args.n_bits, 32)
        args.divider = min(args.divider, 8)
        args.repeats = 1

    workload = _requests(
        args.clients, args.requests_per_client, args.n_bits, args.divider,
        args.seed,
    )
    total = args.clients * args.requests_per_client
    verify_equivalence(workload, args.max_wait_ms)
    print(
        "equivalence: coalesced serving == solo serving (bitwise) "
        "on a sample of the workload"
    )

    serial_seconds, serial_stats = best_of(workload, 1, 0.0, args.repeats)
    coalesced_seconds, coalesced_stats = best_of(
        workload, args.clients, args.max_wait_ms, args.repeats
    )
    serial_rps = total / serial_seconds
    coalesced_rps = total / coalesced_seconds
    speedup = serial_seconds / coalesced_seconds

    mode = "quick" if args.quick else "full"
    print(
        f"\nworkload: {args.clients} clients x {args.requests_per_client} "
        f"requests x {args.n_bits} bits at D={args.divider}"
    )
    print(
        f"serial    : {serial_seconds * 1e3:8.1f} ms "
        f"({serial_rps:,.0f} req/s, {serial_stats['batches']} engine calls)"
    )
    print(
        f"coalesced : {coalesced_seconds * 1e3:8.1f} ms "
        f"({coalesced_rps:,.0f} req/s, {coalesced_stats['batches']} engine "
        f"calls, max batch {coalesced_stats['max_batch_size']})"
    )
    print(
        f"speedup   : {speedup:.2f}x "
        f"(target >= {TARGET_SPEEDUP}x at {TARGET_CLIENTS} clients; "
        f"quick gate: >= 1x)"
    )

    if args.json:
        payload = {
            "benchmark": "serving",
            "mode": mode,
            "clients": args.clients,
            "requests_per_client": args.requests_per_client,
            "n_bits": args.n_bits,
            "divider": args.divider,
            "max_wait_ms": args.max_wait_ms,
            "cpu_cores": os.cpu_count() or 1,
            "total_requests": total,
            "serial_seconds": serial_seconds,
            "coalesced_seconds": coalesced_seconds,
            "serial_rps": serial_rps,
            "coalesced_rps": coalesced_rps,
            "speedup": speedup,
            "max_batch_size": coalesced_stats["max_batch_size"],
            "engine_calls_serial": serial_stats["batches"],
            "engine_calls_coalesced": coalesced_stats["batches"],
            "target_speedup": TARGET_SPEEDUP,
            "equivalence": "bitwise",
            "quick": bool(args.quick),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"results written to {args.json}")

    if args.check:
        if args.clients < TARGET_CLIENTS:
            print(
                f"note: --check skipped (it requires --clients >= "
                f"{TARGET_CLIENTS})",
                file=sys.stderr,
            )
        elif args.quick:
            if speedup < 1.0:
                print(
                    "FAIL: coalesced serving slower than serial at "
                    f"{args.clients} clients ({speedup:.2f}x)",
                    file=sys.stderr,
                )
                return 1
        elif speedup < TARGET_SPEEDUP:
            print(f"FAIL: speedup below {TARGET_SPEEDUP}x", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
