"""Benchmark: batched simulation engine vs a Python loop of scalar instances.

Measures the full Fig. 7 screening workload for ``B`` oscillator instances —
jitter synthesis, the sigma^2_N sweep and the Eq. 11 fit — two ways:

* **scalar loop**: the pre-engine workflow, one instance at a time through the
  public scalar API (``RingOscillator`` -> ``accumulated_variance_curve`` ->
  ``fit_sigma2_n_curve``);
* **batched engine**: one :func:`repro.engine.campaign.batched_sigma2_n_campaign`
  call on a :class:`repro.engine.batch.BatchedOscillatorEnsemble`.

Both paths consume identical spawned RNG streams (the engine's seeding
protocol), so they draw exactly the same variates and produce the same
per-instance results; the speedup is pure batching — shared cumulative sums,
batched FFTs, fused reductions and one vectorized fit instead of ``B`` scalar
fits.  Before timing, the script verifies row-for-row equivalence.

The batch advantage is largest for screening campaigns (many instances,
records up to a few thousand periods, dense small-``N`` sweeps), where the
scalar loop is dominated by per-call overhead.  For very long records the
working set leaves cache and both paths become memory-bound — that regime is
served by the O(chunk) streaming engine (``repro.engine.streaming``), not by
wider batches.

Run ``python benchmarks/bench_batch_engine.py`` (add ``--quick`` for a smoke
run, ``--check`` to exit non-zero below the 10x target).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

# Allow running as a plain script from the repository root.
sys.path.insert(0, "src")

from repro.core.fitting import fit_sigma2_n_curve  # noqa: E402
from repro.core.sigma_n import accumulated_variance_curve  # noqa: E402
from repro.engine.batch import (  # noqa: E402
    BatchedOscillatorEnsemble,
    spawn_generators,
)
from repro.engine.campaign import batched_sigma2_n_campaign  # noqa: E402
from repro.oscillator.ring import RingOscillator  # noqa: E402
from repro.paper import PAPER_F0_HZ, paper_phase_noise_psd  # noqa: E402


def _best_of(function, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def verify_equivalence(batch: int, n_periods: int, sweep, seed: int) -> float:
    """Assert batched rows reproduce the scalar path; return max curve error."""
    psd = paper_phase_noise_psd()
    ensemble = BatchedOscillatorEnsemble(
        PAPER_F0_HZ, psd, batch_size=batch, seed=seed
    )
    records = ensemble.jitter(n_periods)
    ensemble = BatchedOscillatorEnsemble(
        PAPER_F0_HZ, psd, batch_size=batch, seed=seed
    )
    result = batched_sigma2_n_campaign(ensemble, n_periods, n_sweep=sweep)
    children = spawn_generators(seed, batch)
    worst = 0.0
    for row in range(min(batch, 4)):
        oscillator = RingOscillator(PAPER_F0_HZ, psd, rng=children[row])
        scalar_record = oscillator.jitter(n_periods)
        if not np.array_equal(records[row], scalar_record):
            raise AssertionError(f"row {row}: batched record != scalar record")
        scalar_curve = accumulated_variance_curve(
            scalar_record, PAPER_F0_HZ, n_sweep=sweep
        )
        relative = np.max(
            np.abs(
                result.curves[row].sigma2_values_s2 / scalar_curve.sigma2_values_s2
                - 1.0
            )
        )
        if relative > 1e-12:
            raise AssertionError(
                f"row {row}: curve deviates by {relative:.2e} (> 1e-12)"
            )
        worst = max(worst, float(relative))
    return worst


def run(batch: int, n_periods: int, max_n: int, repeats: int, seed: int):
    psd = paper_phase_noise_psd()
    f0 = PAPER_F0_HZ
    sweep = list(range(1, max_n + 1))

    def scalar_campaign() -> None:
        for oscillator in scalar_instances:
            curve = accumulated_variance_curve(
                oscillator.jitter(n_periods), f0, n_sweep=sweep
            )
            fit_sigma2_n_curve(curve)

    def batched_campaign() -> None:
        batched_sigma2_n_campaign(ensemble, n_periods, n_sweep=sweep)

    # Fresh, identically seeded instruments per timing repetition would let
    # stream position drift between paths; instead both consume fresh stretches
    # of the same per-instance streams, which is the steady-state usage.
    scalar_instances = [
        RingOscillator(f0, psd, rng=generator)
        for generator in spawn_generators(seed, batch)
    ]
    scalar_seconds = _best_of(scalar_campaign, repeats)
    ensemble = BatchedOscillatorEnsemble(f0, psd, batch_size=batch, seed=seed)
    batched_seconds = _best_of(batched_campaign, repeats)
    return scalar_seconds, batched_seconds, sweep


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch", type=int, default=64, help="instances B")
    parser.add_argument(
        "--n-periods", type=int, default=256, help="record length per instance"
    )
    parser.add_argument(
        "--max-n",
        type=int,
        default=None,
        help="sweep N = 1..max_n (default: n_periods // 16)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=7,
        help="timing repetitions (best-of; raise on a noisy machine)",
    )
    parser.add_argument("--seed", type=int, default=20140324)
    parser.add_argument(
        "--quick", action="store_true", help="small smoke configuration"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the speedup target is missed",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.batch = min(args.batch, 16)
        args.n_periods = min(args.n_periods, 256)
        args.repeats = min(args.repeats, 2)
    max_n = args.max_n or max(args.n_periods // 16, 2)

    sweep = list(range(1, max_n + 1))
    worst = verify_equivalence(args.batch, args.n_periods, sweep, args.seed)
    print(
        f"equivalence: batched rows == scalar records (bitwise); "
        f"max curve deviation {worst:.2e} (budget 1e-12)"
    )

    scalar_seconds, batched_seconds, sweep = run(
        args.batch, args.n_periods, max_n, args.repeats, args.seed
    )
    instances_per_second = args.batch / batched_seconds
    speedup = scalar_seconds / batched_seconds
    print(
        f"\nworkload: B={args.batch} instances x {args.n_periods} periods, "
        f"sigma^2_N sweep N=1..{max_n} + Eq. 11 fit"
    )
    print(f"scalar loop   : {scalar_seconds * 1e3:8.2f} ms")
    print(f"batched engine: {batched_seconds * 1e3:8.2f} ms "
          f"({instances_per_second:,.0f} instances/s)")
    print(f"speedup       : {speedup:.1f}x (target >= 10x at B=64)")

    if args.check and not args.quick and args.batch >= 64 and speedup < 10.0:
        print("FAIL: speedup below 10x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
