"""Benchmark: multi-host fabric campaign scaling over localhost worker fleets.

Measures the paper's Fig. 7 sigma^2_N campaign through the
:class:`~repro.engine.distributed.fabric.coordinator.FabricCoordinator` two
ways:

* **single worker**: the whole campaign through a 1-worker fabric — same
  wire protocol, serialization and scheduling overhead, no parallelism;
* **multi worker**: the same spec fanned out over ``--workers`` spawned
  localhost ``python -m repro.worker`` processes.

The ratio isolates what the fabric is for — horizontal scaling — while
charging both sides the full coordinator/worker round-trip (JSON-lines
protocol, base64-``.npz`` partials).  Worker fleets are spawned *before* the
timed region: the benchmark measures steady-state campaign throughput, not
process startup.

Because every shard re-derives its rows' RNG streams from the root
``SeedSequence`` spawn tree, the fabric result must be **bit-for-bit
identical** to the unsharded single-host campaign; the script asserts
exactly that before any timing runs.

The headline target is a >= 2x wall-clock speedup at 4 workers for B >= 256
campaigns.  The speedup is hardware-bound: ``--check`` enforces the target
only on eligible configurations (full mode, >= 4 cores), and the JSON
artifact records eligibility so ``scripts/check_bench.py`` skips small
runners deterministically.

Run ``python benchmarks/bench_multihost.py`` (add ``--quick`` for a smoke
run, ``--check`` to gate on the target, ``--json PATH`` for CI artifacts).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

# Allow running as a plain script from the repository root.
sys.path.insert(0, "src")

from repro.engine.campaign import batched_sigma2_n_campaign  # noqa: E402
from repro.engine.distributed import (  # noqa: E402
    FabricCoordinator,
    Sigma2NCampaignSpec,
    run_campaign,
)

TARGET_SPEEDUP = 2.0
TARGET_WORKERS = 4
TARGET_BATCH = 256


def _best_of(function, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _spec(batch: int, n_periods: int, seed: int) -> Sigma2NCampaignSpec:
    return Sigma2NCampaignSpec(
        batch_size=batch, n_periods=n_periods, seed=seed
    )


def verify_equivalence(spec: Sigma2NCampaignSpec, workers: int, shards: int):
    """Assert fabric output == the unsharded batched campaign, bitwise."""
    reference = batched_sigma2_n_campaign(spec.ensemble(), spec.n_periods)
    with FabricCoordinator(spawn=workers) as fabric:
        result = run_campaign(spec, executor=fabric, n_shards=shards)
    for name, expected in (
        ("n_values", reference.n_values),
        ("sigma2_s2", reference.sigma2_s2),
        ("realization_counts", reference.realization_counts),
        ("f0_hz", reference.f0_hz),
    ):
        if not np.array_equal(getattr(result, name), expected):
            raise AssertionError(f"fabric: {name} differs from unsharded")
    table = result.table()
    for name, expected in reference.table().items():
        if not np.array_equal(table[name], expected):
            raise AssertionError(
                f"fabric: table column {name!r} differs from unsharded"
            )


def run(
    batch: int,
    n_periods: int,
    workers: int,
    shards: int,
    repeats: int,
    seed: int,
):
    def timed_fleet(n_workers: int) -> float:
        with FabricCoordinator(spawn=n_workers) as fabric:
            # Fleet spawn and connect happen here, outside the timed calls.
            return _best_of(
                lambda: run_campaign(
                    _spec(batch, n_periods, seed),
                    executor=fabric,
                    n_shards=shards,
                ),
                repeats,
            )

    single_seconds = timed_fleet(1)
    multi_seconds = timed_fleet(workers)
    return single_seconds, multi_seconds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--batch", type=int, default=TARGET_BATCH, help="instances B"
    )
    parser.add_argument(
        "--n-periods", type=int, default=65_536, help="periods per instance"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=TARGET_WORKERS,
        help="spawned localhost fabric workers",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count (default: 4x workers, for load balance)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repetitions (best-of; raise on a noisy machine)",
    )
    parser.add_argument("--seed", type=int, default=20140324)
    parser.add_argument(
        "--quick", action="store_true", help="small smoke configuration"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the speedup target is missed",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        help="write the benchmark results to this JSON file",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.batch = min(args.batch, 16)
        args.n_periods = min(args.n_periods, 8192)
        args.workers = min(args.workers, 2)
        args.repeats = 1
    if args.shards is None:
        args.shards = 4 * args.workers

    spec = _spec(args.batch, min(args.n_periods, 16_384), args.seed)
    verify_equivalence(spec, args.workers, args.shards)
    print(
        f"equivalence: {args.workers}-worker fabric == unsharded batched "
        f"campaign (bitwise) at {args.shards} shards"
    )

    single_seconds, multi_seconds = run(
        args.batch,
        args.n_periods,
        args.workers,
        args.shards,
        args.repeats,
        args.seed,
    )
    speedup = single_seconds / multi_seconds
    cores = os.cpu_count() or 1
    print(
        f"\nworkload: B={args.batch} instances x {args.n_periods} periods, "
        f"sigma^2_N sweep + Eq. 11 fit ({cores} cores available)"
    )
    print(f"1-worker fabric : {single_seconds * 1e3:8.1f} ms")
    print(
        f"{args.workers}-worker fabric : {multi_seconds * 1e3:8.1f} ms "
        f"({args.shards} shards)"
    )
    print(
        f"speedup         : {speedup:.2f}x "
        f"(target >= {TARGET_SPEEDUP}x at {TARGET_WORKERS} workers, "
        f"B >= {TARGET_BATCH})"
    )

    # Eligibility recorded in the JSON artifact so the perf gate
    # (scripts/check_bench.py) skips small runners deterministically.
    skip_reasons = []
    if args.quick:
        skip_reasons.append("quick mode")
    if args.batch < TARGET_BATCH:
        skip_reasons.append(f"batch {args.batch} < {TARGET_BATCH}")
    if args.workers < TARGET_WORKERS:
        skip_reasons.append(f"workers {args.workers} < {TARGET_WORKERS}")
    if cores < TARGET_WORKERS:
        skip_reasons.append(f"only {cores} CPU cores (need {TARGET_WORKERS})")
    eligible = not skip_reasons

    if args.json:
        payload = {
            "benchmark": "multihost",
            "mode": "quick" if args.quick else "full",
            "batch": args.batch,
            "n_periods": args.n_periods,
            "workers": args.workers,
            "shards": args.shards,
            "cpu_cores": cores,
            "single_worker_seconds": single_seconds,
            "multi_worker_seconds": multi_seconds,
            "speedup": speedup,
            "target_speedup": TARGET_SPEEDUP,
            "check_eligible": eligible,
            "check_skip_reason": None if eligible else "; ".join(skip_reasons),
            "equivalence": "bitwise",
            "quick": bool(args.quick),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"results written to {args.json}")

    if args.check:
        if not eligible:
            print(
                "note: --check skipped on this configuration: "
                f"{'; '.join(skip_reasons)} (it requires a full run with "
                f"--batch >= {TARGET_BATCH}, --workers >= {TARGET_WORKERS} "
                f"and >= {TARGET_WORKERS} CPU cores)",
                file=sys.stderr,
            )
        elif speedup < TARGET_SPEEDUP:
            print(f"FAIL: speedup below {TARGET_SPEEDUP}x", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
