"""Experiment CONCL-SCALING — flicker noise domination with technology shrinking.

Paper claim (conclusion): "since the flicker noise ... is related to the
technology (its PSD is the inverse of the square of the channel length), it
can be expected that the autocorrelated noise will become more and more
important in future, as transistor technologies will continue to shrink" —
i.e. the ratio r_N drops and the independence threshold shrinks from node to
node.

The benchmark runs the full bottom-up multilevel pipeline (device -> noise
PSDs -> ISF -> b_th/b_fl -> K, threshold) for every node of the library and
checks the monotonic trend the paper predicts.
"""

from __future__ import annotations

import pytest

from _bench_utils import report
from repro.core.multilevel import MultilevelModel
from repro.noise.technology import list_nodes

pytestmark = pytest.mark.benchmark(group="technology-scaling")

N_STAGES = 5
MIN_THERMAL_RATIO = 0.95


def test_scaling_shrinks_independence_threshold(benchmark):
    """Sweep the node library and check the paper's scaling prediction."""

    def sweep():
        results = []
        for name in list_nodes():
            model = MultilevelModel.from_technology(name, N_STAGES)
            results.append(
                (
                    name,
                    model.f0_hz,
                    model.ratio_constant,
                    model.independence_threshold(MIN_THERMAL_RATIO),
                    model.thermal_ratio(1000),
                )
            )
        return results

    results = benchmark(sweep)

    thresholds = [row[3] for row in results]
    ratios_at_1000 = [row[4] for row in results]
    # list_nodes() is ordered from the largest to the smallest node: the
    # threshold and the thermal ratio must shrink monotonically along it.
    assert all(b < a for a, b in zip(thresholds, thresholds[1:]))
    assert all(b < a for a, b in zip(ratios_at_1000, ratios_at_1000[1:]))

    print("\n=== CONCL-SCALING: flicker domination vs technology node ===")
    print("node    f0 [GHz]   K = b_th f0/(4 ln2 b_fl)   N(r_N>95%)   r_N at N=1000")
    for name, f0, constant, threshold, ratio in results:
        print(
            f"{name:<7} {f0 / 1e9:>7.2f}   {constant:>22.0f}   {threshold:>10.0f}   {ratio:>12.3f}"
        )
    report(
        "CONCL-SCALING summary",
        [
            (
                "threshold trend",
                "decreases with shrinking",
                f"{thresholds[0]:.0f} -> {thresholds[-1]:.0f} across {len(results)} nodes",
            )
        ],
    )
