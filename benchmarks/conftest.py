"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's figures/tables (see DESIGN.md,
experiment index) on the virtual Cyclone III platform.  The expensive data
generation is done once per session in fixtures; the ``benchmark`` fixture
then times the analysis step that the experiment is actually about, and each
benchmark prints a small "paper vs measured" report (run with ``-s`` to see
them, or consult EXPERIMENTS.md for a recorded run).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import accumulated_variance_curve, extract_thermal_noise_from_curve
from repro.measurement import VirtualEvaristePlatform
from repro.paper import PAPER_F0_HZ, paper_phase_noise_psd
from repro.phase import PeriodJitterSynthesizer


@pytest.fixture(scope="session")
def platform() -> VirtualEvaristePlatform:
    """Paper-calibrated virtual Evariste/Cyclone III platform."""
    return VirtualEvaristePlatform(rng=np.random.default_rng(20140324))


@pytest.fixture(scope="session")
def relative_jitter_record(platform) -> np.ndarray:
    """A long relative-jitter record captured on the platform (Fig. 7 input)."""
    return platform.relative_jitter(400_000)


@pytest.fixture(scope="session")
def fig7_curve(relative_jitter_record, platform):
    """The sigma^2_N vs N curve behind Fig. 7."""
    return accumulated_variance_curve(
        relative_jitter_record, platform.f0_hz, min_realizations=16
    )


@pytest.fixture(scope="session")
def thermal_report(fig7_curve):
    """The Section IV thermal-noise extraction applied to the Fig. 7 curve."""
    return extract_thermal_noise_from_curve(fig7_curve)


@pytest.fixture(scope="session")
def paper_synthesizer() -> PeriodJitterSynthesizer:
    """Synthesizer of the relative jitter process with the paper's exact PSD."""
    return PeriodJitterSynthesizer(
        PAPER_F0_HZ, paper_phase_noise_psd(), rng=np.random.default_rng(5354)
    )
