"""Benchmark: the shared synthesis-plan cache vs per-call setup rebuilds.

Every backend call starts by materializing RNG-independent spectral-shaping
setup — the FFT length and 1/sqrt(f) scaling table (spectral) or the
Corsini–Saletti cascade tables (ar).  The
:class:`~repro.engine.backends.SynthesisPlan` cache shares that setup across
every call with the same ``(n_periods, flicker_method, has_flicker)`` key:
coalesced serving rows, streaming sessions, and both execution backends.

Two measurements:

* **setup**: plan-cache hit latency vs a full :func:`build_plan` rebuild —
  exactly the work the cache removes, and what the headline target gates
  on.  A regression here means the cache has stopped caching (hit path
  rebuilding tables), which is the failure mode that matters.
* **serving-shaped workload**: many small same-key ``synthesize`` calls
  (coalescer-sized batches), cache enabled vs disabled — the end-to-end
  effect, reported for context.  Synthesis draws dominate this number, so
  it is informational, not gated.

Because the cached tables must never change a single output bit, the script
asserts cached == uncached synthesis (``np.array_equal``) across both
flicker methods before any timing run.

The headline target is a >= 10x setup speedup (cache hit vs rebuild) at the
serving-sized record length; measured ~20x at n=256 and >1000x at n=65536
on the development host, so the committed baseline
(``benchmarks/baselines/synthesis_cache.json``) has wide margin against
runner noise.

Run ``python benchmarks/bench_synthesis_cache.py`` (add ``--quick`` for a
smoke run, ``--check`` to gate on the target, ``--json PATH`` for CI
artifacts).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

# Allow running as a plain script from the repository root.
sys.path.insert(0, "src")

from repro.engine.backends import (  # noqa: E402
    NumpyBackend,
    configure_plan_cache,
    plan_cache_stats,
    reset_plan_cache,
    synthesis_plan,
)
from repro.engine.backends.plan import (  # noqa: E402
    DEFAULT_PLAN_CACHE_SIZE,
    build_plan,
)
from repro.engine.batch import spawn_generators  # noqa: E402

TARGET_SETUP_SPEEDUP = 10.0

SIGMA_S = 1.2e-12
H_MINUS1 = 3.1e-22


def _best_of(function, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _synthesize_calls(batch: int, n: int, method: str, calls: int, seed: int):
    """Serving-shaped traffic: many small same-group-key backend calls."""
    backend = NumpyBackend()
    sigma = np.full(batch, SIGMA_S)
    h_minus1 = np.full(batch, H_MINUS1)
    results = []
    for call in range(calls):
        results.append(
            backend.synthesize(
                n, spawn_generators(seed + call, batch), sigma, h_minus1, method
            )
        )
    return results


def verify_equivalence(batch: int, n: int, calls: int, seed: int) -> None:
    """Assert cached synthesis == uncached synthesis, bitwise, pre-timing."""
    for method in ("spectral", "ar"):
        reset_plan_cache()
        configure_plan_cache(0)
        uncached = _synthesize_calls(batch, n, method, calls, seed)
        reset_plan_cache()
        configure_plan_cache(DEFAULT_PLAN_CACHE_SIZE)
        cached = _synthesize_calls(batch, n, method, calls, seed)
        if plan_cache_stats()["hits"] < calls - 1:
            raise AssertionError(
                f"plan cache did not serve hits (method={method}): "
                f"{plan_cache_stats()}"
            )
        for left, right in zip(uncached, cached):
            if not (
                np.array_equal(left[0], right[0])
                and np.array_equal(left[1], right[1])
            ):
                raise AssertionError(
                    f"cached synthesis differs from uncached "
                    f"(method={method}, B={batch}, n={n})"
                )


def time_setup(n: int, method: str, repeats: int, loops: int):
    """Plan rebuild latency vs cache-hit latency, best-of, per call."""

    def rebuild() -> None:
        for _ in range(loops):
            build_plan(n, method, True)

    reset_plan_cache()
    configure_plan_cache(DEFAULT_PLAN_CACHE_SIZE)
    synthesis_plan(n, method, True)  # warm the one key

    def hit() -> None:
        for _ in range(loops):
            synthesis_plan(n, method, True)

    build_seconds = _best_of(rebuild, repeats) / loops
    hit_seconds = _best_of(hit, repeats) / loops
    return build_seconds, hit_seconds


def time_workload(batch: int, n: int, calls: int, repeats: int, seed: int):
    """Cache-off vs cache-on wall time of the serving-shaped workload."""

    def run() -> None:
        _synthesize_calls(batch, n, "spectral", calls, seed)

    reset_plan_cache()
    configure_plan_cache(0)
    uncached = _best_of(run, repeats)
    reset_plan_cache()
    configure_plan_cache(DEFAULT_PLAN_CACHE_SIZE)
    cached = _best_of(run, repeats)
    return uncached, cached


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--batch", type=int, default=4, help="rows per coalesced call B"
    )
    parser.add_argument(
        "--n-periods",
        type=int,
        default=256,
        help="periods per row (serving-sized records)",
    )
    parser.add_argument(
        "--calls", type=int, default=64, help="same-key backend calls"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="timing repetitions (best-of; raise on a noisy machine)",
    )
    parser.add_argument("--seed", type=int, default=20140324)
    parser.add_argument(
        "--quick", action="store_true", help="small smoke configuration"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the setup-speedup target is missed",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        help="write the benchmark results to this JSON file",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.calls = min(args.calls, 16)
        args.repeats = min(args.repeats, 3)

    verify_equivalence(args.batch, args.n_periods, args.calls, args.seed)
    print(
        f"equivalence: cached == uncached synthesis (bitwise) for spectral + "
        f"ar flicker over {args.calls} same-key calls "
        f"(B={args.batch}, n={args.n_periods})"
    )

    loops = 50 if args.quick else 200
    build_seconds, hit_seconds = time_setup(
        args.n_periods, "spectral", args.repeats, loops
    )
    setup_speedup = build_seconds / hit_seconds
    workload_uncached, workload_cached = time_workload(
        args.batch, args.n_periods, args.calls, args.repeats, args.seed
    )
    workload_speedup = workload_uncached / workload_cached
    cores = os.cpu_count() or 1

    print(
        f"\nworkload: {args.calls} calls x B={args.batch} x "
        f"n={args.n_periods} periods ({cores} cores available)"
    )
    print(f"setup    rebuild : {build_seconds * 1e6:8.2f} us/plan")
    print(f"setup    hit     : {hit_seconds * 1e6:8.2f} us/plan")
    print(
        f"setup    speedup : {setup_speedup:.1f}x "
        f"(target >= {TARGET_SETUP_SPEEDUP}x)"
    )
    print(f"workload cache off: {workload_uncached * 1e3:7.1f} ms")
    print(f"workload cache on : {workload_cached * 1e3:7.1f} ms")
    print(
        f"workload speedup  : {workload_speedup:.2f}x "
        f"(informational; synthesis draws dominate)"
    )

    if args.json:
        payload = {
            "benchmark": "synthesis_cache",
            "mode": "quick" if args.quick else "full",
            "batch": args.batch,
            "n_periods": args.n_periods,
            "calls": args.calls,
            "cpu_cores": cores,
            "setup_build_seconds": build_seconds,
            "setup_hit_seconds": hit_seconds,
            "setup_speedup": setup_speedup,
            "workload_uncached_seconds": workload_uncached,
            "workload_cached_seconds": workload_cached,
            "workload_speedup": workload_speedup,
            "target_setup_speedup": TARGET_SETUP_SPEEDUP,
            "equivalence": "bitwise",
            "quick": bool(args.quick),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"results written to {args.json}")

    if args.check and setup_speedup < TARGET_SETUP_SPEEDUP:
        print(
            f"FAIL: setup speedup below {TARGET_SETUP_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
