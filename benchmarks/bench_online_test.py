"""Experiment CONCL-ONLINE-TEST — the embedded thermal-noise test as an attack detector.

Paper claim (conclusion): the thermal-noise measurement "can be used for
implementing fast and precise generator-specific statistical test.  Such test,
required by AIS31, could detect very quickly attacks targeting the entropy
source."

The benchmark characterises a healthy oscillator pair, then applies a
frequency-injection attack of increasing strength and records which detectors
fire: the paper's thermal online test versus a classical bit-level monobit
online test on the TRNG output.  The expected shape: the thermal test fires at
much weaker attack strength (when the entropy is already degraded but the bits
still look balanced).
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import report
from repro.ais31.online import monobit_online_test
from repro.ais31.thermal_test import ThermalNoiseOnlineTest
from repro.attacks.frequency_injection import (
    FrequencyInjectionAttack,
    InjectionParameters,
)
from repro.oscillator.period_model import JitteryClock
from repro.phase import PhaseNoisePSD
from repro.trng.digitizer import DFlipFlopSampler

pytestmark = pytest.mark.benchmark(group="online-test")

F0 = 1e8
PER_OSCILLATOR_PSD = PhaseNoisePSD(b_thermal_hz=5e4, b_flicker_hz2=1e7)
REFERENCE_B_THERMAL = 2.0 * PER_OSCILLATOR_PSD.b_thermal_hz
ATTACK_STRENGTHS = [0.0, 0.5, 0.9, 0.99]


def _pair(seed: int):
    rng = np.random.default_rng(seed)
    return (
        JitteryClock(F0, PER_OSCILLATOR_PSD, rng=rng),
        JitteryClock(F0, PER_OSCILLATOR_PSD, rng=rng),
    )


def _attacked_pair(strength: float, seed: int):
    osc1, osc2 = _pair(seed)
    if strength == 0.0:
        return osc1, osc2
    parameters = InjectionParameters(
        injection_frequency_hz=F0, locking_strength=strength
    )
    return (
        FrequencyInjectionAttack(osc1, parameters, rng=np.random.default_rng(seed + 1)),
        FrequencyInjectionAttack(osc2, parameters, rng=np.random.default_rng(seed + 2)),
    )


def test_thermal_online_test_detection_curve(benchmark):
    """Run the thermal online test across attack strengths."""
    online = ThermalNoiseOnlineTest(
        reference_b_thermal_hz=REFERENCE_B_THERMAL,
        minimum_ratio=0.5,
        accumulation_lengths=(2048, 8192),
        n_windows=256,
    )

    def detection_sweep():
        outcomes = []
        for index, strength in enumerate(ATTACK_STRENGTHS):
            osc1, osc2 = _attacked_pair(strength, seed=100 + index)
            outcomes.append((strength, online.execute(osc1, osc2)))
        return outcomes

    outcomes = benchmark.pedantic(detection_sweep, iterations=1, rounds=1)

    healthy = outcomes[0][1]
    strongest = outcomes[-1][1]
    assert healthy.passed
    assert not strongest.passed
    # The measured thermal level decreases monotonically with attack strength.
    ratios = [result.ratio for _strength, result in outcomes]
    assert ratios[-1] < ratios[0]

    rows = [
        (
            f"locking strength {strength:.2f}",
            "detect attacks 'very quickly'",
            f"b_th ratio = {result.ratio:.2f}, {'ALARM' if not result.passed else 'pass'}",
        )
        for strength, result in outcomes
    ]
    report("CONCL-ONLINE-TEST: thermal online test vs attack strength", rows)


def test_thermal_test_fires_before_monobit_test(benchmark):
    """At a moderate attack strength the thermal test alarms while the
    bit-level monobit test still sees acceptably balanced output."""
    strength = 0.9

    def run_both_detectors():
        osc1, osc2 = _attacked_pair(strength, seed=300)
        thermal = ThermalNoiseOnlineTest(
            reference_b_thermal_hz=REFERENCE_B_THERMAL,
            minimum_ratio=0.5,
            accumulation_lengths=(2048, 8192),
            n_windows=256,
        ).execute(osc1, osc2)

        sampler_osc1, sampler_osc2 = _attacked_pair(strength, seed=301)
        sampler = DFlipFlopSampler(sampler_osc1, sampler_osc2, divider=256)
        bits = sampler.sample(40_000).bits
        monobit = monobit_online_test(block_size_bits=20_000).run(bits)
        return thermal, monobit

    thermal, monobit = benchmark.pedantic(run_both_detectors, iterations=1, rounds=1)

    assert not thermal.passed
    report(
        "CONCL-ONLINE-TEST: detector comparison at locking strength 0.9",
        [
            (
                "thermal online test",
                "fires quickly",
                "ALARM" if not thermal.passed else "pass",
            ),
            (
                "monobit online test",
                "slow / insensitive",
                "ALARM" if monobit.alarm else f"pass ({monobit.n_failures} failed blocks)",
            ),
        ],
    )
