"""Experiment FIG6-COUNTER — equivalence of the counter measurement with the jitter definition.

Paper claim (Sec. III-E, Eq. 12): the counter difference
``s_N = (Q^N_{i+1} - Q^N_i)/f0`` realizes the same statistic as the direct
definition of Eq. 4, so the whole sigma^2_N analysis can be run from purely
digital measurements.

The benchmark runs both estimators on the same pair of oscillators and
compares them, in the regime where the accumulated jitter exceeds the counter
resolution (the regime the hardware measurement operates in).  Oscillators
with a larger jitter than the paper's are used so that the regime is reached
at benchmark-friendly accumulation lengths; the equivalence being tested is
regime-independent.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import report
from repro.core import accumulated_variance_curve
from repro.core.theory import sigma2_n_closed_form
from repro.measurement.capture import counter_capture_campaign, relative_jitter_record
from repro.oscillator.period_model import JitteryClock
from repro.phase import PhaseNoisePSD

pytestmark = pytest.mark.benchmark(group="counter-equivalence")

F0 = 1e8
PER_OSCILLATOR_PSD = PhaseNoisePSD(b_thermal_hz=5e4, b_flicker_hz2=2e7)
RELATIVE_PSD = PhaseNoisePSD(b_thermal_hz=1e5, b_flicker_hz2=4e7)
N_SWEEP = [2_000, 5_000, 10_000]


def _pair(seed: int):
    rng = np.random.default_rng(seed)
    return (
        JitteryClock(F0, PER_OSCILLATOR_PSD, rng=rng),
        JitteryClock(F0, PER_OSCILLATOR_PSD, rng=rng),
    )


def test_counter_vs_direct_estimator(benchmark):
    """Both measurement paths must agree with each other and with Eq. 11."""
    osc1, osc2 = _pair(seed=1)

    campaign = benchmark.pedantic(
        counter_capture_campaign,
        kwargs=dict(
            oscillator_1=osc1,
            oscillator_2=osc2,
            n_sweep=N_SWEEP,
            n_windows=128,
            correct_quantization=True,
        ),
        iterations=1,
        rounds=1,
    )

    direct_osc1, direct_osc2 = _pair(seed=2)
    record = relative_jitter_record(direct_osc1, direct_osc2, 400_000)
    direct_curve = accumulated_variance_curve(record, F0, n_sweep=N_SWEEP)

    rows = []
    for index, n in enumerate(N_SWEEP):
        counter_value = campaign.curve.sigma2_values_s2[index]
        direct_value = direct_curve.sigma2_values_s2[index]
        theory = float(sigma2_n_closed_form(RELATIVE_PSD, F0, n))
        assert counter_value == pytest.approx(theory, rel=0.5)
        assert counter_value == pytest.approx(direct_value, rel=0.6)
        rows.append(
            (
                f"sigma^2_N at N={n}",
                "counter == direct (Eq. 12)",
                f"counter/direct = {counter_value / direct_value:.2f}, "
                f"counter/theory = {counter_value / theory:.2f}",
            )
        )
    report("FIG6-COUNTER: counter vs direct estimator", rows)


def test_quantization_correction_matters_at_small_n(benchmark):
    """Below the resolution crossover the raw counter variance is dominated by
    the +-1 count quantisation; the correction recovers the right order."""
    osc1, osc2 = _pair(seed=3)
    from repro.measurement.counter import DifferentialJitterCounter

    counter = DifferentialJitterCounter(osc1, osc2)
    n = 500

    capture = benchmark.pedantic(
        counter.capture, args=(n, 256), iterations=1, rounds=1
    )
    raw = capture.sigma2_n(correct_quantization=False)
    corrected = capture.sigma2_n(correct_quantization=True)
    theory = float(sigma2_n_closed_form(RELATIVE_PSD, F0, n))
    # The raw estimate carries a visible quantisation excess; the corrected one
    # is smaller and consistent with the closed form.
    assert raw > 1.25 * theory
    assert corrected < raw
    assert corrected == pytest.approx(theory, rel=0.5)
