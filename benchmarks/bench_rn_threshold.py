"""Experiment SEC3E-RN — the ratio r_N = K/(K+N) and the independence threshold.

Paper result (Sec. III-E): with the fitted coefficients, ``r_N = 5354/(5354+N)``
and requiring 95 % thermal dominance limits the accumulation to ``N < 281``.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import report
from repro.core.ratio import independence_threshold, ratio_constant, thermal_ratio
from repro.paper import PAPER_REFERENCE

pytestmark = pytest.mark.benchmark(group="rn-threshold")


def test_rn_ratio_and_threshold(benchmark, thermal_report):
    """Compute r_N and the threshold from the platform-fitted coefficients."""
    psd = thermal_report.phase_noise_psd
    f0 = thermal_report.f0_hz
    n_values = np.unique(np.logspace(0, 5, 200).astype(int))

    def analysis():
        constant = ratio_constant(psd, f0)
        curve = thermal_ratio(psd, f0, n_values)
        threshold = independence_threshold(psd, f0, PAPER_REFERENCE.min_thermal_ratio)
        return constant, curve, threshold

    constant, curve, threshold = benchmark(analysis)

    # Shape checks: monotone decreasing ratio, threshold in the paper's range.
    assert np.all(np.diff(curve) <= 0.0)
    assert 0.0 < curve[-1] < curve[0] <= 1.0
    assert PAPER_REFERENCE.ratio_constant / 3 < constant < PAPER_REFERENCE.ratio_constant * 3
    assert (
        PAPER_REFERENCE.independence_threshold_n / 3
        < threshold
        < PAPER_REFERENCE.independence_threshold_n * 3
    )

    report(
        "SEC3E-RN: thermal ratio and independence threshold",
        [
            ("K (r_N = K/(K+N))", f"{PAPER_REFERENCE.ratio_constant:.0f}", f"{constant:.0f}"),
            (
                "N threshold (r_N > 95%)",
                f"{PAPER_REFERENCE.independence_threshold_n}",
                f"{threshold:.0f}",
            ),
            ("r_N at N=281", ">= 0.95", f"{float(thermal_ratio(psd, f0, 281)):.3f}"),
            ("r_N at N=5354", "0.50", f"{float(thermal_ratio(psd, f0, 5354)):.3f}"),
        ],
    )


def test_rn_exact_coefficients(benchmark):
    """Same computation with the paper's exact coefficients (theory-only check)."""
    from repro.paper import paper_phase_noise_psd

    psd = paper_phase_noise_psd()

    def analysis():
        return (
            ratio_constant(psd, PAPER_REFERENCE.f0_hz),
            independence_threshold(psd, PAPER_REFERENCE.f0_hz, 0.95),
        )

    constant, threshold = benchmark(analysis)
    assert constant == pytest.approx(5354.0, rel=1e-3)
    assert threshold == pytest.approx(281.8, abs=1.0)
