"""Experiment ALLAN-LINK — relation between sigma^2_N and the Allan variance.

Paper background (Sec. III-B): following Allan, the classical variance of the
jitter does not converge in presence of flicker noise, so the paper builds its
statistic s_N as a two-sample difference.  The exact relation is

    Var(s_N) = 2 * (N/f0)^2 * sigma_y^2(N/f0)

where sigma_y^2 is the Allan variance of the fractional frequency.  The
benchmark verifies that relation on synthesized white-FM and flicker-FM
clocks, and confirms the textbook Allan levels (h0/(2 tau) and 2 ln2 h_{-1}).
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import report
from repro.core.sigma_n import sigma2_n_estimate
from repro.paper import PAPER_F0_HZ
from repro.phase import PeriodJitterSynthesizer, PhaseNoisePSD
from repro.stats.allan import (
    allan_variance,
    allan_variance_flicker_fm,
    allan_variance_white_fm,
    fractional_frequency_from_periods,
)

pytestmark = pytest.mark.benchmark(group="allan-link")

N_PERIODS = 200_000
AVERAGING_FACTORS = [16, 64, 256]


def _check_link(periods: np.ndarray, f0: float, rows: list, label: str) -> None:
    nominal = 1.0 / f0
    jitter = periods - nominal
    fractional = fractional_frequency_from_periods(periods, nominal)
    for m in AVERAGING_FACTORS:
        sigma2_n = sigma2_n_estimate(jitter, m)
        allan = allan_variance(fractional, m)
        predicted = 2.0 * (m / f0) ** 2 * allan
        ratio = sigma2_n / predicted
        assert ratio == pytest.approx(1.0, rel=0.15)
        rows.append(
            (
                f"{label}, N={m}",
                "Var(s_N) = 2 (N/f0)^2 AVAR",
                f"ratio = {ratio:.3f}",
            )
        )


def test_sigma2n_allan_link_white_fm(benchmark):
    """White-FM clock: check the link and the h0/(2 tau) Allan level."""
    psd = PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=0.0)
    synthesizer = PeriodJitterSynthesizer(
        PAPER_F0_HZ, psd, rng=np.random.default_rng(1)
    )
    periods = synthesizer.periods(N_PERIODS)

    fractional = fractional_frequency_from_periods(periods, 1.0 / PAPER_F0_HZ)
    allan_values = benchmark(
        lambda: [allan_variance(fractional, m) for m in AVERAGING_FACTORS]
    )

    h0 = 2.0 * psd.b_thermal_hz / PAPER_F0_HZ**2
    rows = []
    for m, measured in zip(AVERAGING_FACTORS, allan_values):
        expected = allan_variance_white_fm(h0, m / PAPER_F0_HZ)
        assert measured == pytest.approx(expected, rel=0.15)
        rows.append(
            (f"AVAR white FM, m={m}", "h0/(2 tau)", f"{measured / expected:.3f} x theory")
        )
    _check_link(periods, PAPER_F0_HZ, rows, "white FM")
    report("ALLAN-LINK (white FM)", rows)


def test_sigma2n_allan_link_flicker_fm(benchmark):
    """Flicker-FM clock: AVAR is flat at 2 ln2 h_{-1} and the link holds."""
    psd = PhaseNoisePSD(b_thermal_hz=0.0, b_flicker_hz2=1.915e6)
    synthesizer = PeriodJitterSynthesizer(
        PAPER_F0_HZ, psd, rng=np.random.default_rng(2)
    )
    periods = synthesizer.periods(N_PERIODS)
    fractional = fractional_frequency_from_periods(periods, 1.0 / PAPER_F0_HZ)

    allan_values = benchmark(
        lambda: [allan_variance(fractional, m) for m in AVERAGING_FACTORS]
    )

    h_minus1 = psd.flicker_fractional_frequency_coefficient(PAPER_F0_HZ)
    expected = allan_variance_flicker_fm(h_minus1)
    rows = []
    for m, measured in zip(AVERAGING_FACTORS, allan_values):
        assert measured == pytest.approx(expected, rel=0.35)
        rows.append(
            (
                f"AVAR flicker FM, m={m}",
                "2 ln2 h-1 (flat in tau)",
                f"{measured / expected:.3f} x theory",
            )
        )
    _check_link(periods, PAPER_F0_HZ, rows, "flicker FM")
    report("ALLAN-LINK (flicker FM)", rows)
