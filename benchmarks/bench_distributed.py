"""Benchmark: distributed campaign runner vs the single-process batched path.

Measures the paper's Fig. 7 sigma^2_N campaign (synthesis + vectorized
estimate + Eq. 11 fit) for a ``B``-instance ensemble two ways:

* **single process**: one :func:`repro.engine.campaign.batched_sigma2_n_campaign`
  call — the engine's fastest single-core path, and the baseline every
  speedup claim is measured against;
* **distributed**: the same spec through
  :func:`repro.engine.distributed.run_campaign`, sharded into row ranges and
  fanned out over a :class:`~repro.engine.distributed.MultiprocessExecutor`.

Because every shard re-derives its rows' RNG streams from the root
``SeedSequence`` spawn tree, the distributed result must be **bit-for-bit
identical** to the single-process one; the script asserts exactly that
(across shard counts {1, 3} serially and the full multi-process
configuration) before any timing runs.

The headline target is a >= 3x wall-clock speedup at 4 workers for B >= 256
campaigns.  The speedup is hardware-bound: ``--check`` enforces the target
only when the machine actually has >= 4 CPU cores (and skips, with a note,
under ``--quick`` or smaller configurations — CI smoke runs stay fast).

Run ``python benchmarks/bench_distributed.py`` (add ``--quick`` for a smoke
run, ``--check`` to gate on the target, ``--json PATH`` for CI artifacts).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

# Allow running as a plain script from the repository root.
sys.path.insert(0, "src")

from repro.engine.campaign import batched_sigma2_n_campaign  # noqa: E402
from repro.engine.distributed import (  # noqa: E402
    MultiprocessExecutor,
    SerialExecutor,
    Sigma2NCampaignSpec,
    run_campaign,
)

TARGET_SPEEDUP = 3.0
TARGET_WORKERS = 4
TARGET_BATCH = 256


def _best_of(function, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _spec(batch: int, n_periods: int, seed: int) -> Sigma2NCampaignSpec:
    return Sigma2NCampaignSpec(
        batch_size=batch, n_periods=n_periods, seed=seed
    )


def verify_equivalence(spec: Sigma2NCampaignSpec, workers: int, shards: int):
    """Assert sharded/distributed output == the unsharded batched campaign."""
    reference = batched_sigma2_n_campaign(spec.ensemble(), spec.n_periods)
    configurations = [
        ("serial, 1 shard", SerialExecutor(), 1),
        ("serial, 3 shards", SerialExecutor(), 3),
        (
            f"{workers} workers, {shards} shards",
            MultiprocessExecutor(max_workers=workers),
            shards,
        ),
    ]
    for label, executor, n_shards in configurations:
        result = run_campaign(spec, executor=executor, n_shards=n_shards)
        for name, expected in (
            ("n_values", reference.n_values),
            ("sigma2_s2", reference.sigma2_s2),
            ("realization_counts", reference.realization_counts),
            ("f0_hz", reference.f0_hz),
        ):
            if not np.array_equal(getattr(result, name), expected):
                raise AssertionError(f"{label}: {name} differs from unsharded")
        table = result.table()
        for name, expected in reference.table().items():
            if not np.array_equal(table[name], expected):
                raise AssertionError(
                    f"{label}: table column {name!r} differs from unsharded"
                )


def run(
    batch: int,
    n_periods: int,
    workers: int,
    shards: int,
    repeats: int,
    seed: int,
):
    executor = MultiprocessExecutor(max_workers=workers)

    # Fresh specs per repetition keep both paths on cold RNG streams; the
    # distributed timing includes pool startup and result pickling (honest
    # end-to-end wall clock).
    def single_process() -> None:
        ensemble = _spec(batch, n_periods, seed).ensemble()
        batched_sigma2_n_campaign(ensemble, n_periods)

    def distributed() -> None:
        run_campaign(
            _spec(batch, n_periods, seed), executor=executor, n_shards=shards
        )

    single_seconds = _best_of(single_process, repeats)
    distributed_seconds = _best_of(distributed, repeats)
    return single_seconds, distributed_seconds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--batch", type=int, default=TARGET_BATCH, help="instances B"
    )
    parser.add_argument(
        "--n-periods", type=int, default=65_536, help="periods per instance"
    )
    parser.add_argument(
        "--workers", type=int, default=TARGET_WORKERS, help="worker processes"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count (default: 4x workers, for load balance)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repetitions (best-of; raise on a noisy machine)",
    )
    parser.add_argument("--seed", type=int, default=20140324)
    parser.add_argument(
        "--quick", action="store_true", help="small smoke configuration"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the speedup target is missed",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        help="write the benchmark results to this JSON file",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.batch = min(args.batch, 16)
        args.n_periods = min(args.n_periods, 8192)
        args.workers = min(args.workers, 2)
        args.repeats = 1
    if args.shards is None:
        args.shards = 4 * args.workers

    spec = _spec(args.batch, min(args.n_periods, 16_384), args.seed)
    verify_equivalence(spec, args.workers, args.shards)
    print(
        f"equivalence: distributed == unsharded batched campaign (bitwise) "
        f"for shards {{1, 3, {args.shards}}} and {args.workers} workers"
    )

    single_seconds, distributed_seconds = run(
        args.batch,
        args.n_periods,
        args.workers,
        args.shards,
        args.repeats,
        args.seed,
    )
    speedup = single_seconds / distributed_seconds
    cores = os.cpu_count() or 1
    print(
        f"\nworkload: B={args.batch} instances x {args.n_periods} periods, "
        f"sigma^2_N sweep + Eq. 11 fit ({cores} cores available)"
    )
    print(f"single process  : {single_seconds * 1e3:8.1f} ms")
    print(
        f"distributed     : {distributed_seconds * 1e3:8.1f} ms "
        f"({args.workers} workers, {args.shards} shards)"
    )
    print(
        f"speedup         : {speedup:.2f}x "
        f"(target >= {TARGET_SPEEDUP}x at {TARGET_WORKERS} workers, "
        f"B >= {TARGET_BATCH})"
    )

    # Speedup-threshold eligibility, decided once and recorded in the JSON
    # output so downstream gates (scripts/check_bench.py) can skip the
    # distributed thresholds on small runners *deterministically* instead of
    # re-deriving the hardware gate from a log message.
    skip_reasons = []
    if args.quick:
        skip_reasons.append("quick mode")
    if args.batch < TARGET_BATCH:
        skip_reasons.append(f"batch {args.batch} < {TARGET_BATCH}")
    if args.workers < TARGET_WORKERS:
        skip_reasons.append(f"workers {args.workers} < {TARGET_WORKERS}")
    if cores < TARGET_WORKERS:
        skip_reasons.append(f"only {cores} CPU cores (need {TARGET_WORKERS})")
    eligible = not skip_reasons

    if args.json:
        payload = {
            "benchmark": "distributed",
            "mode": "quick" if args.quick else "full",
            "batch": args.batch,
            "n_periods": args.n_periods,
            "workers": args.workers,
            "shards": args.shards,
            "cpu_cores": cores,
            "single_process_seconds": single_seconds,
            "distributed_seconds": distributed_seconds,
            "speedup": speedup,
            "target_speedup": TARGET_SPEEDUP,
            "check_eligible": eligible,
            "check_skip_reason": None if eligible else "; ".join(skip_reasons),
            "equivalence": "bitwise",
            "quick": bool(args.quick),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"results written to {args.json}")

    if args.check:
        if not eligible:
            print(
                "note: --check skipped on this configuration: "
                f"{'; '.join(skip_reasons)} (it requires a full run with "
                f"--batch >= {TARGET_BATCH}, --workers >= {TARGET_WORKERS} "
                f"and >= {TARGET_WORKERS} CPU cores)",
                file=sys.stderr,
            )
        elif speedup < TARGET_SPEEDUP:
            print(f"FAIL: speedup below {TARGET_SPEEDUP}x", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
