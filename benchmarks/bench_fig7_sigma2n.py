"""Experiment FIG7 — regenerate Fig. 7: f0^2 sigma^2_N versus N, with the Eq. 11 fit.

Paper result (Sec. III-E / IV-A): the measured accumulated variance follows
``f0^2 sigma^2_N = 5.36e-6 N + c2 N^2``; the linear regime dominates at small
N and the quadratic (flicker) regime takes over around N ~ K = 5354, proving
that jitter realizations are not mutually independent at large N.

The benchmark times the sigma^2_N curve estimation (the analysis the embedded
measurement has to run), checks the shape (superlinearity, crossover location)
and prints the measured points next to the paper's fitted law.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import report
from repro.core import accumulated_variance_curve, fit_sigma2_n_curve
from repro.paper import PAPER_REFERENCE

pytestmark = pytest.mark.benchmark(group="fig7")


def test_fig7_sigma2n_curve(benchmark, relative_jitter_record, platform):
    """Regenerate the Fig. 7 data set and compare its shape with the paper."""
    n_sweep = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000]

    curve = benchmark(
        accumulated_variance_curve,
        relative_jitter_record,
        platform.f0_hz,
        n_sweep,
    )

    fit = fit_sigma2_n_curve(curve)
    n = curve.n_values.astype(float)
    normalized = curve.normalized_sigma2_values

    # Shape check 1: the small-N slope matches the paper's thermal slope.
    small_slope = float(np.median(normalized[n <= 20] / n[n <= 20]))
    assert small_slope == pytest.approx(
        PAPER_REFERENCE.normalized_thermal_slope, rel=0.15
    )

    # Shape check 2: the curve is clearly superlinear at large N (dependence).
    large_slope = float(np.median(normalized[n >= 2000] / n[n >= 2000]))
    assert large_slope > 1.3 * small_slope

    # Shape check 3: the fitted crossover (K) is within a factor ~2 of 5354.
    crossover = fit.b_thermal_hz * platform.f0_hz / (
        4.0 * np.log(2.0) * max(fit.b_flicker_hz2, 1e-30)
    )
    assert PAPER_REFERENCE.ratio_constant / 2.5 < crossover < PAPER_REFERENCE.ratio_constant * 2.5

    rows = [
        (
            "normalised slope (small N)",
            f"{PAPER_REFERENCE.normalized_thermal_slope:.2e}",
            f"{small_slope:.2e}",
        ),
        ("b_th [Hz]", f"{PAPER_REFERENCE.b_thermal_hz:.2f}", f"{fit.b_thermal_hz:.2f}"),
        (
            "b_fl [Hz^2]",
            f"{PAPER_REFERENCE.b_flicker_hz2:.3g}",
            f"{fit.b_flicker_hz2:.3g}",
        ),
        ("crossover K", f"{PAPER_REFERENCE.ratio_constant:.0f}", f"{crossover:.0f}"),
        ("fit R^2", "(not given)", f"{fit.r_squared:.4f}"),
    ]
    report("FIG7: f0^2 sigma^2_N vs N", rows)
    print("      N    f0^2*sigma^2_N (measured)   paper fit 5.36e-6*N + quad")
    for index in range(n.size):
        paper_value = (
            PAPER_REFERENCE.normalized_thermal_slope * n[index]
            + 8.0
            * np.log(2.0)
            * PAPER_REFERENCE.b_flicker_hz2
            / PAPER_REFERENCE.f0_hz**2
            * n[index] ** 2
        )
        print(
            f"{int(n[index]):>8d}    {normalized[index]:.3e}               {paper_value:.3e}"
        )
