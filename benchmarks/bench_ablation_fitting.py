"""Ablation — design choices of the sigma^2_N estimation and fitting pipeline.

DESIGN.md calls out three implementation choices that are not spelled out in
the paper and therefore deserve an ablation:

1. *weighted vs unweighted* least squares when fitting Eq. 11 — the small-N
   (thermal) region carries the b_th information and must not be swamped by
   the huge absolute values at large N;
2. *mean-of-squares vs sample-variance* estimation of sigma^2_N on overlapping
   windows — the sample-variance estimator is biased low at large N;
3. *quantisation correction* of the counter measurement — without it the
   counter path misreads the thermal coefficient whenever the jitter has not
   yet grown past one oscillator period.

Each ablation compares the recovered b_th / b_fl with the platform's ground
truth, with and without the corresponding design choice.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import report
from repro.core import fit_sigma2_n_curve
from repro.core.sigma_n import AccumulatedVarianceCurve, AccumulatedVariancePoint, s_n_realizations
from repro.paper import PAPER_REFERENCE

pytestmark = pytest.mark.benchmark(group="ablation")


def test_ablation_weighted_vs_unweighted_fit(benchmark, fig7_curve):
    """Weighting keeps b_th accurate; dropping it degrades the thermal estimate."""

    def run_both():
        return (
            fit_sigma2_n_curve(fig7_curve, weighted=True),
            fit_sigma2_n_curve(fig7_curve, weighted=False),
        )

    weighted, unweighted = benchmark(run_both)

    error_weighted = abs(weighted.b_thermal_hz - PAPER_REFERENCE.b_thermal_hz)
    error_unweighted = abs(unweighted.b_thermal_hz - PAPER_REFERENCE.b_thermal_hz)
    assert error_weighted <= error_unweighted * 1.05
    assert weighted.b_thermal_hz == pytest.approx(PAPER_REFERENCE.b_thermal_hz, rel=0.1)

    report(
        "ABLATION: weighted vs unweighted Eq. 11 fit",
        [
            ("b_th, weighted fit", "276.04 Hz", f"{weighted.b_thermal_hz:.2f} Hz"),
            ("b_th, unweighted fit", "276.04 Hz", f"{unweighted.b_thermal_hz:.2f} Hz"),
        ],
    )


def test_ablation_variance_estimator(benchmark, relative_jitter_record, platform):
    """Mean-of-squares vs mean-subtracted variance for overlapping s_N windows."""
    from repro.core.theory import sigma2_n_closed_form

    n = 10_000
    values = s_n_realizations(relative_jitter_record, n)

    def run_both():
        mean_of_squares = float(np.mean(values**2))
        centred_variance = float(np.var(values, ddof=1))
        return mean_of_squares, centred_variance

    mean_of_squares, centred_variance = benchmark(run_both)
    theory = float(sigma2_n_closed_form(platform.relative_psd, platform.f0_hz, n))

    # The centred estimator can only be smaller; at this record/N ratio the
    # difference is visible and the mean-of-squares estimator is closer to the
    # theoretical value.
    assert centred_variance <= mean_of_squares
    assert abs(mean_of_squares - theory) <= abs(centred_variance - theory) * 1.05

    report(
        "ABLATION: sigma^2_N estimator at N = 10000",
        [
            ("theory (Eq. 11)", "-", f"{theory:.3e}"),
            ("mean of squares", "-", f"{mean_of_squares:.3e}"),
            ("centred variance", "-", f"{centred_variance:.3e}"),
        ],
    )


def test_ablation_quantization_correction(benchmark):
    """Counter path with and without the T0^2/2 quantisation correction."""
    from repro.measurement.capture import counter_capture_campaign
    from repro.oscillator.period_model import JitteryClock
    from repro.phase import PhaseNoisePSD

    f0 = 1e8
    per_oscillator = PhaseNoisePSD(5e4, 2e7)
    relative_b_thermal = 1e5
    rng = np.random.default_rng(3)
    osc1 = JitteryClock(f0, per_oscillator, rng=rng)
    osc2 = JitteryClock(f0, per_oscillator, rng=rng)
    n_sweep = [500, 1000, 2000, 4000, 8000]

    campaign = benchmark.pedantic(
        counter_capture_campaign,
        kwargs=dict(
            oscillator_1=osc1,
            oscillator_2=osc2,
            n_sweep=n_sweep,
            n_windows=256,
            correct_quantization=False,
        ),
        iterations=1,
        rounds=1,
    )

    raw_curve = campaign.curve
    corrected_points = [
        AccumulatedVariancePoint(
            n_accumulations=point.n_accumulations,
            sigma2_n_s2=max(
                point.sigma2_n_s2 - campaign.captures[0].quantization_variance_s2, 0.0
            ),
            n_realizations=point.n_realizations,
        )
        for point in raw_curve.points
    ]
    corrected_curve = AccumulatedVarianceCurve(
        points=corrected_points, f0_hz=raw_curve.f0_hz
    )

    fit_raw = fit_sigma2_n_curve(raw_curve)
    fit_corrected = fit_sigma2_n_curve(corrected_curve)

    error_raw = abs(fit_raw.b_thermal_hz - relative_b_thermal) / relative_b_thermal
    error_corrected = (
        abs(fit_corrected.b_thermal_hz - relative_b_thermal) / relative_b_thermal
    )
    assert error_corrected < error_raw

    report(
        "ABLATION: counter quantisation correction",
        [
            ("true relative b_th", f"{relative_b_thermal:.0f} Hz", "-"),
            ("b_th without correction", "-", f"{fit_raw.b_thermal_hz:.0f} Hz"),
            ("b_th with correction", "-", f"{fit_corrected.b_thermal_hz:.0f} Hz"),
        ],
    )
