"""Perf-regression gate: compare BENCH_*.json artifacts to committed baselines.

Every CI benchmark emits a JSON artifact (``BENCH_bit_pipeline.json``,
``BENCH_distributed*.json``, ``BENCH_serving.json``, ...).  This script is
what makes those artifacts *enforced* instead of decorative: each committed
baseline in ``benchmarks/baselines/*.json`` names the artifact it gates, the
fields to check, and the tolerance — and the gate fails when a measured
speedup/throughput field drops below ``min_fraction`` of its baseline.

Baseline file schema (one JSON object per file)::

    {
      "source": "BENCH_bit_pipeline.json",      # artifact basename (fnmatch)
      "require": {                              # all must hold, else SKIP:
        "mode": "full",                         #   exact-equality gate
        "cpu_cores": {"min": 4}                 #   numeric floor gate
      },
      "fields": {
        "speedup": {"baseline": 8.0, "min_fraction": 0.8},  # >= 6.4 or FAIL
        "serial_rps": {"min": 100.0},                       # absolute floor
        "equivalence": {"equals": "bitwise"}                # exact equality
      }
    }

``require`` makes hardware-dependent thresholds deterministic on small
runners: benchmarks record their execution mode and core count in their own
JSON (e.g. ``bench_distributed.py``'s ``mode``/``cpu_cores``/
``check_eligible``), and a baseline whose requirements are unmet is skipped
with an explicit note instead of flaking.

The gate prints a markdown summary (written to ``--summary``, e.g.
``$GITHUB_STEP_SUMMARY``) and exits non-zero if any check fails — or, with
``--require-all``, if an expected artifact is missing.

Usage::

    python scripts/check_bench.py [--baseline-dir benchmarks/baselines]
        [--summary $GITHUB_STEP_SUMMARY] [--require-all] BENCH_*.json
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

PASS, FAIL, SKIP = "PASS", "FAIL", "SKIP"


@dataclass
class CheckRow:
    """One line of the gate report."""

    source: str
    field: str
    status: str
    measured: object = None
    constraint: str = ""
    note: str = ""


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if value is None:
        return "—"
    return str(value)


def _unmet_requirements(require: Dict, bench: Dict) -> List[str]:
    """Human-readable reasons this artifact's thresholds do not apply."""
    reasons = []
    for key, expected in require.items():
        actual = bench.get(key)
        if isinstance(expected, dict):
            floor = expected.get("min")
            if floor is not None and not (
                isinstance(actual, (int, float)) and actual >= floor
            ):
                reasons.append(f"{key}={_format_value(actual)} < {floor}")
        elif actual != expected:
            reasons.append(f"{key}={_format_value(actual)} != {expected!r}")
    return reasons


def _check_field(name: str, spec: Dict, bench: Dict, source: str) -> CheckRow:
    measured = bench.get(name)
    if "equals" in spec:
        expected = spec["equals"]
        status = PASS if measured == expected else FAIL
        return CheckRow(
            source, name, status, measured, f"== {expected!r}"
        )
    floor: Optional[float] = None
    constraint = ""
    if "baseline" in spec:
        fraction = float(spec.get("min_fraction", 0.8))
        floor = float(spec["baseline"]) * fraction
        constraint = (
            f">= {floor:.4g} ({fraction:.0%} of baseline "
            f"{_format_value(float(spec['baseline']))})"
        )
    if "min" in spec:
        absolute = float(spec["min"])
        if floor is None or absolute > floor:
            floor = absolute
        constraint = constraint or f">= {absolute:.4g}"
    if floor is None:
        return CheckRow(
            source, name, FAIL, measured, "", "baseline spec has no constraint"
        )
    if not isinstance(measured, (int, float)) or isinstance(measured, bool):
        return CheckRow(
            source, name, FAIL, measured, constraint,
            "field missing or not numeric",
        )
    status = PASS if measured >= floor else FAIL
    return CheckRow(source, name, status, float(measured), constraint)


def check_baseline(baseline: Dict, bench: Optional[Dict]) -> List[CheckRow]:
    """All report rows of one baseline file against its (maybe absent) artifact."""
    source = baseline["source"]
    if bench is None:
        return [CheckRow(source, "—", SKIP, note="artifact not provided")]
    unmet = _unmet_requirements(baseline.get("require", {}), bench)
    if unmet:
        return [
            CheckRow(
                source, "—", SKIP,
                note=f"requirements unmet: {'; '.join(unmet)}",
            )
        ]
    return [
        _check_field(name, spec, bench, source)
        for name, spec in sorted(baseline.get("fields", {}).items())
    ]


def load_baselines(baseline_dir: Path) -> List[Dict]:
    baselines = []
    for path in sorted(baseline_dir.glob("*.json")):
        baseline = json.loads(path.read_text())
        if "source" not in baseline:
            raise ValueError(f"{path}: baseline file has no 'source' field")
        baselines.append(baseline)
    if not baselines:
        raise ValueError(f"no baseline files found in {baseline_dir}")
    return baselines


def match_artifact(source_pattern: str, artifacts: Dict[str, Dict]) -> Optional[Dict]:
    for name, payload in artifacts.items():
        if fnmatch.fnmatch(name, source_pattern):
            return payload
    return None


def markdown_report(rows: List[CheckRow]) -> str:
    lines = [
        "## Benchmark perf gate",
        "",
        "| artifact | field | measured | constraint | status |",
        "|---|---|---|---|---|",
    ]
    icons = {PASS: "✅", FAIL: "❌", SKIP: "⏭️"}
    for row in rows:
        detail = row.note if row.note else row.constraint
        lines.append(
            f"| {row.source} | {row.field} | {_format_value(row.measured)} "
            f"| {detail} | {icons[row.status]} {row.status} |"
        )
    counts = {status: sum(row.status == status for row in rows) for status in icons}
    lines.append("")
    lines.append(
        f"**{counts[PASS]} passed, {counts[FAIL]} failed, "
        f"{counts[SKIP]} skipped.**"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "artifacts", nargs="+", help="BENCH_*.json files to check"
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path("benchmarks/baselines"),
        help="directory of committed baseline files",
    )
    parser.add_argument(
        "--summary",
        type=str,
        default=None,
        help="append the markdown report here (e.g. $GITHUB_STEP_SUMMARY)",
    )
    parser.add_argument(
        "--require-all",
        action="store_true",
        help="fail when a baseline's artifact is missing (default: skip)",
    )
    args = parser.parse_args(argv)

    artifacts: Dict[str, Dict] = {}
    for artifact in args.artifacts:
        path = Path(artifact)
        if not path.exists():
            if args.require_all:
                print(f"FAIL: artifact {artifact} does not exist", file=sys.stderr)
                return 1
            print(f"note: artifact {artifact} not found, skipping", file=sys.stderr)
            continue
        artifacts[path.name] = json.loads(path.read_text())

    rows: List[CheckRow] = []
    for baseline in load_baselines(args.baseline_dir):
        bench = match_artifact(baseline["source"], artifacts)
        rows.extend(check_baseline(baseline, bench))

    report = markdown_report(rows)
    print(report)
    if args.summary:
        with open(args.summary, "a") as handle:
            handle.write(report + "\n")

    if args.require_all and any(
        row.status == SKIP and row.note == "artifact not provided" for row in rows
    ):
        print("FAIL: required artifacts missing", file=sys.stderr)
        return 1
    failed = [row for row in rows if row.status == FAIL]
    if failed:
        for row in failed:
            print(
                f"FAIL: {row.source}: {row.field} = "
                f"{_format_value(row.measured)} violates {row.constraint or row.note}",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
