#!/usr/bin/env python3
"""Technology-scaling study: how transistor shrinking erodes jitter independence.

The paper's conclusion predicts that, because the flicker-noise PSD grows as
the inverse square of the channel length, the autocorrelated part of the
jitter will dominate more and more as technologies shrink, reducing the range
of accumulation lengths over which the independence assumption is tenable.

This example runs the complete bottom-up multilevel pipeline — device
geometry and bias, thermal and flicker current PSDs, Hajimiri ISF conversion,
phase-noise coefficients, ratio constant K and independence threshold — for
every node of the built-in technology library, and also shows the effect on
a TRNG design: the accumulation length needed to certify 0.997 bit of entropy
per bit and the fraction of it that may still be treated as independent.

Run:  python examples/technology_scaling_study.py
"""

from __future__ import annotations

from repro.core.multilevel import MultilevelModel
from repro.noise.technology import get_node, list_nodes
from repro.phase import PhaseNoisePSD
from repro.trng.models import RefinedEntropyModel

N_STAGES = 5
TARGET_ENTROPY = 0.997


def main() -> None:
    print("bottom-up multilevel pipeline, ring oscillator with "
          f"{N_STAGES} stages per node\n")
    header = (
        "node    f0[GHz]  sigma_th[ps]  PN corner[Hz]   K        "
        "N(r_N>95%)  r_N at N=1000   N for H>=0.997"
    )
    print(header)
    print("-" * len(header))

    for name in list_nodes():
        node = get_node(name)
        model = MultilevelModel.from_technology(node, N_STAGES)
        relative_psd = PhaseNoisePSD(
            2.0 * model.psd.b_thermal_hz, 2.0 * model.psd.b_flicker_hz2
        )
        entropy_model = RefinedEntropyModel(model.f0_hz, relative_psd)
        needed = entropy_model.accumulation_for_entropy(TARGET_ENTROPY)
        threshold = model.independence_threshold(0.95)

        print(
            f"{name:<7} {model.f0_hz / 1e9:7.2f}  "
            f"{model.thermal_jitter_std_s * 1e12:11.3f}  "
            f"{model.psd.corner_frequency_hz():13.3g}  "
            f"{model.ratio_constant:7.0f}  "
            f"{threshold:10.0f}  "
            f"{float(model.thermal_ratio(1000)):13.3f}  "
            f"{needed:14d}"
        )

    print(
        "\nThe ratio constant K, the 95% independence threshold and r_N at any"
        "\nfixed accumulation length all shrink monotonically from node to node:"
        "\nthe flicker-induced dependence between jitter realizations grows as"
        "\ntransistors shrink, exactly as the paper's conclusion predicts.  Any"
        "\nstochastic model that keeps assuming independence therefore overstates"
        "\nthe harvested entropy by a growing margin in newer technologies."
    )


if __name__ == "__main__":
    main()
